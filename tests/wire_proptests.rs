//! Property tests for the v2 wire subsystem: the three safety claims
//! the module documentation makes, checked against adversarial inputs.
//!
//! 1. A byte flip anywhere in a sealed datagram never panics and is
//!    always *classified* — flips past the magic land as `InvalidCrc`
//!    (the counted drop), flips in the magic as `Malformed`. Nothing
//!    corrupt ever parses as a valid frame.
//! 2. The RLE codec round-trips arbitrary payloads exactly, and the
//!    store-if-smaller negotiation never ships bytes it cannot get
//!    back.
//! 3. The delta uplink is self-synchronizing: under any loss pattern a
//!    delivered frame either reconstructs to the *exact* source bytes
//!    or is dropped for resync — never wrong pixels — and every
//!    delivered keyframe reconstructs.

use bytes::Bytes;
use proptest::prelude::*;
use scatter::runtime::wire::WireMsg;
use scatter::wirev2::codec::{maybe_compress, Codec};
use scatter::wirev2::{
    decode_any, encode_msg, DeltaRx, FrameKind, IngestError, Rle, UplinkPolicy, UplinkTx,
};
use scatter::ServiceKind;
use vision::codec::{encode, Quality};
use vision::scene::SceneGenerator;

fn msg(payload: Vec<u8>) -> WireMsg {
    WireMsg {
        client: 5,
        frame_no: 17,
        step: ServiceKind::Primary,
        emit_micros: 99,
        return_port: 40_000,
        trace_id: (5u64 << 32) | 17,
        flags: 0,
        sent_micros: 100,
        payload: Bytes::from(payload),
    }
}

fn bytes_of(raw: &[u16]) -> Vec<u8> {
    raw.iter().map(|&v| v as u8).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Claim 1: flip one byte anywhere in a sealed v2 datagram — the
    /// decoder must return an error (counted, attributable), never a
    /// parsed frame and never a panic.
    #[test]
    fn byte_flip_is_always_caught(
        raw in proptest::collection::vec(0u16..256, 0..600),
        pos_seed in 0usize..1_000_000,
        xor_seed in 0u16..255,
    ) {
        let xor = (xor_seed + 1) as u8;
        let (dgrams, _) = encode_msg(&msg(bytes_of(&raw)), true, FrameKind::DctKey, 0);
        for d in dgrams {
            let mut bytes = d.to_vec();
            let pos = pos_seed % bytes.len();
            bytes[pos] ^= xor;
            match decode_any(&bytes) {
                Ok(_) => prop_assert!(false, "corrupt datagram parsed (flip at {})", pos),
                Err(IngestError::InvalidCrc { .. }) => {
                    // Any flip past the magic word must land here: the
                    // CRC seals both its own field and everything after.
                    prop_assert!(pos >= 4, "flip at {} misclassified as InvalidCrc", pos);
                }
                Err(IngestError::Malformed(_)) => {
                    prop_assert!(pos < 4, "flip at {} dodged the CRC", pos);
                }
            }
        }
    }

    /// Claim 2a: RLE round-trips arbitrary bytes exactly.
    #[test]
    fn rle_round_trips(raw in proptest::collection::vec(0u16..256, 0..2000)) {
        let data = bytes_of(&raw);
        let packed = Rle.compress(&data);
        prop_assert_eq!(Rle.decompress(&packed, data.len()), Some(data));
    }

    /// Claim 2b: whatever `maybe_compress` decides to ship decompresses
    /// back to the original — the negotiation can skip the codec but
    /// can never lose data.
    #[test]
    fn negotiated_compression_is_lossless(raw in proptest::collection::vec(0u16..256, 0..2000)) {
        let data = bytes_of(&raw);
        let (kind, shipped) = maybe_compress(&data, true);
        match shipped {
            None => prop_assert_eq!(kind as u8, 0),
            Some(c) => {
                prop_assert!(c.len() < data.len(), "shipped a non-smaller encoding");
                prop_assert_eq!(Rle.decompress(&c, data.len()), Some(data));
            }
        }
    }

    /// Claim 3: run the real sender over a seeded scene with an
    /// arbitrary delivery mask (acks only for delivered frames). Every
    /// delivered frame must either reconstruct bit-exactly or be
    /// dropped for resync; keyframes always reconstruct.
    #[test]
    fn delta_stream_resyncs_after_loss(
        seed in 0u64..1000,
        delivered in proptest::collection::vec(proptest::bool::ANY, 24),
    ) {
        let scene = SceneGenerator::workplace_scaled(seed, 96, 48);
        let mut tx = UplinkTx::new(UplinkPolicy::default());
        let mut rx = DeltaRx::new();
        let mut keys_delivered = 0u32;
        for (f, &arrives) in delivered.iter().enumerate() {
            let stream = encode(&scene.frame(f as u32), Quality(80));
            let (kind, base, payload) = tx.prepare(f as u32, stream.clone());
            if !arrives {
                continue; // lost in flight: no ack, sender re-keys later
            }
            match rx.accept_frame(kind, base, f as u32, payload) {
                Some(got) => {
                    prop_assert_eq!(got, stream, "frame {} corrupted", f);
                    tx.ack(f as u32);
                    if kind == FrameKind::DctKey {
                        keys_delivered += 1;
                    }
                }
                None => {
                    // Resync drop: legal only for deltas whose anchor
                    // never arrived — a delivered key always decodes.
                    prop_assert_eq!(kind, FrameKind::DctDelta);
                }
            }
        }
        if delivered.iter().any(|&d| d) {
            prop_assert!(keys_delivered > 0, "no key survived a non-empty delivery");
        }
    }
}
