//! Property tests for the tracing subsystem: the trace context must
//! survive the real-UDP wire format byte-for-byte, and whatever DES
//! configuration runs, the resulting trace must satisfy the span
//! invariants (non-overlapping per frame, monotone timestamps) and the
//! frame conservation law `completed + dropped == emitted`.

use bytes::Bytes;
use proptest::prelude::*;
use proptest::test_runner::TestCaseError;
use scatter::config::{placements, RunConfig};
use scatter::runtime::wire::{self, Reassembler, WireMsg, FLAG_SAMPLED};
use scatter::{run_experiment_traced, Mode, ServiceKind};
use simcore::SimDuration;
use trace::{Analysis, TraceConfig};

fn any_mode() -> impl Strategy<Value = Mode> {
    prop_oneof![
        Just(Mode::Scatter),
        Just(Mode::ScatterPP),
        Just(Mode::StatelessOnly),
        Just(Mode::SidecarOnly),
    ]
}

fn any_placement() -> impl Strategy<Value = orchestra::PlacementSpec> {
    prop_oneof![
        Just(placements::c1()),
        Just(placements::c2()),
        Just(placements::c12()),
        Just(placements::cloud_only()),
        Just(placements::replicas([1, 2, 1, 1, 2])),
    ]
}

fn any_step() -> impl Strategy<Value = ServiceKind> {
    prop_oneof![
        Just(ServiceKind::Primary),
        Just(ServiceKind::Sift),
        Just(ServiceKind::Encoding),
        Just(ServiceKind::Lsh),
        Just(ServiceKind::Matching),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The trace identity (trace_id, sampled flag) and the per-hop
    /// timing stamps must round-trip through fragmentation and
    /// reassembly for any payload size, including multi-fragment and
    /// empty messages.
    #[test]
    fn trace_ctx_round_trips_through_the_wire(
        client in 0u16..512,
        frame_no in 0u32..100_000,
        sampled in proptest::bool::ANY,
        payload_len in 0usize..(wire::CHUNK_BYTES * 3),
        emit_micros in 0u64..10_000_000,
        sent_micros in 0u64..10_000_000,
        step in any_step(),
    ) {
        let ctx = trace::TraceCtx::new(client, frame_no, sampled);
        let msg = WireMsg {
            client,
            frame_no,
            step,
            emit_micros,
            return_port: 40_000,
            trace_id: ctx.trace_id,
            flags: if sampled { FLAG_SAMPLED } else { 0 },
            sent_micros,
            payload: Bytes::from(vec![0xA5u8; payload_len]),
        };
        let datagrams = wire::encode(&msg);
        prop_assert!(!datagrams.is_empty());
        let mut reassembler = Reassembler::new();
        let mut out = None;
        for dg in &datagrams {
            let frag = wire::decode_fragment(dg)
                .map_err(|e| TestCaseError::fail(format!("decode failed: {e}")))?;
            prop_assert_eq!(frag.trace_id, ctx.trace_id);
            prop_assert_eq!(frag.sent_micros, sent_micros);
            out = reassembler.offer(frag);
        }
        let out = out.expect("all fragments delivered");
        prop_assert_eq!(&out, &msg);
        let back = out.trace_ctx();
        prop_assert_eq!(back, ctx);
        prop_assert_eq!(back.sampled, sampled);
    }

    /// Any DES configuration, traced at any sampling rate, must produce
    /// a log whose spans tile cleanly (non-overlapping per frame,
    /// monotone timestamps — enforced by `check_invariants`) and whose
    /// terminals conserve frames: every sampled emission ends exactly
    /// once, as a completion or as an attributed drop.
    #[test]
    fn des_traces_conserve_frames_for_every_config(
        mode in any_mode(),
        placement in any_placement(),
        clients in 1usize..5,
        seed in 0u64..1000,
        sample_every in 1u32..5,
    ) {
        let (report, log) = run_experiment_traced(
            RunConfig::new(mode, placement, clients)
                .with_duration(SimDuration::from_secs(8))
                .with_warmup(SimDuration::from_secs(1))
                .with_seed(seed)
                .with_trace(TraceConfig::sample_every(sample_every)),
        );
        let a = Analysis::from_log(&log);
        if let Err(e) = a.check_invariants() {
            return Err(TestCaseError::fail(format!(
                "{mode:?} x{clients} seed={seed} every={sample_every}: {e}"
            )));
        }
        let dropped: usize = a.drop_reasons().values().sum();
        prop_assert_eq!(
            a.completed() + dropped,
            a.emitted(),
            "conservation violated: {} completed + {} dropped != {} emitted",
            a.completed(), dropped, a.emitted()
        );
        // The trace and the report agree on scale: the trace covers the
        // whole run (warmup included), so with 1-in-1 sampling its
        // completion count can never fall below the report's post-warmup
        // E2E sample count.
        if sample_every == 1 {
            prop_assert!(
                a.completed() >= report.e2e_ms.len(),
                "trace completed {} < report completions {}",
                a.completed(), report.e2e_ms.len()
            );
        }
    }
}
