//! Regression: the experiment harness's env-var diagnostics go to
//! *stderr*, never stdout — `--json` output must stay machine-parsable
//! even when `SCATTER_JOBS`/`SCATTER_EXP_SECS` are garbage. A corrupted
//! stdout silently breaks every downstream plotting pipeline, so this is
//! pinned by spawning the real binary.

use std::process::Command;

#[test]
fn invalid_env_warns_on_stderr_and_keeps_json_stdout_clean() {
    let out = Command::new(env!("CARGO_BIN_EXE_telemetry"))
        .args(["--smoke", "--json"])
        .env("SCATTER_EXP_SECS", "6")
        .env("SCATTER_JOBS", "banana") // invalid: must warn, not die
        .output()
        .expect("spawn telemetry bin");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        out.status.success(),
        "telemetry --smoke --json failed: {:?}\nstderr: {stderr}",
        out.status
    );

    // stdout is exactly one JSON document (the table array).
    let stdout = String::from_utf8(out.stdout).expect("stdout is UTF-8");
    let v = trace::json::Value::parse(stdout.trim())
        .expect("stdout must parse as JSON — no warnings may leak into it");
    assert!(
        v.idx(0).and_then(|t| t.get("title")).is_some(),
        "expected a non-empty array of tables"
    );

    // The warning fired, on stderr.
    assert!(
        stderr.contains("warning: invalid SCATTER_JOBS"),
        "stderr missing the SCATTER_JOBS warning: {stderr}"
    );
}
