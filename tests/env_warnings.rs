//! Regression: the experiment harness's env-var diagnostics go to
//! *stderr*, never stdout — `--json` output must stay machine-parsable
//! even when `SCATTER_JOBS`/`SCATTER_EXP_SECS` are garbage. A corrupted
//! stdout silently breaks every downstream plotting pipeline, so this is
//! pinned by spawning the real binary.

use std::process::Command;
use std::sync::Mutex;

/// Each test here spawns a full release study binary; the wire and
/// resilience studies gate on real-thread latency, so running them
/// concurrently on a small box starves their timing. One spawn at a
/// time.
static SPAWN: Mutex<()> = Mutex::new(());

#[test]
fn invalid_env_warns_on_stderr_and_keeps_json_stdout_clean() {
    let _serial = SPAWN.lock().unwrap_or_else(|e| e.into_inner());
    let out = Command::new(env!("CARGO_BIN_EXE_telemetry"))
        .args(["--smoke", "--json"])
        .env("SCATTER_EXP_SECS", "6")
        .env("SCATTER_JOBS", "banana") // invalid: must warn, not die
        .output()
        .expect("spawn telemetry bin");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        out.status.success(),
        "telemetry --smoke --json failed: {:?}\nstderr: {stderr}",
        out.status
    );

    // stdout is exactly one JSON document (the table array).
    let stdout = String::from_utf8(out.stdout).expect("stdout is UTF-8");
    let v = trace::json::Value::parse(stdout.trim())
        .expect("stdout must parse as JSON — no warnings may leak into it");
    assert!(
        v.idx(0).and_then(|t| t.get("title")).is_some(),
        "expected a non-empty array of tables"
    );

    // The warning fired, on stderr.
    assert!(
        stderr.contains("warning: invalid SCATTER_JOBS"),
        "stderr missing the SCATTER_JOBS warning: {stderr}"
    );
}

/// Same contract for the resilience knobs: garbage in
/// `SCATTER_HB_INTERVAL` / `SCATTER_HB_SUSPECT` warns once on stderr,
/// the detector falls back to its defaults, and the run (gates
/// included) still succeeds with machine-parsable JSON on stdout.
#[test]
fn invalid_heartbeat_env_warns_and_falls_back_to_defaults() {
    let _serial = SPAWN.lock().unwrap_or_else(|e| e.into_inner());
    let out = Command::new(env!("CARGO_BIN_EXE_resilience"))
        .args(["--smoke", "--json"])
        .env("SCATTER_HB_INTERVAL", "soon") // invalid: warn, keep 50 ms
        .env("SCATTER_HB_SUSPECT", "0.5") // invalid: factor must exceed 1
        .output()
        .expect("spawn resilience bin");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        out.status.success(),
        "resilience --smoke --json failed under invalid env: {:?}\nstderr: {stderr}",
        out.status
    );

    let stdout = String::from_utf8(out.stdout).expect("stdout is UTF-8");
    let v = trace::json::Value::parse(stdout.trim())
        .expect("stdout must parse as JSON — no warnings may leak into it");
    assert!(
        v.idx(0).and_then(|t| t.get("title")).is_some(),
        "expected a non-empty array of tables"
    );

    assert!(
        stderr.contains("warning: invalid SCATTER_HB_INTERVAL"),
        "stderr missing the SCATTER_HB_INTERVAL warning: {stderr}"
    );
    assert!(
        stderr.contains("warning: invalid SCATTER_HB_SUSPECT"),
        "stderr missing the SCATTER_HB_SUSPECT warning: {stderr}"
    );
}

/// Same contract for the scale plane's `SCATTER_SHARDS` override
/// (DESIGN.md §14): garbage warns once on stderr, the run keeps the
/// config's shard count (sharding is output-invisible either way), and
/// stdout stays one machine-parsable JSON document.
#[test]
fn invalid_shards_env_warns_and_keeps_config_shard_count() {
    let _serial = SPAWN.lock().unwrap_or_else(|e| e.into_inner());
    let out = Command::new(env!("CARGO_BIN_EXE_telemetry"))
        .args(["--smoke", "--json"])
        .env("SCATTER_EXP_SECS", "6")
        .env("SCATTER_SHARDS", "many") // invalid: must warn, not die
        .output()
        .expect("spawn telemetry bin");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        out.status.success(),
        "telemetry --smoke --json failed under invalid SCATTER_SHARDS: {:?}\nstderr: {stderr}",
        out.status
    );

    let stdout = String::from_utf8(out.stdout).expect("stdout is UTF-8");
    let v = trace::json::Value::parse(stdout.trim())
        .expect("stdout must parse as JSON — no warnings may leak into it");
    assert!(
        v.idx(0).and_then(|t| t.get("title")).is_some(),
        "expected a non-empty array of tables"
    );

    assert!(
        stderr.contains("warning: invalid SCATTER_SHARDS"),
        "stderr missing the SCATTER_SHARDS warning: {stderr}"
    );
    // Warn-once: the run simulates many points, the warning fires once.
    assert_eq!(
        stderr.matches("warning: invalid SCATTER_SHARDS").count(),
        1,
        "SCATTER_SHARDS warning must fire exactly once: {stderr}"
    );
}

/// Same contract for the observatory knobs: garbage in
/// `SCATTER_OBS_SAMPLE` (tail reservoir rate) / `SCATTER_FLIGHTREC`
/// (flight-recorder ring capacity) warns exactly once on stderr even
/// though the study performs many observed runs, the observatory falls
/// back to the config's values, and stdout stays one machine-parsable
/// JSON document. The overhead/retention gates are not asserted here —
/// `CARGO_BIN_EXE_observatory` is the debug-profile build, whose
/// uninlined sampler cannot hold the release overhead bound; the
/// release binary's gates are enforced by `scripts/verify.sh`.
#[test]
fn invalid_observatory_env_warns_once_and_falls_back() {
    let _serial = SPAWN.lock().unwrap_or_else(|e| e.into_inner());
    let out = Command::new(env!("CARGO_BIN_EXE_observatory"))
        .args(["--smoke", "--json"])
        .env("SCATTER_OBS_SAMPLE", "sometimes") // invalid: warn, keep 1-in-64
        .env("SCATTER_FLIGHTREC", "0") // invalid: capacity must be >= 1
        .output()
        .expect("spawn observatory bin");
    let stderr = String::from_utf8_lossy(&out.stderr);

    let stdout = String::from_utf8(out.stdout).expect("stdout is UTF-8");
    let v = trace::json::Value::parse(stdout.trim())
        .expect("stdout must parse as JSON — no warnings may leak into it");
    assert!(
        v.idx(0).and_then(|t| t.get("title")).is_some(),
        "expected a non-empty array of tables"
    );

    for knob in ["SCATTER_OBS_SAMPLE", "SCATTER_FLIGHTREC"] {
        let needle = format!("warning: invalid {knob}");
        assert_eq!(
            stderr.matches(needle.as_str()).count(),
            1,
            "{knob} warning must fire exactly once across every observed run: {stderr}"
        );
    }
}

/// Same contract for the wire-policy knobs: garbage in
/// `SCATTER_WIRE_DELTA` / `SCATTER_WIRE_COMPRESS` warns once on
/// stderr, the study falls back to the default policy (both on), and
/// stdout stays one machine-parsable JSON document. The latency/parity
/// gates themselves are *not* asserted here: `CARGO_BIN_EXE_wire` is
/// the debug-profile build, which is far too slow to hold the exact
/// ack-timing parity or the 100 ms p95 — the release binary's gates
/// are enforced by `scripts/verify.sh`'s wire smoke stage instead.
#[test]
fn invalid_wire_env_warns_and_falls_back_to_defaults() {
    let _serial = SPAWN.lock().unwrap_or_else(|e| e.into_inner());
    let out = Command::new(env!("CARGO_BIN_EXE_wire"))
        .args(["--smoke", "--json"])
        .env("SCATTER_WIRE_DELTA", "maybe") // invalid: warn, keep delta on
        .env("SCATTER_WIRE_COMPRESS", "2") // invalid: want 0/1
        .output()
        .expect("spawn wire bin");
    let stderr = String::from_utf8_lossy(&out.stderr);

    let stdout = String::from_utf8(out.stdout).expect("stdout is UTF-8");
    let v = trace::json::Value::parse(stdout.trim())
        .expect("stdout must parse as JSON — no warnings may leak into it");
    assert!(
        v.idx(0).and_then(|t| t.get("title")).is_some(),
        "expected a non-empty array of tables"
    );

    assert!(
        stderr.contains("warning: invalid SCATTER_WIRE_DELTA"),
        "stderr missing the SCATTER_WIRE_DELTA warning: {stderr}"
    );
    assert!(
        stderr.contains("warning: invalid SCATTER_WIRE_COMPRESS"),
        "stderr missing the SCATTER_WIRE_COMPRESS warning: {stderr}"
    );
}
