//! Integration: the paper's qualitative result shapes must hold across
//! the full stack (simnet + orchestra + scatter + metrics).

use scatter::config::{placements, RunConfig};
use scatter::{run_experiment, Mode, RunReport, ServiceKind};
use simcore::SimDuration;

fn run(mode: Mode, placement: orchestra::PlacementSpec, clients: usize) -> RunReport {
    run_experiment(
        RunConfig::new(mode, placement, clients)
            .with_duration(SimDuration::from_secs(25))
            .with_warmup(SimDuration::from_secs(4))
            .with_seed(1234),
    )
}

#[test]
fn single_client_matches_paper_anchors() {
    // ≥25 FPS at ≈40 ms E2E with ≈85% success on a single edge machine.
    let r = run(Mode::Scatter, placements::c1(), 1);
    assert!(r.fps() >= 23.0, "FPS {:.1}", r.fps());
    assert!(
        (30.0..=60.0).contains(&r.e2e_mean_ms()),
        "E2E {:.1}",
        r.e2e_mean_ms()
    );
    assert!(
        (0.70..=1.0).contains(&r.success_rate),
        "success {:.2}",
        r.success_rate
    );
}

#[test]
fn scatter_fps_monotonically_degrades_with_clients() {
    let fps: Vec<f64> = (1..=4)
        .map(|n| run(Mode::Scatter, placements::c2(), n).fps())
        .collect();
    for w in fps.windows(2) {
        assert!(w[1] <= w[0] + 1.0, "FPS should fall with load: {fps:?}");
    }
    assert!(
        fps[3] < fps[0] * 0.5,
        "4-client FPS should at least halve: {fps:?}"
    );
}

#[test]
fn scatterpp_outperforms_scatter_under_load() {
    for placement in [placements::c1(), placements::c2(), placements::c12()] {
        let s = run(Mode::Scatter, placement.clone(), 4);
        let pp = run(Mode::ScatterPP, placement, 4);
        assert!(
            pp.fps() > s.fps() * 1.4,
            "scAtteR++ {:.1} vs scAtteR {:.1}",
            pp.fps(),
            s.fps()
        );
        assert!(pp.success_rate > s.success_rate);
    }
}

#[test]
fn split_deployment_beats_colocated_under_scatterpp_load() {
    // Fig. 6: C12 relieves GPU contention vs C1 at 4 clients.
    let c1 = run(Mode::ScatterPP, placements::c1(), 4);
    let c12 = run(Mode::ScatterPP, placements::c12(), 4);
    assert!(
        c12.fps() > c1.fps() * 1.15,
        "C12 {:.1} should beat C1 {:.1}",
        c12.fps(),
        c1.fps()
    );
}

#[test]
fn cloud_deployment_slower_than_edge() {
    let edge = run(Mode::Scatter, placements::c2(), 1);
    let cloud = run(Mode::Scatter, placements::cloud_only(), 1);
    assert!(
        cloud.fps() < edge.fps() * 0.85,
        "cloud {:.1} vs edge {:.1}",
        cloud.fps(),
        edge.fps()
    );
    assert!(cloud.e2e_mean_ms() > edge.e2e_mean_ms() + 15.0);
    assert!(cloud.success_rate < edge.success_rate);
}

#[test]
fn hybrid_split_degrades_beyond_cloud_only() {
    // At 3 clients the uncompressed primary→sift frames saturate the
    // E1→cloud uplink (fig. 11's "frame drops over the public Internet
    // path"): latency inflates and datagram losses multiply.
    let cloud = run(Mode::Scatter, placements::cloud_only(), 3);
    let hybrid = run(Mode::Scatter, placements::hybrid_edge_cloud(), 3);
    assert!(
        hybrid.e2e_mean_ms() > cloud.e2e_mean_ms() * 1.3,
        "hybrid E2E {:.1} vs cloud {:.1}",
        hybrid.e2e_mean_ms(),
        cloud.e2e_mean_ms()
    );
    assert!(
        hybrid.datagrams_lost > cloud.datagrams_lost * 13 / 10,
        "hybrid losses {} vs cloud {}",
        hybrid.datagrams_lost,
        cloud.datagrams_lost
    );
}

#[test]
fn stateful_sift_memory_dominates_and_stateless_does_not() {
    let s = run(Mode::Scatter, placements::c1(), 4);
    let pp = run(Mode::ScatterPP, placements::c1(), 4);
    let sift_stateful = s.memory_gb(ServiceKind::Sift);
    let sift_stateless = pp.memory_gb(ServiceKind::Sift);
    assert!(
        sift_stateful > sift_stateless * 1.5,
        "stateful sift {sift_stateful:.2} GB vs stateless {sift_stateless:.2} GB"
    );
}

#[test]
fn sift_sees_double_request_load_in_scatter() {
    // The dependency loop: sift serves frames AND matching's fetches.
    let r = run(Mode::Scatter, placements::c1(), 1);
    let sift = r
        .services
        .iter()
        .find(|s| s.kind == ServiceKind::Sift)
        .expect("sift deployed");
    assert!(
        sift.fetch_served + sift.fetch_dropped > sift.processed / 2,
        "fetch load missing: {} fetches vs {} frames",
        sift.fetch_served + sift.fetch_dropped,
        sift.processed
    );
}

#[test]
fn utilization_declines_while_memory_grows_in_scatter() {
    // Insight (I): hardware metrics anti-correlate with load under drops.
    let two = run(Mode::Scatter, placements::c1(), 2);
    let four = run(Mode::Scatter, placements::c1(), 4);
    let total_mem =
        |r: &RunReport| -> f64 { [ServiceKind::Sift].iter().map(|&k| r.memory_gb(k)).sum() };
    assert!(
        total_mem(&four) > total_mem(&two),
        "sift memory should grow with clients: {:.2} vs {:.2}",
        total_mem(&four),
        total_mem(&two)
    );
    // GPU utilization must NOT grow proportionally with offered load
    // (2× clients ⇒ far less than 2× utilization).
    let gpu2 = two.total_gpu_pct();
    let gpu4 = four.total_gpu_pct();
    assert!(
        gpu4 < gpu2 * 1.6,
        "GPU% should stall under drops: {gpu2:.1} → {gpu4:.1}"
    );
}

#[test]
fn scatterpp_gpu_scales_with_load_instead() {
    let one = run(Mode::ScatterPP, placements::c1(), 1);
    let three = run(Mode::ScatterPP, placements::c1(), 3);
    assert!(
        three.total_gpu_pct() > one.total_gpu_pct() * 1.5,
        "scAtteR++ GPU should scale: {:.1} → {:.1}",
        one.total_gpu_pct(),
        three.total_gpu_pct()
    );
}

#[test]
fn best_replication_config_wins_but_costs_latency() {
    // Fig. 3: [1,2,2,1,2] improves FPS over the E2 baseline at 2–3
    // clients at the cost of elevated E2E.
    let base = run(Mode::Scatter, placements::c2(), 2);
    let best = run(Mode::Scatter, placements::replicas([1, 2, 2, 1, 2]), 2);
    assert!(
        best.fps() > base.fps() * 1.05,
        "replication should help: {:.1} vs {:.1}",
        best.fps(),
        base.fps()
    );
    assert!(
        best.e2e_mean_ms() > base.e2e_mean_ms() * 1.1,
        "balancing overhead should show in E2E: {:.1} vs {:.1}",
        best.e2e_mean_ms(),
        base.e2e_mean_ms()
    );
}

#[test]
fn scatterpp_enforces_latency_budget_at_the_median() {
    let r = run(Mode::ScatterPP, placements::c2(), 4);
    let mut e2e = r.e2e_ms.clone();
    assert!(
        e2e.median() <= 105.0,
        "median E2E {:.1} breaches the 100 ms threshold",
        e2e.median()
    );
}

#[test]
fn wire_traffic_reflects_stateless_frame_growth() {
    // §5: 180 KB → 480 KB per frame shows up as more bytes on the wire
    // per completed frame.
    let s = run(Mode::Scatter, placements::c12(), 1);
    let pp = run(Mode::ScatterPP, placements::c12(), 1);
    let per_frame_s = s.bytes_on_wire as f64 / s.e2e_ms.len().max(1) as f64;
    let per_frame_pp = pp.bytes_on_wire as f64 / pp.e2e_ms.len().max(1) as f64;
    assert!(
        per_frame_pp > per_frame_s * 1.3,
        "stateless frames should cost more wire bytes: {per_frame_s:.0} vs {per_frame_pp:.0}"
    );
}
