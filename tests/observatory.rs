//! Property tests for the observatory: retention decisions and
//! flight-recorder dump contents are *pure functions* of the seed and
//! the event stream `(time, seq)` — never of wall clock, shard layout,
//! or replay count. These are the properties the `--bin observatory`
//! replay gate rests on, checked here against adversarial inputs
//! including randomized crash schedules.

use observatory::flight::{self, FlightRecorder};
use observatory::tail::{decide, splitmix64, TailConfig, TailSampler};
use observatory::TailStats;
use proptest::prelude::*;
use scatter::config::{placements, RunConfig, ScaleConfig};
use scatter::{run_experiment_observed, Mode, ServiceKind};
use simcore::SimDuration;
use trace::{DropReason, FrameFate, Phase, TraceLog};

/// A randomized synthetic frame: identity, timing, fate (encoded 0–3:
/// in-flight / completed / busy-drop / netem-drop — the shimmed
/// `proptest` has no `prop_map`, so the tuple is decoded here).
type RawFrame = (u16, u32, u64, u64, u8);

fn decode_fate(code: u8) -> Option<FrameFate> {
    match code % 4 {
        0 => None,
        1 => Some(FrameFate::Completed),
        2 => Some(FrameFate::Dropped(DropReason::BusyIngress)),
        _ => Some(FrameFate::Dropped(DropReason::NetemLoss)),
    }
}

/// Replay one synthetic schedule through a fresh sampler.
fn replay_tail(seed: u64, frames: &[RawFrame], crashes: &[u64]) -> (TraceLog, TailStats) {
    let mut s = TailSampler::new(TailConfig {
        seed,
        slo_ms: 50.0,
        ..TailConfig::default()
    });
    let track = s.register_track("client-0", "client-host");
    // Interleave crash marks and frames in emitted order, the way the
    // DES would deliver them.
    let mut crashes = crashes.to_vec();
    crashes.sort_unstable();
    let mut ci = 0;
    let mut order: Vec<&RawFrame> = frames.iter().collect();
    order.sort_by_key(|(client, frame_no, emitted_ns, _, _)| (*emitted_ns, *client, *frame_no));
    for (client, frame_no, emitted_ns, lifetime_ns, fate_code) in order {
        while ci < crashes.len() && crashes[ci] <= *emitted_ns {
            s.note_crash(crashes[ci]);
            ci += 1;
        }
        let ctx = s.ctx(*client, *frame_no);
        s.emitted(ctx, *emitted_ns);
        let end = emitted_ns + lifetime_ns;
        s.span(ctx, track, 0, Phase::Compute, *emitted_ns, end);
        if let Some(fate) = decode_fate(*fate_code) {
            s.terminal(ctx, end, fate);
        }
    }
    s.finish(3_000_000_000)
}

fn raw_frame() -> impl Strategy<Value = RawFrame> {
    (
        0u16..8,
        0u32..64,
        0u64..2_000_000_000,
        0u64..400_000_000,
        0u8..4,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `decide` is deterministic and classifies exactly: drops always
    /// retained, slow completions always retained, the reservoir is the
    /// documented splitmix64 formula and nothing else.
    #[test]
    fn decide_is_pure_and_total(
        seed in 0u64..u64::MAX,
        trace_id in 0u64..u64::MAX,
        emitted_ns in 0u64..(u64::MAX / 2),
        lifetime_ns in 0u64..1_000_000_000,
        crash_raw in 0u64..u64::MAX,
        fate_code in 0u8..4,
    ) {
        let cfg = TailConfig { seed, ..TailConfig::default() };
        let at_ns = emitted_ns + lifetime_ns;
        // Top bit of the raw draw decides presence; the rest is the mark.
        let crash = (crash_raw & 1 == 1).then_some(crash_raw >> 1);
        let fate = decode_fate(fate_code);
        let d1 = decide(&cfg, trace_id, emitted_ns, at_ns, fate, crash);
        let d2 = decide(&cfg, trace_id, emitted_ns, at_ns, fate, crash);
        prop_assert_eq!(d1, d2, "decide drew hidden state");
        if matches!(fate, Some(FrameFate::Dropped(_))) {
            prop_assert!(d1.keeps() && d1.anomalous());
        }
        if matches!(fate, Some(FrameFate::Completed))
            && lifetime_ns as f64 / 1e6 > cfg.slo_ms
        {
            prop_assert!(d1.keeps() && d1.anomalous());
        }
        if !d1.anomalous() {
            let in_reservoir =
                splitmix64(seed ^ trace_id).is_multiple_of(cfg.reservoir_1_in);
            prop_assert_eq!(d1.keeps(), in_reservoir, "reservoir is not the formula");
        }
    }

    /// A full sampler replay — randomized frames, fates, and crash
    /// schedule — produces bit-identical retained logs and stats every
    /// time it is replayed.
    #[test]
    fn sampler_replay_is_bit_identical(
        seed in 0u64..u64::MAX,
        frames in proptest::collection::vec(raw_frame(), 1..40),
        crashes in proptest::collection::vec(0u64..2_500_000_000, 0..4),
    ) {
        let (log1, stats1) = replay_tail(seed, &frames, &crashes);
        let (log2, stats2) = replay_tail(seed, &frames, &crashes);
        prop_assert_eq!(stats1, stats2);
        prop_assert_eq!(&log1.events, &log2.events);
        prop_assert_eq!(&log1.tracks, &log2.tracks);
        // The stats account for every frame *lifetime* exactly once: a
        // reused (client, frame_no) id starts a new frame only if its
        // previous lifetime already settled.
        let mut order: Vec<&RawFrame> = frames.iter().collect();
        order.sort_by_key(|(client, frame_no, emitted_ns, _, _)| {
            (*emitted_ns, *client, *frame_no)
        });
        let mut pending = std::collections::BTreeSet::new();
        let mut expected_seen = 0u64;
        for (client, frame_no, _, _, fate_code) in order {
            if pending.insert((*client, *frame_no)) {
                expected_seen += 1;
            }
            if decode_fate(*fate_code).is_some() {
                pending.remove(&(*client, *frame_no));
            }
        }
        prop_assert_eq!(stats1.frames_seen, expected_seen);
    }

    /// Flight-recorder dump bytes are a pure function of the recorded
    /// `(time, seq)` stream: replaying the same schedule of records and
    /// triggers yields byte-identical JSON.
    #[test]
    fn flight_dumps_replay_to_identical_bytes(
        cap in 1usize..32,
        records in proptest::collection::vec(
            (0usize..4, 0u64..1_000_000, (1u64..9, 0u64..u64::MAX, 0u64..u64::MAX)),
            0..80,
        ),
        trigger_after in 0usize..80,
    ) {
        let run = || {
            let fr = FlightRecorder::new(4, cap);
            for (i, (ring, t_ns, (kind, a, b))) in records.iter().enumerate() {
                fr.record(*ring, *t_ns, *kind, *a, *b);
                if i == trigger_after {
                    fr.trigger(*t_ns, "prop");
                }
            }
            fr.trigger(2_000_000, "final");
            fr.take_dumps()
                .iter()
                .map(flight::dump_json)
                .collect::<Vec<_>>()
        };
        prop_assert_eq!(run(), run());
    }
}

/// One observed DES run under a randomized crash schedule, fingerprinted.
fn observed_run(seed: u64, kill_ds: u64, recovery_ds: u64, shards: usize) -> String {
    let cfg = RunConfig::new(Mode::ScatterPP, placements::c2(), 2)
        .with_duration(SimDuration::from_secs(5))
        .with_warmup(SimDuration::from_secs(1))
        .with_seed(seed)
        .with_failure(
            SimDuration::from_millis(1_000 + kill_ds * 100),
            ServiceKind::Sift,
            0,
        )
        .with_recovery(SimDuration::from_millis(500 + recovery_ds * 100))
        .with_scale(ScaleConfig::new(2).exact().with_shards(shards))
        .with_observatory(observatory::ObservatoryConfig::default());
    let (_, log, artifacts) = run_experiment_observed(cfg);
    let mut fp = String::new();
    for d in &artifacts.flight_dumps {
        fp.push_str(&flight::dump_json(d));
        fp.push('\n');
    }
    fp.push_str(&format!("{:?}\n", artifacts.tail));
    fp.push_str(&format!("{} events\n", log.events.len()));
    for e in &log.events {
        fp.push_str(&format!("{e:?}\n"));
    }
    fp
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// End to end: a DES run with a randomized crash schedule retains
    /// the same traces and freezes byte-identical flight dumps across
    /// a rerun AND across event-queue shard counts.
    #[test]
    fn observed_des_runs_replay_across_shards(
        seed in 1u64..10_000,
        kill_ds in 0u64..20,
        recovery_ds in 0u64..10,
    ) {
        let a = observed_run(seed, kill_ds, recovery_ds, 1);
        let b = observed_run(seed, kill_ds, recovery_ds, 1);
        let c = observed_run(seed, kill_ds, recovery_ds, 3);
        prop_assert_eq!(&a, &b, "rerun diverged");
        prop_assert_eq!(&a, &c, "shard count leaked into the observatory");
        prop_assert!(a.contains("\"reason\":\"crash\""), "no crash dump frozen");
    }
}
