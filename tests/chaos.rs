//! Property tests for the fault plane: whatever crash schedule the DES
//! runs — any mode, any victim service, any kill time, any recovery
//! delay — the trace must still conserve frames (every emission ends in
//! exactly one terminal) and the run must stay bit-for-bit reproducible
//! from its seed. The pre-existing determinism suite never exercises
//! `failures`; this one does nothing else.

use proptest::prelude::*;
use proptest::test_runner::TestCaseError;
use scatter::config::{placements, RunConfig};
use scatter::{run_experiment_traced, Mode, ServiceKind};
use simcore::SimDuration;
use trace::{Analysis, DropReason, TraceConfig};

fn any_mode() -> impl Strategy<Value = Mode> {
    prop_oneof![
        Just(Mode::Scatter),
        Just(Mode::ScatterPP),
        Just(Mode::StatelessOnly),
        Just(Mode::SidecarOnly),
    ]
}

fn any_victim() -> impl Strategy<Value = ServiceKind> {
    prop_oneof![
        Just(ServiceKind::Primary),
        Just(ServiceKind::Sift),
        Just(ServiceKind::Encoding),
        Just(ServiceKind::Lsh),
        Just(ServiceKind::Matching),
    ]
}

/// A randomized crash schedule: one or two kills inside the run, each
/// hitting replica 0 of some service, with a shared recovery delay.
#[derive(Debug, Clone)]
struct CrashSchedule {
    kills: Vec<(u64, ServiceKind)>, // (kill time in ms, victim)
    recovery_ms: u64,
}

fn cfg(mode: Mode, clients: usize, seed: u64, sched: &CrashSchedule) -> RunConfig {
    let mut cfg = RunConfig::new(mode, placements::c1(), clients)
        .with_duration(SimDuration::from_secs(8))
        .with_warmup(SimDuration::from_secs(1))
        .with_seed(seed)
        .with_recovery(SimDuration::from_millis(sched.recovery_ms))
        .with_trace(TraceConfig::default());
    for &(at_ms, victim) in &sched.kills {
        cfg = cfg.with_failure(SimDuration::from_millis(at_ms), victim, 0);
    }
    cfg
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Frame conservation under arbitrary crash schedules: the span
    /// invariants hold and `completed + dropped == emitted` — a crash
    /// may strand frames mid-pipeline, but every one of them must end
    /// in an attributed terminal (`Crash`, `StaleFetch`, …), never
    /// vanish.
    #[test]
    fn crashed_runs_conserve_frames(
        mode in any_mode(),
        clients in 1usize..4,
        seed in 0u64..1000,
        two_kills in proptest::bool::ANY,
        kill1_ms in 500u64..6_000,
        kill2_ms in 500u64..6_000,
        victim1 in any_victim(),
        victim2 in any_victim(),
        recovery_ms in 100u64..2_500,
    ) {
        let mut kills = vec![(kill1_ms, victim1)];
        if two_kills {
            kills.push((kill2_ms, victim2));
        }
        let sched = CrashSchedule { kills, recovery_ms };
        let (_report, log) = run_experiment_traced(cfg(mode, clients, seed, &sched));
        let a = Analysis::from_log(&log);
        if let Err(e) = a.check_invariants() {
            return Err(TestCaseError::fail(format!(
                "{mode:?} x{clients} seed={seed} {sched:?}: {e}"
            )));
        }
        let dropped: usize = a.drop_reasons().values().sum();
        prop_assert_eq!(
            a.completed() + dropped,
            a.emitted(),
            "conservation violated under {:?}: {} completed + {} dropped != {} emitted",
            sched, a.completed(), dropped, a.emitted()
        );
        // Crash terminals are the orchestrator's doing, not the
        // network's: they may only appear when a kill is scheduled.
        let crash = a.drop_reasons().get(&DropReason::Crash).copied().unwrap_or(0);
        prop_assert!(
            sched.kills.is_empty() || crash <= a.emitted(),
            "impossible crash count {crash}"
        );
    }

    /// Crashes do not break determinism: the same seed and the same
    /// schedule reproduce the identical event log, byte for byte. (The
    /// determinism suite never sets `failures`; this closes that gap.)
    #[test]
    fn crashed_runs_are_bit_identical(
        mode in any_mode(),
        clients in 1usize..4,
        seed in 0u64..1000,
        kill_ms in 500u64..6_000,
        victim in any_victim(),
        recovery_ms in 100u64..2_500,
    ) {
        let sched = CrashSchedule {
            kills: vec![(kill_ms, victim)],
            recovery_ms,
        };
        let (ra, la) = run_experiment_traced(cfg(mode, clients, seed, &sched));
        let (rb, lb) = run_experiment_traced(cfg(mode, clients, seed, &sched));
        prop_assert_eq!(la.end_ns, lb.end_ns);
        prop_assert_eq!(&la.events, &lb.events, "event logs diverged");
        prop_assert_eq!(ra.e2e_ms.samples(), rb.e2e_ms.samples());
        let fps_a: Vec<u64> = ra.per_client_fps.iter().map(|f| f.to_bits()).collect();
        let fps_b: Vec<u64> = rb.per_client_fps.iter().map(|f| f.to_bits()).collect();
        prop_assert_eq!(fps_a, fps_b);
    }
}

/// A crash schedule that demonstrably bites: killing sift mid-run in
/// scAtteR mode must produce `Crash`-attributed drops (not merely lower
/// throughput), and the trace must name them.
#[test]
fn sift_kill_produces_attributed_crash_drops() {
    let sched = CrashSchedule {
        kills: vec![(3_000, ServiceKind::Sift)],
        recovery_ms: 1_000,
    };
    let (_report, log) = run_experiment_traced(cfg(Mode::Scatter, 2, 42, &sched));
    let a = Analysis::from_log(&log);
    a.check_invariants().expect("span invariants");
    let crash = a
        .drop_reasons()
        .get(&DropReason::Crash)
        .copied()
        .unwrap_or(0);
    assert!(
        crash > 0,
        "a 1 s sift outage at 30 FPS must crash-drop frames; reasons: {:?}",
        a.drop_reasons()
    );
}
