//! Property-based failover invariants: whatever the kill/recover
//! schedule, replica layout, or resilience-leg combination, detection
//! must never route a frame to a replica it has flagged, every frame
//! (and every retry attempt) must end in exactly one terminal, and
//! equal seeds must reproduce the run bit for bit — detection
//! latencies included.

use proptest::prelude::*;
use proptest::test_runner::TestRng;
use scatter::config::{placements, RunConfig};
use scatter::resilience::{DeadlineConfig, DetectionConfig, ResilienceConfig};
use scatter::{run_experiment_traced, Mode, RunReport, ServiceKind};
use simcore::SimDuration;
use trace::{Analysis, DropReason, FrameFate, TraceConfig};

/// A randomized crash: which service, which replica, when, and how long
/// until the orchestrator's scheduled revive.
#[derive(Debug, Clone, Copy)]
struct Crash {
    service: ServiceKind,
    replica: usize,
    at_secs: f64,
    recovery_secs: f64,
}

/// Strategy for [`Crash`] (the proptest shim has no `prop_map`, so the
/// composite is generated directly).
#[derive(Debug, Clone, Copy)]
struct AnyCrash;

impl Strategy for AnyCrash {
    type Value = Crash;
    fn generate(&self, rng: &mut TestRng) -> Crash {
        Crash {
            service: scatter::SERVICE_KINDS[rng.below(5) as usize],
            replica: rng.below(2) as usize,
            at_secs: (4.0..9.0f64).generate(rng),
            recovery_secs: (1.0..3.0f64).generate(rng),
        }
    }
}

/// Replica layouts with room to fail over on at least some services.
fn any_layout() -> impl Strategy<Value = [usize; 5]> {
    prop_oneof![
        Just([1, 2, 1, 1, 1]),
        Just([2, 2, 1, 1, 2]),
        Just([1, 2, 2, 1, 2]),
        Just([2, 2, 2, 2, 2]),
    ]
}

fn resilient_run(
    layout: [usize; 5],
    clients: usize,
    seed: u64,
    crashes: &[Crash],
    with_deadline: bool,
) -> (RunReport, trace::TraceLog) {
    let mut cfg = RunConfig::new(Mode::ScatterPP, placements::replicas(layout), clients)
        .with_duration(SimDuration::from_secs(14))
        .with_warmup(SimDuration::from_secs(1))
        .with_seed(seed)
        .with_trace(TraceConfig::default());
    for c in crashes {
        // Keep the replica index inside the layout.
        let replica = c.replica % layout[c.service.index()];
        cfg = cfg
            .with_failure(SimDuration::from_secs_f64(c.at_secs), c.service, replica)
            .with_recovery(SimDuration::from_secs_f64(c.recovery_secs));
    }
    let mut r = ResilienceConfig::default().with_detection(DetectionConfig::default());
    if with_deadline {
        r = r.with_deadline(DeadlineConfig::default());
    }
    cfg = cfg.with_resilience(r);
    run_experiment_traced(cfg)
}

/// Frame conservation under tracing: span invariants hold and no frame
/// vanished mid-run without a terminal (frames still in flight when the
/// log closes are tolerated only inside the final window).
fn check_attribution(log: &trace::TraceLog) {
    let a = Analysis::from_log(log);
    a.check_invariants().expect("trace invariants");
    let tail_ns = 1_500_000_000u64;
    let horizon = a.end_ns.saturating_sub(tail_ns);
    let stragglers = a
        .frames()
        .filter(|f| {
            matches!(f.fate.1, FrameFate::Dropped(DropReason::RunEnd))
                && f.emitted_ns.unwrap_or(0) < horizon
        })
        .count();
    assert_eq!(stragglers, 0, "frames vanished without a terminal");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The failover invariant: after the detector flags a replica, the
    /// balancer must never hand it another frame — across random crash
    /// schedules, layouts, and client counts, with and without the
    /// client deadline/retry leg.
    #[test]
    fn no_frame_routes_to_a_detected_replica(
        layout in any_layout(),
        clients in 1..4usize,
        seed in 0..1000u64,
        crashes in proptest::collection::vec(AnyCrash, 1..3),
        with_deadline in proptest::bool::ANY,
    ) {
        let (report, log) = resilient_run(layout, clients, seed, &crashes, with_deadline);
        prop_assert_eq!(
            report.resilience.post_detection_misroutes, 0,
            "misroutes with crashes {:?}", crashes
        );
        // Detection fired for crashes that happened (a crash of an
        // already-downed slot can be absorbed), never spuriously more.
        prop_assert!(report.resilience.detections <= crashes.len() as u64);
        check_attribution(&log);
    }

    /// Determinism: the whole resilience plane — detection sweeps,
    /// failover rebinds, deadline retries — replays bit-identically
    /// under an equal seed.
    #[test]
    fn resilient_runs_replay_bit_identically(
        layout in any_layout(),
        seed in 0..1000u64,
        crash in AnyCrash,
    ) {
        let run = || resilient_run(layout, 2, seed, &[crash], true);
        let (a, _) = run();
        let (b, _) = run();
        prop_assert_eq!(a.per_client_fps, b.per_client_fps);
        prop_assert_eq!(a.bytes_on_wire, b.bytes_on_wire);
        prop_assert_eq!(a.resilience.detections, b.resilience.detections);
        prop_assert_eq!(a.resilience.redeploys, b.resilience.redeploys);
        prop_assert_eq!(
            a.resilience.detection_latency_ms,
            b.resilience.detection_latency_ms
        );
        prop_assert_eq!(a.resilience.retries, b.resilience.retries);
        prop_assert_eq!(a.resilience.deadline_expired, b.resilience.deadline_expired);
    }
}

/// Crashing every replica of a service is an outage, not a panic: the
/// drops are counted with an explicit reason and service resumes after
/// the revive.
#[test]
fn full_outage_is_counted_and_survived() {
    let (report, log) = resilient_run(
        [1, 1, 1, 1, 1],
        2,
        7,
        &[Crash {
            service: ServiceKind::Encoding,
            replica: 0,
            at_secs: 6.0,
            recovery_secs: 2.0,
        }],
        false,
    );
    assert_eq!(report.resilience.detections, 1);
    assert_eq!(report.resilience.post_detection_misroutes, 0);
    assert!(
        report.resilience.outage_drops > 0,
        "a single-replica crash must surface as counted outage drops"
    );
    assert!(report.success_rate > 0.3, "the revive never took");
    check_attribution(&log);
    let a = Analysis::from_log(&log);
    assert!(
        a.drop_reasons()
            .get(&DropReason::ServiceOutage)
            .copied()
            .unwrap_or(0)
            > 0,
        "outage drops must carry the ServiceOutage terminal: {:?}",
        a.drop_reasons()
    );
}
