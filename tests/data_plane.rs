//! Data-plane equivalence: the syscall-batched runtime must be
//! behaviourally identical to the legacy single-datagram plane.
//!
//! The batched path changes *how* datagrams cross the kernel boundary
//! (`recvmmsg` sweeps per wakeup; GSO/`sendmmsg` supersends per
//! fragment run) but must not change *what* crosses it: same frames
//! delivered, same drop attribution, same telemetry counters — even
//! under seeded impairment, because the shim's verdict stream is
//! consumed per-datagram in send order on both paths.
//!
//! Determinism note: impairment uses `drop_first` rules (a per-link
//! datagram counter, not an RNG draw), so the verdict for every
//! datagram depends only on its position in its link's stream — which
//! the batched sender preserves. Pacing is slow and the drain long so
//! the single-core debug-build scheduler can't starve a stage.

use scatter::runtime::deploy::{run_local, LocalDeployment, RuntimeOptions, RuntimeReport};
use scatter::runtime::impair::{Ep, ImpairmentProfile, LinkImpairment, LinkRule};
use scatter::ServiceKind;
use std::time::Duration;

fn impaired(batch: bool, shards: usize) -> RuntimeOptions {
    RuntimeOptions {
        clients: 2,
        frames: 4,
        fps: 2.0,
        seed: 11,
        drain: Duration::from_millis(4000),
        // Bite exactly one link (the uplink): a frame with a missing
        // fragment dies in reassembly; every later frame completes.
        impair: Some(ImpairmentProfile::new(41).with_rule(LinkRule::between(
            Ep::Client,
            Ep::Svc(ServiceKind::Primary),
            LinkImpairment::drop_first(2),
        ))),
        batch,
        shards,
        ..Default::default()
    }
}

/// Everything the two planes must agree on, in one comparable bundle.
fn fingerprint(r: &RuntimeReport) -> Vec<(&'static str, u64)> {
    let mut v = vec![
        ("emitted", r.emitted as u64),
        ("completed", r.completed as u64),
        ("net_drops", r.net_drops),
        ("fragment_drops", r.fragment_drops),
        ("malformed", r.malformed_datagrams),
        ("io_errors", r.io_errors),
        ("crash_drops", r.crash_drops),
        ("busy_drops", r.busy_drops),
        ("hb_send_errors", r.hb_send_errors),
        ("delay_send_errors", r.delay_send_errors),
    ];
    for (i, c) in r.per_client_completed.iter().enumerate() {
        v.push((if i == 0 { "client0" } else { "client1" }, *c as u64));
    }
    for (kind, rx, px, stale) in &r.service_counts {
        let _ = kind;
        v.push(("svc_rx", *rx));
        v.push(("svc_px", *px));
        v.push(("svc_stale", *stale));
    }
    v
}

#[test]
fn batched_plane_is_equivalent_to_single_datagram_plane() {
    let legacy = run_local(impaired(false, 1));
    let batched = run_local(impaired(true, 1));
    let sharded = run_local(impaired(true, 3));
    assert_eq!(
        fingerprint(&legacy),
        fingerprint(&batched),
        "batched plane diverged from the single-datagram plane"
    );
    // Shim verdicts are drawn at the *send* site, before shard
    // steering, so sharding must not change delivery or attribution
    // either. (Recognition contents are compared only on the
    // shards=1 pair: shards>0 get distinct per-shard compute-RNG
    // streams by construction, like per-replica seeds.)
    assert_eq!(
        fingerprint(&legacy),
        fingerprint(&sharded),
        "sharded+batched plane diverged from the single-datagram plane"
    );
    assert_eq!(
        legacy.recognitions, batched.recognitions,
        "recognized-object sets must match"
    );
    // The impairment actually bit (the equality above wasn't vacuous).
    assert!(
        legacy.net_drops + legacy.fragment_drops > 0,
        "seeded impairment dropped nothing; test lost its teeth"
    );
    assert!(legacy.completed >= 1, "nothing completed at all");
}

/// Sharded ingress on pristine loopback: the kernel steers each
/// client's 4-tuple to one `SO_REUSEPORT` shard, and every frame must
/// still complete — no frame may fall between shards.
#[test]
#[cfg(target_os = "linux")]
fn sharded_plane_conserves_frames() {
    if !scatter::runtime::batch::batch_available() {
        eprintln!("no batched syscalls here; skipping sharded conservation");
        return;
    }
    let report = run_local(RuntimeOptions {
        clients: 3,
        frames: 4,
        fps: 2.5,
        seed: 5,
        drain: Duration::from_millis(4000),
        shards: 3,
        batch: true,
        ..Default::default()
    });
    assert_eq!(
        report.completed, report.emitted,
        "pristine loopback must complete every frame: {report:?}"
    );
    assert_eq!(report.io_errors, 0);
    assert_eq!(report.malformed_datagrams, 0);
}

/// The send-failure counters (previously `let _ =` discarded) must be
/// surfaced end to end: report fields zero on pristine loopback, and
/// both gauges present in a live scrape.
#[test]
fn send_error_counters_are_surfaced() {
    let registry = telemetry::Registry::new();
    let dep = LocalDeployment::start(RuntimeOptions {
        frames: 3,
        fps: 3.0,
        drain: Duration::from_millis(2000),
        registry: Some(registry.clone()),
        detection: Some(scatter::resilience::DetectionConfig::default()),
        ..Default::default()
    });
    let report = dep.run_client();
    let scrape = dep.scrape().expect("registry attached");
    drop(dep.shutdown());
    assert!(
        scrape.contains("scatter_hb_send_errors"),
        "hb send-error gauge missing from scrape"
    );
    assert!(
        scrape.contains("scatter_delay_send_errors"),
        "delay send-error gauge missing from scrape"
    );
    assert_eq!(report.hb_send_errors, 0, "loopback hb sends must succeed");
    assert_eq!(report.delay_send_errors, 0);
}
