//! Property-based invariants over randomized experiment configurations:
//! whatever the mode, placement, load, or network conditions, certain
//! conservation laws must hold or the simulation is lying.

use proptest::prelude::*;
use scatter::config::{placements, RunConfig};
use scatter::{run_experiment, Mode, RunReport, ServiceKind};
use simcore::SimDuration;
use simnet::NetemProfile;

fn any_mode() -> impl Strategy<Value = Mode> {
    prop_oneof![
        Just(Mode::Scatter),
        Just(Mode::ScatterPP),
        Just(Mode::StatelessOnly),
        Just(Mode::SidecarOnly),
    ]
}

fn any_placement() -> impl Strategy<Value = orchestra::PlacementSpec> {
    prop_oneof![
        Just(placements::c1()),
        Just(placements::c2()),
        Just(placements::c12()),
        Just(placements::c21()),
        Just(placements::cloud_only()),
        Just(placements::replicas([1, 2, 1, 1, 2])),
    ]
}

fn short_run(
    mode: Mode,
    placement: orchestra::PlacementSpec,
    clients: usize,
    seed: u64,
) -> RunReport {
    run_experiment(
        RunConfig::new(mode, placement, clients)
            .with_duration(SimDuration::from_secs(8))
            .with_warmup(SimDuration::from_secs(1))
            .with_seed(seed),
    )
}

/// Frame conservation per stage: a stage cannot process more frames than
/// arrived at it, and arrivals − drops bounds processing (fetch-loop
/// executions at matching are gated by arrivals too).
fn check_conservation(r: &RunReport) {
    for svc in &r.services {
        let arrivals = svc
            .ingress
            .window_count(simcore::SimTime::ZERO, r.measure_end) as u64;
        assert!(
            svc.processed <= arrivals,
            "{:?}/{} processed {} > arrivals {arrivals}",
            svc.kind,
            svc.replica,
            svc.processed
        );
        assert!(
            svc.drops.total() <= arrivals,
            "{:?} drops {} > arrivals {arrivals}",
            svc.kind,
            svc.drops.total()
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn conservation_laws_hold(
        mode in any_mode(),
        placement in any_placement(),
        clients in 1usize..5,
        seed in 0u64..1000,
    ) {
        let r = short_run(mode, placement, clients, seed);
        check_conservation(&r);
        // Client-side conservation.
        prop_assert!(r.success_rate >= 0.0 && r.success_rate <= 1.0);
        prop_assert!(r.e2e_ms.len() as f64 >= r.fps() * 0.0); // e2e recorded for completions
        // Completions can never exceed what matching produced.
        let matched: u64 = r
            .services
            .iter()
            .filter(|s| s.kind == ServiceKind::Matching)
            .map(|s| s.processed)
            .sum();
        prop_assert!(
            r.e2e_ms.len() as u64 <= matched,
            "completions {} > matching outputs {matched}",
            r.e2e_ms.len()
        );
    }

    #[test]
    fn latencies_are_physical(
        mode in any_mode(),
        clients in 1usize..4,
        seed in 0u64..1000,
    ) {
        let r = short_run(mode, placements::c2(), clients, seed);
        for &s in r.e2e_ms.samples() {
            // A frame cannot complete faster than the sum of base compute
            // (no-jitter lower bound ≈ 23 ms at the E2's 0.8×) plus two
            // client-link crossings; nor slower than the run itself.
            prop_assert!(s > 15.0, "impossible E2E {s} ms");
            prop_assert!(s < 8_000.0, "E2E {s} ms exceeds the run length");
        }
        for kind in scatter::SERVICE_KINDS {
            let lat = r.service_latency_ms(kind);
            if !lat.is_empty() {
                prop_assert!(lat.min() > 0.0, "{kind:?} zero-time execution");
            }
        }
    }

    #[test]
    fn netem_only_redistributes_outcomes(
        rtt in 1.0f64..50.0,
        loss in 0.0f64..0.001,
        seed in 0u64..100,
    ) {
        let r = run_experiment(
            RunConfig::new(Mode::Scatter, placements::c2(), 2)
                .with_netem(NetemProfile::new("prop", rtt, loss))
                .with_duration(SimDuration::from_secs(8))
                .with_warmup(SimDuration::from_secs(1))
                .with_seed(seed),
        );
        check_conservation(&r);
        prop_assert!(r.success_rate <= 1.0);
        // E2E of completed frames reflects at least the injected RTT.
        if !r.e2e_ms.is_empty() {
            prop_assert!(
                r.e2e_ms.min() + 1.0 >= rtt,
                "E2E {} below injected RTT {rtt}",
                r.e2e_ms.min()
            );
        }
    }

    #[test]
    fn gpu_utilization_bounded(
        mode in any_mode(),
        clients in 1usize..6,
        seed in 0u64..100,
    ) {
        let r = short_run(mode, placements::c1(), clients, seed);
        for m in &r.machines {
            prop_assert!(m.gpu_pct >= 0.0 && m.gpu_pct <= 100.5, "{}: {}%", m.name, m.gpu_pct);
            prop_assert!(m.cpu_pct >= 0.0 && m.cpu_pct <= 100.5);
            prop_assert!(m.mean_memory_gb >= 0.0);
        }
    }
}
