//! Parallel-vs-sequential determinism: whatever `SCATTER_JOBS` says and
//! whatever the point mix, the parallel experiment harness must produce
//! reports (and rendered `--json` tables) **byte-identical** to
//! sequential, cache-off execution. This is the property that lets the
//! figure suite fan out across cores without ever changing a published
//! number — see DESIGN.md §9.
//!
//! Env-var note: the knobs are process-global, so every test in this
//! binary serializes on one lock.

use std::sync::Mutex;

use experiments::common::{clear_run_cache, run_many};
use proptest::prelude::*;
use scatter::Mode;

static ENV_LOCK: Mutex<()> = Mutex::new(());

fn set_env(jobs: usize, cache: bool) {
    std::env::set_var("SCATTER_EXP_SECS", "6");
    std::env::set_var("SCATTER_JOBS", jobs.to_string());
    std::env::set_var("SCATTER_RUN_CACHE", if cache { "1" } else { "0" });
    clear_run_cache();
}

fn placement_for(idx: usize) -> orchestra::PlacementSpec {
    use scatter::config::placements;
    match idx {
        0 => placements::c1(),
        1 => placements::c2(),
        2 => placements::c12(),
        _ => placements::c21(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Randomized mode/placement/clients/jobs: the merged reports of the
    /// parallel cached runner equal the sequential uncached ones, field
    /// for field (compared through their full `Debug` rendering).
    #[test]
    fn parallel_reports_match_sequential(
        pp in 0usize..2,
        place_idx in 0usize..4,
        max_clients in 1usize..4,
        jobs in 2usize..6,
    ) {
        let _guard = ENV_LOCK.lock().unwrap();
        let mode = if pp == 1 { Mode::ScatterPP } else { Mode::Scatter };
        // A small sweep, including a deliberate duplicate point so the
        // cache path is exercised inside the batch.
        let mut points: Vec<_> = (1..=max_clients)
            .map(|n| (mode, placement_for(place_idx), n))
            .collect();
        points.push(points[0].clone());

        set_env(1, false);
        let seq: Vec<String> = run_many(&points).iter().map(|r| format!("{r:?}")).collect();

        set_env(jobs, true);
        let par: Vec<String> = run_many(&points).iter().map(|r| format!("{r:?}")).collect();

        prop_assert_eq!(&seq, &par, "jobs={} must not change reports", jobs);
        // The duplicate point's report equals its original byte for byte.
        let last = seq.len() - 1;
        prop_assert_eq!(&par[0], &par[last]);
    }
}

/// A real figure module's `--json` artifact is jobs-invariant byte for
/// byte (fig. 4 is the cheapest module that runs a parallel batch).
#[test]
fn figure_json_is_jobs_invariant() {
    let _guard = ENV_LOCK.lock().unwrap();

    set_env(1, false);
    let seq: Vec<String> = experiments::fig4_cloud::run_figure()
        .iter()
        .map(|t| t.render_json())
        .collect();

    for jobs in [2, 4] {
        set_env(jobs, true);
        let par: Vec<String> = experiments::fig4_cloud::run_figure()
            .iter()
            .map(|t| t.render_json())
            .collect();
        assert_eq!(seq, par, "fig4 --json must be identical at jobs={jobs}");
    }
}
