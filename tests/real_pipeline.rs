//! Integration: the real-UDP runtime agrees with the in-process vision
//! pipeline, end to end.

use scatter::runtime::deploy::{run_local, RuntimeOptions};
use simcore::SimRng;
use vision::db::TrainParams;
use vision::scene::SceneGenerator;
use vision::ReferenceDb;

#[test]
fn loopback_results_match_direct_recognition() {
    // What the distributed pipeline recognizes over real sockets must be
    // consistent with recognizing the same frames in-process.
    let report = run_local(RuntimeOptions {
        frames: 6,
        fps: 6.0,
        seed: 7,
        ..Default::default()
    });
    assert!(report.completed >= 3, "completed {}/6", report.completed);

    let scene = SceneGenerator::workplace_scaled(7, 256, 144);
    let mut rng = SimRng::new(7);
    let db = ReferenceDb::train(&scene, TrainParams::default(), &mut rng);
    let mut direct_names = std::collections::HashSet::new();
    for idx in 0..6 {
        for rec in db.recognize(&scene.frame(idx), &mut rng) {
            direct_names.insert(rec.name);
        }
    }
    // Note: the runtime's primary stage downsizes frames (dimension
    // reduction), so it may see fewer objects than the direct full-size
    // pass — but everything it reports must be a real scene object.
    for name in report.recognitions.keys() {
        assert!(
            ["table", "monitor", "keyboard"].contains(&name.as_str()),
            "runtime hallucinated object {name}"
        );
    }
    assert!(
        !report.recognitions.is_empty(),
        "runtime recognized nothing; direct pass saw {direct_names:?}"
    );
}

#[test]
fn runtime_statistics_are_consistent() {
    let report = run_local(RuntimeOptions {
        frames: 5,
        fps: 5.0,
        ..Default::default()
    });
    // Conservation: later stages cannot process more than earlier ones
    // produced.
    let processed: Vec<u64> = report
        .service_counts
        .iter()
        .map(|(_, _, p, _)| *p)
        .collect();
    for w in processed.windows(2) {
        assert!(w[1] <= w[0], "stage conservation violated: {processed:?}");
    }
    assert!(report.completed as u64 <= processed[4]);
    assert!(report.success_rate() <= 1.0);
}
