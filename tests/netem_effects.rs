//! Integration: network-condition effects (fig. 9 mechanics) across
//! simnet and the pipeline.

use scatter::config::{placements, RunConfig};
use scatter::{run_experiment, Mode, RunReport};
use simcore::SimDuration;
use simnet::NetemProfile;

fn run_with(profile: NetemProfile, mode: Mode, clients: usize) -> RunReport {
    run_experiment(
        RunConfig::new(mode, placements::c2(), clients)
            .with_netem(profile)
            .with_duration(SimDuration::from_secs(20))
            .with_warmup(SimDuration::from_secs(3))
            .with_seed(31),
    )
}

#[test]
fn loss_reduces_success_not_latency() {
    let clean = run_with(NetemProfile::new("clean", 1.0, 1e-7), Mode::Scatter, 1);
    let lossy = run_with(NetemProfile::new("lossy", 1.0, 8e-4), Mode::Scatter, 1);
    assert!(
        lossy.success_rate < clean.success_rate - 0.03,
        "loss must cost frames: {:.2} vs {:.2}",
        lossy.success_rate,
        clean.success_rate
    );
    // Surviving frames pay no extra latency.
    assert!(
        (lossy.e2e_mean_ms() - clean.e2e_mean_ms()).abs() < 8.0,
        "loss should not shift E2E: {:.1} vs {:.1}",
        lossy.e2e_mean_ms(),
        clean.e2e_mean_ms()
    );
}

#[test]
fn latency_shifts_e2e_roughly_linearly() {
    let e2e: Vec<f64> = [1.0, 5.0, 10.0, 40.0]
        .iter()
        .map(|&rtt| run_with(NetemProfile::new("rtt", rtt, 1e-7), Mode::Scatter, 1).e2e_mean_ms())
        .collect();
    for w in e2e.windows(2) {
        assert!(w[1] > w[0], "E2E must grow with RTT: {e2e:?}");
    }
    let added = e2e[3] - e2e[0];
    assert!(
        (29.0..=50.0).contains(&added),
        "40 ms RTT should add ≈39 ms one-way+return: added {added:.1}"
    );
}

#[test]
fn latency_does_not_collapse_scatter_fps() {
    // scAtteR has no staleness threshold, so late frames still complete.
    let fast = run_with(NetemProfile::new("fast", 1.0, 1e-7), Mode::Scatter, 1);
    let slow = run_with(NetemProfile::new("slow", 40.0, 1e-7), Mode::Scatter, 1);
    assert!(
        slow.fps() > fast.fps() * 0.8,
        "latency alone collapsed FPS: {:.1} vs {:.1}",
        slow.fps(),
        fast.fps()
    );
}

#[test]
fn scatterpp_sheds_late_frames_under_high_rtt() {
    // With the 100 ms budget, a 40 ms access RTT plus queueing pushes
    // frames over threshold → scAtteR++ trades completions for freshness.
    let pp_fast = run_with(NetemProfile::new("fast", 1.0, 1e-7), Mode::ScatterPP, 4);
    let pp_slow = run_with(NetemProfile::new("slow", 40.0, 1e-7), Mode::ScatterPP, 4);
    // At 4 clients the pipeline is already throttled, so added RTT
    // re-selects which frames complete rather than adding many more
    // losses — completions must not *improve*.
    assert!(
        pp_slow.fps() <= pp_fast.fps() * 1.05,
        "RTT must not improve scAtteR++ completions: {:.1} vs {:.1}",
        pp_slow.fps(),
        pp_fast.fps()
    );
    let mut slow_e2e = pp_slow.e2e_ms.clone();
    assert!(
        slow_e2e.median() <= 110.0,
        "completed frames still honour the budget: {:.1}",
        slow_e2e.median()
    );
}

#[test]
fn mobility_oscillation_raises_jitter() {
    let steady = run_with(NetemProfile::new("steady", 10.0, 1e-7), Mode::Scatter, 1);
    let mobile = run_with(
        NetemProfile::new("mobile", 10.0, 1e-7).with_mobility(),
        Mode::Scatter,
        1,
    );
    assert!(
        mobile.jitter_ms > steady.jitter_ms * 1.3,
        "oscillation should show as jitter: {:.2} vs {:.2}",
        mobile.jitter_ms,
        steady.jitter_ms
    );
}

#[test]
fn bigger_stateless_frames_lose_more_on_lossy_links() {
    // Per-fragment loss compounds with datagram size: the 480 KB frames
    // of scAtteR++ are more exposed than scAtteR's 180 KB on the same
    // internal lossy path. Exercise via the LTE access profile where the
    // client uplink is the lossy hop for both (same size there), then
    // check total datagram losses — scAtteR++ moves more fragments end
    // to end, so it must record at least as many losses.
    let s = run_with(NetemProfile::lte(), Mode::Scatter, 1);
    let pp = run_with(NetemProfile::lte(), Mode::ScatterPP, 1);
    assert!(s.datagrams_lost > 0);
    assert!(
        pp.bytes_on_wire > s.bytes_on_wire,
        "stateless frames carry more bytes"
    );
}
