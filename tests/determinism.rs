//! Integration: every experiment is bit-for-bit reproducible from its
//! seed — the property the whole reproduction methodology rests on.

use scatter::config::{placements, RunConfig};
use scatter::{run_experiment, Mode, RunReport};
use simcore::SimDuration;
use simnet::NetemProfile;

fn cfg(seed: u64) -> RunConfig {
    RunConfig::new(Mode::ScatterPP, placements::c12(), 3)
        .with_duration(SimDuration::from_secs(15))
        .with_seed(seed)
}

fn fingerprint(r: &RunReport) -> (Vec<u64>, u64, u64, usize) {
    (
        r.per_client_fps.iter().map(|f| f.to_bits()).collect(),
        r.bytes_on_wire,
        r.datagrams_lost,
        r.e2e_ms.len(),
    )
}

#[test]
fn same_seed_identical_everything() {
    let a = run_experiment(cfg(77));
    let b = run_experiment(cfg(77));
    assert_eq!(fingerprint(&a), fingerprint(&b));
    assert_eq!(a.e2e_ms.samples(), b.e2e_ms.samples());
    for (sa, sb) in a.services.iter().zip(&b.services) {
        assert_eq!(sa.processed, sb.processed);
        assert_eq!(sa.drops.total(), sb.drops.total());
        assert_eq!(sa.fetch_served, sb.fetch_served);
    }
    for (ma, mb) in a.machines.iter().zip(&b.machines) {
        assert_eq!(ma.cpu_pct.to_bits(), mb.cpu_pct.to_bits());
        assert_eq!(ma.gpu_pct.to_bits(), mb.gpu_pct.to_bits());
    }
}

#[test]
fn different_seed_different_run() {
    let a = run_experiment(cfg(77));
    let b = run_experiment(cfg(78));
    assert_ne!(a.e2e_ms.samples(), b.e2e_ms.samples());
}

#[test]
fn netem_runs_are_reproducible() {
    let mk = || {
        run_experiment(
            RunConfig::new(Mode::Scatter, placements::c2(), 2)
                .with_netem(NetemProfile::lte().with_mobility())
                .with_duration(SimDuration::from_secs(15))
                .with_seed(5),
        )
    };
    let a = mk();
    let b = mk();
    assert_eq!(fingerprint(&a), fingerprint(&b));
    assert!(a.datagrams_lost > 0, "LTE profile should lose datagrams");
}

#[test]
fn seed_changes_workload_phase_not_shape() {
    // Different seeds shift stochastic details, but the qualitative
    // outcome (a healthy single-client run) is stable.
    for seed in [1, 2, 3, 4, 5] {
        let r = run_experiment(
            RunConfig::new(Mode::Scatter, placements::c1(), 1)
                .with_duration(SimDuration::from_secs(15))
                .with_seed(seed),
        );
        assert!(
            r.fps() > 20.0 && r.success_rate > 0.6,
            "seed {seed} broke the single-client anchor: {:.1} FPS, {:.0}%",
            r.fps(),
            r.success_rate * 100.0
        );
    }
}
