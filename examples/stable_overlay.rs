//! Scenario: augmentation stability — why FPS is a QoE proxy.
//!
//! The paper: "the [FPS] metric encapsulates augmentation stability and,
//! therefore, directly correlates to end-user experience." This example
//! makes that correlation concrete with the real CV stack: it measures
//! the overlay *shimmer* (RMS frame-to-frame corner motion of a static
//! object) and the freeze behaviour, raw vs temporally filtered, at full
//! frame rate and under simulated frame drops.
//!
//! ```sh
//! cargo run --release --example stable_overlay
//! ```

use simcore::SimRng;
use vision::db::TrainParams;
use vision::pose_filter::{pose_rms, PoseFilter};
use vision::scene::SceneGenerator;
use vision::tracking::TrackTable;
use vision::ReferenceDb;

fn main() {
    let scene = SceneGenerator::workplace_scaled(1, 320, 180);
    let mut rng = SimRng::new(42);
    println!("training recognizer...");
    let db = ReferenceDb::train(&scene, TrainParams::default(), &mut rng);

    // Recognize the table across 60 frames; compare raw vs filtered
    // shimmer, at full rate and with every 3rd frame "delivered".
    for (label, keep_every) in [("full 30 FPS", 1u32), ("dropped to 10 FPS", 3)] {
        let mut tracks = TrackTable::new();
        let mut filter: Option<PoseFilter> = None;
        let (mut raw_prev, mut filt_prev) = (None, None);
        let (mut raw_shimmer, mut filt_shimmer, mut n) = (0.0, 0.0, 0);
        for frame_no in 0..60u32 {
            if frame_no % keep_every != 0 {
                continue; // frame dropped by the pipeline
            }
            let recs = db.recognize(&scene.frame(frame_no), &mut rng);
            let Some(rec) = recs.iter().find(|r| r.name == "table") else {
                continue;
            };
            let obs = vec![(rec.name.clone(), rec.pose.clone())];
            tracks.observe(frame_no as u64, &obs);
            let f = filter.get_or_insert_with(PoseFilter::new);
            let smoothed = f.update(frame_no as u64, &rec.pose);
            if let (Some(rp), Some(fp)) = (&raw_prev, &filt_prev) {
                raw_shimmer += pose_rms(&rec.pose, rp);
                filt_shimmer += pose_rms(&smoothed, fp);
                n += 1;
            }
            raw_prev = Some(rec.pose.clone());
            filt_prev = Some(smoothed);
        }
        if n > 0 {
            println!(
                "\n{label}: overlay shimmer over {n} deliveries\n  raw poses:      {:.2} px/frame\n  pose-filtered:  {:.2} px/frame  ({:.0}% calmer)",
                raw_shimmer / n as f64,
                filt_shimmer / n as f64,
                (1.0 - filt_shimmer / raw_shimmer) * 100.0
            );
        }
        println!(
            "  track stability: {:.2} (1.0 = observed every delivered frame)",
            tracks.stability()
        );
    }

    println!("\ntakeaway: the filter hides isolated drops, but sustained low FPS");
    println!("(the scAtteR regime at 4 clients) starves it — augmentation freezes.");
    println!("That is the QoS→QoE link behind the paper's FPS metric.");
}
