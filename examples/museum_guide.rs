//! Scenario: a museum AR guide.
//!
//! Visitors point their phones at exhibits; a shared edge deployment
//! overlays object annotations. The operator's question: *how many
//! concurrent visitors can one edge cluster serve at acceptable quality,
//! and which pipeline/replication should they deploy?*
//!
//! This example sweeps visitor counts over three candidate deployments
//! and prints a capacity table with a per-deployment verdict against the
//! target QoS (≥15 FPS, E2E ≤ 100 ms, ≥70 % frames analyzed).
//!
//! ```sh
//! cargo run --release --example museum_guide
//! ```

use scatter::config::placements;
use scatter::{run_experiment, Mode, RunConfig};
use simcore::SimDuration;

const TARGET_FPS: f64 = 15.0;
const TARGET_E2E_MS: f64 = 100.0;
const TARGET_SUCCESS: f64 = 0.70;

fn acceptable(r: &scatter::RunReport) -> bool {
    r.fps() >= TARGET_FPS && r.e2e_mean_ms() <= TARGET_E2E_MS && r.success_rate >= TARGET_SUCCESS
}

fn main() {
    let deployments: Vec<(&str, Mode, orchestra::PlacementSpec)> = vec![
        ("scAtteR, single edge (C2)", Mode::Scatter, placements::c2()),
        (
            "scAtteR++, single edge (C2)",
            Mode::ScatterPP,
            placements::c2(),
        ),
        (
            "scAtteR++, scaled [1,3,2,1,3]",
            Mode::ScatterPP,
            placements::replicas([1, 3, 2, 1, 3]),
        ),
    ];

    println!("museum AR guide capacity planning");
    println!(
        "target QoS: ≥{TARGET_FPS} FPS, ≤{TARGET_E2E_MS:.0} ms E2E, ≥{:.0}% analyzed\n",
        TARGET_SUCCESS * 100.0
    );
    println!(
        "{:<32} {:>8} {:>8} {:>8} {:>10}",
        "deployment", "visitors", "FPS", "E2E ms", "verdict"
    );

    for (label, mode, placement) in deployments {
        let mut capacity = 0;
        for visitors in 1..=10 {
            let cfg = RunConfig::new(mode, placement.clone(), visitors)
                .with_duration(SimDuration::from_secs(30))
                .with_seed(2023);
            let r = run_experiment(cfg);
            let ok = acceptable(&r);
            if ok {
                capacity = visitors;
            }
            println!(
                "{:<32} {:>8} {:>8.1} {:>8.1} {:>10}",
                label,
                visitors,
                r.fps(),
                r.e2e_mean_ms(),
                if ok { "OK" } else { "degraded" }
            );
            // Stop sweeping once two consecutive counts fail.
            if !ok && visitors > capacity + 1 {
                break;
            }
        }
        println!(
            "{:<32} → serves up to {} visitors at target QoS\n",
            label, capacity
        );
    }

    println!("(the paper's §5 takeaway: statelessness + sidecar queues ≈2.75× visitor capacity)");
}
