//! Scenario: orchestrator-driven placement, scale-out, and self-healing.
//!
//! Walks the Oakestra-style control plane that the experiments rely on:
//! SLA-constrained placement onto the heterogeneous testbed, replica
//! scale-out with sticky vs round-robin balancing, a simulated service
//! crash, and automatic re-deployment — then shows the QoS effect of a
//! placement decision end-to-end.
//!
//! ```sh
//! cargo run --release --example orchestrated_failover
//! ```

use orchestra::{Balancer, BalancerKind, Cluster, PlacementSpec, ServiceSla};
use scatter::config::placements;
use scatter::{run_experiment, Mode, RunConfig, SERVICE_NAMES};
use simcore::SimDuration;
use simnet::Testbed;

fn main() {
    let (_, tb) = Testbed::build();
    let mut cluster = Cluster::testbed(tb.e1, tb.e2, tb.cloud);

    // --- SLA-constrained placement ----------------------------------
    let slas: Vec<ServiceSla> = SERVICE_NAMES
        .iter()
        .map(|name| ServiceSla::new(name, 0.5, 2.0, *name != "primary"))
        .collect();
    let placement = PlacementSpec::replicated(&[
        ("primary", &["E2"]),
        ("sift", &["E2", "E1"]),
        ("encoding", &["E2"]),
        ("lsh", &["E2"]),
        ("matching", &["E2", "E1"]),
    ]);
    println!("deploying scAtteR with SLA constraints (GPU required for all but primary)...");
    let deployed = cluster
        .deploy_placement(&slas, &placement)
        .expect("deploys");
    for (service, ids) in &deployed {
        let machines: Vec<_> = ids
            .iter()
            .map(|id| cluster.machine_of(*id).name.clone())
            .collect();
        println!("  {service:<9} → {machines:?}");
    }

    // The GPU constraint in action: nothing GPU-bound lands on the NUCs.
    let mut nuc_cluster = Cluster::new(vec![orchestra::MachineSpec::client_host(tb.client_host)]);
    let err = nuc_cluster
        .deploy_on(&slas[1], "client-host")
        .expect_err("sift must not fit on a GPU-less machine");
    println!("\nSLA rejection works: {err}");

    // --- Balancing: sticky state vs round-robin ---------------------
    let mut rr = Balancer::new(BalancerKind::RoundRobin, 2);
    let mut sticky = Balancer::new(BalancerKind::StickyByFlow, 2);
    let rr_picks: Vec<_> = (0..6).map(|_| rr.pick(7)).collect();
    let sticky_picks: Vec<_> = (0..6).map(|_| sticky.pick(7)).collect();
    println!("\nround-robin spreads one client's fetches: {rr_picks:?}");
    println!("sticky state pins them to one replica:    {sticky_picks:?}");
    println!("(the paper: 'frames balanced across sift instances remain tied to that replica')");

    // --- Failure and self-healing -----------------------------------
    let sift_replicas = cluster.replicas_of("sift");
    println!("\nsift replicas before crash: {}", sift_replicas.len());
    cluster.fail_instance(sift_replicas[0]);
    println!(
        "sift replicas after crash:  {}",
        cluster.replicas_of("sift").len()
    );
    let healed = cluster.redeploy_failed(&slas);
    println!(
        "orchestrator re-deployed {} instance(s); sift replicas now: {}",
        healed.len(),
        cluster.replicas_of("sift").len()
    );

    // --- The QoS consequence of placement ---------------------------
    println!("\nQoS effect of the placement decision (4 clients, scAtteR++):");
    for (label, placement) in [
        ("all on E1 (C1)", placements::c1()),
        ("split C12", placements::c12()),
    ] {
        let r = run_experiment(
            RunConfig::new(Mode::ScatterPP, placement, 4).with_duration(SimDuration::from_secs(30)),
        );
        println!(
            "  {label:<16} {:.1} FPS/client, E2E {:.1} ms",
            r.fps(),
            r.e2e_mean_ms()
        );
    }
    println!("\n(splitting sift away from the rest relieves GPU contention — fig. 6's C12 win)");
}
