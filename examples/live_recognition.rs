//! Scenario: watch the real CV substrate track objects across a video.
//!
//! Trains the recognition database on the synthetic workplace scene,
//! replays the camera-drift video, and renders each frame's recognized
//! bounding boxes as ASCII art — the augmentation scAtteR returns to its
//! clients, minus the phone screen.
//!
//! ```sh
//! cargo run --release --example live_recognition
//! ```

use simcore::SimRng;
use vision::db::TrainParams;
use vision::scene::SceneGenerator;
use vision::ReferenceDb;

const W: usize = 320;
const H: usize = 180;
/// ASCII canvas size.
const CW: usize = 96;
const CH: usize = 28;

fn main() {
    println!("training reference database on the workplace scene ({W}x{H})...");
    let scene = SceneGenerator::workplace_scaled(1, W, H);
    let mut rng = SimRng::new(42);
    let db = ReferenceDb::train(&scene, TrainParams::default(), &mut rng);
    for obj in db.objects() {
        println!(
            "  trained '{}' with {} descriptors",
            obj.name,
            obj.descriptors.len()
        );
    }

    for frame_idx in [0u32, 45, 90, 135] {
        let frame = scene.frame(frame_idx);
        let recs = db.recognize(&frame, &mut rng);
        println!(
            "\nframe {frame_idx:3} (t = {:.1} s): {} object(s) recognized",
            frame_idx as f64 / 30.0,
            recs.len()
        );

        // Render the frame intensity + box outlines as ASCII.
        let mut canvas = vec![vec![' '; CW]; CH];
        for (cy, row) in canvas.iter_mut().enumerate() {
            for (cx, cell) in row.iter_mut().enumerate() {
                let v = frame.sample_bilinear(
                    cx as f32 / CW as f32 * W as f32,
                    cy as f32 / CH as f32 * H as f32,
                );
                *cell = match (v * 5.0) as u32 {
                    0 => ' ',
                    1 => '.',
                    2 => ':',
                    3 => 'o',
                    _ => '#',
                };
            }
        }
        for rec in &recs {
            let tag = rec.name.chars().next().unwrap_or('?').to_ascii_uppercase();
            // Draw the projected quadrilateral edges.
            for i in 0..4 {
                let (x0, y0) = rec.pose.corners[i];
                let (x1, y1) = rec.pose.corners[(i + 1) % 4];
                let steps = 60;
                for s in 0..=steps {
                    let t = s as f64 / steps as f64;
                    let x = x0 + (x1 - x0) * t;
                    let y = y0 + (y1 - y0) * t;
                    let cx = (x / W as f64 * CW as f64) as isize;
                    let cy = (y / H as f64 * CH as f64) as isize;
                    if (0..CW as isize).contains(&cx) && (0..CH as isize).contains(&cy) {
                        canvas[cy as usize][cx as usize] = tag;
                    }
                }
            }
            println!(
                "  {}: {} inliers, corners ({:.0},{:.0})..({:.0},{:.0})",
                rec.name,
                rec.pose.inlier_count,
                rec.pose.corners[0].0,
                rec.pose.corners[0].1,
                rec.pose.corners[2].0,
                rec.pose.corners[2].1,
            );
        }
        println!("  +{}+", "-".repeat(CW));
        for row in canvas {
            println!("  |{}|", row.into_iter().collect::<String>());
        }
        println!("  +{}+", "-".repeat(CW));
    }
    println!("\n(boxes are drawn with the object's initial: M = monitor, K = keyboard, T = table)");
}
