//! Quickstart: the two ways to run scAtteR.
//!
//! 1. **Simulated testbed** — reproduce a paper-style measurement in
//!    milliseconds: deploy scAtteR and scAtteR++ on the simulated
//!    edge-cloud testbed and compare their QoS under load.
//! 2. **Real pipeline** — run the five services as actual threads on
//!    loopback UDP with real computer vision, and watch bounding boxes
//!    come back.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use scatter::config::placements;
use scatter::runtime::{self, RuntimeOptions};
use scatter::{run_experiment, Mode, RunConfig};
use simcore::SimDuration;

fn main() {
    // --- 1. Simulated testbed --------------------------------------
    println!("deploying on the simulated edge testbed (4 clients, C1)...\n");
    for mode in [Mode::Scatter, Mode::ScatterPP] {
        let cfg = RunConfig::new(mode, placements::c1(), 4)
            .with_duration(SimDuration::from_secs(30))
            .with_seed(42);
        let report = run_experiment(cfg);
        println!(
            "  {:?}: {:.1} FPS/client, E2E {:.1} ms, success {:.0}%",
            mode,
            report.fps(),
            report.e2e_mean_ms(),
            report.success_rate * 100.0
        );
    }
    println!("\n  (scAtteR++'s stateless sift + sidecar queues ≈ double the frame rate)\n");

    // --- 2. Real pipeline over loopback UDP -------------------------
    println!("running the REAL pipeline: 5 service threads, loopback UDP, real CV...\n");
    let report = runtime::deploy::run_local(RuntimeOptions {
        frames: 12,
        fps: 10.0,
        ..Default::default()
    });
    println!(
        "  {}/{} frames analyzed end-to-end, mean E2E {:.1} ms",
        report.completed, report.emitted, report.mean_e2e_ms
    );
    for (name, count) in &report.recognitions {
        println!("  recognized '{name}' in {count} frames");
    }
    println!("\nNext: `cargo run --release -p experiments --bin all` regenerates every figure.");
}
