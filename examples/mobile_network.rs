//! Scenario: wireless AR glasses on mobile access networks.
//!
//! Appendix A.1.1 of the paper: augmented-tourism clients reach the edge
//! ingress over LTE / 5G / WiFi-6 with mobility-induced delay
//! oscillation. This example evaluates all three access networks at
//! increasing client counts and shows which ones keep real-time AR
//! viable — plus the scAtteR++ comparison the paper leaves implicit.
//!
//! ```sh
//! cargo run --release --example mobile_network
//! ```

use scatter::config::placements;
use scatter::{run_experiment, Mode, RunConfig};
use simcore::SimDuration;
use simnet::NetemProfile;

fn main() {
    let profiles = vec![
        NetemProfile::wifi6().with_mobility(),
        NetemProfile::fiveg().with_mobility(),
        NetemProfile::lte().with_mobility(),
    ];

    println!("wireless AR glasses: access-network impact (pipeline on E2)\n");
    println!(
        "{:<8} {:<10} {:>8} {:>8} {:>8} {:>9} {:>9}",
        "network", "pipeline", "clients", "FPS", "E2E ms", "success", "jitter ms"
    );

    for profile in &profiles {
        for mode in [Mode::Scatter, Mode::ScatterPP] {
            for clients in [1, 2, 4] {
                let cfg = RunConfig::new(mode, placements::c2(), clients)
                    .with_netem(profile.clone())
                    .with_duration(SimDuration::from_secs(30))
                    .with_seed(99);
                let r = run_experiment(cfg);
                println!(
                    "{:<8} {:<10} {:>8} {:>8.1} {:>8.1} {:>8.0}% {:>9.2}",
                    profile.name,
                    format!("{mode:?}"),
                    clients,
                    r.fps(),
                    r.e2e_mean_ms(),
                    r.success_rate * 100.0,
                    r.jitter_ms,
                );
            }
        }
        println!();
    }

    println!("paper's finding: loss mainly lowers frame success; latency shifts E2E but");
    println!("does not collapse FPS in scAtteR (no staleness threshold). scAtteR++ trades");
    println!("late frames for kept-fresh ones under its 100 ms budget.");
}
