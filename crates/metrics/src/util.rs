//! Busy-time utilization integration.
//!
//! The paper normalizes CPU/GPU utilization "against the total number of
//! available cores, which allows us to compare performance over edge-cloud
//! machines with different capacities". [`Utilization`] integrates busy
//! intervals on a resource with `capacity` parallel units and reports the
//! normalized percentage over an observation window.

use simcore::{SimDuration, SimTime};

/// Integrates busy time over a resource with a fixed parallel capacity.
///
/// `begin`/`end` calls may overlap (multiple service replicas or multiple
/// cores busy simultaneously); the meter tracks the instantaneous busy
/// count and integrates `busy_count / capacity` over time.
#[derive(Debug, Clone)]
pub struct Utilization {
    capacity: f64,
    busy: u32,
    last_change: SimTime,
    /// Integral of busy-units × time, in unit-nanoseconds.
    acc_unit_ns: f64,
    window_start: SimTime,
    peak_busy: u32,
}

impl Utilization {
    /// `capacity` is the number of parallel units (cores, SMs normalized
    /// to 100%-units, …). Must be positive.
    pub fn new(capacity: f64) -> Self {
        assert!(capacity > 0.0);
        Utilization {
            capacity,
            busy: 0,
            last_change: SimTime::ZERO,
            acc_unit_ns: 0.0,
            window_start: SimTime::ZERO,
            peak_busy: 0,
        }
    }

    fn settle(&mut self, now: SimTime) {
        let dt = now.saturating_since(self.last_change).as_nanos() as f64;
        self.acc_unit_ns += dt * self.busy as f64;
        self.last_change = now;
    }

    /// One unit became busy at `now`.
    pub fn begin(&mut self, now: SimTime) {
        self.settle(now);
        self.busy += 1;
        self.peak_busy = self.peak_busy.max(self.busy);
    }

    /// One unit became idle at `now`. Unbalanced `end` calls are a logic
    /// error upstream and panic in debug builds.
    pub fn end(&mut self, now: SimTime) {
        self.settle(now);
        debug_assert!(self.busy > 0, "Utilization::end without matching begin");
        self.busy = self.busy.saturating_sub(1);
    }

    /// Record a closed busy interval of length `d` ending at `now` —
    /// convenience for one-shot service executions.
    pub fn add_busy(&mut self, now: SimTime, d: SimDuration) {
        self.settle(now);
        self.acc_unit_ns += d.as_nanos() as f64;
        self.peak_busy = self.peak_busy.max(1);
    }

    /// Normalized utilization percentage over `[window_start, now]`:
    /// `100 × busy-unit-time / (capacity × elapsed)`.
    pub fn percent(&mut self, now: SimTime) -> f64 {
        self.settle(now);
        let elapsed = now.saturating_since(self.window_start).as_nanos() as f64;
        if elapsed <= 0.0 {
            return 0.0;
        }
        100.0 * self.acc_unit_ns / (self.capacity * elapsed)
    }

    /// Reset the observation window, keeping current busy state.
    pub fn reset_window(&mut self, now: SimTime) {
        self.settle(now);
        self.acc_unit_ns = 0.0;
        self.window_start = now;
        self.peak_busy = self.busy;
    }

    /// Highest simultaneous busy count observed in the window.
    pub fn peak(&self) -> u32 {
        self.peak_busy
    }

    pub fn capacity(&self) -> f64 {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn fully_busy_is_100_percent_per_unit() {
        let mut u = Utilization::new(4.0);
        u.begin(t(0));
        u.end(t(1000));
        // 1 of 4 units busy the whole window → 25%.
        assert!((u.percent(t(1000)) - 25.0).abs() < 1e-9);
    }

    #[test]
    fn overlapping_intervals_stack() {
        let mut u = Utilization::new(2.0);
        u.begin(t(0));
        u.begin(t(0));
        u.end(t(500));
        u.end(t(1000));
        // unit-time = 2×0.5s + 1×0.5s = 1.5 unit-s over 2 × 1s → 75%.
        assert!((u.percent(t(1000)) - 75.0).abs() < 1e-9);
        assert_eq!(u.peak(), 2);
    }

    #[test]
    fn add_busy_accumulates() {
        let mut u = Utilization::new(1.0);
        u.add_busy(t(100), SimDuration::from_millis(50));
        assert!((u.percent(t(1000)) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn reset_window_clears_history() {
        let mut u = Utilization::new(1.0);
        u.begin(t(0));
        u.end(t(1000));
        u.reset_window(t(1000));
        assert_eq!(u.percent(t(2000)), 0.0);
    }

    #[test]
    fn idle_meter_reads_zero() {
        let mut u = Utilization::new(8.0);
        assert_eq!(u.percent(t(500)), 0.0);
    }

    #[test]
    fn busy_across_percent_call_keeps_integrating() {
        let mut u = Utilization::new(1.0);
        u.begin(t(0));
        assert!((u.percent(t(500)) - 100.0).abs() < 1e-9);
        assert!((u.percent(t(1000)) - 100.0).abs() < 1e-9);
        u.end(t(1000));
        assert!((u.percent(t(2000)) - 50.0).abs() < 1e-9);
    }
}
