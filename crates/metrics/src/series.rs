//! Timestamped sample series with windowed aggregation.
//!
//! Figures 8 and 12 of the paper plot per-service framerate and queue drop
//! ratio *over experiment time*; [`TimeSeries`] is the storage those plots
//! are regenerated from.

use serde::{Deserialize, Serialize};
use simcore::SimTime;

/// A series of `(time, value)` samples in non-decreasing time order.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TimeSeries {
    times_ns: Vec<u64>,
    values: Vec<f64>,
}

impl TimeSeries {
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a sample. Panics in debug builds if time goes backwards —
    /// simulation metrics are produced in event order, so a regression
    /// indicates a bug upstream.
    pub fn push(&mut self, t: SimTime, v: f64) {
        if let Some(&last) = self.times_ns.last() {
            debug_assert!(t.as_nanos() >= last, "TimeSeries time went backwards");
        }
        self.times_ns.push(t.as_nanos());
        self.values.push(v);
    }

    pub fn len(&self) -> usize {
        self.values.len()
    }

    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    pub fn iter(&self) -> impl Iterator<Item = (SimTime, f64)> + '_ {
        self.times_ns
            .iter()
            .zip(&self.values)
            .map(|(&t, &v)| (SimTime::from_nanos(t), v))
    }

    /// Mean of all values (unweighted).
    pub fn mean(&self) -> f64 {
        if self.values.is_empty() {
            return 0.0;
        }
        self.values.iter().sum::<f64>() / self.values.len() as f64
    }

    /// Mean over samples with `start <= t < end`.
    pub fn window_mean(&self, start: SimTime, end: SimTime) -> f64 {
        let (mut sum, mut n) = (0.0, 0usize);
        for (t, v) in self.iter() {
            if t >= start && t < end {
                sum += v;
                n += 1;
            }
        }
        if n == 0 {
            0.0
        } else {
            sum / n as f64
        }
    }

    /// Count of events with `start <= t < end` (ignores values) — used to
    /// turn an arrival series into a rate.
    pub fn window_count(&self, start: SimTime, end: SimTime) -> usize {
        self.iter().filter(|&(t, _)| t >= start && t < end).count()
    }

    /// Resample into `n` equal windows over `[start, end)`, producing the
    /// per-window mean (`0.0` for empty windows). This is exactly the
    /// "experiment time (%)" x-axis of figs. 8/12.
    pub fn resample_mean(&self, start: SimTime, end: SimTime, n: usize) -> Vec<f64> {
        assert!(n > 0 && end > start);
        let span = (end - start).as_nanos();
        (0..n)
            .map(|i| {
                let ws = SimTime::from_nanos(start.as_nanos() + span * i as u64 / n as u64);
                let we = SimTime::from_nanos(start.as_nanos() + span * (i as u64 + 1) / n as u64);
                self.window_mean(ws, we)
            })
            .collect()
    }

    /// Resample into `n` equal windows producing events-per-second rates.
    pub fn resample_rate(&self, start: SimTime, end: SimTime, n: usize) -> Vec<f64> {
        assert!(n > 0 && end > start);
        let span = (end - start).as_nanos();
        (0..n)
            .map(|i| {
                let ws = SimTime::from_nanos(start.as_nanos() + span * i as u64 / n as u64);
                let we = SimTime::from_nanos(start.as_nanos() + span * (i as u64 + 1) / n as u64);
                let secs = (we - ws).as_secs_f64();
                if secs == 0.0 {
                    0.0
                } else {
                    self.window_count(ws, we) as f64 / secs
                }
            })
            .collect()
    }

    /// Last value, if any.
    pub fn last(&self) -> Option<f64> {
        self.values.last().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn push_and_iterate() {
        let mut s = TimeSeries::new();
        s.push(t(1), 10.0);
        s.push(t(2), 20.0);
        let v: Vec<_> = s.iter().collect();
        assert_eq!(v, vec![(t(1), 10.0), (t(2), 20.0)]);
        assert_eq!(s.last(), Some(20.0));
    }

    #[test]
    fn window_mean_respects_bounds() {
        let mut s = TimeSeries::new();
        for i in 0..10 {
            s.push(t(i * 100), i as f64);
        }
        // Window [200, 500) contains samples at 200,300,400 → values 2,3,4.
        assert_eq!(s.window_mean(t(200), t(500)), 3.0);
        assert_eq!(s.window_mean(t(5000), t(6000)), 0.0);
    }

    #[test]
    fn resample_rate_counts_events() {
        let mut s = TimeSeries::new();
        // 30 events in the first second, none in the second.
        for i in 0..30 {
            s.push(SimTime::from_millis(i * 33), 1.0);
        }
        let rates = s.resample_rate(SimTime::ZERO, SimTime::from_secs(2), 2);
        assert_eq!(rates.len(), 2);
        assert!((rates[0] - 30.0).abs() < 1.0, "rate {}", rates[0]);
        assert_eq!(rates[1], 0.0);
    }

    #[test]
    fn resample_mean_splits_evenly() {
        let mut s = TimeSeries::new();
        s.push(t(100), 1.0);
        s.push(t(600), 3.0);
        let m = s.resample_mean(SimTime::ZERO, t(1000), 2);
        assert_eq!(m, vec![1.0, 3.0]);
    }
}
