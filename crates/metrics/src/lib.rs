//! # metrics — measurement substrate for the reproduction
//!
//! The paper reports four QoS metrics (frame rate, end-to-end latency,
//! per-service latency, jitter) and three hardware metrics (CPU, GPU,
//! memory utilization). This crate provides the estimators those numbers
//! come from:
//!
//! - [`Summary`]: exact streaming summary (mean, min/max, quantiles) for
//!   bounded-cardinality series such as per-run latency samples.
//! - [`LogHistogram`]: constant-memory log-bucketed histogram for
//!   unbounded streams.
//! - [`TimeSeries`]: timestamped samples with windowed aggregation, used
//!   for the over-experiment-time figures (fig. 8 and fig. 12).
//! - [`RateMeter`]: windowed event-rate (FPS) estimation.
//! - [`JitterMeter`]: inter-arrival-delta jitter as the paper defines it
//!   ("Δ inter-frame receive time").
//! - [`Utilization`]: busy-time integration normalized against capacity,
//!   matching the paper's normalization "against the total number of
//!   available cores".

pub mod hist;
pub mod rate;
pub mod series;
pub mod summary;
pub mod util;

pub use hist::LogHistogram;
pub use rate::{JitterMeter, RateMeter};
pub use series::TimeSeries;
pub use summary::Summary;
pub use util::Utilization;
