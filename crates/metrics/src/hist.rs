//! Constant-memory log-bucketed histogram.
//!
//! Buckets grow geometrically (configurable growth factor), giving a fixed
//! relative quantile error regardless of the value range — the same idea
//! as HdrHistogram/DDSketch, sized for latency-like positive values.

use serde::{Deserialize, Serialize};

/// Log-bucketed histogram over positive values.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LogHistogram {
    /// Smallest representable value; everything below lands in bucket 0.
    min_value: f64,
    /// Geometric growth factor between bucket boundaries (> 1).
    gamma: f64,
    ln_gamma: f64,
    counts: Vec<u64>,
    total: u64,
    sum: f64,
    overflow: u64,
}

impl LogHistogram {
    /// Histogram covering `[min_value, max_value]` with relative error
    /// roughly `(gamma - 1) / 2` per bucket.
    pub fn new(min_value: f64, max_value: f64, gamma: f64) -> Self {
        assert!(min_value > 0.0 && max_value > min_value && gamma > 1.0);
        let n = ((max_value / min_value).ln() / gamma.ln()).ceil() as usize + 1;
        LogHistogram {
            min_value,
            gamma,
            ln_gamma: gamma.ln(),
            counts: vec![0; n],
            total: 0,
            sum: 0.0,
            overflow: 0,
        }
    }

    /// Default configuration for millisecond-scale latencies: 1 µs to
    /// 100 s with ~2 % relative error.
    pub fn for_latency_ms() -> Self {
        Self::new(0.001, 100_000.0, 1.04)
    }

    fn bucket_of(&self, x: f64) -> Option<usize> {
        if x <= self.min_value {
            return Some(0);
        }
        let idx = ((x / self.min_value).ln() / self.ln_gamma).floor() as usize;
        if idx < self.counts.len() {
            Some(idx)
        } else {
            None
        }
    }

    /// Record one positive sample; non-finite or non-positive values are
    /// ignored, values beyond the max are counted in an overflow bin that
    /// still contributes to `count` and inflates high quantiles to the max.
    pub fn record(&mut self, x: f64) {
        if !x.is_finite() || x <= 0.0 {
            return;
        }
        self.total += 1;
        self.sum += x;
        match self.bucket_of(x) {
            Some(i) => self.counts[i] += 1,
            None => self.overflow += 1,
        }
    }

    pub fn count(&self) -> u64 {
        self.total
    }

    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum / self.total as f64
        }
    }

    /// Upper boundary of bucket `i` — the value reported for quantiles
    /// landing in that bucket (conservative: never under-reports).
    fn bucket_upper(&self, i: usize) -> f64 {
        self.min_value * self.gamma.powi(i as i32 + 1)
    }

    /// Quantile with relative error bounded by the bucket width.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        let target = (q * self.total as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                return self.bucket_upper(i);
            }
        }
        // Landed in overflow.
        self.bucket_upper(self.counts.len() - 1)
    }

    pub fn median(&self) -> f64 {
        self.quantile(0.5)
    }

    pub fn p99(&self) -> f64 {
        self.quantile(0.99)
    }

    /// Merge a histogram with identical configuration.
    pub fn merge(&mut self, other: &LogHistogram) {
        assert_eq!(self.counts.len(), other.counts.len(), "config mismatch");
        assert!((self.gamma - other.gamma).abs() < 1e-12, "config mismatch");
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        self.sum += other.sum;
        self.overflow += other.overflow;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_quantile_zero() {
        let h = LogHistogram::for_latency_ms();
        assert_eq!(h.quantile(0.5), 0.0);
        assert!(h.is_empty());
    }

    #[test]
    fn single_value_recovered_within_error() {
        let mut h = LogHistogram::for_latency_ms();
        h.record(42.0);
        let m = h.median();
        assert!((m - 42.0).abs() / 42.0 < 0.05, "median {m} too far from 42");
    }

    #[test]
    fn ignores_garbage() {
        let mut h = LogHistogram::for_latency_ms();
        h.record(-1.0);
        h.record(0.0);
        h.record(f64::NAN);
        assert_eq!(h.count(), 0);
    }

    #[test]
    fn overflow_counts_and_caps() {
        let mut h = LogHistogram::new(1.0, 10.0, 1.5);
        h.record(1e9);
        assert_eq!(h.count(), 1);
        assert!(h.quantile(1.0) >= 10.0);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = LogHistogram::for_latency_ms();
        let mut b = LogHistogram::for_latency_ms();
        a.record(1.0);
        b.record(100.0);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert!(a.quantile(0.99) > 50.0);
    }

    proptest! {
        #[test]
        fn quantile_relative_error_bounded(
            xs in proptest::collection::vec(0.01f64..10_000.0, 1..300),
            q in 0.0f64..1.0,
        ) {
            let mut h = LogHistogram::for_latency_ms();
            for &x in &xs {
                h.record(x);
            }
            let approx = h.quantile(q);
            // The bucketed quantile has bounded relative error vs the
            // nearest-rank exact quantile (the sample whose bucket the
            // cumulative count lands in) — not vs an interpolated one.
            let mut sorted = xs.clone();
            sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let rank = ((q * sorted.len() as f64).ceil().max(1.0) as usize).min(sorted.len());
            let e = sorted[rank - 1];
            prop_assert!(approx >= e * 0.90, "approx {approx} < exact {e}");
            prop_assert!(approx <= e * 1.10 + 1e-9, "approx {approx} > exact {e}");
        }

        #[test]
        fn count_matches_records(xs in proptest::collection::vec(0.01f64..100.0, 0..100)) {
            let mut h = LogHistogram::for_latency_ms();
            for &x in &xs { h.record(x); }
            prop_assert_eq!(h.count(), xs.len() as u64);
        }

        /// Merging two histograms with identical configuration is exactly
        /// equivalent to recording the union of their samples: the bucket
        /// counts are integers that simply add, so every quantile (a pure
        /// function of the integer counts) is bitwise equal to the
        /// union's; count is exact and the mean agrees up to fp
        /// association in the running sum.
        #[test]
        fn merge_equals_union_recording(
            xs in proptest::collection::vec(0.001f64..200_000.0, 0..150),
            ys in proptest::collection::vec(0.001f64..200_000.0, 0..150),
            q in 0.0f64..1.0,
        ) {
            let mut a = LogHistogram::for_latency_ms();
            for &x in &xs { a.record(x); }
            let mut b = LogHistogram::for_latency_ms();
            for &y in &ys { b.record(y); }
            let mut union = LogHistogram::for_latency_ms();
            for &x in xs.iter().chain(ys.iter()) { union.record(x); }

            a.merge(&b);
            prop_assert_eq!(a.count(), union.count());
            prop_assert_eq!(a.quantile(q).to_bits(), union.quantile(q).to_bits());
            prop_assert_eq!(a.median().to_bits(), union.median().to_bits());
            prop_assert_eq!(a.p99().to_bits(), union.p99().to_bits());
            if a.count() > 0 {
                let scale = union.quantile(1.0).max(1.0);
                prop_assert!((a.mean() - union.mean()).abs() <= 1e-9 * scale * union.count() as f64);
            }
        }
    }
}
