//! Exact streaming summary statistics.
//!
//! Stores every sample; our longest experiment produces a few hundred
//! thousand latency samples per run, so exactness is affordable and saves
//! us from arguing about sketch error bars when comparing against the
//! paper's reported medians.

use serde::{Deserialize, Serialize};

/// Exact summary of a stream of `f64` samples.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Summary {
    samples: Vec<f64>,
    sum: f64,
    /// Lazily sorted copy; invalidated on insert.
    #[serde(skip)]
    sorted: Option<Vec<f64>>,
}

impl Summary {
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one sample. Non-finite samples are rejected (they would
    /// poison every aggregate) and counted nowhere; callers validating
    /// model output should check [`Summary::len`] against expectations.
    pub fn record(&mut self, x: f64) {
        if !x.is_finite() {
            return;
        }
        self.samples.push(x);
        self.sum += x;
        self.sorted = None;
    }

    pub fn len(&self) -> usize {
        self.samples.len()
    }

    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.sum / self.samples.len() as f64
    }

    pub fn min(&self) -> f64 {
        self.samples.iter().copied().fold(f64::INFINITY, f64::min)
    }

    pub fn max(&self) -> f64 {
        self.samples
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        if self.samples.len() < 2 {
            return 0.0;
        }
        let m = self.mean();
        let var =
            self.samples.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / self.samples.len() as f64;
        var.sqrt()
    }

    /// Quantile by linear interpolation between closest ranks.
    /// `q` is clamped to `[0, 1]`. Returns 0 on an empty summary.
    pub fn quantile(&mut self, q: f64) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        let sorted = self.sorted.get_or_insert_with(|| {
            let mut v = self.samples.clone();
            v.sort_by(|a, b| a.partial_cmp(b).expect("non-finite sample slipped in"));
            v
        });
        let q = q.clamp(0.0, 1.0);
        let pos = q * (sorted.len() - 1) as f64;
        let lo = pos.floor() as usize;
        let hi = pos.ceil() as usize;
        if lo == hi {
            sorted[lo]
        } else {
            let frac = pos - lo as f64;
            sorted[lo] * (1.0 - frac) + sorted[hi] * frac
        }
    }

    pub fn median(&mut self) -> f64 {
        self.quantile(0.5)
    }

    pub fn p95(&mut self) -> f64 {
        self.quantile(0.95)
    }

    pub fn p99(&mut self) -> f64 {
        self.quantile(0.99)
    }

    /// Merge another summary into this one.
    pub fn merge(&mut self, other: &Summary) {
        self.samples.extend_from_slice(&other.samples);
        self.sum += other.sum;
        self.sorted = None;
    }

    /// Borrow the raw samples (insertion order).
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_summary_is_safe() {
        let mut s = Summary::new();
        assert_eq!(s.len(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.median(), 0.0);
    }

    #[test]
    fn basic_stats() {
        let mut s = Summary::new();
        for x in [1.0, 2.0, 3.0, 4.0, 5.0] {
            s.record(x);
        }
        assert_eq!(s.mean(), 3.0);
        assert_eq!(s.min(), 1.0);
        assert_eq!(s.max(), 5.0);
        assert_eq!(s.median(), 3.0);
        assert!((s.std_dev() - 2.0f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn quantile_interpolates() {
        let mut s = Summary::new();
        for x in [0.0, 10.0] {
            s.record(x);
        }
        assert_eq!(s.quantile(0.5), 5.0);
        assert_eq!(s.quantile(0.25), 2.5);
        assert_eq!(s.quantile(0.0), 0.0);
        assert_eq!(s.quantile(1.0), 10.0);
    }

    #[test]
    fn rejects_non_finite() {
        let mut s = Summary::new();
        s.record(f64::NAN);
        s.record(f64::INFINITY);
        s.record(2.0);
        assert_eq!(s.len(), 1);
        assert_eq!(s.mean(), 2.0);
    }

    #[test]
    fn merge_combines() {
        let mut a = Summary::new();
        let mut b = Summary::new();
        a.record(1.0);
        b.record(3.0);
        a.merge(&b);
        assert_eq!(a.len(), 2);
        assert_eq!(a.mean(), 2.0);
    }

    #[test]
    fn insert_after_quantile_invalidates_cache() {
        let mut s = Summary::new();
        s.record(1.0);
        assert_eq!(s.median(), 1.0);
        s.record(100.0);
        assert_eq!(s.median(), 50.5);
    }

    proptest! {
        #[test]
        fn quantiles_are_monotone_and_bounded(
            mut xs in proptest::collection::vec(-1e6f64..1e6, 1..200),
            q1 in 0.0f64..1.0,
            q2 in 0.0f64..1.0,
        ) {
            let mut s = Summary::new();
            for &x in &xs { s.record(x); }
            xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let (lo, hi) = (q1.min(q2), q1.max(q2));
            let vlo = s.quantile(lo);
            let vhi = s.quantile(hi);
            prop_assert!(vlo <= vhi + 1e-9);
            prop_assert!(vlo >= xs[0] - 1e-9);
            prop_assert!(vhi <= xs[xs.len() - 1] + 1e-9);
        }

        #[test]
        fn mean_between_min_and_max(
            xs in proptest::collection::vec(-1e6f64..1e6, 1..200),
        ) {
            let mut s = Summary::new();
            for &x in &xs { s.record(x); }
            prop_assert!(s.mean() >= s.min() - 1e-6);
            prop_assert!(s.mean() <= s.max() + 1e-6);
        }

        /// Merging two summaries is exactly equivalent to recording the
        /// union of their samples: `merge` concatenates the sample vecs,
        /// so order statistics (and hence every quantile) are *bitwise*
        /// equal to the union's, and the mean agrees up to fp association
        /// in the running sum.
        #[test]
        fn merge_equals_union_recording(
            xs in proptest::collection::vec(-1e6f64..1e6, 0..150),
            ys in proptest::collection::vec(-1e6f64..1e6, 0..150),
            q in 0.0f64..1.0,
        ) {
            let mut a = Summary::new();
            for &x in &xs { a.record(x); }
            let mut b = Summary::new();
            for &y in &ys { b.record(y); }
            let mut union = Summary::new();
            for &x in xs.iter().chain(ys.iter()) { union.record(x); }

            a.merge(&b);
            prop_assert_eq!(a.len(), union.len());
            if !a.is_empty() {
                // Same multiset of samples -> identical sorted order ->
                // identical interpolated quantiles, bit for bit.
                prop_assert_eq!(a.quantile(q).to_bits(), union.quantile(q).to_bits());
                prop_assert_eq!(a.min().to_bits(), union.min().to_bits());
                prop_assert_eq!(a.max().to_bits(), union.max().to_bits());
                // The running sums associate differently; allow fp slack
                // proportional to the magnitude of the samples.
                let scale = a.min().abs().max(a.max().abs()).max(1.0);
                prop_assert!((a.mean() - union.mean()).abs() <= 1e-9 * scale);
            }
        }
    }
}
