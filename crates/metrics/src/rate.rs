//! Event-rate (FPS) and jitter estimation.
//!
//! The paper's FPS metric is "successfully analyzed frames per second";
//! its jitter metric is the variation of the inter-frame receive delta at
//! the client. Both are computed from arrival instants only.

use simcore::{SimDuration, SimTime};

use crate::summary::Summary;

/// Counts events and reports their average rate over the observed span,
/// plus windowed rates for time-resolved plots.
#[derive(Debug, Clone, Default)]
pub struct RateMeter {
    arrivals: Vec<SimTime>,
}

impl RateMeter {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn record(&mut self, t: SimTime) {
        debug_assert!(
            self.arrivals.last().is_none_or(|&last| t >= last),
            "RateMeter arrivals out of order"
        );
        self.arrivals.push(t);
    }

    pub fn count(&self) -> usize {
        self.arrivals.len()
    }

    /// Events per second over `[start, end)`. The caller supplies the
    /// experiment bounds so idle head/tail time counts against the rate,
    /// exactly like dividing total analyzed frames by run length.
    pub fn rate_over(&self, start: SimTime, end: SimTime) -> f64 {
        let secs = (end.saturating_since(start)).as_secs_f64();
        if secs <= 0.0 {
            return 0.0;
        }
        let n = self
            .arrivals
            .iter()
            .filter(|&&t| t >= start && t < end)
            .count();
        n as f64 / secs
    }

    /// Median over per-second event counts — robust to warmup/teardown
    /// transients, and the statistic the paper quotes ("18.2 FPS
    /// (median)") for the cloud deployment.
    pub fn median_per_second_rate(&self, start: SimTime, end: SimTime) -> f64 {
        let total = end.saturating_since(start).as_secs_f64();
        if total < 1.0 {
            return self.rate_over(start, end);
        }
        let mut s = Summary::new();
        let whole = total.floor() as u64;
        for i in 0..whole {
            let ws = start + SimDuration::from_secs(i);
            let we = ws + SimDuration::from_secs(1);
            let n = self.arrivals.iter().filter(|&&t| t >= ws && t < we).count();
            s.record(n as f64);
        }
        s.median()
    }

    pub fn arrivals(&self) -> &[SimTime] {
        &self.arrivals
    }
}

/// Jitter as mean absolute deviation of consecutive inter-arrival deltas:
/// `mean(|d_i - d_{i-1}|)` where `d_i` is the i-th inter-frame gap. This
/// is the RFC 3550-style instantaneous jitter the paper's Δ inter-frame
/// receive-time plots correspond to.
#[derive(Debug, Clone, Default)]
pub struct JitterMeter {
    last_arrival: Option<SimTime>,
    last_seq: Option<u64>,
    last_gap: Option<SimDuration>,
    deltas_ms: Summary,
}

impl JitterMeter {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn record(&mut self, t: SimTime) {
        if let Some(prev) = self.last_arrival {
            let gap = t.saturating_since(prev);
            if let Some(pg) = self.last_gap {
                let delta = if gap >= pg { gap - pg } else { pg - gap };
                self.deltas_ms.record(delta.as_millis_f64());
            }
            self.last_gap = Some(gap);
        }
        self.last_arrival = Some(t);
    }

    /// Sequence-aware recording: a gap only counts when `seq` directly
    /// follows the previously received sequence number, so jitter
    /// reflects delivery-time variation rather than holes left by
    /// dropped frames (the paper plots Δ inter-frame *receive* time of
    /// frames that arrive).
    pub fn record_seq(&mut self, seq: u64, t: SimTime) {
        let consecutive = self.last_seq == Some(seq.wrapping_sub(1));
        if consecutive {
            if let Some(prev) = self.last_arrival {
                let gap = t.saturating_since(prev);
                if let Some(pg) = self.last_gap {
                    let delta = if gap >= pg { gap - pg } else { pg - gap };
                    self.deltas_ms.record(delta.as_millis_f64());
                }
                self.last_gap = Some(gap);
            }
        } else {
            self.last_gap = None;
        }
        self.last_seq = Some(seq);
        self.last_arrival = Some(t);
    }

    /// Grid-based recording: measures how far the inter-arrival gap lies
    /// from the nearest multiple of the source frame period. A punctual
    /// stream with drops has gaps of k × period → zero jitter; queueing
    /// and network variance pull arrivals off the grid → jitter grows,
    /// bounded by period/2. This matches the paper's observation that
    /// jitter rises with frame drops yet stays below ~half the 33 ms
    /// inter-frame time.
    pub fn record_grid(&mut self, t: SimTime, period: SimDuration) {
        if let Some(prev) = self.last_arrival {
            let gap = t.saturating_since(prev).as_millis_f64();
            let p = period.as_millis_f64();
            if p > 0.0 && gap > 0.0 {
                let excess = gap - p * (gap / p).round();
                self.deltas_ms.record(excess.abs());
            }
        }
        self.last_arrival = Some(t);
    }

    /// Mean |Δ inter-frame gap| in milliseconds.
    pub fn jitter_ms(&self) -> f64 {
        self.deltas_ms.mean()
    }

    /// 95th-percentile jitter in milliseconds.
    pub fn p95_ms(&mut self) -> f64 {
        self.deltas_ms.p95()
    }

    pub fn sample_count(&self) -> usize {
        self.deltas_ms.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn rate_over_counts_in_window() {
        let mut r = RateMeter::new();
        for i in 0..60 {
            r.record(SimTime::from_millis(i * 50)); // 20 events/s for 3s
        }
        let rate = r.rate_over(SimTime::ZERO, SimTime::from_secs(3));
        assert!((rate - 20.0).abs() < 0.5, "rate {rate}");
    }

    #[test]
    fn median_rate_robust_to_tail() {
        let mut r = RateMeter::new();
        // 30/s for 4 seconds, then nothing for 1 second.
        for i in 0..120 {
            r.record(SimTime::from_nanos(i * 33_333_333));
        }
        let med = r.median_per_second_rate(SimTime::ZERO, SimTime::from_secs(5));
        assert!(med >= 29.0, "median {med}");
        let avg = r.rate_over(SimTime::ZERO, SimTime::from_secs(5));
        assert!(
            avg < 25.0,
            "average {avg} should be dragged down by the idle tail"
        );
    }

    #[test]
    fn perfectly_periodic_stream_has_zero_jitter() {
        let mut j = JitterMeter::new();
        for i in 0..100 {
            j.record(t(i * 33));
        }
        assert_eq!(j.jitter_ms(), 0.0);
        assert_eq!(j.sample_count(), 98);
    }

    #[test]
    fn alternating_gaps_have_constant_jitter() {
        let mut j = JitterMeter::new();
        // Gaps alternate 30ms, 40ms → |Δ| is always 10ms.
        let mut now = 0;
        for i in 0..50 {
            now += if i % 2 == 0 { 30 } else { 40 };
            j.record(t(now));
        }
        assert!((j.jitter_ms() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn grid_jitter_zero_for_punctual_stream_with_drops() {
        let mut j = JitterMeter::new();
        let period = SimDuration::from_millis(30);
        // Frames at 0, 30, 90, 120 (one dropped at 60): all on the grid.
        for ms in [0u64, 30, 90, 120] {
            j.record_grid(t(ms), period);
        }
        assert_eq!(j.jitter_ms(), 0.0);
    }

    #[test]
    fn grid_jitter_measures_off_grid_arrivals() {
        let mut j = JitterMeter::new();
        let period = SimDuration::from_millis(30);
        j.record_grid(t(0), period);
        j.record_grid(t(37), period); // 7 ms off the grid
        assert!((j.jitter_ms() - 7.0).abs() < 1e-9);
        j.record_grid(t(37 + 55), period); // 55 → 5 ms from 60
        assert!((j.jitter_ms() - 6.0).abs() < 1e-9);
    }

    #[test]
    fn fewer_than_three_arrivals_no_jitter_samples() {
        let mut j = JitterMeter::new();
        j.record(t(0));
        j.record(t(33));
        assert_eq!(j.sample_count(), 0);
        assert_eq!(j.jitter_ms(), 0.0);
    }
}
