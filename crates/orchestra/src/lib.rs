//! # orchestra — the edge orchestration substrate
//!
//! A compact reimplementation of the Oakestra features the paper's
//! evaluation actually exercises (§3.2):
//!
//! - heterogeneous machine inventory with CPU count, memory, and GPU
//!   *architecture* (GeForce RTX on E1, Ampere on E2, Tesla in the cloud)
//!   — the paper must map differently-compiled container images per
//!   architecture, which we model as an SLA compatibility check;
//! - SLA-constrained service placement, including the paper's pinned
//!   placement configurations (C1, C2, C12, C21, …);
//! - replica scale-out with round-robin load balancing across replicas,
//!   plus the sticky binding that stateful services force ("frames
//!   balanced across sift instances remain tied to that replica");
//! - failure detection and automatic re-deployment;
//! - per-node hardware metric sampling (CPU, GPU, memory), normalized by
//!   machine capacity — the only signals a hardware-level orchestrator
//!   sees, which the paper shows are insufficient for AR QoS.

pub mod balancer;
pub mod cluster;
pub mod detector;
pub mod node;
pub mod scheduler;
pub mod sla;

pub use balancer::{Balancer, BalancerKind, LastReplica};
pub use cluster::{Cluster, InstanceId, InstanceState, ServiceInstance};
pub use detector::{DetectorConfig, FailureDetector, Suspicion};
pub use node::{GpuArch, MachineSpec};
pub use scheduler::{schedule, Discipline, SchedulePlan};
pub use sla::{PlacementSpec, ServiceSla};
