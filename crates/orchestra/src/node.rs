//! Machine inventory: the heterogeneous edge-cloud hardware of §3.2.

use serde::{Deserialize, Serialize};
use simnet::NodeId;

/// GPU micro-architecture, which determines both container-image
/// compatibility (sm code versions) and the relative speed multiplier of
/// the cost model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GpuArch {
    /// E1: NVIDIA RTX 2080 (Turing consumer card).
    GeForceRtx,
    /// E2: NVIDIA A40 (Ampere data-centre card).
    Ampere,
    /// Cloud: NVIDIA Tesla V100 (Volta, virtualized).
    Tesla,
}

impl GpuArch {
    /// Relative service-time multiplier vs the E1 baseline, calibrated so
    /// the reproduced figures match the paper's shapes: E2's A40s process
    /// frames faster ("explained by the hardware capabilities of the
    /// former"), while the virtualized V100 — an architecture the images
    /// were not optimized for — runs slower despite ample raw capacity.
    pub fn speed_multiplier(self) -> f64 {
        match self {
            GpuArch::GeForceRtx => 1.0,
            GpuArch::Ampere => 0.80,
            GpuArch::Tesla => 1.35,
        }
    }

    /// Fraction of the wall-clock service time that actually occupies a
    /// GPU execution slot. The V100 executes kernels quickly — the
    /// paper's cloud slowdown is virtualization and image/arch mismatch,
    /// explicitly *not* GPU saturation ("performance decrease is not due
    /// to hardware bottlenecks") — so Tesla's occupancy is low while its
    /// wall multiplier is high.
    pub fn gpu_occupancy_multiplier(self) -> f64 {
        match self {
            GpuArch::GeForceRtx => 1.0,
            GpuArch::Ampere => 0.80,
            GpuArch::Tesla => 0.85,
        }
    }
}

/// A physical (or virtual) machine in the cluster.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MachineSpec {
    pub name: String,
    /// Network identity in the `simnet` topology.
    pub net: NodeId,
    /// Logical CPU cores (normalization base for CPU %).
    pub cpu_cores: u32,
    /// Installed memory in GB.
    pub memory_gb: f64,
    /// GPUs: architecture and count.
    pub gpu_arch: Option<GpuArch>,
    pub gpu_count: u32,
    /// Virtualized instance (cloud VM): service times suffer occasional
    /// hypervisor-scheduling spikes.
    pub virtualized: bool,
}

impl MachineSpec {
    /// E1: Intel i9 (16 threads), 2× RTX 2080, 128 GB.
    pub fn edge1(net: NodeId) -> Self {
        MachineSpec {
            name: "E1".into(),
            net,
            cpu_cores: 16,
            memory_gb: 128.0,
            gpu_arch: Some(GpuArch::GeForceRtx),
            gpu_count: 2,
            virtualized: false,
        }
    }

    /// E2: 2× AMD EPYC 7302 (64 threads), 2× A40, 264 GB.
    pub fn edge2(net: NodeId) -> Self {
        MachineSpec {
            name: "E2".into(),
            net,
            cpu_cores: 64,
            memory_gb: 264.0,
            gpu_arch: Some(GpuArch::Ampere),
            gpu_count: 2,
            virtualized: false,
        }
    }

    /// Cloud: 4 vCPU Broadwell, 1× Tesla V100, 64 GB.
    pub fn cloud(net: NodeId) -> Self {
        MachineSpec {
            name: "cloud".into(),
            net,
            cpu_cores: 4,
            memory_gb: 64.0,
            gpu_arch: Some(GpuArch::Tesla),
            gpu_count: 1,
            virtualized: true,
        }
    }

    /// Client NUC host: no GPU.
    pub fn client_host(net: NodeId) -> Self {
        MachineSpec {
            name: "client-host".into(),
            net,
            cpu_cores: 4,
            memory_gb: 32.0,
            gpu_arch: None,
            gpu_count: 0,
            virtualized: false,
        }
    }

    pub fn has_gpu(&self) -> bool {
        self.gpu_arch.is_some() && self.gpu_count > 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_paper_hardware() {
        let e1 = MachineSpec::edge1(NodeId(0));
        assert_eq!(e1.gpu_arch, Some(GpuArch::GeForceRtx));
        assert_eq!(e1.gpu_count, 2);
        assert_eq!(e1.memory_gb, 128.0);
        let e2 = MachineSpec::edge2(NodeId(1));
        assert_eq!(e2.gpu_arch, Some(GpuArch::Ampere));
        assert_eq!(e2.memory_gb, 264.0);
        let c = MachineSpec::cloud(NodeId(2));
        assert_eq!(c.gpu_arch, Some(GpuArch::Tesla));
        assert_eq!(c.cpu_cores, 4);
        assert!(!MachineSpec::client_host(NodeId(3)).has_gpu());
    }

    #[test]
    fn speed_ordering_matches_observations() {
        // E2 fastest, E1 baseline, virtualized cloud slowest.
        assert!(GpuArch::Ampere.speed_multiplier() < GpuArch::GeForceRtx.speed_multiplier());
        assert!(GpuArch::Tesla.speed_multiplier() > GpuArch::GeForceRtx.speed_multiplier());
    }
}
