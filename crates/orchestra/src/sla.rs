//! Service-level agreements and placement specifications.
//!
//! Oakestra deployments describe each service's demands and hardware
//! constraints as an SLA; the orchestrator finds machines that satisfy
//! them. The paper additionally *pins* services to machines to realize
//! its named configurations (C1, C2, C12, C21, replica vectors) — we
//! model both paths.

use serde::{Deserialize, Serialize};

use crate::node::MachineSpec;

/// Resource demands and constraints of one pipeline service.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ServiceSla {
    pub service: String,
    /// CPU cores requested.
    pub cpu_cores: f64,
    /// Memory requested in GB.
    pub memory_gb: f64,
    /// Whether the service needs a GPU (all scAtteR services but
    /// `primary` do).
    pub needs_gpu: bool,
}

impl ServiceSla {
    pub fn new(service: &str, cpu_cores: f64, memory_gb: f64, needs_gpu: bool) -> Self {
        ServiceSla {
            service: service.into(),
            cpu_cores,
            memory_gb,
            needs_gpu,
        }
    }

    /// Does `machine` satisfy this SLA's constraints? (Capacity is
    /// checked against *installed* resources; admission control against
    /// current allocations happens in the cluster.)
    pub fn admissible(&self, machine: &MachineSpec) -> bool {
        if self.needs_gpu && !machine.has_gpu() {
            return false;
        }
        self.cpu_cores <= machine.cpu_cores as f64 && self.memory_gb <= machine.memory_gb
    }
}

/// Where to run each replica of each service: the paper's configuration
/// vectors, e.g. `[E1, E1, E2, E2, E2]` or replica counts `[1,2,2,1,2]`.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct PlacementSpec {
    /// `replicas[service] = machines to run one replica on each`.
    /// Order: (service name, machine names).
    pub assignments: Vec<(String, Vec<String>)>,
}

impl PlacementSpec {
    /// Single replica of each service, all on one machine (the paper's
    /// C1 / C2 / cloud-only configurations).
    pub fn all_on(services: &[&str], machine: &str) -> Self {
        PlacementSpec {
            assignments: services
                .iter()
                .map(|s| (s.to_string(), vec![machine.to_string()]))
                .collect(),
        }
    }

    /// One replica per service with an explicit machine per pipeline
    /// position (C12 / C21 / hybrid).
    pub fn pipeline(services: &[&str], machines: &[&str]) -> Self {
        assert_eq!(services.len(), machines.len(), "length mismatch");
        PlacementSpec {
            assignments: services
                .iter()
                .zip(machines)
                .map(|(s, m)| (s.to_string(), vec![m.to_string()]))
                .collect(),
        }
    }

    /// Arbitrary replica sets per service.
    pub fn replicated(assignments: &[(&str, &[&str])]) -> Self {
        PlacementSpec {
            assignments: assignments
                .iter()
                .map(|(s, ms)| (s.to_string(), ms.iter().map(|m| m.to_string()).collect()))
                .collect(),
        }
    }

    pub fn replicas_of(&self, service: &str) -> Option<&[String]> {
        self.assignments
            .iter()
            .find(|(s, _)| s == service)
            .map(|(_, ms)| ms.as_slice())
    }

    /// Total instance count across services.
    pub fn total_instances(&self) -> usize {
        self.assignments.iter().map(|(_, ms)| ms.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::NodeId;

    #[test]
    fn gpu_constraint_enforced() {
        let sla = ServiceSla::new("sift", 2.0, 4.0, true);
        assert!(sla.admissible(&MachineSpec::edge1(NodeId(0))));
        assert!(!sla.admissible(&MachineSpec::client_host(NodeId(1))));
    }

    #[test]
    fn capacity_constraints_enforced() {
        let heavy = ServiceSla::new("sift", 32.0, 8.0, false);
        assert!(!heavy.admissible(&MachineSpec::cloud(NodeId(0))));
        assert!(heavy.admissible(&MachineSpec::edge2(NodeId(0))));
    }

    #[test]
    fn all_on_builds_single_machine_config() {
        let p = PlacementSpec::all_on(&["primary", "sift"], "E1");
        assert_eq!(p.replicas_of("primary").unwrap(), &["E1".to_string()]);
        assert_eq!(p.total_instances(), 2);
    }

    #[test]
    fn pipeline_maps_positionally() {
        let p = PlacementSpec::pipeline(&["a", "b", "c"], &["E1", "E1", "E2"]);
        assert_eq!(p.replicas_of("c").unwrap(), &["E2".to_string()]);
    }

    #[test]
    fn replicated_configuration() {
        let p = PlacementSpec::replicated(&[("sift", &["E1", "E2"]), ("lsh", &["E2"])]);
        assert_eq!(p.replicas_of("sift").unwrap().len(), 2);
        assert_eq!(p.total_instances(), 3);
        assert!(p.replicas_of("nope").is_none());
    }
}
