//! The cluster: machines, deployed service instances, admission control,
//! failure re-deploy, and hardware metric sampling.

use std::collections::HashMap;

use metrics::Utilization;
use simcore::SimTime;
use simnet::NodeId;

use crate::node::MachineSpec;
use crate::sla::{PlacementSpec, ServiceSla};

/// Identifier of a deployed service instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct InstanceId(pub u32);

/// Lifecycle state of an instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InstanceState {
    Running,
    Failed,
}

/// One running replica of a service on a machine.
#[derive(Debug, Clone)]
pub struct ServiceInstance {
    pub id: InstanceId,
    pub service: String,
    /// Replica ordinal within the service (0-based).
    pub replica: usize,
    /// Machine index in the cluster.
    pub machine: usize,
    pub state: InstanceState,
}

/// Per-machine hardware meters, capacity-normalized like the paper.
pub struct MachineMeters {
    pub cpu: Utilization,
    pub gpu: Utilization,
    /// Memory currently in use, GB (gauge, not time-integrated).
    pub memory_gb: f64,
}

/// The orchestrated cluster.
pub struct Cluster {
    machines: Vec<MachineSpec>,
    instances: Vec<ServiceInstance>,
    meters: Vec<MachineMeters>,
    /// CPU/GPU/memory already promised to instances per machine
    /// (admission control).
    allocated: Vec<(f64, f64)>, // (cpu cores, memory GB)
    next_id: u32,
}

impl Cluster {
    pub fn new(machines: Vec<MachineSpec>) -> Self {
        let meters = machines
            .iter()
            .map(|m| MachineMeters {
                cpu: Utilization::new(m.cpu_cores as f64),
                gpu: Utilization::new(m.gpu_count.max(1) as f64),
                memory_gb: 0.0,
            })
            .collect();
        let allocated = vec![(0.0, 0.0); machines.len()];
        Cluster {
            machines,
            instances: Vec::new(),
            meters,
            allocated,
            next_id: 0,
        }
    }

    /// The paper's testbed inventory wired to a `simnet` topology.
    pub fn testbed(e1: NodeId, e2: NodeId, cloud: NodeId) -> Self {
        Cluster::new(vec![
            MachineSpec::edge1(e1),
            MachineSpec::edge2(e2),
            MachineSpec::cloud(cloud),
        ])
    }

    pub fn machines(&self) -> &[MachineSpec] {
        &self.machines
    }

    pub fn machine_index(&self, name: &str) -> Option<usize> {
        self.machines.iter().position(|m| m.name == name)
    }

    pub fn machine_of(&self, id: InstanceId) -> &MachineSpec {
        let inst = self.instance(id);
        &self.machines[inst.machine]
    }

    pub fn instances(&self) -> &[ServiceInstance] {
        &self.instances
    }

    pub fn instance(&self, id: InstanceId) -> &ServiceInstance {
        self.instances
            .iter()
            .find(|i| i.id == id)
            .expect("unknown instance id")
    }

    /// Deploy one instance of `sla` on the named machine. Checks GPU and
    /// capacity constraints against remaining (unallocated) resources.
    pub fn deploy_on(
        &mut self,
        sla: &ServiceSla,
        machine_name: &str,
    ) -> Result<InstanceId, String> {
        let mi = self
            .machine_index(machine_name)
            .ok_or_else(|| format!("unknown machine {machine_name}"))?;
        let machine = &self.machines[mi];
        if !sla.admissible(machine) {
            return Err(format!(
                "SLA for {} not admissible on {machine_name}",
                sla.service
            ));
        }
        let (cpu_used, mem_used) = self.allocated[mi];
        if cpu_used + sla.cpu_cores > machine.cpu_cores as f64
            || mem_used + sla.memory_gb > machine.memory_gb
        {
            return Err(format!(
                "{machine_name} out of capacity for {}",
                sla.service
            ));
        }
        self.allocated[mi] = (cpu_used + sla.cpu_cores, mem_used + sla.memory_gb);
        let replica = self
            .instances
            .iter()
            .filter(|i| i.service == sla.service)
            .count();
        let id = InstanceId(self.next_id);
        self.next_id += 1;
        self.instances.push(ServiceInstance {
            id,
            service: sla.service.clone(),
            replica,
            machine: mi,
            state: InstanceState::Running,
        });
        Ok(id)
    }

    /// Deploy a whole placement spec; returns ids per service in
    /// placement order. Fails atomically-ish: errors abort the remainder.
    pub fn deploy_placement(
        &mut self,
        slas: &[ServiceSla],
        placement: &PlacementSpec,
    ) -> Result<Vec<(String, Vec<InstanceId>)>, String> {
        let mut out = Vec::new();
        for (service, machines) in &placement.assignments {
            let sla = slas
                .iter()
                .find(|s| &s.service == service)
                .ok_or_else(|| format!("no SLA for service {service}"))?;
            let mut ids = Vec::new();
            for m in machines {
                ids.push(self.deploy_on(sla, m)?);
            }
            out.push((service.clone(), ids));
        }
        Ok(out)
    }

    /// Running instances of a service, replica-ordered.
    pub fn replicas_of(&self, service: &str) -> Vec<InstanceId> {
        let mut v: Vec<_> = self
            .instances
            .iter()
            .filter(|i| i.service == service && i.state == InstanceState::Running)
            .collect();
        v.sort_by_key(|i| i.replica);
        v.iter().map(|i| i.id).collect()
    }

    /// Mark an instance failed (simulated crash).
    pub fn fail_instance(&mut self, id: InstanceId) {
        let inst = self
            .instances
            .iter_mut()
            .find(|i| i.id == id)
            .expect("unknown instance id");
        inst.state = InstanceState::Failed;
    }

    /// Oakestra-style self-healing: re-deploy every failed instance on
    /// its original machine, returning `(old, new)` id pairs.
    pub fn redeploy_failed(&mut self, slas: &[ServiceSla]) -> Vec<(InstanceId, InstanceId)> {
        let failed: Vec<(InstanceId, String, usize)> = self
            .instances
            .iter()
            .filter(|i| i.state == InstanceState::Failed)
            .map(|i| (i.id, i.service.clone(), i.machine))
            .collect();
        let mut out = Vec::new();
        for (old_id, service, machine) in failed {
            let machine_name = self.machines[machine].name.clone();
            // The failed instance's resources are released before re-admission.
            if let Some(sla) = slas.iter().find(|s| s.service == service) {
                let (c, m) = self.allocated[machine];
                self.allocated[machine] =
                    ((c - sla.cpu_cores).max(0.0), (m - sla.memory_gb).max(0.0));
                if let Ok(new_id) = self.deploy_on(sla, &machine_name) {
                    out.push((old_id, new_id));
                }
            }
            self.instances.retain(|i| i.id != old_id);
        }
        out
    }

    /// Hardware meters of machine `mi`.
    pub fn meters_mut(&mut self, mi: usize) -> &mut MachineMeters {
        &mut self.meters[mi]
    }

    pub fn meters_of_instance(&mut self, id: InstanceId) -> &mut MachineMeters {
        let mi = self.instance(id).machine;
        &mut self.meters[mi]
    }

    /// Snapshot normalized hardware utilization per machine name:
    /// `(cpu %, gpu %, memory GB)`.
    pub fn hardware_snapshot(&mut self, now: SimTime) -> HashMap<String, (f64, f64, f64)> {
        let names: Vec<String> = self.machines.iter().map(|m| m.name.clone()).collect();
        names
            .into_iter()
            .enumerate()
            .map(|(i, n)| {
                let m = &mut self.meters[i];
                (n, (m.cpu.percent(now), m.gpu.percent(now), m.memory_gb))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn slas() -> Vec<ServiceSla> {
        vec![
            ServiceSla::new("primary", 1.0, 1.0, false),
            ServiceSla::new("sift", 2.0, 4.0, true),
        ]
    }

    fn cluster() -> Cluster {
        Cluster::testbed(NodeId(1), NodeId(2), NodeId(3))
    }

    #[test]
    fn deploy_on_named_machine() {
        let mut c = cluster();
        let id = c.deploy_on(&slas()[1], "E1").unwrap();
        let inst = c.instance(id);
        assert_eq!(inst.service, "sift");
        assert_eq!(c.machines()[inst.machine].name, "E1");
        assert_eq!(inst.replica, 0);
    }

    #[test]
    fn gpu_service_rejected_on_gpuless_machine() {
        let mut c = Cluster::new(vec![MachineSpec::client_host(NodeId(0))]);
        assert!(c.deploy_on(&slas()[1], "client-host").is_err());
    }

    #[test]
    fn capacity_admission_control() {
        let mut c = cluster();
        let fat = ServiceSla::new("fat", 3.0, 1.0, false);
        // Cloud has 4 cores: one fat fits, two don't.
        assert!(c.deploy_on(&fat, "cloud").is_ok());
        assert!(c.deploy_on(&fat, "cloud").is_err());
    }

    #[test]
    fn placement_spec_deploys_replicas() {
        let mut c = cluster();
        let p = PlacementSpec::replicated(&[("sift", &["E1", "E2"]), ("primary", &["E1"])]);
        let deployed = c.deploy_placement(&slas(), &p).unwrap();
        assert_eq!(deployed.len(), 2);
        assert_eq!(c.replicas_of("sift").len(), 2);
        // Replica ordinals assigned in order.
        let sift_ids = c.replicas_of("sift");
        assert_eq!(c.instance(sift_ids[0]).replica, 0);
        assert_eq!(c.instance(sift_ids[1]).replica, 1);
    }

    #[test]
    fn failure_and_redeploy() {
        let mut c = cluster();
        let id = c.deploy_on(&slas()[1], "E1").unwrap();
        c.fail_instance(id);
        assert!(c.replicas_of("sift").is_empty());
        let healed = c.redeploy_failed(&slas());
        assert_eq!(healed.len(), 1);
        assert_eq!(healed[0].0, id);
        let replicas = c.replicas_of("sift");
        assert_eq!(replicas.len(), 1);
        assert_ne!(replicas[0], id, "new instance gets a fresh id");
        assert_eq!(c.machines()[c.instance(replicas[0]).machine].name, "E1");
    }

    #[test]
    fn unknown_machine_errors() {
        let mut c = cluster();
        assert!(c.deploy_on(&slas()[0], "E9").is_err());
    }

    #[test]
    fn hardware_snapshot_reports_all_machines() {
        let mut c = cluster();
        let snap = c.hardware_snapshot(SimTime::from_secs(1));
        assert_eq!(snap.len(), 3);
        assert!(snap.contains_key("E1"));
        assert_eq!(snap["E2"], (0.0, 0.0, 0.0));
    }

    #[test]
    fn meters_accumulate_busy_time() {
        let mut c = cluster();
        let id = c.deploy_on(&slas()[1], "E1").unwrap();
        let t0 = SimTime::ZERO;
        let t1 = SimTime::from_secs(1);
        c.meters_of_instance(id).gpu.begin(t0);
        c.meters_of_instance(id).gpu.end(t1);
        let snap = c.hardware_snapshot(t1);
        // One of two GPUs busy the whole second → 50%.
        assert!((snap["E1"].1 - 50.0).abs() < 1e-9);
    }
}
