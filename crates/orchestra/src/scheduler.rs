//! Automatic SLA-driven placement — what Oakestra does when the operator
//! does *not* pin services to machines.
//!
//! The paper pins every configuration by hand (C1, C12, replica
//! vectors); this module adds the orchestrator-chosen alternative so
//! experiments can compare hand placement against three standard
//! scheduling disciplines over the same SLA set.

use serde::{Deserialize, Serialize};

use crate::cluster::Cluster;
use crate::sla::{PlacementSpec, ServiceSla};

/// Placement discipline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Discipline {
    /// First machine (by inventory order) that satisfies the SLA —
    /// k8s-default-like bin packing.
    FirstFit,
    /// Machine with the most unallocated CPU after placement — spreads
    /// load, akin to `LeastAllocated`.
    LeastLoaded,
    /// Round-robin over admissible machines — naive spreading.
    RoundRobin,
}

/// A computed placement plus its per-machine allocation summary.
#[derive(Debug, Clone)]
pub struct SchedulePlan {
    pub placement: PlacementSpec,
    /// `(machine name, instances assigned)`.
    pub assignments_per_machine: Vec<(String, usize)>,
}

/// Compute a placement for `replicas[i]` instances of `slas[i]` without
/// mutating `cluster` (pure planning; deploy with
/// [`Cluster::deploy_placement`]). Returns `Err` when some instance fits
/// nowhere.
pub fn schedule(
    cluster: &Cluster,
    slas: &[ServiceSla],
    replicas: &[usize],
    discipline: Discipline,
) -> Result<SchedulePlan, String> {
    assert_eq!(slas.len(), replicas.len(), "slas/replicas length mismatch");
    // Planning copies of per-machine remaining capacity.
    let mut remaining: Vec<(f64, f64)> = cluster
        .machines()
        .iter()
        .map(|m| (m.cpu_cores as f64, m.memory_gb))
        .collect();
    let mut counts = vec![0usize; cluster.machines().len()];
    let mut rr_cursor = 0usize;
    let mut assignments: Vec<(String, Vec<String>)> = Vec::new();

    for (sla, &n) in slas.iter().zip(replicas) {
        let mut machines_for_service = Vec::new();
        for _ in 0..n {
            let admissible: Vec<usize> = cluster
                .machines()
                .iter()
                .enumerate()
                .filter(|(i, m)| {
                    sla.admissible(m)
                        && remaining[*i].0 >= sla.cpu_cores
                        && remaining[*i].1 >= sla.memory_gb
                })
                .map(|(i, _)| i)
                .collect();
            if admissible.is_empty() {
                return Err(format!("no machine fits {}", sla.service));
            }
            let chosen = match discipline {
                Discipline::FirstFit => admissible[0],
                Discipline::LeastLoaded => *admissible
                    .iter()
                    .max_by(|&&a, &&b| {
                        // Most remaining CPU fraction after placement.
                        let fa = (remaining[a].0 - sla.cpu_cores)
                            / cluster.machines()[a].cpu_cores as f64;
                        let fb = (remaining[b].0 - sla.cpu_cores)
                            / cluster.machines()[b].cpu_cores as f64;
                        fa.partial_cmp(&fb).expect("finite fractions")
                    })
                    .expect("non-empty admissible set"),
                Discipline::RoundRobin => {
                    let pick = admissible[rr_cursor % admissible.len()];
                    rr_cursor += 1;
                    pick
                }
            };
            remaining[chosen].0 -= sla.cpu_cores;
            remaining[chosen].1 -= sla.memory_gb;
            counts[chosen] += 1;
            machines_for_service.push(cluster.machines()[chosen].name.clone());
        }
        assignments.push((sla.service.clone(), machines_for_service));
    }

    Ok(SchedulePlan {
        placement: PlacementSpec { assignments },
        assignments_per_machine: cluster
            .machines()
            .iter()
            .zip(&counts)
            .map(|(m, &c)| (m.name.clone(), c))
            .collect(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::NodeId;

    fn cluster() -> Cluster {
        Cluster::testbed(NodeId(1), NodeId(2), NodeId(3))
    }

    fn slas() -> Vec<ServiceSla> {
        vec![
            ServiceSla::new("primary", 0.5, 1.0, false),
            ServiceSla::new("sift", 1.0, 2.0, true),
            ServiceSla::new("encoding", 1.0, 2.0, true),
            ServiceSla::new("lsh", 1.0, 2.0, true),
            ServiceSla::new("matching", 1.0, 2.0, true),
        ]
    }

    #[test]
    fn first_fit_packs_the_first_machine() {
        let plan = schedule(&cluster(), &slas(), &[1; 5], Discipline::FirstFit).unwrap();
        // Inventory order is E1, E2, cloud: everything fits on E1.
        assert_eq!(plan.assignments_per_machine[0], ("E1".to_string(), 5));
    }

    #[test]
    fn least_loaded_prefers_the_big_machine() {
        let plan = schedule(&cluster(), &slas(), &[1; 5], Discipline::LeastLoaded).unwrap();
        // E2 has 64 cores — losing one core costs it the least fraction.
        let e2 = plan
            .assignments_per_machine
            .iter()
            .find(|(n, _)| n == "E2")
            .unwrap();
        assert!(
            e2.1 >= 4,
            "E2 should host most services: {:?}",
            plan.assignments_per_machine
        );
    }

    #[test]
    fn round_robin_spreads() {
        let plan = schedule(&cluster(), &slas(), &[1; 5], Discipline::RoundRobin).unwrap();
        let hosting = plan
            .assignments_per_machine
            .iter()
            .filter(|(_, c)| *c > 0)
            .count();
        assert!(hosting >= 2, "round-robin should use several machines");
    }

    #[test]
    fn plan_is_deployable() {
        let mut c = cluster();
        let plan = schedule(&c, &slas(), &[1, 2, 1, 1, 2], Discipline::LeastLoaded).unwrap();
        assert_eq!(plan.placement.total_instances(), 7);
        c.deploy_placement(&slas(), &plan.placement)
            .expect("planned placement must deploy");
    }

    #[test]
    fn gpu_constraint_respected_in_planning() {
        // A cluster whose only machine lacks a GPU cannot host sift.
        let c = Cluster::new(vec![crate::node::MachineSpec::client_host(NodeId(0))]);
        let err = schedule(&c, &slas(), &[1; 5], Discipline::FirstFit).unwrap_err();
        assert!(err.contains("sift") || err.contains("no machine"), "{err}");
    }

    #[test]
    fn capacity_exhaustion_detected() {
        let c = cluster();
        // 1000 sift replicas cannot fit anywhere.
        let slas = vec![ServiceSla::new("sift", 2.0, 4.0, true)];
        assert!(schedule(&c, &slas, &[1000], Discipline::LeastLoaded).is_err());
    }
}
