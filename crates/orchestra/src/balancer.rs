//! Replica load balancing.
//!
//! Oakestra load-balances requests across service replicas round-robin.
//! For stateful services the paper notes "frames balanced across sift
//! instances remain tied to that replica due to state restrictions" — the
//! sticky variant binds a flow key (client id) to the replica chosen for
//! its first request and keeps it there even if that replica congests,
//! which is exactly the limitation the scalability experiments expose.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

/// Removing the last replica of a service would leave nothing to route
/// to. Instead of panicking mid-run, [`Balancer::remove_replica`]
/// reports the outage and leaves the balancer untouched; the caller is
/// expected to stop routing to the service and account subsequent
/// frames as service-outage drops until a replica comes back.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LastReplica;

impl std::fmt::Display for LastReplica {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "cannot remove the last replica: service would be in outage"
        )
    }
}

impl std::error::Error for LastReplica {}

/// Balancing discipline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BalancerKind {
    /// Pure round-robin per request.
    RoundRobin,
    /// Round-robin on first sight of a flow key, then pinned.
    StickyByFlow,
}

/// Chooses a replica index in `0..n_replicas` for each request.
#[derive(Debug, Clone)]
pub struct Balancer {
    kind: BalancerKind,
    n_replicas: usize,
    next: usize,
    bindings: HashMap<u64, usize>,
}

impl Balancer {
    pub fn new(kind: BalancerKind, n_replicas: usize) -> Self {
        assert!(n_replicas >= 1, "balancer needs at least one replica");
        Balancer {
            kind,
            n_replicas,
            next: 0,
            bindings: HashMap::new(),
        }
    }

    pub fn n_replicas(&self) -> usize {
        self.n_replicas
    }

    pub fn kind(&self) -> BalancerKind {
        self.kind
    }

    /// Pick a replica for a request from flow `flow_key` (client id).
    pub fn pick(&mut self, flow_key: u64) -> usize {
        match self.kind {
            BalancerKind::RoundRobin => {
                let r = self.next;
                self.next = (self.next + 1) % self.n_replicas;
                r
            }
            BalancerKind::StickyByFlow => {
                if let Some(&r) = self.bindings.get(&flow_key) {
                    return r;
                }
                let r = self.next;
                self.next = (self.next + 1) % self.n_replicas;
                self.bindings.insert(flow_key, r);
                r
            }
        }
    }

    /// The replica a flow is bound to, if sticky and already seen.
    pub fn binding(&self, flow_key: u64) -> Option<usize> {
        self.bindings.get(&flow_key).copied()
    }

    /// Remove a failed replica: rebind its flows on next pick. Indices
    /// above `replica` shift down by one (mirroring instance-list
    /// compaction in the cluster). Removing the last replica is a
    /// service outage, reported instead of asserted so a mid-run
    /// failure degrades to counted drops rather than an abort.
    pub fn remove_replica(&mut self, replica: usize) -> Result<(), LastReplica> {
        assert!(replica < self.n_replicas);
        if self.n_replicas == 1 {
            // Flows bound to the dead replica are unbound either way.
            self.bindings.clear();
            return Err(LastReplica);
        }
        self.n_replicas -= 1;
        self.next %= self.n_replicas;
        self.bindings.retain(|_, r| *r != replica);
        for r in self.bindings.values_mut() {
            if *r > replica {
                *r -= 1;
            }
        }
        Ok(())
    }

    /// Add a replica (scale-out).
    pub fn add_replica(&mut self) {
        self.n_replicas += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn round_robin_cycles() {
        let mut b = Balancer::new(BalancerKind::RoundRobin, 3);
        let picks: Vec<_> = (0..6).map(|_| b.pick(0)).collect();
        assert_eq!(picks, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn sticky_pins_flows() {
        let mut b = Balancer::new(BalancerKind::StickyByFlow, 3);
        let first = b.pick(42);
        for _ in 0..10 {
            assert_eq!(b.pick(42), first);
        }
        // A different flow gets the next replica.
        let second = b.pick(43);
        assert_ne!(first, second);
        assert_eq!(b.binding(42), Some(first));
    }

    #[test]
    fn sticky_spreads_distinct_flows() {
        let mut b = Balancer::new(BalancerKind::StickyByFlow, 2);
        let r0 = b.pick(1);
        let r1 = b.pick(2);
        let r2 = b.pick(3);
        assert_ne!(r0, r1);
        assert_eq!(r0, r2); // wraps around
    }

    #[test]
    fn remove_replica_rebinds() {
        let mut b = Balancer::new(BalancerKind::StickyByFlow, 3);
        let flows: Vec<u64> = (0..3).collect();
        for &f in &flows {
            b.pick(f);
        }
        let victim = b.binding(1).unwrap();
        b.remove_replica(victim).expect("two replicas remain");
        assert_eq!(b.binding(1), None, "flows on the victim are unbound");
        // Remaining bindings are valid indices.
        for &f in &flows {
            if let Some(r) = b.binding(f) {
                assert!(r < b.n_replicas());
            }
        }
        // Re-pick lands in range.
        assert!(b.pick(1) < b.n_replicas());
    }

    #[test]
    fn removing_last_replica_reports_outage_without_panicking() {
        let mut b = Balancer::new(BalancerKind::StickyByFlow, 1);
        b.pick(42);
        assert_eq!(b.remove_replica(0), Err(LastReplica));
        // The balancer survives: still one (dead-to-the-caller) replica,
        // but the stale binding is gone so a later revival starts clean.
        assert_eq!(b.n_replicas(), 1);
        assert_eq!(b.binding(42), None);
        // Outage is recoverable: scale back out and routing resumes.
        b.add_replica();
        assert!(b.pick(42) < b.n_replicas());
    }

    proptest! {
        #[test]
        fn picks_always_in_range(
            n in 1usize..8,
            flows in proptest::collection::vec(0u64..20, 1..100),
            sticky in proptest::bool::ANY,
        ) {
            let kind = if sticky { BalancerKind::StickyByFlow } else { BalancerKind::RoundRobin };
            let mut b = Balancer::new(kind, n);
            for f in flows {
                prop_assert!(b.pick(f) < n);
            }
        }

        #[test]
        fn round_robin_is_fair(n in 1usize..6) {
            let mut b = Balancer::new(BalancerKind::RoundRobin, n);
            let mut counts = vec![0u32; n];
            for _ in 0..(n * 10) {
                counts[b.pick(0)] += 1;
            }
            for &c in &counts {
                prop_assert_eq!(c, 10);
            }
        }
    }
}
