//! Heartbeat failure detection (φ-accrual style, deterministic).
//!
//! Oakestra's root/cluster managers detect replica loss by missed
//! liveness reports and re-deploy the service (§3.2: "the failure is
//! detected, and a new instance is deployed"). This module is the
//! detection half of that loop, shared by both planes:
//!
//! - the DES feeds it *simulated* heartbeat timestamps (scheduled
//!   events, jitter drawn from a dedicated RNG stream so runs stay
//!   bit-identical);
//! - the real-UDP runtime feeds it wall-clock arrivals of heartbeat
//!   datagrams that traveled through the impairment shim.
//!
//! The suspicion statistic is a simplified φ-accrual: we keep an EWMA
//! of the observed inter-arrival interval per instance and declare an
//! instance *suspected* when the time since its last heartbeat exceeds
//! `suspect_factor × max(ewma_interval, nominal_interval)`. With an
//! exponential inter-arrival assumption this corresponds to a φ
//! threshold of `suspect_factor / ln 10`; expressing the knob in
//! "missed intervals" keeps it legible (3.0 ≈ "three beats missed").
//! The max() floor makes the detector robust to an instance that
//! happened to beat fast just before dying.
//!
//! The detector itself is pure state + arithmetic: no clocks, no RNG,
//! no I/O. Determinism is therefore inherited from the caller's
//! timestamps, which is what the failover proptests pin.

use std::collections::HashMap;

use crate::cluster::InstanceId;

/// Detector tuning. Times are in milliseconds (the unit both planes
/// already use for latency accounting).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DetectorConfig {
    /// Nominal heartbeat interval the senders aim for.
    pub interval_ms: f64,
    /// Suspect when `elapsed > suspect_factor × expected interval`.
    pub suspect_factor: f64,
    /// EWMA weight of the newest inter-arrival observation.
    pub alpha: f64,
}

impl Default for DetectorConfig {
    fn default() -> Self {
        DetectorConfig {
            interval_ms: 50.0,
            suspect_factor: 3.0,
            alpha: 0.2,
        }
    }
}

#[derive(Debug, Clone)]
struct Liveness {
    last_beat_ms: f64,
    /// EWMA of observed inter-arrival; seeded with the nominal interval.
    ewma_interval_ms: f64,
    suspected: bool,
}

/// A detection: which instance, when it was declared, and how stale its
/// last heartbeat was at that moment (the detector-side component of
/// detection latency).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Suspicion {
    pub instance: InstanceId,
    pub at_ms: f64,
    pub silence_ms: f64,
}

/// Per-instance heartbeat bookkeeping and suspicion checks.
#[derive(Debug, Clone)]
pub struct FailureDetector {
    cfg: DetectorConfig,
    instances: HashMap<InstanceId, Liveness>,
}

impl FailureDetector {
    pub fn new(cfg: DetectorConfig) -> Self {
        FailureDetector {
            cfg,
            instances: HashMap::new(),
        }
    }

    pub fn config(&self) -> DetectorConfig {
        self.cfg
    }

    /// Start watching an instance; `now_ms` counts as its first beat.
    pub fn register(&mut self, id: InstanceId, now_ms: f64) {
        self.instances.insert(
            id,
            Liveness {
                last_beat_ms: now_ms,
                ewma_interval_ms: self.cfg.interval_ms,
                suspected: false,
            },
        );
    }

    /// Stop watching an instance (it was deliberately torn down).
    pub fn deregister(&mut self, id: InstanceId) {
        self.instances.remove(&id);
    }

    /// Record a heartbeat. A beat from a suspected instance clears the
    /// suspicion (the φ-accrual "accrue down" path: the instance is
    /// alive after all, or its replacement took over the identity);
    /// returns `true` when that happened so the caller can log the
    /// recovery.
    pub fn heartbeat(&mut self, id: InstanceId, now_ms: f64) -> bool {
        let Some(live) = self.instances.get_mut(&id) else {
            return false;
        };
        let gap = (now_ms - live.last_beat_ms).max(0.0);
        // Only fold plausible inter-arrivals into the EWMA: the first
        // beat after an outage would otherwise poison the expected
        // interval and blind the detector to the next failure.
        if gap <= self.cfg.suspect_factor * live.ewma_interval_ms {
            live.ewma_interval_ms =
                (1.0 - self.cfg.alpha) * live.ewma_interval_ms + self.cfg.alpha * gap;
        }
        live.last_beat_ms = now_ms;
        std::mem::replace(&mut live.suspected, false)
    }

    /// Expected inter-arrival used for the suspicion threshold.
    fn expected_interval(&self, live: &Liveness) -> f64 {
        live.ewma_interval_ms.max(self.cfg.interval_ms)
    }

    /// Suspicion level in "missed expected intervals" (φ-like, ≥ 0).
    pub fn suspicion(&self, id: InstanceId, now_ms: f64) -> Option<f64> {
        let live = self.instances.get(&id)?;
        Some((now_ms - live.last_beat_ms).max(0.0) / self.expected_interval(live))
    }

    /// Sweep all instances; returns the *newly* suspected ones (each
    /// failure is reported exactly once until a heartbeat clears it).
    pub fn check(&mut self, now_ms: f64) -> Vec<Suspicion> {
        let mut out = Vec::new();
        let factor = self.cfg.suspect_factor;
        let mut ids: Vec<InstanceId> = self.instances.keys().copied().collect();
        // Deterministic report order regardless of hash-map iteration.
        ids.sort_by_key(|id| id.0);
        for id in ids {
            let expected = {
                let live = &self.instances[&id];
                self.expected_interval(live)
            };
            let live = self.instances.get_mut(&id).expect("present");
            let silence = (now_ms - live.last_beat_ms).max(0.0);
            if !live.suspected && silence > factor * expected {
                live.suspected = true;
                out.push(Suspicion {
                    instance: id,
                    at_ms: now_ms,
                    silence_ms: silence,
                });
            }
        }
        out
    }

    /// Whether an instance is currently suspected.
    pub fn is_suspected(&self, id: InstanceId) -> bool {
        self.instances
            .get(&id)
            .map(|l| l.suspected)
            .unwrap_or(false)
    }

    pub fn watched(&self) -> usize {
        self.instances.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn det() -> FailureDetector {
        FailureDetector::new(DetectorConfig {
            interval_ms: 50.0,
            suspect_factor: 3.0,
            alpha: 0.2,
        })
    }

    #[test]
    fn regular_heartbeats_never_suspect() {
        let mut d = det();
        d.register(InstanceId(1), 0.0);
        for k in 1..100 {
            let now = k as f64 * 50.0;
            d.heartbeat(InstanceId(1), now);
            assert!(d.check(now + 1.0).is_empty());
        }
    }

    #[test]
    fn silence_raises_suspicion_once() {
        let mut d = det();
        d.register(InstanceId(7), 0.0);
        for k in 1..10 {
            d.heartbeat(InstanceId(7), k as f64 * 50.0);
        }
        // Last beat at 450 ms; threshold is 3 × ~50 ms of silence.
        assert!(d.check(500.0).is_empty(), "one missed beat is tolerated");
        let s = d.check(650.0);
        assert_eq!(s.len(), 1);
        assert_eq!(s[0].instance, InstanceId(7));
        assert!(s[0].silence_ms >= 150.0);
        assert!(d.is_suspected(InstanceId(7)));
        // Reported exactly once while silent.
        assert!(d.check(2_000.0).is_empty());
    }

    #[test]
    fn heartbeat_after_suspicion_clears_it() {
        let mut d = det();
        d.register(InstanceId(3), 0.0);
        assert_eq!(d.check(1_000.0).len(), 1);
        assert!(d.heartbeat(InstanceId(3), 1_100.0), "beat reports recovery");
        assert!(!d.is_suspected(InstanceId(3)));
        // The outage gap must not have poisoned the expected interval:
        // a fresh silence is detected on the normal timescale again.
        assert_eq!(d.check(1_400.0).len(), 1);
    }

    #[test]
    fn jittery_but_alive_instance_stays_trusted() {
        let mut d = det();
        d.register(InstanceId(2), 0.0);
        // Alternating 30/70 ms gaps: mean 50, all below the 3× bar.
        let mut now = 0.0;
        for k in 0..60 {
            now += if k % 2 == 0 { 30.0 } else { 70.0 };
            d.heartbeat(InstanceId(2), now);
            assert!(d.check(now).is_empty());
        }
        let phi = d.suspicion(InstanceId(2), now + 50.0).unwrap();
        assert!(phi < 3.0, "one nominal gap of silence gives phi {phi}");
    }

    #[test]
    fn deregistered_instances_are_ignored() {
        let mut d = det();
        d.register(InstanceId(1), 0.0);
        d.deregister(InstanceId(1));
        assert!(d.check(10_000.0).is_empty());
        assert!(!d.heartbeat(InstanceId(1), 10_000.0));
        assert_eq!(d.suspicion(InstanceId(1), 10_000.0), None);
    }

    #[test]
    fn report_order_is_deterministic() {
        let mut d = det();
        for i in [9u32, 1, 5, 3] {
            d.register(InstanceId(i), 0.0);
        }
        let ids: Vec<u32> = d.check(1_000.0).iter().map(|s| s.instance.0).collect();
        assert_eq!(ids, vec![1, 3, 5, 9]);
    }
}
