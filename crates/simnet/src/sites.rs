//! The client → access-site overlay for scale-out worlds.
//!
//! At paper scale every client shares one network vantage point (the
//! `client-host` node). At 100k–1M clients that single node is neither
//! realistic nor useful for sharding, but making every client a
//! topology *node* would reintroduce the O(n²) state this refactor
//! removes. [`SiteMap`] is the compact middle ground: clients are not
//! nodes — each one carries a `u32` site index into a short list of
//! access-site nodes (built by
//! [`crate::Testbed::build_with_sites`]), so per-client routing state
//! is 4 bytes and all link/transport state stays O(sites).

use crate::topology::NodeId;

/// Compact client → access-site assignment.
#[derive(Debug, Clone)]
pub struct SiteMap {
    /// Site index per client.
    of_client: Vec<u32>,
    /// Topology node of each site.
    site_nodes: Vec<NodeId>,
}

impl SiteMap {
    /// Attach `clients` round-robin across `site_nodes` (client `i` to
    /// site `i % sites`) — the deterministic default assignment.
    pub fn round_robin(clients: usize, site_nodes: &[NodeId]) -> SiteMap {
        assert!(!site_nodes.is_empty(), "need at least one access site");
        SiteMap {
            of_client: (0..clients)
                .map(|i| (i % site_nodes.len()) as u32)
                .collect(),
            site_nodes: site_nodes.to_vec(),
        }
    }

    /// Explicit per-client assignment (tests and future mobility/locality
    /// experiments). Panics if an index is out of range.
    pub fn from_assignment(assignment: Vec<u32>, site_nodes: &[NodeId]) -> SiteMap {
        assert!(!site_nodes.is_empty(), "need at least one access site");
        assert!(
            assignment.iter().all(|&s| (s as usize) < site_nodes.len()),
            "site index out of range"
        );
        SiteMap {
            of_client: assignment,
            site_nodes: site_nodes.to_vec(),
        }
    }

    pub fn clients(&self) -> usize {
        self.of_client.len()
    }

    pub fn sites(&self) -> usize {
        self.site_nodes.len()
    }

    /// Site index of a client (also the event-queue shard key).
    #[inline]
    pub fn site_index(&self, client: usize) -> u32 {
        self.of_client[client]
    }

    /// Topology node a client's traffic enters and leaves through.
    #[inline]
    pub fn node_of(&self, client: usize) -> NodeId {
        self.site_nodes[self.of_client[client] as usize]
    }

    pub fn site_nodes(&self) -> &[NodeId] {
        &self.site_nodes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_covers_all_sites() {
        let nodes = [NodeId(0), NodeId(1), NodeId(2)];
        let map = SiteMap::round_robin(7, &nodes);
        assert_eq!(map.clients(), 7);
        assert_eq!(map.sites(), 3);
        assert_eq!(map.node_of(0), NodeId(0));
        assert_eq!(map.node_of(4), NodeId(1));
        assert_eq!(map.site_index(5), 2);
    }

    #[test]
    fn explicit_assignment_respected() {
        let nodes = [NodeId(10), NodeId(20)];
        let map = SiteMap::from_assignment(vec![1, 1, 0], &nodes);
        assert_eq!(map.node_of(0), NodeId(20));
        assert_eq!(map.node_of(2), NodeId(10));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_assignment_panics() {
        SiteMap::from_assignment(vec![2], &[NodeId(0), NodeId(1)]);
    }
}
