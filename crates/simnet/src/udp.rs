//! UDP datagram transport over a [`Topology`].
//!
//! [`UdpNet`] is the single place the pipeline layer asks "what happens
//! to this datagram?". It owns its RNG stream (split from the experiment
//! seed) and per-pair traffic counters, so experiments can report bytes
//! on the wire per link — how we verified scAtteR++'s 180 KB → 480 KB
//! frame growth shows up as ~2.7× client-uplink traffic.

use simcore::{SimDuration, SimRng, SimTime};

use crate::gilbert::GilbertElliott;
use crate::link::Delivery;
use crate::topology::{NodeId, Topology};

/// Traffic counters for one direction of one node pair.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PairStats {
    pub datagrams_sent: u64,
    pub datagrams_lost: u64,
    pub bytes_sent: u64,
}

/// Whole-transport aggregate of every direction's counters — what the
/// observatory's per-phase attribution table reconciles its net-decide
/// call count against.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetTotals {
    pub datagrams_sent: u64,
    pub datagrams_lost: u64,
    pub bytes_sent: u64,
}

/// Where a direction's state lives in the active [`DirStore`].
#[derive(Debug, Clone, Copy)]
enum Slot {
    /// Index into the pair vectors (dense: `src * n + dst`, including
    /// the diagonal; sparse: `2 * edge_id + direction`).
    Pair(usize),
    /// Sparse-layout loopback state, indexed by node.
    Loop(usize),
}

/// Per-direction transport state (counters, transmitter free times,
/// burst channels), in the layout matching the topology's.
///
/// `Dense` mirrors the topology's pair matrix: with a handful of nodes
/// the `(src, dst)` multiply-add beats any lookup, and the three SipHash
/// probes `send` once performed per datagram dominated the transport's
/// cost. `Sparse` allocates two slots per *connected edge*
/// (`2 * edge_id + direction`) plus per-node loopback slots — O(edges)
/// instead of O(n²), which is what lets a 100k-client world with
/// thousands of access-site nodes keep the transport's memory flat.
#[derive(Debug)]
enum DirStore {
    Dense {
        /// Node count the matrices were sized for (re-sized lazily if
        /// the topology grows after construction).
        n: usize,
        stats: Vec<PairStats>,
        tx_free_at: Vec<SimTime>,
        burst: Vec<Option<GilbertElliott>>,
    },
    Sparse {
        stats: Vec<PairStats>,
        tx_free_at: Vec<SimTime>,
        burst: Vec<Option<GilbertElliott>>,
        loop_stats: Vec<PairStats>,
        loop_tx_free_at: Vec<SimTime>,
        loop_burst: Vec<Option<GilbertElliott>>,
    },
}

impl DirStore {
    fn stats_mut(&mut self, slot: Slot) -> &mut PairStats {
        match (self, slot) {
            (DirStore::Dense { stats, .. }, Slot::Pair(i))
            | (DirStore::Sparse { stats, .. }, Slot::Pair(i)) => &mut stats[i],
            (DirStore::Sparse { loop_stats, .. }, Slot::Loop(i)) => &mut loop_stats[i],
            (DirStore::Dense { .. }, Slot::Loop(_)) => {
                unreachable!("dense store has no loop slots")
            }
        }
    }

    fn tx_free_at_mut(&mut self, slot: Slot) -> &mut SimTime {
        match (self, slot) {
            (DirStore::Dense { tx_free_at, .. }, Slot::Pair(i))
            | (DirStore::Sparse { tx_free_at, .. }, Slot::Pair(i)) => &mut tx_free_at[i],
            (
                DirStore::Sparse {
                    loop_tx_free_at, ..
                },
                Slot::Loop(i),
            ) => &mut loop_tx_free_at[i],
            (DirStore::Dense { .. }, Slot::Loop(_)) => {
                unreachable!("dense store has no loop slots")
            }
        }
    }

    fn burst_mut(&mut self, slot: Slot) -> &mut Option<GilbertElliott> {
        match (self, slot) {
            (DirStore::Dense { burst, .. }, Slot::Pair(i))
            | (DirStore::Sparse { burst, .. }, Slot::Pair(i)) => &mut burst[i],
            (DirStore::Sparse { loop_burst, .. }, Slot::Loop(i)) => &mut loop_burst[i],
            (DirStore::Dense { .. }, Slot::Loop(_)) => {
                unreachable!("dense store has no loop slots")
            }
        }
    }
}

/// Datagram transport facade: topology + RNG + counters + per-direction
/// serialization queues for bandwidth-limited links. The directed state
/// lives in a [`DirStore`] whose layout follows the topology's — dense
/// matrices for the paper testbed, per-edge vectors at scale. Both
/// layouts execute the identical decision sequence (and draw from the
/// RNG in the identical order), so outcomes are layout-independent;
/// the sparse-vs-dense proptest pins that.
#[derive(Debug)]
pub struct UdpNet {
    topo: Topology,
    rng: SimRng,
    store: DirStore,
    /// `true` only when at least one burst channel is installed, so the
    /// common no-burst run skips the per-send check entirely.
    has_burst: bool,
}

impl UdpNet {
    pub fn new(topo: Topology, rng: SimRng) -> Self {
        let n = topo.node_count();
        let store = if topo.is_sparse() {
            let slots = 2 * topo.edge_count();
            DirStore::Sparse {
                stats: vec![PairStats::default(); slots],
                tx_free_at: vec![SimTime::ZERO; slots],
                burst: (0..slots).map(|_| None).collect(),
                loop_stats: vec![PairStats::default(); n],
                loop_tx_free_at: vec![SimTime::ZERO; n],
                loop_burst: (0..n).map(|_| None).collect(),
            }
        } else {
            DirStore::Dense {
                n,
                stats: vec![PairStats::default(); n * n],
                tx_free_at: vec![SimTime::ZERO; n * n],
                burst: (0..n * n).map(|_| None).collect(),
            }
        };
        UdpNet {
            topo,
            rng,
            store,
            has_burst: false,
        }
    }

    /// Resolve the `(src, dst)` direction's slot, growing the store
    /// first if the topology gained nodes/edges through
    /// [`UdpNet::topology_mut`] after construction. Panics if the pair
    /// is unroutable — a placement bug, not a runtime condition.
    #[inline]
    fn dir_slot(&mut self, src: NodeId, dst: NodeId) -> Slot {
        match &mut self.store {
            DirStore::Dense { n, .. } => {
                let count = self.topo.node_count();
                if count != *n {
                    self.resize_dense(count);
                }
                Slot::Pair(src.0 as usize * count + dst.0 as usize)
            }
            DirStore::Sparse {
                stats,
                tx_free_at,
                burst,
                loop_stats,
                loop_tx_free_at,
                loop_burst,
            } => {
                if src == dst {
                    let node = src.0 as usize;
                    if node >= loop_stats.len() {
                        let count = self.topo.node_count();
                        loop_stats.resize(count, PairStats::default());
                        loop_tx_free_at.resize(count, SimTime::ZERO);
                        loop_burst.resize_with(count, || None);
                    }
                    return Slot::Loop(node);
                }
                let (edge, _) = self
                    .topo
                    .edge_entry(src, dst)
                    .unwrap_or_else(|| panic!("no route {:?} -> {:?}", src, dst));
                let slots = 2 * self.topo.edge_count();
                if stats.len() < slots {
                    stats.resize(slots, PairStats::default());
                    tx_free_at.resize(slots, SimTime::ZERO);
                    burst.resize_with(slots, || None);
                }
                Slot::Pair(2 * edge as usize + usize::from(src > dst))
            }
        }
    }

    #[cold]
    fn resize_dense(&mut self, count: usize) {
        let DirStore::Dense {
            n,
            stats,
            tx_free_at,
            burst,
        } = &mut self.store
        else {
            unreachable!("resize_dense on sparse store");
        };
        let old = *n;
        let mut new_stats = vec![PairStats::default(); count * count];
        let mut new_tx = vec![SimTime::ZERO; count * count];
        let mut new_burst: Vec<Option<GilbertElliott>> = (0..count * count).map(|_| None).collect();
        for a in 0..old {
            for b in 0..old {
                new_stats[a * count + b] = stats[a * old + b];
                new_tx[a * count + b] = tx_free_at[a * old + b];
                new_burst[a * count + b] = burst[a * old + b].take();
            }
        }
        *n = count;
        *stats = new_stats;
        *tx_free_at = new_tx;
        *burst = new_burst;
    }

    /// Install a burst-loss channel on the `(src, dst)` direction (and
    /// an independent one on the reverse if called twice). Fragment
    /// losses on this direction then come from the Markov channel
    /// instead of the link's i.i.d. loss probability.
    pub fn set_burst_channel(&mut self, src: NodeId, dst: NodeId, ch: GilbertElliott) {
        let slot = self.dir_slot(src, dst);
        *self.store.burst_mut(slot) = Some(ch);
        self.has_burst = true;
    }

    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    pub fn topology_mut(&mut self) -> &mut Topology {
        &mut self.topo
    }

    /// Offer a datagram of `bytes` from `src` to `dst` at instant `now`.
    ///
    /// Bandwidth-limited links serialize datagrams in FIFO order per
    /// direction: a busy transmitter queues the datagram (adding delay)
    /// up to the link's queue limit, beyond which the buffer drops it —
    /// the congestion behaviour the paper's hybrid edge-cloud deployment
    /// suffers from. Panics if the pair is unroutable — a placement bug,
    /// not a runtime condition.
    pub fn send(&mut self, src: NodeId, dst: NodeId, bytes: usize, now: SimTime) -> Delivery {
        let slot = self.dir_slot(src, dst);
        let link = self
            .topo
            .link_between(src, dst)
            .unwrap_or_else(|| panic!("no route {:?} -> {:?}", src, dst));
        // Per-fragment loss / propagation from the link model (which also
        // accounts for per-byte serialization on an idle transmitter).
        let mut outcome = link.send(bytes, &mut self.rng);
        let (bandwidth_bps, queue_limit) = (link.bandwidth_bps, link.queue_limit);
        // Burst-loss override: advance the Markov channel one step per
        // fragment; any lost fragment kills the datagram.
        if self.has_burst {
            if let Some(ch) = self.store.burst_mut(slot).as_mut() {
                let frags = crate::link::Link::fragments(bytes);
                let mut lost = false;
                for _ in 0..frags {
                    lost |= ch.lose_packet(&mut self.rng);
                }
                if lost {
                    outcome = Delivery::Lost;
                }
            }
        }
        // FIFO transmitter queueing for bandwidth-limited links.
        if let (Delivery::Delayed(d), Some(bps)) = (outcome, bandwidth_bps) {
            let ser = SimDuration::from_secs_f64(bytes as f64 * 8.0 / bps);
            let tx_free_at = self.store.tx_free_at_mut(slot);
            let start = (*tx_free_at).max(now);
            let queue_wait = start.saturating_since(now);
            if queue_wait > queue_limit {
                outcome = Delivery::Lost;
            } else {
                *tx_free_at = start + ser;
                // `link.send` already charged one serialization time; add
                // only the queueing component.
                outcome = Delivery::Delayed(d + queue_wait);
            }
        }
        let entry = self.store.stats_mut(slot);
        entry.datagrams_sent += 1;
        entry.bytes_sent += bytes as u64;
        if outcome.is_lost() {
            entry.datagrams_lost += 1;
        }
        outcome
    }

    /// Counters for the `(src, dst)` direction.
    pub fn pair_stats(&self, src: NodeId, dst: NodeId) -> PairStats {
        match &self.store {
            DirStore::Dense { n, stats, .. } => {
                // Matrices lag a grown topology; new pairs have no traffic.
                let (s, d) = (src.0 as usize, dst.0 as usize);
                if s >= *n || d >= *n {
                    return PairStats::default();
                }
                stats[s * *n + d]
            }
            DirStore::Sparse {
                stats, loop_stats, ..
            } => {
                if src == dst {
                    return loop_stats.get(src.0 as usize).copied().unwrap_or_default();
                }
                match self.topo.edge_entry(src, dst) {
                    Some((edge, _)) => stats
                        .get(2 * edge as usize + usize::from(src > dst))
                        .copied()
                        .unwrap_or_default(),
                    None => PairStats::default(),
                }
            }
        }
    }

    /// Total bytes offered to the network (all pairs, both directions).
    pub fn total_bytes(&self) -> u64 {
        match &self.store {
            DirStore::Dense { stats, .. } => stats.iter().map(|s| s.bytes_sent).sum(),
            DirStore::Sparse {
                stats, loop_stats, ..
            } => stats
                .iter()
                .chain(loop_stats.iter())
                .map(|s| s.bytes_sent)
                .sum(),
        }
    }

    /// One-pass aggregate across all pairs and both directions.
    pub fn totals(&self) -> NetTotals {
        let fold = |acc: NetTotals, s: &PairStats| NetTotals {
            datagrams_sent: acc.datagrams_sent + s.datagrams_sent,
            datagrams_lost: acc.datagrams_lost + s.datagrams_lost,
            bytes_sent: acc.bytes_sent + s.bytes_sent,
        };
        match &self.store {
            DirStore::Dense { stats, .. } => stats.iter().fold(NetTotals::default(), fold),
            DirStore::Sparse {
                stats, loop_stats, ..
            } => stats
                .iter()
                .chain(loop_stats.iter())
                .fold(NetTotals::default(), fold),
        }
    }

    /// Total datagrams lost across all pairs.
    pub fn total_lost(&self) -> u64 {
        match &self.store {
            DirStore::Dense { stats, .. } => stats.iter().map(|s| s.datagrams_lost).sum(),
            DirStore::Sparse {
                stats, loop_stats, ..
            } => stats
                .iter()
                .chain(loop_stats.iter())
                .map(|s| s.datagrams_lost)
                .sum(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::Link;
    use crate::topology::Testbed;
    use simcore::SimDuration;

    #[test]
    fn burst_channel_overrides_link_loss() {
        let mut topo = Topology::new();
        let a = topo.add_node("a");
        let b = topo.add_node("b");
        topo.connect(a, b, Link::with_latency(SimDuration::from_millis(1)));
        let mut net = UdpNet::new(topo, SimRng::new(9));
        net.set_burst_channel(a, b, GilbertElliott::with_average_loss(0.3, 10.0));
        let mut lost = 0;
        for _ in 0..5000 {
            if net.send(a, b, 100, SimTime::ZERO).is_lost() {
                lost += 1;
            }
        }
        let rate = lost as f64 / 5000.0;
        assert!((rate - 0.3).abs() < 0.06, "burst loss rate {rate}");
        // Reverse direction untouched.
        assert!(!net.send(b, a, 100, SimTime::ZERO).is_lost());
    }

    #[test]
    fn bandwidth_queueing_is_fifo_per_direction() {
        let mut topo = Topology::new();
        let a = topo.add_node("a");
        let b = topo.add_node("b");
        // 8 Mbps: a 10_000-byte datagram takes 10 ms to serialize.
        topo.connect(
            a,
            b,
            Link::with_latency(SimDuration::from_millis(1)).bandwidth_mbps(8.0),
        );
        let mut net = UdpNet::new(topo, SimRng::new(4));
        let d1 = net.send(a, b, 10_000, SimTime::ZERO).delay().unwrap();
        let d2 = net.send(a, b, 10_000, SimTime::ZERO).delay().unwrap();
        // Second datagram queues behind the first: ≥ 10 ms more delay.
        assert!(
            d2.as_millis_f64() >= d1.as_millis_f64() + 9.5,
            "{d1} then {d2}"
        );
    }

    #[test]
    fn bandwidth_queue_overflow_drops() {
        let mut topo = Topology::new();
        let a = topo.add_node("a");
        let b = topo.add_node("b");
        let mut link = Link::with_latency(SimDuration::from_millis(1)).bandwidth_mbps(8.0);
        link.queue_limit = SimDuration::from_millis(15);
        topo.connect(a, b, link);
        let mut net = UdpNet::new(topo, SimRng::new(5));
        // Each datagram serializes in 10 ms; the third would wait 20 ms.
        assert!(!net.send(a, b, 10_000, SimTime::ZERO).is_lost());
        assert!(!net.send(a, b, 10_000, SimTime::ZERO).is_lost());
        assert!(net.send(a, b, 10_000, SimTime::ZERO).is_lost());
    }

    #[test]
    fn send_over_testbed_accumulates_stats() {
        let (topo, tb) = Testbed::build();
        let mut net = UdpNet::new(topo, SimRng::new(1));
        for _ in 0..10 {
            let d = net.send(tb.client_host, tb.e1, 1400, SimTime::ZERO);
            assert!(!d.is_lost());
        }
        let s = net.pair_stats(tb.client_host, tb.e1);
        assert_eq!(s.datagrams_sent, 10);
        assert_eq!(s.bytes_sent, 14_000);
        assert_eq!(s.datagrams_lost, 0);
        // Reverse direction untouched.
        assert_eq!(net.pair_stats(tb.e1, tb.client_host).datagrams_sent, 0);
    }

    #[test]
    fn lossy_link_counts_losses() {
        let mut topo = Topology::new();
        let a = topo.add_node("a");
        let b = topo.add_node("b");
        topo.connect(
            a,
            b,
            Link::with_latency(SimDuration::from_millis(1)).loss(0.5),
        );
        let mut net = UdpNet::new(topo, SimRng::new(2));
        for _ in 0..1000 {
            net.send(a, b, 100, SimTime::ZERO);
        }
        let s = net.pair_stats(a, b);
        assert!(s.datagrams_lost > 350 && s.datagrams_lost < 650, "{s:?}");
        assert_eq!(net.total_lost(), s.datagrams_lost);
    }

    #[test]
    #[should_panic(expected = "no route")]
    fn unroutable_pair_panics() {
        let mut topo = Topology::new();
        let a = topo.add_node("a");
        let b = topo.add_node("b");
        let mut net = UdpNet::new(topo, SimRng::new(3));
        net.send(a, b, 1, SimTime::ZERO);
    }

    #[test]
    #[should_panic(expected = "no route")]
    fn sparse_unroutable_pair_panics() {
        let mut topo = Topology::sparse();
        let a = topo.add_node("a");
        let b = topo.add_node("b");
        let mut net = UdpNet::new(topo, SimRng::new(3));
        net.send(a, b, 1, SimTime::ZERO);
    }

    #[test]
    fn same_seed_same_outcomes() {
        let run = |seed| {
            let (topo, tb) = Testbed::build();
            let mut net = UdpNet::new(topo, SimRng::new(seed));
            (0..100)
                .map(|_| {
                    net.send(tb.client_host, tb.cloud, 50_000, SimTime::ZERO)
                        .delay()
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10));
    }

    #[test]
    fn sparse_loopback_and_stats() {
        let mut topo = Topology::sparse();
        let a = topo.add_node("a");
        let b = topo.add_node("b");
        topo.connect(a, b, Link::with_latency(SimDuration::from_millis(1)));
        let mut net = UdpNet::new(topo, SimRng::new(6));
        assert!(!net.send(a, a, 500, SimTime::ZERO).is_lost());
        net.send(a, b, 100, SimTime::ZERO);
        net.send(b, a, 100, SimTime::ZERO);
        assert_eq!(net.pair_stats(a, a).bytes_sent, 500);
        assert_eq!(net.pair_stats(a, b).datagrams_sent, 1);
        assert_eq!(net.pair_stats(b, a).datagrams_sent, 1);
        assert_eq!(net.total_bytes(), 700);
        let t = net.totals();
        assert_eq!(t.datagrams_sent, 3);
        assert_eq!(t.bytes_sent, 700);
        assert_eq!(t.datagrams_lost, net.total_lost());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::link::Link;
    use proptest::prelude::*;
    use simcore::SimDuration;

    proptest! {
        /// Same world, same seed, same send sequence: the dense matrix and
        /// the sparse adjacency store must produce identical deliveries and
        /// identical counters. This is the layout-equivalence guarantee the
        /// automatic dense/sparse selection rests on.
        #[test]
        fn sparse_store_matches_dense(
            n in 2usize..24,
            seed in 0u64..1000,
            edges in proptest::collection::vec((0usize..24, 0usize..24, 1u64..20, 0u8..2), 1..40),
            sends in proptest::collection::vec((0usize..24, 0usize..24, 1usize..30_000, 0u64..50), 1..200),
        ) {
            let build = |sparse: bool| {
                let mut topo = if sparse { Topology::sparse() } else { Topology::new() };
                for i in 0..n {
                    topo.add_node(&format!("n{i}"));
                }
                for &(a, b, rtt, bw) in &edges {
                    let (a, b) = (a % n, b % n);
                    if a == b {
                        continue;
                    }
                    let mut link = Link::from_rtt_ms(rtt as f64).loss(0.05);
                    if bw == 1 {
                        link = link.bandwidth_mbps(8.0);
                    }
                    topo.connect(NodeId(a as u32), NodeId(b as u32), link);
                }
                UdpNet::new(topo, SimRng::new(seed))
            };
            let mut dense = build(false);
            let mut sparse = build(true);
            prop_assert!(!dense.topology().is_sparse());
            prop_assert!(sparse.topology().is_sparse());
            for &(src, dst, bytes, at_ms) in &sends {
                let (src, dst) = (NodeId((src % n) as u32), NodeId((dst % n) as u32));
                if src != dst && dense.topology().link_between(src, dst).is_none() {
                    continue;
                }
                let now = SimTime::from_millis(at_ms);
                let d = dense.send(src, dst, bytes, now);
                let s = sparse.send(src, dst, bytes, now);
                prop_assert_eq!(d.delay(), s.delay(), "delivery diverged for {:?}->{:?}", src, dst);
                prop_assert_eq!(dense.pair_stats(src, dst), sparse.pair_stats(src, dst));
            }
            prop_assert_eq!(dense.total_bytes(), sparse.total_bytes());
            prop_assert_eq!(dense.total_lost(), sparse.total_lost());
        }

        /// Burst channels behave identically across layouts too (they sit
        /// on the same per-direction slots).
        #[test]
        fn sparse_burst_matches_dense(
            seed in 0u64..500,
            sends in proptest::collection::vec((0u8..2, 1usize..5_000), 1..150),
        ) {
            let build = |sparse: bool| {
                let mut topo = if sparse { Topology::sparse() } else { Topology::new() };
                let a = topo.add_node("a");
                let b = topo.add_node("b");
                topo.connect(a, b, Link::with_latency(SimDuration::from_millis(1)));
                let mut net = UdpNet::new(topo, SimRng::new(seed));
                net.set_burst_channel(a, b, GilbertElliott::with_average_loss(0.2, 8.0));
                (net, a, b)
            };
            let (mut dense, da, db) = build(false);
            let (mut sparse, sa, sb) = build(true);
            for &(rev, bytes) in &sends {
                let (src, dst) = if rev == 0 { (da, db) } else { (db, da) };
                let (ssrc, sdst) = if rev == 0 { (sa, sb) } else { (sb, sa) };
                let d = dense.send(src, dst, bytes, SimTime::ZERO);
                let s = sparse.send(ssrc, sdst, bytes, SimTime::ZERO);
                prop_assert_eq!(d.delay(), s.delay());
            }
            prop_assert_eq!(dense.total_lost(), sparse.total_lost());
        }
    }
}
