//! UDP datagram transport over a [`Topology`].
//!
//! [`UdpNet`] is the single place the pipeline layer asks "what happens
//! to this datagram?". It owns its RNG stream (split from the experiment
//! seed) and per-pair traffic counters, so experiments can report bytes
//! on the wire per link — how we verified scAtteR++'s 180 KB → 480 KB
//! frame growth shows up as ~2.7× client-uplink traffic.

use simcore::{SimDuration, SimRng, SimTime};

use crate::gilbert::GilbertElliott;
use crate::link::Delivery;
use crate::topology::{NodeId, Topology};

/// Traffic counters for one direction of one node pair.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PairStats {
    pub datagrams_sent: u64,
    pub datagrams_lost: u64,
    pub bytes_sent: u64,
}

/// Datagram transport facade: topology + RNG + counters + per-direction
/// serialization queues for bandwidth-limited links.
///
/// Per-direction state (counters, transmitter free times, burst
/// channels) lives in dense `n × n` matrices indexed by `(src, dst)`:
/// `send` is called for every datagram in the simulation, and the three
/// hash lookups it used to perform per call (SipHash each) dominated
/// the transport's cost with only a handful of nodes.
#[derive(Debug)]
pub struct UdpNet {
    topo: Topology,
    rng: SimRng,
    /// Node count the matrices were sized for (re-sized lazily if the
    /// topology grows after construction).
    n: usize,
    stats: Vec<PairStats>,
    /// When the (src, dst) direction's transmitter frees up.
    tx_free_at: Vec<SimTime>,
    /// Optional per-direction burst-loss channels (Gilbert–Elliott),
    /// replacing the link's i.i.d. fragment loss when present. `true`
    /// in `has_burst` only when at least one channel is installed, so
    /// the common no-burst run skips the per-send check entirely.
    burst: Vec<Option<GilbertElliott>>,
    has_burst: bool,
}

impl UdpNet {
    pub fn new(topo: Topology, rng: SimRng) -> Self {
        let n = topo.node_count();
        UdpNet {
            topo,
            rng,
            n,
            stats: vec![PairStats::default(); n * n],
            tx_free_at: vec![SimTime::ZERO; n * n],
            burst: (0..n * n).map(|_| None).collect(),
            has_burst: false,
        }
    }

    /// Directed-pair matrix slot; grows the matrices first if nodes were
    /// added through [`UdpNet::topology_mut`] after construction.
    #[inline]
    fn dir_index(&mut self, src: NodeId, dst: NodeId) -> usize {
        let n = self.topo.node_count();
        if n != self.n {
            self.resize_matrices(n);
        }
        src.0 as usize * n + dst.0 as usize
    }

    #[cold]
    fn resize_matrices(&mut self, n: usize) {
        let old = self.n;
        let mut stats = vec![PairStats::default(); n * n];
        let mut tx_free_at = vec![SimTime::ZERO; n * n];
        let mut burst: Vec<Option<GilbertElliott>> = (0..n * n).map(|_| None).collect();
        for a in 0..old {
            for b in 0..old {
                stats[a * n + b] = self.stats[a * old + b];
                tx_free_at[a * n + b] = self.tx_free_at[a * old + b];
                burst[a * n + b] = self.burst[a * old + b].take();
            }
        }
        self.stats = stats;
        self.tx_free_at = tx_free_at;
        self.burst = burst;
        self.n = n;
    }

    /// Install a burst-loss channel on the `(src, dst)` direction (and
    /// an independent one on the reverse if called twice). Fragment
    /// losses on this direction then come from the Markov channel
    /// instead of the link's i.i.d. loss probability.
    pub fn set_burst_channel(&mut self, src: NodeId, dst: NodeId, ch: GilbertElliott) {
        let idx = self.dir_index(src, dst);
        self.burst[idx] = Some(ch);
        self.has_burst = true;
    }

    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    pub fn topology_mut(&mut self) -> &mut Topology {
        &mut self.topo
    }

    /// Offer a datagram of `bytes` from `src` to `dst` at instant `now`.
    ///
    /// Bandwidth-limited links serialize datagrams in FIFO order per
    /// direction: a busy transmitter queues the datagram (adding delay)
    /// up to the link's queue limit, beyond which the buffer drops it —
    /// the congestion behaviour the paper's hybrid edge-cloud deployment
    /// suffers from. Panics if the pair is unroutable — a placement bug,
    /// not a runtime condition.
    pub fn send(&mut self, src: NodeId, dst: NodeId, bytes: usize, now: SimTime) -> Delivery {
        let idx = self.dir_index(src, dst);
        let link = self
            .topo
            .link_between(src, dst)
            .unwrap_or_else(|| panic!("no route {:?} -> {:?}", src, dst));
        // Per-fragment loss / propagation from the link model (which also
        // accounts for per-byte serialization on an idle transmitter).
        let mut outcome = link.send(bytes, &mut self.rng);
        let (bandwidth_bps, queue_limit) = (link.bandwidth_bps, link.queue_limit);
        // Burst-loss override: advance the Markov channel one step per
        // fragment; any lost fragment kills the datagram.
        if self.has_burst {
            if let Some(ch) = self.burst[idx].as_mut() {
                let frags = crate::link::Link::fragments(bytes);
                let mut lost = false;
                for _ in 0..frags {
                    lost |= ch.lose_packet(&mut self.rng);
                }
                if lost {
                    outcome = Delivery::Lost;
                }
            }
        }
        // FIFO transmitter queueing for bandwidth-limited links.
        if let (Delivery::Delayed(d), Some(bps)) = (outcome, bandwidth_bps) {
            let ser = SimDuration::from_secs_f64(bytes as f64 * 8.0 / bps);
            let free_at = self.tx_free_at[idx];
            let start = free_at.max(now);
            let queue_wait = start.saturating_since(now);
            if queue_wait > queue_limit {
                outcome = Delivery::Lost;
            } else {
                self.tx_free_at[idx] = start + ser;
                // `link.send` already charged one serialization time; add
                // only the queueing component.
                outcome = Delivery::Delayed(d + queue_wait);
            }
        }
        let entry = &mut self.stats[idx];
        entry.datagrams_sent += 1;
        entry.bytes_sent += bytes as u64;
        if outcome.is_lost() {
            entry.datagrams_lost += 1;
        }
        outcome
    }

    /// Counters for the `(src, dst)` direction.
    pub fn pair_stats(&self, src: NodeId, dst: NodeId) -> PairStats {
        let n = self.topo.node_count();
        if n != self.n {
            // Matrices lag a grown topology; new pairs have no traffic.
            let (s, d) = (src.0 as usize, dst.0 as usize);
            if s >= self.n || d >= self.n {
                return PairStats::default();
            }
            return self.stats[s * self.n + d];
        }
        self.stats[src.0 as usize * n + dst.0 as usize]
    }

    /// Total bytes offered to the network (all pairs, both directions).
    pub fn total_bytes(&self) -> u64 {
        self.stats.iter().map(|s| s.bytes_sent).sum()
    }

    /// Total datagrams lost across all pairs.
    pub fn total_lost(&self) -> u64 {
        self.stats.iter().map(|s| s.datagrams_lost).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::Link;
    use crate::topology::Testbed;
    use simcore::SimDuration;

    #[test]
    fn burst_channel_overrides_link_loss() {
        let mut topo = Topology::new();
        let a = topo.add_node("a");
        let b = topo.add_node("b");
        topo.connect(a, b, Link::with_latency(SimDuration::from_millis(1)));
        let mut net = UdpNet::new(topo, SimRng::new(9));
        net.set_burst_channel(a, b, GilbertElliott::with_average_loss(0.3, 10.0));
        let mut lost = 0;
        for _ in 0..5000 {
            if net.send(a, b, 100, SimTime::ZERO).is_lost() {
                lost += 1;
            }
        }
        let rate = lost as f64 / 5000.0;
        assert!((rate - 0.3).abs() < 0.06, "burst loss rate {rate}");
        // Reverse direction untouched.
        assert!(!net.send(b, a, 100, SimTime::ZERO).is_lost());
    }

    #[test]
    fn bandwidth_queueing_is_fifo_per_direction() {
        let mut topo = Topology::new();
        let a = topo.add_node("a");
        let b = topo.add_node("b");
        // 8 Mbps: a 10_000-byte datagram takes 10 ms to serialize.
        topo.connect(
            a,
            b,
            Link::with_latency(SimDuration::from_millis(1)).bandwidth_mbps(8.0),
        );
        let mut net = UdpNet::new(topo, SimRng::new(4));
        let d1 = net.send(a, b, 10_000, SimTime::ZERO).delay().unwrap();
        let d2 = net.send(a, b, 10_000, SimTime::ZERO).delay().unwrap();
        // Second datagram queues behind the first: ≥ 10 ms more delay.
        assert!(
            d2.as_millis_f64() >= d1.as_millis_f64() + 9.5,
            "{d1} then {d2}"
        );
    }

    #[test]
    fn bandwidth_queue_overflow_drops() {
        let mut topo = Topology::new();
        let a = topo.add_node("a");
        let b = topo.add_node("b");
        let mut link = Link::with_latency(SimDuration::from_millis(1)).bandwidth_mbps(8.0);
        link.queue_limit = SimDuration::from_millis(15);
        topo.connect(a, b, link);
        let mut net = UdpNet::new(topo, SimRng::new(5));
        // Each datagram serializes in 10 ms; the third would wait 20 ms.
        assert!(!net.send(a, b, 10_000, SimTime::ZERO).is_lost());
        assert!(!net.send(a, b, 10_000, SimTime::ZERO).is_lost());
        assert!(net.send(a, b, 10_000, SimTime::ZERO).is_lost());
    }

    #[test]
    fn send_over_testbed_accumulates_stats() {
        let (topo, tb) = Testbed::build();
        let mut net = UdpNet::new(topo, SimRng::new(1));
        for _ in 0..10 {
            let d = net.send(tb.client_host, tb.e1, 1400, SimTime::ZERO);
            assert!(!d.is_lost());
        }
        let s = net.pair_stats(tb.client_host, tb.e1);
        assert_eq!(s.datagrams_sent, 10);
        assert_eq!(s.bytes_sent, 14_000);
        assert_eq!(s.datagrams_lost, 0);
        // Reverse direction untouched.
        assert_eq!(net.pair_stats(tb.e1, tb.client_host).datagrams_sent, 0);
    }

    #[test]
    fn lossy_link_counts_losses() {
        let mut topo = Topology::new();
        let a = topo.add_node("a");
        let b = topo.add_node("b");
        topo.connect(
            a,
            b,
            Link::with_latency(SimDuration::from_millis(1)).loss(0.5),
        );
        let mut net = UdpNet::new(topo, SimRng::new(2));
        for _ in 0..1000 {
            net.send(a, b, 100, SimTime::ZERO);
        }
        let s = net.pair_stats(a, b);
        assert!(s.datagrams_lost > 350 && s.datagrams_lost < 650, "{s:?}");
        assert_eq!(net.total_lost(), s.datagrams_lost);
    }

    #[test]
    #[should_panic(expected = "no route")]
    fn unroutable_pair_panics() {
        let mut topo = Topology::new();
        let a = topo.add_node("a");
        let b = topo.add_node("b");
        let mut net = UdpNet::new(topo, SimRng::new(3));
        net.send(a, b, 1, SimTime::ZERO);
    }

    #[test]
    fn same_seed_same_outcomes() {
        let run = |seed| {
            let (topo, tb) = Testbed::build();
            let mut net = UdpNet::new(topo, SimRng::new(seed));
            (0..100)
                .map(|_| {
                    net.send(tb.client_host, tb.cloud, 50_000, SimTime::ZERO)
                        .delay()
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10));
    }
}
