//! A duplex link with latency, jitter, loss, and bandwidth.

use serde::{Deserialize, Serialize};
use simcore::{SimDuration, SimRng};

/// Ethernet-ish payload MTU used for fragmentation accounting.
pub const MTU_BYTES: usize = 1472;

/// Outcome of offering one datagram to a link.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Delivery {
    /// Datagram arrives after this one-way delay.
    Delayed(SimDuration),
    /// Datagram (or one of its fragments) was lost; nothing arrives.
    Lost,
}

impl Delivery {
    pub fn is_lost(&self) -> bool {
        matches!(self, Delivery::Lost)
    }

    pub fn delay(&self) -> Option<SimDuration> {
        match self {
            Delivery::Delayed(d) => Some(*d),
            Delivery::Lost => None,
        }
    }
}

/// One direction of a network link.
///
/// Delay composition per datagram:
/// `base_latency + N(0, jitter_std) + oscillation + bytes/bandwidth`,
/// where `oscillation` adds `osc_delay` with probability `osc_prob`
/// (the paper's mobility emulation: "10 ms delay oscillation with 20 %
/// probability"). Loss applies independently per MTU fragment, so large
/// datagrams — like scAtteR++'s 480 KB state-carrying frames — are
/// proportionally more exposed, exactly as over real UDP.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Link {
    /// One-way propagation + queueing baseline.
    pub base_latency: SimDuration,
    /// Gaussian jitter standard deviation (truncated at zero total delay).
    pub jitter_std: SimDuration,
    /// Per-fragment loss probability in `[0, 1]`.
    pub loss_prob: f64,
    /// Link rate in bits per second, for serialization delay. `None`
    /// means infinitely fast (pure-latency link).
    pub bandwidth_bps: Option<f64>,
    /// Extra delay added with probability `osc_prob`.
    pub osc_delay: SimDuration,
    pub osc_prob: f64,
    /// Maximum time a datagram may wait in the sender-side serialization
    /// queue before the buffer drops it (bufferbloat bound). Only
    /// meaningful on bandwidth-limited links.
    pub queue_limit: SimDuration,
}

impl Link {
    /// A clean link with the given one-way latency and no impairments.
    pub fn with_latency(one_way: SimDuration) -> Self {
        Link {
            base_latency: one_way,
            jitter_std: SimDuration::ZERO,
            loss_prob: 0.0,
            bandwidth_bps: None,
            osc_delay: SimDuration::ZERO,
            osc_prob: 0.0,
            queue_limit: SimDuration::from_millis(100),
        }
    }

    /// Convenience: latency given as an RTT in milliseconds (halved).
    pub fn from_rtt_ms(rtt_ms: f64) -> Self {
        Self::with_latency(SimDuration::from_millis_f64(rtt_ms / 2.0))
    }

    pub fn loss(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "loss probability out of range");
        self.loss_prob = p;
        self
    }

    pub fn jitter(mut self, std: SimDuration) -> Self {
        self.jitter_std = std;
        self
    }

    pub fn bandwidth_mbps(mut self, mbps: f64) -> Self {
        assert!(mbps > 0.0);
        self.bandwidth_bps = Some(mbps * 1e6);
        self
    }

    pub fn oscillation(mut self, delay: SimDuration, prob: f64) -> Self {
        assert!((0.0..=1.0).contains(&prob));
        self.osc_delay = delay;
        self.osc_prob = prob;
        self
    }

    /// Number of MTU-sized fragments a `bytes`-sized datagram needs.
    pub fn fragments(bytes: usize) -> usize {
        bytes.div_ceil(MTU_BYTES).max(1)
    }

    /// Effective datagram loss probability after fragmentation:
    /// `1 - (1 - p)^frags`.
    pub fn effective_loss(&self, bytes: usize) -> f64 {
        1.0 - (1.0 - self.loss_prob).powi(Self::fragments(bytes) as i32)
    }

    /// Offer one datagram of `bytes` to the link.
    pub fn send(&self, bytes: usize, rng: &mut SimRng) -> Delivery {
        let frags = Self::fragments(bytes);
        if self.loss_prob > 0.0 {
            for _ in 0..frags {
                if rng.bernoulli(self.loss_prob) {
                    return Delivery::Lost;
                }
            }
        }
        let mut delay_s = self.base_latency.as_secs_f64();
        if !self.jitter_std.is_zero() {
            delay_s += rng.normal_with(0.0, self.jitter_std.as_secs_f64());
        }
        if self.osc_prob > 0.0 && rng.bernoulli(self.osc_prob) {
            delay_s += self.osc_delay.as_secs_f64();
        }
        if let Some(bps) = self.bandwidth_bps {
            delay_s += (bytes as f64 * 8.0) / bps;
        }
        // Physical floor: a datagram cannot arrive before it is sent.
        Delivery::Delayed(SimDuration::from_secs_f64(delay_s.max(1e-6)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn clean_link_is_deterministic_latency() {
        let link = Link::with_latency(SimDuration::from_millis(5));
        let mut rng = SimRng::new(1);
        for _ in 0..100 {
            match link.send(1000, &mut rng) {
                Delivery::Delayed(d) => assert_eq!(d.as_millis(), 5),
                Delivery::Lost => panic!("clean link lost a packet"),
            }
        }
    }

    #[test]
    fn rtt_helper_halves() {
        let link = Link::from_rtt_ms(3.0);
        assert_eq!(link.base_latency.as_micros(), 1500);
    }

    #[test]
    fn fragmentation_counts() {
        assert_eq!(Link::fragments(0), 1);
        assert_eq!(Link::fragments(1), 1);
        assert_eq!(Link::fragments(MTU_BYTES), 1);
        assert_eq!(Link::fragments(MTU_BYTES + 1), 2);
        assert_eq!(Link::fragments(480 * 1024), 334);
    }

    #[test]
    fn effective_loss_grows_with_size() {
        let link = Link::with_latency(SimDuration::from_millis(1)).loss(0.0008);
        let small = link.effective_loss(180 * 1024);
        let large = link.effective_loss(480 * 1024);
        assert!(large > small, "bigger datagrams must be lossier");
        assert!(large < 1.0);
    }

    #[test]
    fn lossy_link_loses_at_measured_rate() {
        // 0.08% per fragment, single-fragment packets.
        let link = Link::with_latency(SimDuration::from_millis(1)).loss(0.0008);
        let mut rng = SimRng::new(7);
        let n = 200_000;
        let lost = (0..n)
            .filter(|_| link.send(500, &mut rng).is_lost())
            .count();
        let rate = lost as f64 / n as f64;
        assert!((rate - 0.0008).abs() < 0.0004, "loss rate {rate}");
    }

    #[test]
    fn bandwidth_adds_serialization_delay() {
        let link = Link::with_latency(SimDuration::ZERO).bandwidth_mbps(8.0);
        let mut rng = SimRng::new(3);
        // 1000 bytes at 8 Mbps = 1 ms.
        let d = link.send(1000, &mut rng).delay().unwrap();
        assert!((d.as_millis_f64() - 1.0).abs() < 0.01, "{d}");
    }

    #[test]
    fn oscillation_sometimes_adds_delay() {
        let link = Link::with_latency(SimDuration::from_millis(1))
            .oscillation(SimDuration::from_millis(10), 0.2);
        let mut rng = SimRng::new(11);
        let n = 10_000;
        let slow = (0..n)
            .filter(|_| link.send(100, &mut rng).delay().unwrap().as_millis() >= 10)
            .count();
        let frac = slow as f64 / n as f64;
        assert!((frac - 0.2).abs() < 0.03, "oscillation fraction {frac}");
    }

    #[test]
    fn delay_never_negative_under_jitter() {
        let link =
            Link::with_latency(SimDuration::from_micros(100)).jitter(SimDuration::from_millis(5));
        let mut rng = SimRng::new(13);
        for _ in 0..10_000 {
            let d = link.send(100, &mut rng).delay().unwrap();
            assert!(d.as_nanos() >= 1_000, "delay below physical floor: {d}");
        }
    }

    proptest! {
        #[test]
        fn send_is_deterministic_given_seed(
            bytes in 1usize..100_000,
            seed in 0u64..1000,
            loss in 0.0f64..0.5,
        ) {
            let link = Link::with_latency(SimDuration::from_millis(2)).loss(loss);
            let a = link.send(bytes, &mut SimRng::new(seed));
            let b = link.send(bytes, &mut SimRng::new(seed));
            prop_assert_eq!(a, b);
        }

        #[test]
        fn effective_loss_in_unit_interval(
            bytes in 1usize..1_000_000,
            loss in 0.0f64..1.0,
        ) {
            let link = Link::with_latency(SimDuration::from_millis(1)).loss(loss);
            let p = link.effective_loss(bytes);
            prop_assert!((0.0..=1.0).contains(&p));
            prop_assert!(p >= loss - 1e-12, "fragmented loss below per-fragment loss");
        }
    }
}
