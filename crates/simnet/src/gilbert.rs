//! Gilbert–Elliott burst-loss channel.
//!
//! The paper's `tc netem` emulation draws losses independently per
//! packet, but real mobile channels lose in *bursts* (fading dips,
//! handovers). The classic two-state Markov model captures this: a Good
//! state with negligible loss and a Bad state with high loss, with
//! geometric sojourn times. Holding the *average* loss rate fixed while
//! concentrating it into bursts changes what an AR pipeline experiences:
//! whole frame sequences disappear (tracking breaks) instead of isolated
//! frames (which tracking rides over) — an effect the uniform model
//! cannot show.

use serde::{Deserialize, Serialize};
use simcore::SimRng;

/// Two-state Markov loss channel.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GilbertElliott {
    /// P(Good → Bad) per packet.
    pub p_gb: f64,
    /// P(Bad → Good) per packet.
    pub p_bg: f64,
    /// Loss probability in the Good state.
    pub loss_good: f64,
    /// Loss probability in the Bad state.
    pub loss_bad: f64,
    /// Current state (true = Bad).
    bad: bool,
}

impl GilbertElliott {
    pub fn new(p_gb: f64, p_bg: f64, loss_good: f64, loss_bad: f64) -> Self {
        for p in [p_gb, p_bg, loss_good, loss_bad] {
            assert!((0.0..=1.0).contains(&p), "probability out of range");
        }
        assert!(p_bg > 0.0, "the Bad state must be escapable");
        GilbertElliott {
            p_gb,
            p_bg,
            loss_good,
            loss_bad,
            bad: false,
        }
    }

    /// Build a bursty channel with a target *average* loss rate and a
    /// mean burst length (in packets). The Bad state loses everything;
    /// the Good state is clean.
    ///
    /// Stationary P(Bad) = p_gb / (p_gb + p_bg); with loss_bad = 1 and
    /// loss_good = 0 the average loss equals P(Bad).
    pub fn with_average_loss(avg_loss: f64, mean_burst_len: f64) -> Self {
        assert!((0.0..1.0).contains(&avg_loss));
        assert!(mean_burst_len >= 1.0);
        let p_bg = 1.0 / mean_burst_len;
        // avg = p_gb / (p_gb + p_bg)  →  p_gb = avg × p_bg / (1 − avg)
        let p_gb = (avg_loss * p_bg / (1.0 - avg_loss)).min(1.0);
        Self::new(p_gb, p_bg, 0.0, 1.0)
    }

    /// Advance one packet: returns `true` if it is lost.
    pub fn lose_packet(&mut self, rng: &mut SimRng) -> bool {
        // State transition first, then loss draw in the new state.
        self.bad = if self.bad {
            !rng.bernoulli(self.p_bg)
        } else {
            rng.bernoulli(self.p_gb)
        };
        let p = if self.bad {
            self.loss_bad
        } else {
            self.loss_good
        };
        rng.bernoulli(p)
    }

    /// Stationary probability of the Bad state.
    pub fn stationary_bad(&self) -> f64 {
        self.p_gb / (self.p_gb + self.p_bg)
    }

    /// Long-run average per-packet loss rate.
    pub fn average_loss(&self) -> f64 {
        let pb = self.stationary_bad();
        pb * self.loss_bad + (1.0 - pb) * self.loss_good
    }

    pub fn in_bad_state(&self) -> bool {
        self.bad
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn average_loss_matches_target() {
        let mut ch = GilbertElliott::with_average_loss(0.05, 20.0);
        assert!((ch.average_loss() - 0.05).abs() < 1e-9);
        let mut rng = SimRng::new(1);
        let n = 400_000;
        let lost = (0..n).filter(|_| ch.lose_packet(&mut rng)).count();
        let rate = lost as f64 / n as f64;
        assert!((rate - 0.05).abs() < 0.01, "measured {rate}");
    }

    #[test]
    fn losses_are_bursty() {
        // Compare run-length statistics of bursty vs uniform loss at the
        // same average rate: the bursty channel's mean loss-run length
        // must be several times larger.
        let mut rng = SimRng::new(2);
        let mean_run = |losses: &[bool]| {
            let mut runs = Vec::new();
            let mut run = 0usize;
            for &l in losses {
                if l {
                    run += 1;
                } else if run > 0 {
                    runs.push(run);
                    run = 0;
                }
            }
            if runs.is_empty() {
                0.0
            } else {
                runs.iter().sum::<usize>() as f64 / runs.len() as f64
            }
        };
        let mut bursty_ch = GilbertElliott::with_average_loss(0.05, 25.0);
        let bursty: Vec<bool> = (0..200_000)
            .map(|_| bursty_ch.lose_packet(&mut rng))
            .collect();
        let uniform: Vec<bool> = (0..200_000).map(|_| rng.bernoulli(0.05)).collect();
        let (rb, ru) = (mean_run(&bursty), mean_run(&uniform));
        assert!(
            rb > ru * 5.0,
            "bursty mean run {rb:.1} not ≫ uniform {ru:.1}"
        );
    }

    #[test]
    fn good_state_is_clean() {
        let mut ch = GilbertElliott::new(0.0, 1.0, 0.0, 1.0);
        let mut rng = SimRng::new(3);
        for _ in 0..10_000 {
            assert!(!ch.lose_packet(&mut rng), "p_gb = 0 must never lose");
        }
    }

    #[test]
    #[should_panic(expected = "escapable")]
    fn bad_state_must_be_escapable() {
        GilbertElliott::new(0.5, 0.0, 0.0, 1.0);
    }

    proptest! {
        #[test]
        fn stationary_math_consistent(
            avg in 0.001f64..0.3,
            burst in 1.0f64..100.0,
        ) {
            let ch = GilbertElliott::with_average_loss(avg, burst);
            prop_assert!((ch.average_loss() - avg).abs() < 1e-9);
            prop_assert!(ch.stationary_bad() <= avg + 1e-9 + avg); // loss_bad = 1
        }
    }
}
