//! # simnet — the network substrate
//!
//! Models the paper's testbed network: client NUCs wired to edge server E1
//! (≤1 ms RTT), E1 to E2 over 2–4 LAN hops (≈3 ms RTT), and an AWS cloud
//! machine at ≈15 ms RTT — plus the `tc netem` conditions from appendix
//! A.1.1 (LTE / 5G / WiFi-6 loss and latency with 10 ms delay oscillation
//! at 20 % probability).
//!
//! The model is deliberately packet-level-UDP-shaped: datagrams larger
//! than one MTU fragment, loss of any fragment loses the datagram, there
//! is no retransmission, and deliveries may reorder under jitter — the
//! semantics that produce the frame-drop behaviour the paper measures.
//!
//! `simnet` is a *pure* model: [`UdpNet::send`] maps (src, dst, size) to a
//! [`Delivery`] outcome using the caller's RNG stream. The pipeline layer
//! turns outcomes into simulator events; this keeps the network model
//! trivially unit-testable.

pub mod gilbert;
pub mod link;
pub mod netem;
pub mod sites;
pub mod topology;
pub mod udp;

pub use gilbert::GilbertElliott;
pub use link::{Delivery, Link};
pub use netem::NetemProfile;
pub use sites::SiteMap;
pub use topology::{NodeId, Testbed, Topology};
pub use udp::{NetTotals, UdpNet};
