//! `tc netem`-style access-network profiles.
//!
//! Appendix A.1.1 of the paper emulates mobile connectivity on the
//! client→ingress link with parameters taken from measurement studies:
//! LTE (40 ms RTT, 0.08 % loss), 5G (10 ms RTT, 0.00001–0.01 % loss), and
//! WiFi-6 (5 ms RTT, 0.00001–0.01 % loss), plus 10 ms delay oscillation
//! with 20 % probability to emulate mobility. Loss sweeps fix delay at
//! 1 ms; latency sweeps fix loss at 0.00001 %.

use serde::{Deserialize, Serialize};
use simcore::SimDuration;

use crate::link::Link;

/// A named access-network condition applied to the client↔ingress link.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NetemProfile {
    pub name: String,
    /// Round-trip time injected by the profile.
    pub rtt_ms: f64,
    /// Per-packet loss probability.
    pub loss: f64,
    /// Mobility emulation: extra delay added with some probability.
    pub osc_delay_ms: f64,
    pub osc_prob: f64,
    /// When set, losses are bursty (Gilbert–Elliott) with this mean
    /// burst length in packets, at the same average rate as `loss`.
    pub burst_len: Option<f64>,
}

impl NetemProfile {
    pub fn new(name: &str, rtt_ms: f64, loss: f64) -> Self {
        NetemProfile {
            name: name.to_string(),
            rtt_ms,
            loss,
            osc_delay_ms: 0.0,
            osc_prob: 0.0,
            burst_len: None,
        }
    }

    /// Add the paper's mobility emulation (10 ms oscillation @ 20 %).
    pub fn with_mobility(mut self) -> Self {
        self.osc_delay_ms = 10.0;
        self.osc_prob = 0.2;
        self
    }

    /// Make the loss bursty (extension; see [`crate::gilbert`]).
    pub fn with_burst_loss(mut self, mean_burst_len: f64) -> Self {
        self.burst_len = Some(mean_burst_len);
        self
    }

    /// LTE: 40 ms RTT, 0.08 % loss.
    pub fn lte() -> Self {
        Self::new("LTE", 40.0, 0.0008)
    }

    /// 5G: 10 ms RTT, loss in 0.00001–0.01 % (we take the upper bound).
    pub fn fiveg() -> Self {
        Self::new("5G", 10.0, 0.0001)
    }

    /// WiFi-6: 5 ms RTT, loss in 0.00001–0.01 % (upper bound).
    pub fn wifi6() -> Self {
        Self::new("WiFi-6", 5.0, 0.0001)
    }

    /// The paper's loss-sweep points (fig. 9a): delay fixed at 1 ms.
    pub fn loss_sweep() -> Vec<Self> {
        [1e-7, 1e-4, 8e-4]
            .iter()
            .map(|&l| Self::new(&format!("loss {:.5}%", l * 100.0), 1.0, l).with_mobility())
            .collect()
    }

    /// The paper's latency-sweep points (fig. 9b): loss fixed at 0.00001 %.
    pub fn latency_sweep() -> Vec<Self> {
        [1.0, 5.0, 10.0, 40.0]
            .iter()
            .map(|&ms| Self::new(&format!("{ms} ms"), ms, 1e-7).with_mobility())
            .collect()
    }

    /// Materialize the profile as a one-way [`Link`]. Bursty profiles
    /// leave the link's i.i.d. loss at zero — the burst channel installed
    /// via [`crate::UdpNet::set_burst_channel`] supplies losses instead.
    pub fn to_link(&self) -> Link {
        let iid_loss = if self.burst_len.is_some() {
            0.0
        } else {
            self.loss
        };
        Link::from_rtt_ms(self.rtt_ms).loss(iid_loss).oscillation(
            SimDuration::from_millis_f64(self.osc_delay_ms),
            self.osc_prob,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_paper_parameters() {
        let lte = NetemProfile::lte();
        assert_eq!(lte.rtt_ms, 40.0);
        assert_eq!(lte.loss, 0.0008);
        let g5 = NetemProfile::fiveg();
        assert_eq!(g5.rtt_ms, 10.0);
        let wifi = NetemProfile::wifi6();
        assert_eq!(wifi.rtt_ms, 5.0);
    }

    #[test]
    fn mobility_adds_oscillation() {
        let p = NetemProfile::lte().with_mobility();
        assert_eq!(p.osc_delay_ms, 10.0);
        assert_eq!(p.osc_prob, 0.2);
        let link = p.to_link();
        assert_eq!(link.osc_delay.as_millis(), 10);
    }

    #[test]
    fn sweeps_have_paper_cardinality() {
        assert_eq!(NetemProfile::loss_sweep().len(), 3);
        assert_eq!(NetemProfile::latency_sweep().len(), 4);
    }

    #[test]
    fn bursty_profile_moves_loss_off_the_link() {
        let p = NetemProfile::new("b", 10.0, 0.01).with_burst_loss(20.0);
        assert_eq!(p.to_link().loss_prob, 0.0);
        assert_eq!(p.burst_len, Some(20.0));
    }

    #[test]
    fn to_link_halves_rtt() {
        let link = NetemProfile::fiveg().to_link();
        assert_eq!(link.base_latency.as_millis(), 5);
    }
}
