//! The testbed topology: named machines and the links between them.
//!
//! The paper's infrastructure (§3.2): client NUCs wired to E1 over
//! Ethernet (≤1 ms RTT), E2 reachable from E1 across 2–4 LAN hops
//! (≈3 ms RTT), and an AWS cloud instance at ≈15 ms RTT from everything
//! on-premises. Co-located services talk over loopback.

use serde::{Deserialize, Serialize};
use simcore::SimDuration;

use crate::link::Link;

/// Identifier of a machine in the topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeId(pub u32);

/// A set of machines and the duplex links between them.
///
/// Links are stored per unordered pair and used symmetrically (the
/// testbed's links are symmetric); loopback traffic within one machine
/// uses a dedicated low-latency link.
///
/// Storage is a dense `n × n` matrix rather than a hash map:
/// `link_between` sits on the per-datagram hot path (every fragment of
/// every frame consults it), and with a handful of machines the matrix
/// is tiny while the lookup shrinks to one multiply-add — no SipHash of
/// the node pair per datagram.
#[derive(Debug, Clone)]
pub struct Topology {
    names: Vec<String>,
    /// Row-major upper-triangular-by-convention matrix of links, indexed
    /// through [`Topology::key_index`] with the pair normalized so both
    /// directions share one entry.
    links: Vec<Option<Link>>,
    loopback: Link,
}

impl Default for Topology {
    fn default() -> Self {
        Self::new()
    }
}

impl Topology {
    pub fn new() -> Self {
        Topology {
            names: Vec::new(),
            links: Vec::new(),
            // Loopback/IPC between co-located containers: ~60 µs, no loss.
            loopback: Link::with_latency(SimDuration::from_micros(60)),
        }
    }

    /// Add a machine; returns its id.
    pub fn add_node(&mut self, name: &str) -> NodeId {
        let id = NodeId(self.names.len() as u32);
        self.names.push(name.to_string());
        // Grow the matrix from (n-1)² to n², preserving old entries.
        let n = self.names.len();
        let mut grown = vec![None; n * n];
        let old = n - 1;
        for a in 0..old {
            for b in 0..old {
                grown[a * n + b] = self.links[a * old + b].take();
            }
        }
        self.links = grown;
        id
    }

    pub fn node_count(&self) -> usize {
        self.names.len()
    }

    pub fn name(&self, id: NodeId) -> &str {
        &self.names[id.0 as usize]
    }

    /// Matrix slot of the unordered pair `(a, b)`.
    #[inline]
    fn key_index(&self, a: NodeId, b: NodeId) -> usize {
        let (lo, hi) = if a <= b { (a.0, b.0) } else { (b.0, a.0) };
        lo as usize * self.names.len() + hi as usize
    }

    /// Install (or replace) the duplex link between `a` and `b`.
    pub fn connect(&mut self, a: NodeId, b: NodeId, link: Link) {
        assert_ne!(a, b, "use the loopback for same-node traffic");
        let idx = self.key_index(a, b);
        self.links[idx] = Some(link);
    }

    /// Link used for traffic from `a` to `b`. Same-node traffic gets the
    /// loopback; unknown pairs get `None` (unroutable).
    #[inline]
    pub fn link_between(&self, a: NodeId, b: NodeId) -> Option<&Link> {
        if a == b {
            return Some(&self.loopback);
        }
        self.links[self.key_index(a, b)].as_ref()
    }

    /// Replace the loopback link (tests and ablations).
    pub fn set_loopback(&mut self, link: Link) {
        self.loopback = link;
    }
}

/// Handles to the machines of the paper's testbed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Testbed {
    pub e1: NodeId,
    pub e2: NodeId,
    pub cloud: NodeId,
    /// One node per client NUC host.
    pub client_host: NodeId,
}

impl Testbed {
    /// Build the paper's testbed. The returned [`Topology`] has four
    /// machines: E1, E2, cloud, and a client host standing in for the
    /// NUC pool (clients are virtualized containers on NUCs in the paper,
    /// so one network vantage point suffices).
    pub fn build() -> (Topology, Testbed) {
        let mut topo = Topology::new();
        let client_host = topo.add_node("client-host");
        let e1 = topo.add_node("E1");
        let e2 = topo.add_node("E2");
        let cloud = topo.add_node("cloud");

        // Client NUCs wired directly to E1: ≤1 ms RTT gigabit Ethernet.
        topo.connect(
            client_host,
            e1,
            Link::from_rtt_ms(1.0).bandwidth_mbps(1000.0),
        );
        // E1 ↔ E2 over 2–4 LAN hops: ≈3 ms RTT, gigabit.
        topo.connect(e1, e2, Link::from_rtt_ms(3.0).bandwidth_mbps(1000.0));
        // Clients reach E2 through the LAN: 1 + 3 ms RTT.
        topo.connect(
            client_host,
            e2,
            Link::from_rtt_ms(4.0).bandwidth_mbps(1000.0),
        );
        // Cloud at ≈15 ms RTT from the premises. The public Internet path
        // has mild jitter (the paper observes elevated cloud-side frame
        // jitter), residual loss, and a constrained uplink — the
        // congestion the hybrid deployment of fig. 11 runs into.
        let inet_jitter = SimDuration::from_micros(400);
        let inet = |l: Link| l.jitter(inet_jitter).loss(5e-4).bandwidth_mbps(120.0);
        topo.connect(client_host, cloud, inet(Link::from_rtt_ms(15.0)));
        topo.connect(e1, cloud, inet(Link::from_rtt_ms(15.0)));
        topo.connect(e2, cloud, inet(Link::from_rtt_ms(15.0)));

        (
            topo,
            Testbed {
                e1,
                e2,
                cloud,
                client_host,
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn testbed_has_paper_latencies() {
        let (topo, tb) = Testbed::build();
        assert_eq!(topo.node_count(), 4);
        let c_e1 = topo.link_between(tb.client_host, tb.e1).unwrap();
        assert_eq!(c_e1.base_latency.as_micros(), 500);
        let e1_e2 = topo.link_between(tb.e1, tb.e2).unwrap();
        assert_eq!(e1_e2.base_latency.as_micros(), 1500);
        let e1_cloud = topo.link_between(tb.e1, tb.cloud).unwrap();
        assert_eq!(e1_cloud.base_latency.as_micros(), 7500);
    }

    #[test]
    fn links_are_symmetric() {
        let (topo, tb) = Testbed::build();
        let ab = topo.link_between(tb.e1, tb.e2).unwrap().base_latency;
        let ba = topo.link_between(tb.e2, tb.e1).unwrap().base_latency;
        assert_eq!(ab, ba);
    }

    #[test]
    fn loopback_for_same_node() {
        let (topo, tb) = Testbed::build();
        let lo = topo.link_between(tb.e1, tb.e1).unwrap();
        assert!(lo.base_latency < SimDuration::from_millis(1));
        assert_eq!(lo.loss_prob, 0.0);
    }

    #[test]
    fn unknown_pair_is_unroutable() {
        let mut topo = Topology::new();
        let a = topo.add_node("a");
        let b = topo.add_node("b");
        assert!(topo.link_between(a, b).is_none());
    }

    #[test]
    fn connect_replaces_link() {
        let mut topo = Topology::new();
        let a = topo.add_node("a");
        let b = topo.add_node("b");
        topo.connect(a, b, Link::from_rtt_ms(2.0));
        topo.connect(b, a, Link::from_rtt_ms(8.0));
        assert_eq!(topo.link_between(a, b).unwrap().base_latency.as_millis(), 4);
    }
}
