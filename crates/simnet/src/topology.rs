//! The testbed topology: named machines and the links between them.
//!
//! The paper's infrastructure (§3.2): client NUCs wired to E1 over
//! Ethernet (≤1 ms RTT), E2 reachable from E1 across 2–4 LAN hops
//! (≈3 ms RTT), and an AWS cloud instance at ≈15 ms RTT from everything
//! on-premises. Co-located services talk over loopback.
//!
//! Two storage layouts back the same API (see [`Store`]): a dense pair
//! matrix for the paper-sized testbed and a sparse adjacency list for
//! scale-out worlds with hundreds of access-site nodes. The layout is
//! selected automatically from the node count and is invisible to
//! callers — [`Topology::link_between`] answers identically in both.

use serde::{Deserialize, Serialize};
use simcore::SimDuration;

use crate::link::Link;

/// Identifier of a machine in the topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeId(pub u32);

/// Largest node count served by the dense matrix. The paper's testbed
/// has 4 machines; the matrix stays the hot-path winner (one
/// multiply-add, no branch misses) up to a few dozen nodes, after which
/// its O(n²) memory — and O(n²) per-send cache footprint in
/// [`crate::UdpNet`] — loses to the adjacency list.
const DENSE_MAX_NODES: usize = 64;

/// Link storage. `Dense` is a row-major pair matrix with a stride
/// (`cap`) that grows by doubling, so building an n-node world costs
/// O(n²) amortized instead of the old O(n³) reallocate-per-node.
/// `Sparse` keeps a sorted adjacency list per node; each undirected
/// edge gets a dense id at first `connect`, which [`crate::UdpNet`]
/// uses to index per-edge state without any n² allocation.
#[derive(Debug, Clone)]
enum Store {
    Dense {
        /// Matrix stride; invariant `cap >= names.len()`.
        cap: usize,
        links: Vec<Option<Link>>,
    },
    Sparse {
        /// Per node: `(peer, edge_id, link)` sorted by peer. The link is
        /// mirrored on both endpoints so either side resolves a pair
        /// with one binary search of the smaller list.
        adj: Vec<Vec<(u32, u32, Link)>>,
        edges: u32,
    },
}

/// A set of machines and the duplex links between them.
///
/// Links are stored per unordered pair and used symmetrically (the
/// testbed's links are symmetric); loopback traffic within one machine
/// uses a dedicated low-latency link.
#[derive(Debug, Clone)]
pub struct Topology {
    names: Vec<String>,
    store: Store,
    loopback: Link,
}

impl Default for Topology {
    fn default() -> Self {
        Self::new()
    }
}

impl Topology {
    pub fn new() -> Self {
        Self::with_capacity(0)
    }

    /// A topology expecting about `nodes` machines. Picks the storage
    /// layout up front and reserves it, so batch construction of a
    /// scale-out world never reallocates per added node.
    pub fn with_capacity(nodes: usize) -> Self {
        let store = if nodes > DENSE_MAX_NODES {
            Store::Sparse {
                adj: Vec::with_capacity(nodes),
                edges: 0,
            }
        } else {
            Store::Dense {
                cap: nodes,
                links: vec![None; nodes * nodes],
            }
        };
        Topology {
            names: Vec::new(),
            store,
            // Loopback/IPC between co-located containers: ~60 µs, no loss.
            loopback: Link::with_latency(SimDuration::from_micros(60)),
        }
    }

    /// Force the sparse layout regardless of node count (equivalence
    /// tests compare it against the dense default at small n).
    pub fn sparse() -> Self {
        Topology {
            names: Vec::new(),
            store: Store::Sparse {
                adj: Vec::new(),
                edges: 0,
            },
            loopback: Link::with_latency(SimDuration::from_micros(60)),
        }
    }

    pub fn is_sparse(&self) -> bool {
        matches!(self.store, Store::Sparse { .. })
    }

    /// Number of distinct connected pairs (sparse layout only; the dense
    /// matrix has no edge ids).
    pub fn edge_count(&self) -> usize {
        match &self.store {
            Store::Dense { .. } => 0,
            Store::Sparse { edges, .. } => *edges as usize,
        }
    }

    /// Add a machine; returns its id.
    pub fn add_node(&mut self, name: &str) -> NodeId {
        let id = NodeId(self.names.len() as u32);
        self.names.push(name.to_string());
        let n = self.names.len();
        match &mut self.store {
            Store::Dense { cap, links } => {
                if n > DENSE_MAX_NODES {
                    // Outgrew the matrix: migrate to the adjacency list.
                    self.store = Self::to_sparse(*cap, links, n);
                } else if n > *cap {
                    // Double the stride and re-index surviving entries —
                    // amortized O(n²) over the whole build instead of the
                    // old fresh n² allocation on every single add.
                    let new_cap = (*cap * 2).max(4).max(n);
                    let mut grown = vec![None; new_cap * new_cap];
                    for a in 0..n - 1 {
                        for b in a..n - 1 {
                            grown[a * new_cap + b] = links[a * *cap + b].take();
                        }
                    }
                    *cap = new_cap;
                    *links = grown;
                }
            }
            Store::Sparse { adj, .. } => adj.push(Vec::new()),
        }
        id
    }

    /// Convert a dense matrix to the sparse layout, assigning edge ids
    /// in deterministic lo-major pair order.
    fn to_sparse(cap: usize, links: &mut [Option<Link>], n: usize) -> Store {
        let mut adj: Vec<Vec<(u32, u32, Link)>> = vec![Vec::new(); n];
        let mut edges = 0u32;
        for a in 0..n - 1 {
            for b in a..n - 1 {
                if let Some(link) = links[a * cap + b].take() {
                    adj[a].push((b as u32, edges, link.clone()));
                    adj[b].push((a as u32, edges, link));
                    edges += 1;
                }
            }
        }
        for list in &mut adj {
            list.sort_unstable_by_key(|&(peer, _, _)| peer);
        }
        Store::Sparse { adj, edges }
    }

    pub fn node_count(&self) -> usize {
        self.names.len()
    }

    pub fn name(&self, id: NodeId) -> &str {
        &self.names[id.0 as usize]
    }

    /// Install (or replace) the duplex link between `a` and `b`.
    pub fn connect(&mut self, a: NodeId, b: NodeId, link: Link) {
        assert_ne!(a, b, "use the loopback for same-node traffic");
        match &mut self.store {
            Store::Dense { cap, links } => {
                let (lo, hi) = if a <= b { (a.0, b.0) } else { (b.0, a.0) };
                links[lo as usize * *cap + hi as usize] = Some(link);
            }
            Store::Sparse { adj, edges } => {
                let (a, b) = (a.0, b.0);
                let id = match adj[a as usize].binary_search_by_key(&b, |&(peer, _, _)| peer) {
                    Ok(i) => {
                        let id = adj[a as usize][i].1;
                        adj[a as usize][i].2 = link.clone();
                        id
                    }
                    Err(i) => {
                        let id = *edges;
                        *edges += 1;
                        adj[a as usize].insert(i, (b, id, link.clone()));
                        id
                    }
                };
                match adj[b as usize].binary_search_by_key(&a, |&(peer, _, _)| peer) {
                    Ok(i) => adj[b as usize][i].2 = link,
                    Err(i) => adj[b as usize].insert(i, (a, id, link)),
                }
            }
        }
    }

    /// Link used for traffic from `a` to `b`. Same-node traffic gets the
    /// loopback; unknown pairs get `None` (unroutable).
    #[inline]
    pub fn link_between(&self, a: NodeId, b: NodeId) -> Option<&Link> {
        if a == b {
            return Some(&self.loopback);
        }
        self.edge_entry(a, b).map(|(_, link)| link)
    }

    /// Edge id and link of the unordered pair `(a, b)`, if connected.
    /// The id is stable from first `connect` and densely allocated in
    /// the sparse layout; the dense matrix synthesizes the pair slot
    /// (ids are only consumed by the sparse [`crate::UdpNet`] path).
    #[inline]
    pub fn edge_entry(&self, a: NodeId, b: NodeId) -> Option<(u32, &Link)> {
        match &self.store {
            Store::Dense { cap, links } => {
                let (lo, hi) = if a <= b { (a.0, b.0) } else { (b.0, a.0) };
                links[lo as usize * *cap + hi as usize]
                    .as_ref()
                    .map(|link| (lo * *cap as u32 + hi, link))
            }
            Store::Sparse { adj, .. } => {
                // Search from the lower-degree endpoint: access sites have
                // O(1) neighbours, so site↔edge lookups touch a 3-entry
                // list even when E1's own list has thousands of sites.
                let (x, y) = (a.0 as usize, b.0 as usize);
                let (from, to) = if adj[x].len() <= adj[y].len() {
                    (x, b.0)
                } else {
                    (y, a.0)
                };
                adj[from]
                    .binary_search_by_key(&to, |&(peer, _, _)| peer)
                    .ok()
                    .map(|i| (adj[from][i].1, &adj[from][i].2))
            }
        }
    }

    /// Replace the loopback link (tests and ablations).
    pub fn set_loopback(&mut self, link: Link) {
        self.loopback = link;
    }

    /// The loopback link (same-node traffic).
    pub fn loopback(&self) -> &Link {
        &self.loopback
    }
}

/// Handles to the machines of the paper's testbed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Testbed {
    pub e1: NodeId,
    pub e2: NodeId,
    pub cloud: NodeId,
    /// One node per client NUC host (site 0 in scale-out worlds).
    pub client_host: NodeId,
}

impl Testbed {
    /// Build the paper's testbed. The returned [`Topology`] has four
    /// machines: E1, E2, cloud, and a client host standing in for the
    /// NUC pool (clients are virtualized containers on NUCs in the paper,
    /// so one network vantage point suffices).
    pub fn build() -> (Topology, Testbed) {
        let (topo, tb, _) = Self::build_with_sites(1);
        (topo, tb)
    }

    /// Build the testbed with `sites` access-site nodes in place of the
    /// single client host. Each site gets the client-host link set:
    /// Ethernet to E1, LAN to E2, Internet to the cloud. `sites = 1`
    /// reproduces [`Testbed::build`] exactly — same node ids, same
    /// insertion and connect order — so legacy seeded runs are
    /// byte-identical. Returns the site nodes; `client_host` is site 0.
    pub fn build_with_sites(sites: usize) -> (Topology, Testbed, Vec<NodeId>) {
        let sites = sites.max(1);
        let mut topo = Topology::with_capacity(sites + 3);
        let site_nodes: Vec<NodeId> = (0..sites)
            .map(|i| {
                if sites == 1 {
                    topo.add_node("client-host")
                } else {
                    topo.add_node(&format!("site-{i}"))
                }
            })
            .collect();
        let e1 = topo.add_node("E1");
        let e2 = topo.add_node("E2");
        let cloud = topo.add_node("cloud");

        // Client NUCs wired directly to E1: ≤1 ms RTT gigabit Ethernet.
        for &site in &site_nodes {
            topo.connect(site, e1, Link::from_rtt_ms(1.0).bandwidth_mbps(1000.0));
        }
        // E1 ↔ E2 over 2–4 LAN hops: ≈3 ms RTT, gigabit.
        topo.connect(e1, e2, Link::from_rtt_ms(3.0).bandwidth_mbps(1000.0));
        // Clients reach E2 through the LAN: 1 + 3 ms RTT.
        for &site in &site_nodes {
            topo.connect(site, e2, Link::from_rtt_ms(4.0).bandwidth_mbps(1000.0));
        }
        // Cloud at ≈15 ms RTT from the premises. The public Internet path
        // has mild jitter (the paper observes elevated cloud-side frame
        // jitter), residual loss, and a constrained uplink — the
        // congestion the hybrid deployment of fig. 11 runs into.
        let inet_jitter = SimDuration::from_micros(400);
        let inet = |l: Link| l.jitter(inet_jitter).loss(5e-4).bandwidth_mbps(120.0);
        for &site in &site_nodes {
            topo.connect(site, cloud, inet(Link::from_rtt_ms(15.0)));
        }
        topo.connect(e1, cloud, inet(Link::from_rtt_ms(15.0)));
        topo.connect(e2, cloud, inet(Link::from_rtt_ms(15.0)));

        let tb = Testbed {
            e1,
            e2,
            cloud,
            client_host: site_nodes[0],
        };
        (topo, tb, site_nodes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn testbed_has_paper_latencies() {
        let (topo, tb) = Testbed::build();
        assert_eq!(topo.node_count(), 4);
        let c_e1 = topo.link_between(tb.client_host, tb.e1).unwrap();
        assert_eq!(c_e1.base_latency.as_micros(), 500);
        let e1_e2 = topo.link_between(tb.e1, tb.e2).unwrap();
        assert_eq!(e1_e2.base_latency.as_micros(), 1500);
        let e1_cloud = topo.link_between(tb.e1, tb.cloud).unwrap();
        assert_eq!(e1_cloud.base_latency.as_micros(), 7500);
    }

    #[test]
    fn links_are_symmetric() {
        let (topo, tb) = Testbed::build();
        let ab = topo.link_between(tb.e1, tb.e2).unwrap().base_latency;
        let ba = topo.link_between(tb.e2, tb.e1).unwrap().base_latency;
        assert_eq!(ab, ba);
    }

    #[test]
    fn loopback_for_same_node() {
        let (topo, tb) = Testbed::build();
        let lo = topo.link_between(tb.e1, tb.e1).unwrap();
        assert!(lo.base_latency < SimDuration::from_millis(1));
        assert_eq!(lo.loss_prob, 0.0);
    }

    #[test]
    fn unknown_pair_is_unroutable() {
        let mut topo = Topology::new();
        let a = topo.add_node("a");
        let b = topo.add_node("b");
        assert!(topo.link_between(a, b).is_none());
    }

    #[test]
    fn connect_replaces_link() {
        let mut topo = Topology::new();
        let a = topo.add_node("a");
        let b = topo.add_node("b");
        topo.connect(a, b, Link::from_rtt_ms(2.0));
        topo.connect(b, a, Link::from_rtt_ms(8.0));
        assert_eq!(topo.link_between(a, b).unwrap().base_latency.as_millis(), 4);
    }

    #[test]
    fn sparse_store_answers_like_dense() {
        let mut dense = Topology::new();
        let mut sparse = Topology::sparse();
        assert!(!dense.is_sparse());
        assert!(sparse.is_sparse());
        for i in 0..6 {
            dense.add_node(&format!("n{i}"));
            sparse.add_node(&format!("n{i}"));
        }
        let pairs = [(0u32, 1u32), (0, 2), (1, 4), (3, 5), (2, 5)];
        for (i, &(a, b)) in pairs.iter().enumerate() {
            let link = Link::from_rtt_ms(2.0 * (i + 1) as f64);
            dense.connect(NodeId(a), NodeId(b), link.clone());
            sparse.connect(NodeId(b), NodeId(a), link);
        }
        assert_eq!(sparse.edge_count(), pairs.len());
        for a in 0..6u32 {
            for b in 0..6u32 {
                let d = dense
                    .link_between(NodeId(a), NodeId(b))
                    .map(|l| l.base_latency);
                let s = sparse
                    .link_between(NodeId(a), NodeId(b))
                    .map(|l| l.base_latency);
                assert_eq!(d, s, "pair ({a}, {b}) disagrees across layouts");
            }
        }
    }

    #[test]
    fn sparse_connect_replaces_and_keeps_edge_id() {
        let mut topo = Topology::sparse();
        let a = topo.add_node("a");
        let b = topo.add_node("b");
        topo.connect(a, b, Link::from_rtt_ms(2.0));
        let (id0, _) = topo.edge_entry(a, b).unwrap();
        topo.connect(b, a, Link::from_rtt_ms(8.0));
        let (id1, link) = topo.edge_entry(b, a).unwrap();
        assert_eq!(id0, id1);
        assert_eq!(link.base_latency.as_millis(), 4);
        assert_eq!(topo.edge_count(), 1);
    }

    #[test]
    fn dense_outgrows_into_sparse() {
        let mut topo = Topology::new();
        let nodes: Vec<NodeId> = (0..DENSE_MAX_NODES)
            .map(|i| topo.add_node(&format!("n{i}")))
            .collect();
        assert!(!topo.is_sparse());
        // A star around node 0 must survive the layout migration.
        for &n in &nodes[1..] {
            topo.connect(nodes[0], n, Link::from_rtt_ms(2.0));
        }
        let extra = topo.add_node("overflow");
        assert!(topo.is_sparse());
        assert_eq!(topo.edge_count(), DENSE_MAX_NODES - 1);
        for &n in &nodes[1..] {
            assert!(topo.link_between(nodes[0], n).is_some());
        }
        assert!(topo.link_between(nodes[0], extra).is_none());
        topo.connect(extra, nodes[3], Link::from_rtt_ms(6.0));
        assert_eq!(
            topo.link_between(nodes[3], extra)
                .unwrap()
                .base_latency
                .as_millis(),
            3
        );
    }

    #[test]
    fn build_with_sites_one_matches_legacy_build() {
        let (legacy, legacy_tb) = Testbed::build();
        let (sited, tb, sites) = Testbed::build_with_sites(1);
        assert_eq!(sites, vec![legacy_tb.client_host]);
        assert_eq!(
            (tb.e1, tb.e2, tb.cloud),
            (legacy_tb.e1, legacy_tb.e2, legacy_tb.cloud)
        );
        assert_eq!(legacy.node_count(), sited.node_count());
        for a in 0..4u32 {
            assert_eq!(legacy.name(NodeId(a)), sited.name(NodeId(a)));
            for b in 0..4u32 {
                let l = legacy
                    .link_between(NodeId(a), NodeId(b))
                    .map(|l| format!("{l:?}"));
                let s = sited
                    .link_between(NodeId(a), NodeId(b))
                    .map(|l| format!("{l:?}"));
                assert_eq!(l, s);
            }
        }
    }

    #[test]
    fn build_with_sites_connects_every_site() {
        let (topo, tb, sites) = Testbed::build_with_sites(200);
        assert!(topo.is_sparse());
        assert_eq!(topo.node_count(), 203);
        assert_eq!(sites.len(), 200);
        assert_eq!(tb.client_host, sites[0]);
        for &site in &sites {
            assert_eq!(
                topo.link_between(site, tb.e1)
                    .unwrap()
                    .base_latency
                    .as_micros(),
                500
            );
            assert_eq!(
                topo.link_between(site, tb.e2)
                    .unwrap()
                    .base_latency
                    .as_micros(),
                2000
            );
            assert_eq!(
                topo.link_between(site, tb.cloud)
                    .unwrap()
                    .base_latency
                    .as_micros(),
                7500
            );
        }
        // Sites do not talk to each other directly.
        assert!(topo.link_between(sites[0], sites[1]).is_none());
    }
}
