//! Gaussian scale space and difference-of-Gaussians — the front half of
//! the `sift` service.

use crate::image::GrayImage;

/// Build a 1-D Gaussian kernel with radius `ceil(3σ)`, normalized to sum 1.
pub fn gaussian_kernel(sigma: f32) -> Vec<f32> {
    assert!(sigma > 0.0, "sigma must be positive");
    let radius = (3.0 * sigma).ceil() as isize;
    let mut k: Vec<f32> = (-radius..=radius)
        .map(|i| (-((i * i) as f32) / (2.0 * sigma * sigma)).exp())
        .collect();
    let sum: f32 = k.iter().sum();
    for v in &mut k {
        *v /= sum;
    }
    k
}

/// Separable Gaussian blur with clamped borders.
pub fn gaussian_blur(img: &GrayImage, sigma: f32) -> GrayImage {
    let k = gaussian_kernel(sigma);
    let radius = (k.len() / 2) as isize;
    let (w, h) = (img.width(), img.height());

    // Horizontal pass.
    let mut tmp = GrayImage::new(w, h);
    for y in 0..h {
        for x in 0..w {
            let mut acc = 0.0;
            for (i, &kv) in k.iter().enumerate() {
                acc += kv * img.get_clamped(x as isize + i as isize - radius, y as isize);
            }
            tmp.set(x, y, acc);
        }
    }
    // Vertical pass.
    let mut out = GrayImage::new(w, h);
    for y in 0..h {
        for x in 0..w {
            let mut acc = 0.0;
            for (i, &kv) in k.iter().enumerate() {
                acc += kv * tmp.get_clamped(x as isize, y as isize + i as isize - radius);
            }
            out.set(x, y, acc);
        }
    }
    out
}

/// One octave of scale space: progressively blurred copies at one
/// resolution, plus their DoG differences.
#[derive(Debug, Clone)]
pub struct Octave {
    /// Blurred levels, `levels[s]` has effective sigma `sigma0 * k^s`.
    pub levels: Vec<GrayImage>,
    /// `dogs[s] = levels[s + 1] - levels[s]`.
    pub dogs: Vec<GrayImage>,
    /// Scale factor of this octave relative to the input image (1, 2, 4…).
    pub downscale: u32,
}

/// The full scale-space pyramid.
#[derive(Debug, Clone)]
pub struct Pyramid {
    pub octaves: Vec<Octave>,
    pub sigma0: f32,
    pub scales_per_octave: usize,
}

impl Pyramid {
    /// Build a pyramid with `n_octaves` octaves and `scales + 3` levels
    /// per octave (the +3 padding lets DoG extrema be localized at every
    /// intended scale, as in Lowe's construction).
    pub fn build(img: &GrayImage, n_octaves: usize, scales: usize, sigma0: f32) -> Pyramid {
        assert!(n_octaves >= 1 && scales >= 1);
        let k = 2f32.powf(1.0 / scales as f32);
        let mut octaves = Vec::with_capacity(n_octaves);
        let mut base = gaussian_blur(img, sigma0);
        let mut downscale = 1u32;
        for _ in 0..n_octaves {
            let n_levels = scales + 3;
            let mut levels = Vec::with_capacity(n_levels);
            levels.push(base.clone());
            let mut sigma_prev = sigma0;
            for _ in 1..n_levels {
                let sigma_next = sigma_prev * k;
                // Incremental blur: blur the previous level by the sigma
                // delta in quadrature.
                let delta = (sigma_next * sigma_next - sigma_prev * sigma_prev).sqrt();
                let next = gaussian_blur(levels.last().expect("nonempty"), delta.max(1e-3));
                levels.push(next);
                sigma_prev = sigma_next;
            }
            let dogs = levels
                .windows(2)
                .map(|w| {
                    let mut d = GrayImage::new(w[0].width(), w[0].height());
                    for i in 0..d.data().len() {
                        d.data_mut()[i] = w[1].data()[i] - w[0].data()[i];
                    }
                    d
                })
                .collect();
            let next_base = levels[scales].half();
            octaves.push(Octave {
                levels,
                dogs,
                downscale,
            });
            if next_base.width() < 16 || next_base.height() < 16 {
                break;
            }
            base = next_base;
            downscale *= 2;
        }
        Pyramid {
            octaves,
            sigma0,
            scales_per_octave: scales,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_normalized_and_symmetric() {
        let k = gaussian_kernel(1.5);
        let sum: f32 = k.iter().sum();
        assert!((sum - 1.0).abs() < 1e-5);
        assert_eq!(k.len() % 2, 1);
        for i in 0..k.len() / 2 {
            assert!((k[i] - k[k.len() - 1 - i]).abs() < 1e-6);
        }
        // Peak at centre.
        let mid = k.len() / 2;
        assert!(k[mid] >= *k.first().unwrap());
    }

    #[test]
    fn blur_preserves_constant_image() {
        let img = GrayImage::from_vec(16, 16, vec![0.7; 256]);
        let b = gaussian_blur(&img, 2.0);
        for &v in b.data() {
            assert!((v - 0.7).abs() < 1e-4);
        }
    }

    #[test]
    fn blur_reduces_variance() {
        // Checkerboard has high variance; blurring must smooth it.
        let mut img = GrayImage::new(32, 32);
        for y in 0..32 {
            for x in 0..32 {
                img.set(x, y, ((x + y) % 2) as f32);
            }
        }
        let var = |im: &GrayImage| {
            let m = im.mean();
            im.data().iter().map(|v| (v - m) * (v - m)).sum::<f32>() / im.data().len() as f32
        };
        let blurred = gaussian_blur(&img, 1.0);
        assert!(var(&blurred) < var(&img) * 0.5);
    }

    #[test]
    fn pyramid_shape() {
        let img = GrayImage::new(128, 64);
        let p = Pyramid::build(&img, 3, 2, 1.6);
        assert_eq!(p.octaves.len(), 3);
        for (i, oct) in p.octaves.iter().enumerate() {
            assert_eq!(oct.levels.len(), 2 + 3);
            assert_eq!(oct.dogs.len(), 2 + 2);
            assert_eq!(oct.downscale, 1 << i);
            assert_eq!(oct.levels[0].width(), 128 >> i);
        }
    }

    #[test]
    fn pyramid_stops_at_tiny_images() {
        let img = GrayImage::new(40, 40);
        let p = Pyramid::build(&img, 10, 2, 1.6);
        assert!(p.octaves.len() < 10, "should stop before 10 octaves");
        let last = p.octaves.last().unwrap();
        assert!(last.levels[0].width() >= 10);
    }

    #[test]
    fn dog_of_constant_image_is_zero() {
        let img = GrayImage::from_vec(32, 32, vec![0.3; 1024]);
        let p = Pyramid::build(&img, 1, 2, 1.6);
        for dog in &p.octaves[0].dogs {
            for &v in dog.data() {
                assert!(v.abs() < 1e-4);
            }
        }
    }
}
