//! Gaussian scale space and difference-of-Gaussians — the front half of
//! the `sift` service.

use crate::image::GrayImage;

/// Build a 1-D Gaussian kernel with radius `ceil(3σ)`, normalized to sum 1.
pub fn gaussian_kernel(sigma: f32) -> Vec<f32> {
    assert!(sigma > 0.0, "sigma must be positive");
    let radius = (3.0 * sigma).ceil() as isize;
    let mut k: Vec<f32> = (-radius..=radius)
        .map(|i| (-((i * i) as f32) / (2.0 * sigma * sigma)).exp())
        .collect();
    let sum: f32 = k.iter().sum();
    for v in &mut k {
        *v /= sum;
    }
    k
}

/// Separable Gaussian blur with clamped borders.
pub fn gaussian_blur(img: &GrayImage, sigma: f32) -> GrayImage {
    gaussian_blur_with(img, &gaussian_kernel(sigma))
}

/// Separable blur with a precomputed (odd-length, normalized) kernel —
/// the memoized path [`Pyramid::build`] uses.
///
/// Both passes split interior from border work: interior pixels read the
/// image through plain slice windows (no per-tap coordinate clamping,
/// which dominated the original kernel's cost), borders fall back to
/// clamped access. Per-pixel accumulation stays in tap order, so the
/// output is bit-identical to the naive clamped convolution.
pub fn gaussian_blur_with(img: &GrayImage, k: &[f32]) -> GrayImage {
    debug_assert_eq!(k.len() % 2, 1, "kernel must have odd length");
    let radius = k.len() / 2;
    let (w, h) = (img.width(), img.height());

    // Horizontal pass: sliding slice window over each row's interior.
    let (int_lo, int_hi) = if w > 2 * radius {
        (radius, w - radius)
    } else {
        (0, 0) // kernel wider than the row: everything is border.
    };
    let mut tmp = GrayImage::new(w, h);
    let src = img.data();
    for y in 0..h {
        let row = &src[y * w..(y + 1) * w];
        let out_row = &mut tmp.data_mut()[y * w..(y + 1) * w];
        for x in int_lo..int_hi {
            let window = &row[x - radius..=x + radius];
            let mut acc = 0.0;
            for (kv, v) in k.iter().zip(window) {
                acc += kv * v;
            }
            out_row[x] = acc;
        }
        // Border columns, clamped per tap.
        for x in (0..int_lo).chain(int_hi.max(int_lo)..w) {
            let mut acc = 0.0;
            for (i, &kv) in k.iter().enumerate() {
                let xi = (x as isize + i as isize - radius as isize).clamp(0, w as isize - 1);
                acc += kv * row[xi as usize];
            }
            out_row[x] = acc;
        }
    }

    // Vertical pass: per output row, accumulate tap rows in kernel order
    // (row index clamped once per tap — the border case costs nothing).
    let mut out = GrayImage::new(w, h);
    let tsrc = tmp.data();
    for y in 0..h {
        let out_row = &mut out.data_mut()[y * w..(y + 1) * w];
        for (i, &kv) in k.iter().enumerate() {
            let yi = (y as isize + i as isize - radius as isize).clamp(0, h as isize - 1) as usize;
            let tap_row = &tsrc[yi * w..(yi + 1) * w];
            for (slot, v) in out_row.iter_mut().zip(tap_row) {
                *slot += kv * v;
            }
        }
    }
    out
}

/// Per-build memo of Gaussian kernels, keyed by sigma quantized to
/// 1e-4 steps. The pyramid builder asks for the same handful of sigmas
/// (one prefilter + `scales + 2` identical deltas per octave), so a tiny
/// linear map beats hashing. Quantization only dedups keys — the stored
/// kernel is computed from the *first* exact sigma seen, and equal
/// sigmas (the cross-octave case) are bit-identical by construction.
#[derive(Debug, Default)]
pub struct KernelCache {
    entries: Vec<(u32, Vec<f32>)>,
}

impl KernelCache {
    fn key(sigma: f32) -> u32 {
        (sigma * 1e4).round() as u32
    }

    /// Kernel for `sigma`, computed on first use and reused after.
    pub fn get(&mut self, sigma: f32) -> &[f32] {
        let key = Self::key(sigma);
        if let Some(pos) = self.entries.iter().position(|(k, _)| *k == key) {
            return &self.entries[pos].1;
        }
        self.entries.push((key, gaussian_kernel(sigma)));
        &self.entries.last().expect("just pushed").1
    }

    /// Number of distinct kernels computed so far.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// One octave of scale space: progressively blurred copies at one
/// resolution, plus their DoG differences.
#[derive(Debug, Clone)]
pub struct Octave {
    /// Blurred levels, `levels[s]` has effective sigma `sigma0 * k^s`.
    pub levels: Vec<GrayImage>,
    /// `dogs[s] = levels[s + 1] - levels[s]`.
    pub dogs: Vec<GrayImage>,
    /// Scale factor of this octave relative to the input image (1, 2, 4…).
    pub downscale: u32,
}

/// The full scale-space pyramid.
#[derive(Debug, Clone)]
pub struct Pyramid {
    pub octaves: Vec<Octave>,
    pub sigma0: f32,
    pub scales_per_octave: usize,
}

impl Pyramid {
    /// Build a pyramid with `n_octaves` octaves and `scales + 3` levels
    /// per octave (the +3 padding lets DoG extrema be localized at every
    /// intended scale, as in Lowe's construction).
    pub fn build(img: &GrayImage, n_octaves: usize, scales: usize, sigma0: f32) -> Pyramid {
        assert!(n_octaves >= 1 && scales >= 1);
        let k = 2f32.powf(1.0 / scales as f32);
        let mut octaves = Vec::with_capacity(n_octaves);
        // Every octave restarts the sigma ladder at `sigma0`, so the
        // incremental-blur deltas repeat exactly across octaves — memoize
        // the kernels instead of re-deriving ceil(3σ)+1 exponentials per
        // level per octave.
        let mut kernels = KernelCache::default();
        let mut base = gaussian_blur_with(img, kernels.get(sigma0));
        let mut downscale = 1u32;
        for _ in 0..n_octaves {
            let n_levels = scales + 3;
            let mut levels = Vec::with_capacity(n_levels);
            levels.push(base);
            let mut sigma_prev = sigma0;
            for _ in 1..n_levels {
                let sigma_next = sigma_prev * k;
                // Incremental blur: blur the previous level by the sigma
                // delta in quadrature.
                let delta = (sigma_next * sigma_next - sigma_prev * sigma_prev).sqrt();
                let kernel = kernels.get(delta.max(1e-3));
                let next = gaussian_blur_with(levels.last().expect("nonempty"), kernel);
                levels.push(next);
                sigma_prev = sigma_next;
            }
            let dogs = levels
                .windows(2)
                .map(|w| {
                    let mut d = GrayImage::new(w[0].width(), w[0].height());
                    for i in 0..d.data().len() {
                        d.data_mut()[i] = w[1].data()[i] - w[0].data()[i];
                    }
                    d
                })
                .collect();
            let next_base = levels[scales].half();
            octaves.push(Octave {
                levels,
                dogs,
                downscale,
            });
            if next_base.width() < 16 || next_base.height() < 16 {
                break;
            }
            base = next_base;
            downscale *= 2;
        }
        Pyramid {
            octaves,
            sigma0,
            scales_per_octave: scales,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_normalized_and_symmetric() {
        let k = gaussian_kernel(1.5);
        let sum: f32 = k.iter().sum();
        assert!((sum - 1.0).abs() < 1e-5);
        assert_eq!(k.len() % 2, 1);
        for i in 0..k.len() / 2 {
            assert!((k[i] - k[k.len() - 1 - i]).abs() < 1e-6);
        }
        // Peak at centre.
        let mid = k.len() / 2;
        assert!(k[mid] >= *k.first().unwrap());
    }

    #[test]
    fn cached_kernels_agree_with_fresh() {
        let mut cache = KernelCache::default();
        for &sigma in &[0.5f32, 1.2, 1.6, 2.0, 1.2] {
            let cached = cache.get(sigma).to_vec();
            assert_eq!(cached, gaussian_kernel(sigma), "sigma {sigma}");
        }
        // The repeated sigma hit the cache instead of recomputing.
        assert_eq!(cache.len(), 4);
        assert!(!cache.is_empty());
    }

    #[test]
    fn blur_with_kernel_matches_naive_clamped_convolution() {
        // Deterministic pseudo-random image, width chosen so interior,
        // border, and kernel-wider-than-image paths all exercise.
        for (w, h) in [(23usize, 17usize), (5, 5), (3, 9)] {
            let data: Vec<f32> = (0..w * h)
                .map(|i| ((i * 2654435761) % 1000) as f32 / 1000.0)
                .collect();
            let img = GrayImage::from_vec(w, h, data);
            for sigma in [0.6f32, 1.6, 3.0] {
                let k = gaussian_kernel(sigma);
                let radius = (k.len() / 2) as isize;
                let fast = gaussian_blur(&img, sigma);
                // Naive reference: clamped taps in the same order.
                let mut tmp = GrayImage::new(w, h);
                for y in 0..h {
                    for x in 0..w {
                        let mut acc = 0.0;
                        for (i, &kv) in k.iter().enumerate() {
                            acc +=
                                kv * img.get_clamped(x as isize + i as isize - radius, y as isize);
                        }
                        tmp.set(x, y, acc);
                    }
                }
                let mut naive = GrayImage::new(w, h);
                for y in 0..h {
                    for x in 0..w {
                        let mut acc = 0.0;
                        for (i, &kv) in k.iter().enumerate() {
                            acc +=
                                kv * tmp.get_clamped(x as isize, y as isize + i as isize - radius);
                        }
                        naive.set(x, y, acc);
                    }
                }
                for (a, b) in fast.data().iter().zip(naive.data()) {
                    assert_eq!(a, b, "blur must be bit-identical ({w}x{h}, sigma {sigma})");
                }
            }
        }
    }

    #[test]
    fn blur_preserves_constant_image() {
        let img = GrayImage::from_vec(16, 16, vec![0.7; 256]);
        let b = gaussian_blur(&img, 2.0);
        for &v in b.data() {
            assert!((v - 0.7).abs() < 1e-4);
        }
    }

    #[test]
    fn blur_reduces_variance() {
        // Checkerboard has high variance; blurring must smooth it.
        let mut img = GrayImage::new(32, 32);
        for y in 0..32 {
            for x in 0..32 {
                img.set(x, y, ((x + y) % 2) as f32);
            }
        }
        let var = |im: &GrayImage| {
            let m = im.mean();
            im.data().iter().map(|v| (v - m) * (v - m)).sum::<f32>() / im.data().len() as f32
        };
        let blurred = gaussian_blur(&img, 1.0);
        assert!(var(&blurred) < var(&img) * 0.5);
    }

    #[test]
    fn pyramid_shape() {
        let img = GrayImage::new(128, 64);
        let p = Pyramid::build(&img, 3, 2, 1.6);
        assert_eq!(p.octaves.len(), 3);
        for (i, oct) in p.octaves.iter().enumerate() {
            assert_eq!(oct.levels.len(), 2 + 3);
            assert_eq!(oct.dogs.len(), 2 + 2);
            assert_eq!(oct.downscale, 1 << i);
            assert_eq!(oct.levels[0].width(), 128 >> i);
        }
    }

    #[test]
    fn pyramid_stops_at_tiny_images() {
        let img = GrayImage::new(40, 40);
        let p = Pyramid::build(&img, 10, 2, 1.6);
        assert!(p.octaves.len() < 10, "should stop before 10 octaves");
        let last = p.octaves.last().unwrap();
        assert!(last.levels[0].width() >= 10);
    }

    #[test]
    fn dog_of_constant_image_is_zero() {
        let img = GrayImage::from_vec(32, 32, vec![0.3; 1024]);
        let p = Pyramid::build(&img, 1, 2, 1.6);
        for dog in &p.octaves[0].dogs {
            for &v in dog.data() {
                assert!(v.abs() < 1e-4);
            }
        }
    }
}
