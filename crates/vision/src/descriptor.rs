//! 128-dimensional gradient-histogram descriptors — the extraction half
//! of the `sift` service.
//!
//! Layout follows Lowe: a 4×4 spatial grid of 8-bin orientation
//! histograms sampled from a rotated, scale-normalized patch around the
//! keypoint, trilinearly-ish accumulated, clipped at 0.2 and re-normalized
//! for illumination robustness.

use crate::image::GrayImage;
use crate::keypoints::Keypoint;
use crate::pyramid::Pyramid;

/// Descriptor dimensionality: 4 × 4 spatial cells × 8 orientation bins.
pub const DESC_DIM: usize = 128;

/// A unit-norm 128-d feature descriptor plus its keypoint geometry.
#[derive(Debug, Clone, PartialEq)]
pub struct Descriptor {
    pub keypoint: Keypoint,
    pub v: [f32; DESC_DIM],
}

impl Descriptor {
    /// Squared Euclidean distance between descriptor vectors.
    pub fn dist2(&self, other: &Descriptor) -> f32 {
        self.v
            .iter()
            .zip(&other.v)
            .map(|(a, b)| (a - b) * (a - b))
            .sum()
    }

    /// Euclidean norm (≈1 after normalization; exactly 0 for an empty
    /// gradient patch).
    pub fn norm(&self) -> f32 {
        self.v.iter().map(|x| x * x).sum::<f32>().sqrt()
    }
}

/// Extract the descriptor for one keypoint from the blur level it was
/// detected at.
pub fn describe(img: &GrayImage, kp: &Keypoint, downscale: u32) -> Descriptor {
    // Keypoint coordinates in this octave's pixel grid.
    let kx = kp.x / downscale as f32;
    let ky = kp.y / downscale as f32;
    let scale = (kp.scale / downscale as f32).max(1.0);
    let cos_t = kp.orientation.cos();
    let sin_t = kp.orientation.sin();

    // 16×16 sample grid over a 4×4 cell layout; spacing tied to scale.
    let step = 0.75 * scale;
    let mut hist = [0f32; DESC_DIM];
    for sy in 0..16 {
        for sx in 0..16 {
            // Patch coordinates centred on the keypoint, rotated by the
            // keypoint orientation for rotation invariance.
            let px = (sx as f32 - 7.5) * step;
            let py = (sy as f32 - 7.5) * step;
            let rx = cos_t * px - sin_t * py + kx;
            let ry = sin_t * px + cos_t * py + ky;
            if rx < 1.0
                || ry < 1.0
                || rx >= (img.width() - 2) as f32
                || ry >= (img.height() - 2) as f32
            {
                continue;
            }
            let (gx, gy) = img.gradient(rx as usize, ry as usize);
            let mag = (gx * gx + gy * gy).sqrt();
            if mag == 0.0 {
                continue;
            }
            // Gradient angle relative to keypoint orientation.
            let angle = gy.atan2(gx) - kp.orientation;
            let angle = angle.rem_euclid(std::f32::consts::TAU);
            let obin = ((angle / std::f32::consts::TAU) * 8.0) as usize % 8;
            let cell_x = sx / 4;
            let cell_y = sy / 4;
            // Gaussian weight over the patch.
            let wgt = (-((px * px + py * py) / (2.0 * (8.0 * step) * (8.0 * step)))).exp();
            hist[(cell_y * 4 + cell_x) * 8 + obin] += mag * wgt;
        }
    }

    // Normalize → clip at 0.2 → renormalize (Lowe's illumination clamp).
    normalize(&mut hist);
    for v in &mut hist {
        *v = v.min(0.2);
    }
    normalize(&mut hist);

    Descriptor {
        keypoint: *kp,
        v: hist,
    }
}

fn normalize(v: &mut [f32; DESC_DIM]) {
    let norm = v.iter().map(|x| x * x).sum::<f32>().sqrt();
    if norm > 1e-12 {
        for x in v.iter_mut() {
            *x /= norm;
        }
    }
}

/// Extract descriptors for all keypoints detected on `pyr`.
pub fn describe_all(pyr: &Pyramid, kps: &[Keypoint]) -> Vec<Descriptor> {
    kps.iter()
        .map(|kp| {
            let oct = &pyr.octaves[kp.octave];
            describe(&oct.levels[kp.level], kp, oct.downscale)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keypoints::{detect, DetectorParams};
    use crate::scene::SceneGenerator;

    fn scene_descriptors(frame: u32) -> Vec<Descriptor> {
        let g = SceneGenerator::workplace_scaled(1, 320, 180);
        let img = g.frame(frame);
        let (pyr, kps) = detect(&img, &DetectorParams::default());
        describe_all(&pyr, &kps)
    }

    #[test]
    fn descriptors_are_unit_norm() {
        let descs = scene_descriptors(0);
        assert!(!descs.is_empty());
        for d in &descs {
            let n = d.norm();
            assert!((n - 1.0).abs() < 1e-3, "norm {n}");
        }
    }

    #[test]
    fn values_clipped_after_renorm() {
        for d in scene_descriptors(0) {
            for &x in &d.v {
                assert!(x >= 0.0);
                // 0.2 clip happens pre-renormalization; post-renorm values
                // can exceed 0.2 slightly but stay well below 0.5.
                assert!(x < 0.5, "descriptor entry {x} suspiciously large");
            }
        }
    }

    #[test]
    fn self_distance_zero_cross_distance_positive() {
        let descs = scene_descriptors(0);
        let a = &descs[0];
        assert_eq!(a.dist2(a), 0.0);
        let far = descs
            .iter()
            .skip(1)
            .map(|d| a.dist2(d))
            .fold(0.0f32, f32::max);
        assert!(far > 0.0);
    }

    #[test]
    fn same_scene_point_matches_across_small_motion() {
        // The same physical texture observed in consecutive frames should
        // produce at least some close descriptor pairs (this is what lets
        // `matching` track objects).
        let d0 = scene_descriptors(0);
        let d1 = scene_descriptors(1);
        let close = d0
            .iter()
            .filter(|a| d1.iter().any(|b| a.dist2(b) < 0.15))
            .count();
        assert!(
            close * 3 >= d0.len(),
            "only {close}/{} descriptors found a near match across frames",
            d0.len()
        );
    }

    #[test]
    fn deterministic_extraction() {
        assert_eq!(scene_descriptors(2), scene_descriptors(2));
    }
}
