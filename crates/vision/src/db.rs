//! The reference-object database — the training-time artifact the
//! pipeline recognizes against, plus the end-to-end recognition helper
//! used by examples and the real-compute runtime.
//!
//! Training mirrors the paper's offline stage: detect and describe
//! features on a canonical reference view, partition them per object,
//! fit PCA + GMM over all descriptors, Fisher-encode each object, and
//! index the Fisher vectors in LSH tables. At query time a frame flows
//! through the same five stages the services implement:
//! detect/describe (`sift`) → PCA + Fisher (`encoding`) → LSH candidate
//! lookup (`lsh`) → ratio-test matching + RANSAC pose (`matching`).

use simcore::SimRng;

use crate::descriptor::{describe_all, Descriptor};
use crate::fisher::FisherEncoder;
use crate::gmm::DiagGmm;
use crate::image::GrayImage;
use crate::keypoints::{detect, DetectorParams};
use crate::lsh::LshIndex;
use crate::matching::{match_descriptors, MatchParams};
use crate::pca::Pca;
use crate::ransac::{project_bbox, ransac_homography, BBox, ObjectPose, RansacParams};
use crate::scene::SceneGenerator;

/// One trained reference object.
#[derive(Debug, Clone)]
pub struct ReferenceObject {
    pub name: String,
    /// Descriptors in reference-view coordinates.
    pub descriptors: Vec<Descriptor>,
    /// Reference-view bounding box.
    pub bbox: BBox,
}

/// A recognized object in a query frame.
#[derive(Debug, Clone)]
pub struct Recognition {
    pub name: String,
    pub pose: ObjectPose,
    /// LSH cosine similarity of the frame's Fisher vector to the object's.
    pub fisher_similarity: f64,
}

/// The full trained database.
pub struct ReferenceDb {
    objects: Vec<ReferenceObject>,
    pca: Pca,
    encoder: FisherEncoder,
    lsh: LshIndex,
    /// `lsh` item id → object index.
    lsh_to_object: Vec<usize>,
    detector: DetectorParams,
}

/// Training hyper-parameters (sized for the synthetic scene).
#[derive(Debug, Clone, Copy)]
pub struct TrainParams {
    pub pca_dims: usize,
    pub gmm_components: usize,
    pub gmm_iters: usize,
    pub lsh_tables: usize,
    pub lsh_bits: usize,
}

impl Default for TrainParams {
    fn default() -> Self {
        TrainParams {
            pca_dims: 16,
            gmm_components: 4,
            gmm_iters: 15,
            lsh_tables: 4,
            lsh_bits: 8,
        }
    }
}

impl ReferenceDb {
    /// Train from a scene generator's canonical reference view.
    pub fn train(scene: &SceneGenerator, params: TrainParams, rng: &mut SimRng) -> ReferenceDb {
        let detector = DetectorParams::default();
        let ref_img = scene.reference_frame();
        let (pyr, kps) = detect(&ref_img, &detector);
        let descs = describe_all(&pyr, &kps);
        assert!(
            descs.len() >= params.gmm_components * 4,
            "reference view too feature-poor to train on ({} descriptors)",
            descs.len()
        );

        // Partition descriptors per object by reference-view bbox
        // (objects listed later occlude earlier ones, so assign each
        // keypoint to the last containing object — same painter's order
        // as the renderer).
        let mut objects: Vec<ReferenceObject> = scene
            .objects()
            .iter()
            .map(|o| ReferenceObject {
                name: o.name.to_string(),
                descriptors: Vec::new(),
                bbox: BBox {
                    x0: o.x as f64,
                    y0: o.y as f64,
                    x1: (o.x + o.w) as f64,
                    y1: (o.y + o.h) as f64,
                },
            })
            .collect();
        for d in &descs {
            let (x, y) = (d.keypoint.x as f64, d.keypoint.y as f64);
            let owner = objects
                .iter()
                .rposition(|o| x >= o.bbox.x0 && x < o.bbox.x1 && y >= o.bbox.y0 && y < o.bbox.y1);
            if let Some(i) = owner {
                objects[i].descriptors.push(d.clone());
            }
        }

        // Fit PCA + GMM over the pooled descriptor population.
        let pooled: Vec<Vec<f64>> = descs
            .iter()
            .map(|d| d.v.iter().map(|&x| x as f64).collect())
            .collect();
        let pca = Pca::fit(&pooled, params.pca_dims, rng);
        let reduced = pca.transform_batch(&pooled);
        let gmm = DiagGmm::fit(&reduced, params.gmm_components, params.gmm_iters, rng);
        let encoder = FisherEncoder::new(gmm);

        // Fisher-encode each object's descriptor set and index it.
        let mut lsh = LshIndex::new(encoder.dim(), params.lsh_tables, params.lsh_bits, rng);
        let mut lsh_to_object = Vec::new();
        for (i, obj) in objects.iter().enumerate() {
            let obj_reduced: Vec<Vec<f64>> = obj
                .descriptors
                .iter()
                .map(|d| pca.transform(&d.v.iter().map(|&x| x as f64).collect::<Vec<_>>()))
                .collect();
            let fv = encoder.encode(&obj_reduced);
            lsh.insert(fv);
            lsh_to_object.push(i);
        }

        ReferenceDb {
            objects,
            pca,
            encoder,
            lsh,
            lsh_to_object,
            detector,
        }
    }

    pub fn objects(&self) -> &[ReferenceObject] {
        &self.objects
    }

    pub fn detector_params(&self) -> &DetectorParams {
        &self.detector
    }

    /// Fisher-encode a set of raw 128-d descriptors.
    pub fn encode_frame(&self, descs: &[Descriptor]) -> Vec<f64> {
        let reduced: Vec<Vec<f64>> = descs
            .iter()
            .map(|d| {
                self.pca
                    .transform(&d.v.iter().map(|&x| x as f64).collect::<Vec<_>>())
            })
            .collect();
        self.encoder.encode(&reduced)
    }

    /// LSH shortlist for a Fisher vector: `(object index, cosine
    /// similarity)` ranked by similarity — the `lsh` service's query.
    pub fn lsh_candidates(&self, fisher: &[f64], k: usize) -> Vec<(usize, f64)> {
        self.lsh
            .query(fisher, k)
            .into_iter()
            .map(|(lsh_id, sim)| (self.lsh_to_object[lsh_id], sim))
            .collect()
    }

    /// Match a descriptor set against one candidate object and estimate
    /// its pose — the `matching` service's per-candidate work.
    pub fn match_object(
        &self,
        object_idx: usize,
        descs: &[Descriptor],
        fisher_similarity: f64,
        rng: &mut SimRng,
    ) -> Option<Recognition> {
        let obj = self.objects.get(object_idx)?;
        let matches = match_descriptors(descs, &obj.descriptors, &MatchParams::default());
        if matches.len() < 8 {
            return None;
        }
        let pairs: Vec<_> = matches
            .iter()
            .map(|m| {
                let q = &descs[m.query_idx].keypoint;
                let r = &obj.descriptors[m.ref_idx].keypoint;
                ((r.x as f64, r.y as f64), (q.x as f64, q.y as f64))
            })
            .collect();
        let fit = ransac_homography(&pairs, &RansacParams::default(), rng)?;
        let pose = project_bbox(&fit.homography, &obj.bbox, fit.inliers.len())?;
        Some(Recognition {
            name: obj.name.clone(),
            pose,
            fisher_similarity,
        })
    }

    /// Run the full recognition pipeline on a query frame: detection,
    /// description, encoding, LSH candidate retrieval, per-candidate
    /// matching, and pose estimation.
    pub fn recognize(&self, frame: &GrayImage, rng: &mut SimRng) -> Vec<Recognition> {
        let (pyr, kps) = detect(frame, &self.detector);
        let descs = describe_all(&pyr, &kps);
        self.recognize_described(&descs, rng)
    }

    /// Recognition from precomputed descriptors (what the distributed
    /// pipeline does, since `sift` runs on a different machine).
    pub fn recognize_described(&self, descs: &[Descriptor], rng: &mut SimRng) -> Vec<Recognition> {
        if descs.is_empty() {
            return Vec::new();
        }
        let fv = self.encode_frame(descs);
        // All objects are candidates in a 3-object database; take LSH's
        // ranked shortlist (top half, min 1) as the realistic filter.
        let k = (self.lsh.len() / 2).max(1);
        let shortlist = self.lsh.query(&fv, k.max(2));
        let mut out = Vec::new();
        for (lsh_id, sim) in shortlist {
            let obj = &self.objects[self.lsh_to_object[lsh_id]];
            let matches = match_descriptors(descs, &obj.descriptors, &MatchParams::default());
            if matches.len() < 8 {
                continue;
            }
            let pairs: Vec<_> = matches
                .iter()
                .map(|m| {
                    let q = &descs[m.query_idx].keypoint;
                    let r = &obj.descriptors[m.ref_idx].keypoint;
                    ((r.x as f64, r.y as f64), (q.x as f64, q.y as f64))
                })
                .collect();
            if let Some(fit) = ransac_homography(&pairs, &RansacParams::default(), rng) {
                if let Some(pose) = project_bbox(&fit.homography, &obj.bbox, fit.inliers.len()) {
                    out.push(Recognition {
                        name: obj.name.clone(),
                        pose,
                        fisher_similarity: sim,
                    });
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_db() -> (SceneGenerator, ReferenceDb, SimRng) {
        let scene = SceneGenerator::workplace_scaled(1, 320, 180);
        let mut rng = SimRng::new(42);
        let db = ReferenceDb::train(&scene, TrainParams::default(), &mut rng);
        (scene, db, rng)
    }

    #[test]
    fn training_partitions_descriptors() {
        let (_, db, _) = small_db();
        assert_eq!(db.objects().len(), 3);
        let total: usize = db.objects().iter().map(|o| o.descriptors.len()).sum();
        assert!(total > 30, "only {total} descriptors assigned to objects");
        // The texture-rich monitor and keyboard must both own features.
        for name in ["monitor", "keyboard"] {
            let obj = db.objects().iter().find(|o| o.name == name).unwrap();
            assert!(
                obj.descriptors.len() >= 5,
                "{name} has {} descriptors",
                obj.descriptors.len()
            );
        }
    }

    #[test]
    fn recognizes_objects_in_reference_view() {
        let (scene, db, mut rng) = small_db();
        let recs = db.recognize(&scene.reference_frame(), &mut rng);
        let names: Vec<_> = recs.iter().map(|r| r.name.as_str()).collect();
        assert!(
            names.contains(&"monitor") || names.contains(&"keyboard"),
            "no objects recognized in the training view: {names:?}"
        );
        // Self-recognition poses should land near the reference bbox.
        for r in &recs {
            let obj = db.objects().iter().find(|o| o.name == r.name).unwrap();
            let (cx, cy) = r.pose.corners[0];
            assert!(
                (cx - obj.bbox.x0).abs() < 25.0 && (cy - obj.bbox.y0).abs() < 25.0,
                "{}: corner ({cx:.1},{cy:.1}) far from bbox origin ({},{})",
                r.name,
                obj.bbox.x0,
                obj.bbox.y0
            );
        }
    }

    #[test]
    fn recognizes_and_tracks_across_video_frames() {
        let (scene, db, mut rng) = small_db();
        let mut hits = 0;
        for idx in [0u32, 5, 10] {
            let recs = db.recognize(&scene.frame(idx), &mut rng);
            if !recs.is_empty() {
                hits += 1;
            }
        }
        assert!(
            hits >= 2,
            "recognized objects in only {hits}/3 moving frames"
        );
    }

    #[test]
    fn empty_descriptor_set_recognizes_nothing() {
        let (_, db, mut rng) = small_db();
        assert!(db.recognize_described(&[], &mut rng).is_empty());
    }

    #[test]
    fn fisher_encoding_has_encoder_dim() {
        let (scene, db, _) = small_db();
        let (pyr, kps) = detect(&scene.frame(0), db.detector_params());
        let descs = describe_all(&pyr, &kps);
        let fv = db.encode_frame(&descs);
        assert_eq!(fv.len(), 2 * 4 * 16);
    }
}
