//! Intra-frame compression for the client uplink.
//!
//! The paper's clients stream "a pre-recorded … 720p video" — i.e.
//! *encoded* frames — while `primary` decodes and forwards raw pixels.
//! That asymmetry (≈150 KB compressed uplink vs ≈310 KB raw intermediate
//! frames) is what makes the hybrid split of fig. 11 so expensive. This
//! module implements the encoder so the real runtime can exercise the
//! same asymmetry: an 8×8 block DCT with uniform quantization, zig-zag
//! scan, and run-length/varint packing — JPEG's skeleton without the
//! entropy coder.

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::image::GrayImage;

const BLOCK: usize = 8;

/// Quality knob: higher = finer quantization = larger/better. 1–100.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Quality(pub u8);

impl Quality {
    /// Quantization step for coefficient (u, v): a flat base scaled by
    /// frequency (higher frequencies quantized harder).
    fn step(&self, u: usize, v: usize) -> f32 {
        let q = self.0.clamp(1, 100) as f32;
        let base = (101.0 - q) / 60.0; // q=50 → 0.85, q=90 → 0.18
        base * (1.0 + 0.25 * (u + v) as f32)
    }
}

/// 1-D DCT-II on 8 samples (naive; BLOCK is tiny).
fn dct8(input: &[f32; 8]) -> [f32; 8] {
    let mut out = [0f32; 8];
    for (k, o) in out.iter_mut().enumerate() {
        let mut acc = 0.0;
        for (n, &x) in input.iter().enumerate() {
            acc += x * ((std::f32::consts::PI / 8.0) * (n as f32 + 0.5) * k as f32).cos();
        }
        let scale = if k == 0 {
            (1.0 / 8.0f32).sqrt()
        } else {
            (2.0 / 8.0f32).sqrt()
        };
        *o = acc * scale;
    }
    out
}

/// Inverse of [`dct8`] (DCT-III with the same normalization).
fn idct8(input: &[f32; 8]) -> [f32; 8] {
    let mut out = [0f32; 8];
    for (n, o) in out.iter_mut().enumerate() {
        let mut acc = input[0] * (1.0 / 8.0f32).sqrt();
        for (k, &x) in input.iter().enumerate().skip(1) {
            acc += x
                * (2.0 / 8.0f32).sqrt()
                * ((std::f32::consts::PI / 8.0) * (n as f32 + 0.5) * k as f32).cos();
        }
        *o = acc;
    }
    out
}

/// 2-D DCT of an 8×8 block (rows then columns).
fn dct2d(block: &[[f32; 8]; 8]) -> [[f32; 8]; 8] {
    let mut rows = [[0f32; 8]; 8];
    for (i, row) in block.iter().enumerate() {
        rows[i] = dct8(row);
    }
    let mut out = [[0f32; 8]; 8];
    for j in 0..8 {
        let col: [f32; 8] = std::array::from_fn(|i| rows[i][j]);
        let t = dct8(&col);
        for i in 0..8 {
            out[i][j] = t[i];
        }
    }
    out
}

fn idct2d(block: &[[f32; 8]; 8]) -> [[f32; 8]; 8] {
    let mut cols = [[0f32; 8]; 8];
    for j in 0..8 {
        let col: [f32; 8] = std::array::from_fn(|i| block[i][j]);
        let t = idct8(&col);
        for i in 0..8 {
            cols[i][j] = t[i];
        }
    }
    let mut out = [[0f32; 8]; 8];
    for (i, row) in cols.iter().enumerate() {
        out[i] = idct8(row);
    }
    out
}

/// Zig-zag scan order for an 8×8 block.
fn zigzag() -> [(usize, usize); 64] {
    let mut order = [(0usize, 0usize); 64];
    let mut idx = 0;
    for s in 0..15 {
        let coords: Vec<(usize, usize)> = (0..=s.min(7))
            .filter(|&i| s - i <= 7)
            .map(|i| (i, s - i))
            .collect();
        let iter: Box<dyn Iterator<Item = (usize, usize)>> = if s % 2 == 0 {
            Box::new(coords.into_iter().rev())
        } else {
            Box::new(coords.into_iter())
        };
        for c in iter {
            order[idx] = c;
            idx += 1;
        }
    }
    order
}

fn put_varint(buf: &mut BytesMut, v: i32) {
    // ZigZag-encode sign, then LEB128.
    let mut u = ((v << 1) ^ (v >> 31)) as u32;
    loop {
        let byte = (u & 0x7F) as u8;
        u >>= 7;
        if u == 0 {
            buf.put_u8(byte);
            break;
        }
        buf.put_u8(byte | 0x80);
    }
}

fn get_varint(buf: &mut Bytes) -> Option<i32> {
    let mut u: u32 = 0;
    let mut shift = 0;
    loop {
        if !buf.has_remaining() || shift > 28 {
            return None;
        }
        let byte = buf.get_u8();
        u |= ((byte & 0x7F) as u32) << shift;
        if byte & 0x80 == 0 {
            break;
        }
        shift += 7;
    }
    Some(((u >> 1) as i32) ^ -((u & 1) as i32))
}

/// Encode a grayscale frame. The stream is
/// `[w u32][h u32][quality u8]` + per block: RLE of zig-zagged quantized
/// coefficients as `(zero-run u8, varint value)` pairs, `0xFF` = end of
/// block.
pub fn encode(img: &GrayImage, quality: Quality) -> Bytes {
    let (w, h) = (img.width(), img.height());
    let order = zigzag();
    let mut buf = BytesMut::with_capacity(w * h / 4);
    buf.put_u32(w as u32);
    buf.put_u32(h as u32);
    buf.put_u8(quality.0);
    let mut block = [[0f32; 8]; 8];
    for by in (0..h).step_by(BLOCK) {
        for bx in (0..w).step_by(BLOCK) {
            for (y, row) in block.iter_mut().enumerate() {
                for (x, px) in row.iter_mut().enumerate() {
                    *px = img.get_clamped((bx + x) as isize, (by + y) as isize) - 0.5;
                }
            }
            let coeffs = dct2d(&block);
            // Quantize + RLE in zig-zag order.
            let mut run = 0u8;
            for &(u, v) in &order {
                let q = (coeffs[u][v] / quality.step(u, v)).round() as i32;
                if q == 0 {
                    run = run.saturating_add(1);
                    continue;
                }
                buf.put_u8(run.min(0xFE));
                put_varint(&mut buf, q);
                run = 0;
            }
            buf.put_u8(0xFF); // end of block
        }
    }
    buf.freeze()
}

/// Decode a stream produced by [`encode`].
pub fn decode(mut data: Bytes) -> Option<GrayImage> {
    if data.remaining() < 9 {
        return None;
    }
    let w = data.get_u32() as usize;
    let h = data.get_u32() as usize;
    if w == 0 || h == 0 || w > 16_384 || h > 16_384 {
        return None;
    }
    let quality = Quality(data.get_u8());
    let order = zigzag();
    let mut img = GrayImage::new(w, h);
    for by in (0..h).step_by(BLOCK) {
        for bx in (0..w).step_by(BLOCK) {
            let mut coeffs = [[0f32; 8]; 8];
            let mut pos = 0usize;
            loop {
                if !data.has_remaining() {
                    return None;
                }
                let run = data.get_u8();
                if run == 0xFF {
                    break;
                }
                pos += run as usize;
                if pos >= 64 {
                    return None;
                }
                let q = get_varint(&mut data)?;
                let (u, v) = order[pos];
                coeffs[u][v] = q as f32 * quality.step(u, v);
                pos += 1;
            }
            let block = idct2d(&coeffs);
            for (y, row) in block.iter().enumerate() {
                for (x, &px) in row.iter().enumerate() {
                    let (ix, iy) = (bx + x, by + y);
                    if ix < w && iy < h {
                        img.set(ix, iy, (px + 0.5).clamp(0.0, 1.0));
                    }
                }
            }
        }
    }
    Some(img)
}

/// Peak signal-to-noise ratio between two equally-sized images, dB.
pub fn psnr(a: &GrayImage, b: &GrayImage) -> f64 {
    assert_eq!(a.width(), b.width());
    assert_eq!(a.height(), b.height());
    let mse: f64 = a
        .data()
        .iter()
        .zip(b.data())
        .map(|(&x, &y)| ((x - y) as f64).powi(2))
        .sum::<f64>()
        / a.data().len() as f64;
    if mse == 0.0 {
        f64::INFINITY
    } else {
        10.0 * (1.0 / mse).log10()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scene::SceneGenerator;

    #[test]
    fn zigzag_is_a_permutation() {
        let order = zigzag();
        let mut seen = [[false; 8]; 8];
        for &(u, v) in &order {
            assert!(!seen[u][v], "duplicate ({u},{v})");
            seen[u][v] = true;
        }
        assert_eq!(order[0], (0, 0));
    }

    #[test]
    fn dct_round_trips() {
        let input = [0.1f32, -0.5, 0.3, 0.9, -0.2, 0.0, 0.7, -0.8];
        let back = idct8(&dct8(&input));
        for (a, b) in input.iter().zip(&back) {
            assert!((a - b).abs() < 1e-5, "{a} vs {b}");
        }
    }

    #[test]
    fn varint_round_trips() {
        let mut buf = BytesMut::new();
        for v in [-1_000_000, -1, 0, 1, 63, 64, 1_000_000] {
            put_varint(&mut buf, v);
        }
        let mut data = buf.freeze();
        for v in [-1_000_000, -1, 0, 1, 63, 64, 1_000_000] {
            assert_eq!(get_varint(&mut data), Some(v));
        }
    }

    #[test]
    fn flat_frame_compresses_to_almost_nothing() {
        let img = GrayImage::from_vec(64, 64, vec![0.5; 4096]);
        let bytes = encode(&img, Quality(80));
        assert!(
            bytes.len() < 64 * 64 / 16,
            "flat frame took {} bytes",
            bytes.len()
        );
        let back = decode(bytes).expect("valid stream");
        assert!(psnr(&img, &back) > 40.0);
    }

    #[test]
    fn scene_frame_round_trips_with_good_quality_and_compression() {
        let g = SceneGenerator::workplace_scaled(1, 256, 144);
        let img = g.frame(0);
        let raw = img.data().len(); // 1 byte/px equivalent
        let bytes = encode(&img, Quality(80));
        let ratio = raw as f64 / bytes.len() as f64;
        let back = decode(bytes).expect("valid stream");
        let q = psnr(&img, &back);
        assert!(ratio > 1.5, "compression ratio {ratio:.2} too poor");
        assert!(q > 24.0, "PSNR {q:.1} dB too lossy");
    }

    #[test]
    fn quality_trades_size_for_psnr() {
        let g = SceneGenerator::workplace_scaled(1, 128, 72);
        let img = g.frame(0);
        let low = encode(&img, Quality(30));
        let high = encode(&img, Quality(95));
        assert!(low.len() < high.len());
        let psnr_low = psnr(&img, &decode(low).expect("valid"));
        let psnr_high = psnr(&img, &decode(high).expect("valid"));
        assert!(psnr_high > psnr_low);
    }

    #[test]
    fn truncated_stream_rejected() {
        let g = SceneGenerator::workplace_scaled(1, 64, 40);
        let bytes = encode(&g.frame(0), Quality(70));
        let truncated = bytes.slice(0..bytes.len() / 2);
        assert!(decode(truncated).is_none());
        assert!(decode(Bytes::from_static(b"xx")).is_none());
    }

    #[test]
    fn non_multiple_of_block_dimensions_handled() {
        let g = SceneGenerator::workplace_scaled(1, 100, 45); // 100, 45 not %8
        let img = g.frame(0);
        let back = decode(encode(&img, Quality(85))).expect("valid");
        assert_eq!(back.width(), 100);
        assert_eq!(back.height(), 45);
        assert!(psnr(&img, &back) > 22.0);
    }
}
