//! Diagonal-covariance Gaussian mixture model fitted with EM, initialized
//! by k-means++ — the generative model underlying Fisher-vector encoding.

use simcore::SimRng;

/// A fitted diagonal-covariance GMM.
#[derive(Debug, Clone)]
pub struct DiagGmm {
    /// Mixture weights, sum to 1.
    pub weights: Vec<f64>,
    /// Component means, `means[k]` length `d`.
    pub means: Vec<Vec<f64>>,
    /// Component variances (diagonal), same shape as means, floored.
    pub vars: Vec<Vec<f64>>,
}

/// Variance floor: keeps posteriors finite on degenerate clusters.
const VAR_FLOOR: f64 = 1e-4;

impl DiagGmm {
    /// Fit `k` components to `data` with `iters` EM iterations.
    pub fn fit(data: &[Vec<f64>], k: usize, iters: usize, rng: &mut SimRng) -> DiagGmm {
        assert!(k >= 1 && data.len() >= k, "need at least k samples");
        let d = data[0].len();
        assert!(data.iter().all(|r| r.len() == d), "ragged data");

        // k-means++ seeding.
        let mut means = kmeanspp(data, k, rng);
        // Global variance as the starting spread.
        let global_mean: Vec<f64> = (0..d)
            .map(|j| data.iter().map(|r| r[j]).sum::<f64>() / data.len() as f64)
            .collect();
        let global_var: Vec<f64> = (0..d)
            .map(|j| {
                (data
                    .iter()
                    .map(|r| (r[j] - global_mean[j]).powi(2))
                    .sum::<f64>()
                    / data.len() as f64)
                    .max(VAR_FLOOR)
            })
            .collect();
        let mut vars = vec![global_var.clone(); k];
        let mut weights = vec![1.0 / k as f64; k];

        let mut resp = vec![vec![0.0f64; k]; data.len()];
        for _ in 0..iters {
            // E step: responsibilities via log-sum-exp.
            for (i, x) in data.iter().enumerate() {
                let mut logp = vec![0.0f64; k];
                for c in 0..k {
                    logp[c] = weights[c].max(1e-300).ln() + log_gauss(x, &means[c], &vars[c]);
                }
                let m = logp.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
                let denom: f64 = logp.iter().map(|&lp| (lp - m).exp()).sum();
                for c in 0..k {
                    resp[i][c] = (logp[c] - m).exp() / denom;
                }
            }
            // M step.
            for c in 0..k {
                let nk: f64 = resp.iter().map(|r| r[c]).sum();
                if nk < 1e-9 {
                    // Dead component: re-seed on the point worst explained.
                    let worst = (0..data.len())
                        .max_by(|&a, &b| {
                            let pa: f64 = resp[a].iter().sum();
                            let pb: f64 = resp[b].iter().sum();
                            pa.partial_cmp(&pb).expect("finite resp")
                        })
                        .expect("nonempty data");
                    means[c] = data[worst].clone();
                    vars[c] = global_var.clone();
                    weights[c] = 1.0 / k as f64;
                    continue;
                }
                weights[c] = nk / data.len() as f64;
                for j in 0..d {
                    let mu = data
                        .iter()
                        .enumerate()
                        .map(|(i, x)| resp[i][c] * x[j])
                        .sum::<f64>()
                        / nk;
                    means[c][j] = mu;
                }
                for j in 0..d {
                    let var = data
                        .iter()
                        .enumerate()
                        .map(|(i, x)| resp[i][c] * (x[j] - means[c][j]).powi(2))
                        .sum::<f64>()
                        / nk;
                    vars[c][j] = var.max(VAR_FLOOR);
                }
            }
            // Renormalize weights (numerical drift).
            let wsum: f64 = weights.iter().sum();
            for w in &mut weights {
                *w /= wsum;
            }
        }

        DiagGmm {
            weights,
            means,
            vars,
        }
    }

    pub fn n_components(&self) -> usize {
        self.weights.len()
    }

    pub fn dim(&self) -> usize {
        self.means[0].len()
    }

    /// Posterior responsibilities `p(k | x)`.
    pub fn posteriors(&self, x: &[f64]) -> Vec<f64> {
        let k = self.n_components();
        let mut logp = vec![0.0f64; k];
        for (c, lp) in logp.iter_mut().enumerate() {
            *lp = self.weights[c].max(1e-300).ln() + log_gauss(x, &self.means[c], &self.vars[c]);
        }
        let m = logp.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let denom: f64 = logp.iter().map(|&lp| (lp - m).exp()).sum();
        logp.iter().map(|&lp| (lp - m).exp() / denom).collect()
    }

    /// Average log-likelihood of a dataset under the model.
    pub fn avg_log_likelihood(&self, data: &[Vec<f64>]) -> f64 {
        data.iter()
            .map(|x| {
                let lps: Vec<f64> = (0..self.n_components())
                    .map(|c| {
                        self.weights[c].max(1e-300).ln()
                            + log_gauss(x, &self.means[c], &self.vars[c])
                    })
                    .collect();
                let m = lps.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
                m + lps.iter().map(|&lp| (lp - m).exp()).sum::<f64>().ln()
            })
            .sum::<f64>()
            / data.len() as f64
    }
}

fn log_gauss(x: &[f64], mean: &[f64], var: &[f64]) -> f64 {
    let mut acc = 0.0;
    for j in 0..x.len() {
        let diff = x[j] - mean[j];
        acc += -0.5 * (diff * diff / var[j] + var[j].ln() + (2.0 * std::f64::consts::PI).ln());
    }
    acc
}

/// k-means++ seeding: first centre uniform, subsequent centres sampled
/// proportional to squared distance from the nearest existing centre.
fn kmeanspp(data: &[Vec<f64>], k: usize, rng: &mut SimRng) -> Vec<Vec<f64>> {
    let mut centres = Vec::with_capacity(k);
    centres.push(data[rng.index(data.len())].clone());
    let mut d2: Vec<f64> = data.iter().map(|x| dist2(x, &centres[0])).collect();
    while centres.len() < k {
        let total: f64 = d2.iter().sum();
        let idx = if total <= 0.0 {
            rng.index(data.len())
        } else {
            let mut target = rng.next_f64() * total;
            let mut chosen = data.len() - 1;
            for (i, &w) in d2.iter().enumerate() {
                if target < w {
                    chosen = i;
                    break;
                }
                target -= w;
            }
            chosen
        };
        centres.push(data[idx].clone());
        for (i, x) in data.iter().enumerate() {
            d2[i] = d2[i].min(dist2(x, centres.last().expect("nonempty")));
        }
    }
    centres
}

fn dist2(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two well-separated 2-D blobs.
    fn two_blobs(rng: &mut SimRng, n: usize) -> Vec<Vec<f64>> {
        (0..n)
            .map(|i| {
                let (cx, cy) = if i % 2 == 0 { (-5.0, 0.0) } else { (5.0, 2.0) };
                vec![cx + rng.normal() * 0.5, cy + rng.normal() * 0.5]
            })
            .collect()
    }

    #[test]
    fn recovers_two_clusters() {
        let mut rng = SimRng::new(1);
        let data = two_blobs(&mut rng, 400);
        let gmm = DiagGmm::fit(&data, 2, 30, &mut rng);
        let mut mx: Vec<f64> = gmm.means.iter().map(|m| m[0]).collect();
        mx.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        assert!((mx[0] + 5.0).abs() < 0.5, "mean {}", mx[0]);
        assert!((mx[1] - 5.0).abs() < 0.5, "mean {}", mx[1]);
        for w in &gmm.weights {
            assert!((w - 0.5).abs() < 0.1, "weight {w}");
        }
    }

    #[test]
    fn posteriors_sum_to_one_and_separate() {
        let mut rng = SimRng::new(2);
        let data = two_blobs(&mut rng, 400);
        let gmm = DiagGmm::fit(&data, 2, 30, &mut rng);
        let p_left = gmm.posteriors(&[-5.0, 0.0]);
        let p_right = gmm.posteriors(&[5.0, 2.0]);
        assert!((p_left.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!((p_right.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        // Each point strongly assigned to a distinct component.
        let l = p_left
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
            .map(|(i, _)| i)
            .expect("nonempty");
        let r = p_right
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
            .map(|(i, _)| i)
            .expect("nonempty");
        assert_ne!(l, r);
        assert!(p_left[l] > 0.99);
        assert!(p_right[r] > 0.99);
    }

    #[test]
    fn em_improves_likelihood() {
        let mut rng = SimRng::new(3);
        let data = two_blobs(&mut rng, 300);
        let mut rng_a = SimRng::new(10);
        let short = DiagGmm::fit(&data, 2, 1, &mut rng_a);
        let mut rng_b = SimRng::new(10);
        let long = DiagGmm::fit(&data, 2, 25, &mut rng_b);
        assert!(
            long.avg_log_likelihood(&data) >= short.avg_log_likelihood(&data) - 1e-9,
            "EM failed to improve likelihood"
        );
    }

    #[test]
    fn variances_floored() {
        // All-identical points would make variance collapse to zero.
        let mut rng = SimRng::new(4);
        let data = vec![vec![1.0, 1.0]; 50];
        let gmm = DiagGmm::fit(&data, 1, 10, &mut rng);
        for v in &gmm.vars[0] {
            assert!(*v >= VAR_FLOOR);
        }
    }

    #[test]
    fn weights_normalized() {
        let mut rng = SimRng::new(5);
        let data = two_blobs(&mut rng, 200);
        let gmm = DiagGmm::fit(&data, 4, 15, &mut rng);
        assert!((gmm.weights.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn deterministic_given_seed() {
        let data = {
            let mut rng = SimRng::new(6);
            two_blobs(&mut rng, 100)
        };
        let a = DiagGmm::fit(&data, 2, 10, &mut SimRng::new(7));
        let b = DiagGmm::fit(&data, 2, 10, &mut SimRng::new(7));
        assert_eq!(a.means, b.means);
        assert_eq!(a.weights, b.weights);
    }
}
