//! Multi-frame object tracking — the "(ii) tracking them across multiple
//! frames" half of scAtteR's core operation (§3.1).
//!
//! The `matching` service doesn't just recognize objects per frame; it
//! maintains identity across frames so the client's augmentation is
//! stable. [`TrackTable`] associates per-frame recognitions to persistent
//! tracks by projected-box overlap, ages out unmatched tracks, and
//! exposes the stability statistics the paper's FPS metric is a proxy
//! for ("the metric encapsulates augmentation stability").

use std::collections::HashMap;

use crate::ransac::ObjectPose;

/// A persistent object track.
#[derive(Debug, Clone)]
pub struct Track {
    pub id: u64,
    pub name: String,
    pub last_pose: ObjectPose,
    /// Frame index of the last associated observation.
    pub last_seen: u64,
    /// Consecutive frames this track has been observed.
    pub hits: u64,
    /// Total association gaps (missed frames while alive).
    pub misses: u64,
}

/// Axis-aligned bounds of a projected quadrilateral.
fn bounds(p: &ObjectPose) -> (f64, f64, f64, f64) {
    let xs = p.corners.iter().map(|c| c.0);
    let ys = p.corners.iter().map(|c| c.1);
    (
        xs.clone().fold(f64::INFINITY, f64::min),
        ys.clone().fold(f64::INFINITY, f64::min),
        xs.fold(f64::NEG_INFINITY, f64::max),
        ys.fold(f64::NEG_INFINITY, f64::max),
    )
}

/// Intersection-over-union of two poses' bounding rectangles.
pub fn iou(a: &ObjectPose, b: &ObjectPose) -> f64 {
    let (ax0, ay0, ax1, ay1) = bounds(a);
    let (bx0, by0, bx1, by1) = bounds(b);
    let ix = (ax1.min(bx1) - ax0.max(bx0)).max(0.0);
    let iy = (ay1.min(by1) - ay0.max(by0)).max(0.0);
    let inter = ix * iy;
    let union = (ax1 - ax0) * (ay1 - ay0) + (bx1 - bx0) * (by1 - by0) - inter;
    if union <= 0.0 {
        0.0
    } else {
        inter / union
    }
}

/// Track association table.
#[derive(Debug, Default)]
pub struct TrackTable {
    tracks: HashMap<u64, Track>,
    next_id: u64,
    /// Tracks unmatched for more than this many frames are retired.
    pub max_age: u64,
    /// Minimum IoU (same object name) to associate.
    pub min_iou: f64,
    /// Retired-track count (diagnostics).
    pub retired: u64,
}

impl TrackTable {
    pub fn new() -> Self {
        TrackTable {
            tracks: HashMap::new(),
            next_id: 0,
            max_age: 15,
            min_iou: 0.2,
            retired: 0,
        }
    }

    pub fn len(&self) -> usize {
        self.tracks.len()
    }

    pub fn is_empty(&self) -> bool {
        self.tracks.is_empty()
    }

    pub fn tracks(&self) -> impl Iterator<Item = &Track> {
        self.tracks.values()
    }

    /// Associate one frame's recognitions; returns the track id assigned
    /// to each observation (in input order).
    pub fn observe(&mut self, frame_no: u64, observations: &[(String, ObjectPose)]) -> Vec<u64> {
        let mut assigned = Vec::with_capacity(observations.len());
        let mut taken: Vec<u64> = Vec::new();
        for (name, pose) in observations {
            // Best unclaimed same-name track by IoU.
            let best = self
                .tracks
                .values()
                .filter(|t| &t.name == name && !taken.contains(&t.id))
                .map(|t| (t.id, iou(&t.last_pose, pose)))
                .filter(|&(_, v)| v >= self.min_iou)
                .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite IoU"));
            let id = match best {
                Some((id, _)) => {
                    let t = self.tracks.get_mut(&id).expect("track exists");
                    t.misses += frame_no.saturating_sub(t.last_seen + 1);
                    t.hits += 1;
                    t.last_seen = frame_no;
                    t.last_pose = pose.clone();
                    id
                }
                None => {
                    let id = self.next_id;
                    self.next_id += 1;
                    self.tracks.insert(
                        id,
                        Track {
                            id,
                            name: name.clone(),
                            last_pose: pose.clone(),
                            last_seen: frame_no,
                            hits: 1,
                            misses: 0,
                        },
                    );
                    id
                }
            };
            taken.push(id);
            assigned.push(id);
        }
        // Retire stale tracks.
        let max_age = self.max_age;
        let before = self.tracks.len();
        self.tracks
            .retain(|_, t| frame_no.saturating_sub(t.last_seen) <= max_age);
        self.retired += (before - self.tracks.len()) as u64;
        assigned
    }

    /// Augmentation stability: mean hits/(hits+misses) over live tracks —
    /// 1.0 means every alive track was observed every frame.
    pub fn stability(&self) -> f64 {
        if self.tracks.is_empty() {
            return 0.0;
        }
        self.tracks
            .values()
            .map(|t| t.hits as f64 / (t.hits + t.misses) as f64)
            .sum::<f64>()
            / self.tracks.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pose(x: f64, y: f64, w: f64, h: f64) -> ObjectPose {
        ObjectPose {
            corners: [(x, y), (x + w, y), (x + w, y + h), (x, y + h)],
            inlier_count: 10,
        }
    }

    #[test]
    fn iou_identity_and_disjoint() {
        let a = pose(0.0, 0.0, 10.0, 10.0);
        assert!((iou(&a, &a) - 1.0).abs() < 1e-9);
        let b = pose(100.0, 100.0, 10.0, 10.0);
        assert_eq!(iou(&a, &b), 0.0);
    }

    #[test]
    fn stable_object_keeps_its_track_id() {
        let mut table = TrackTable::new();
        let mut ids = Vec::new();
        for frame in 0..10 {
            let obs = vec![(
                "monitor".to_string(),
                pose(50.0 + frame as f64, 20.0, 40.0, 30.0),
            )];
            ids.push(table.observe(frame, &obs)[0]);
        }
        assert!(
            ids.iter().all(|&id| id == ids[0]),
            "track id changed: {ids:?}"
        );
        assert_eq!(table.len(), 1);
        assert!((table.stability() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn different_objects_get_different_tracks() {
        let mut table = TrackTable::new();
        let obs = vec![
            ("monitor".to_string(), pose(0.0, 0.0, 40.0, 30.0)),
            ("keyboard".to_string(), pose(0.0, 50.0, 40.0, 15.0)),
        ];
        let ids = table.observe(0, &obs);
        assert_ne!(ids[0], ids[1]);
        assert_eq!(table.len(), 2);
    }

    #[test]
    fn same_name_far_away_spawns_new_track() {
        let mut table = TrackTable::new();
        table.observe(0, &[("monitor".to_string(), pose(0.0, 0.0, 40.0, 30.0))]);
        let ids = table.observe(
            1,
            &[("monitor".to_string(), pose(500.0, 400.0, 40.0, 30.0))],
        );
        assert_eq!(table.len(), 2, "teleported object must not be associated");
        assert_eq!(ids[0], 1);
    }

    #[test]
    fn missed_frames_count_and_tracks_retire() {
        let mut table = TrackTable::new();
        table.max_age = 5;
        table.observe(0, &[("monitor".to_string(), pose(0.0, 0.0, 40.0, 30.0))]);
        // Re-observed after a 3-frame gap: 3 misses.
        table.observe(4, &[("monitor".to_string(), pose(1.0, 0.0, 40.0, 30.0))]);
        let t = table.tracks().next().expect("track alive");
        assert_eq!(t.misses, 3);
        assert_eq!(t.hits, 2);
        assert!(table.stability() < 0.5);
        // Silence past max_age retires it.
        table.observe(20, &[]);
        assert!(table.is_empty());
        assert_eq!(table.retired, 1);
    }

    #[test]
    fn two_same_name_objects_keep_distinct_tracks() {
        let mut table = TrackTable::new();
        let obs = vec![
            ("chair".to_string(), pose(0.0, 0.0, 20.0, 20.0)),
            ("chair".to_string(), pose(100.0, 0.0, 20.0, 20.0)),
        ];
        let ids0 = table.observe(0, &obs);
        let ids1 = table.observe(1, &obs);
        assert_eq!(ids0, ids1, "both chairs should keep their own track");
        assert_eq!(table.len(), 2);
    }
}
