//! Temporal pose smoothing — what the AR client does with the poses the
//! pipeline returns before rendering.
//!
//! Per-frame RANSAC poses jitter by a few pixels even on a static scene;
//! rendered raw they make the augmentation shimmer. A constant-velocity
//! alpha–beta filter per box corner smooths the render while following
//! real motion, and coasts through short gaps (dropped frames) — which
//! is why the paper can treat FPS as a proxy for augmentation stability:
//! the filter hides isolated misses but diverges across long freezes.

use crate::ransac::ObjectPose;

/// Alpha–beta filter state for one 2-D point.
#[derive(Debug, Clone, Copy, Default)]
struct PointState {
    x: f64,
    y: f64,
    vx: f64,
    vy: f64,
}

/// Constant-velocity alpha–beta smoother over an object's four corners.
#[derive(Debug, Clone)]
pub struct PoseFilter {
    corners: [PointState; 4],
    /// Position correction gain (0–1): higher = snappier, noisier.
    pub alpha: f64,
    /// Velocity correction gain (0–1).
    pub beta: f64,
    /// Frame index of the last observation (for gap-aware prediction).
    last_frame: Option<u64>,
    /// Observations consumed.
    pub updates: u64,
}

impl PoseFilter {
    /// Gains tuned for 30 FPS AR: ≈3-frame smoothing horizon.
    pub fn new() -> Self {
        Self::with_gains(0.4, 0.1)
    }

    pub fn with_gains(alpha: f64, beta: f64) -> Self {
        assert!((0.0..=1.0).contains(&alpha) && (0.0..=1.0).contains(&beta));
        PoseFilter {
            corners: [PointState::default(); 4],
            alpha,
            beta,
            last_frame: None,
            updates: 0,
        }
    }

    /// Feed one observed pose at `frame_no`; returns the smoothed pose.
    /// Gaps since the last observation are coasted at constant velocity
    /// before the correction is applied.
    pub fn update(&mut self, frame_no: u64, observed: &ObjectPose) -> ObjectPose {
        let dt = match self.last_frame {
            Some(prev) => frame_no.saturating_sub(prev).max(1) as f64,
            None => {
                // First observation: snap.
                for (st, &(ox, oy)) in self.corners.iter_mut().zip(&observed.corners) {
                    *st = PointState {
                        x: ox,
                        y: oy,
                        vx: 0.0,
                        vy: 0.0,
                    };
                }
                self.last_frame = Some(frame_no);
                self.updates += 1;
                return observed.clone();
            }
        };
        for (st, &(ox, oy)) in self.corners.iter_mut().zip(&observed.corners) {
            // Predict across the gap.
            st.x += st.vx * dt;
            st.y += st.vy * dt;
            // Correct.
            let rx = ox - st.x;
            let ry = oy - st.y;
            st.x += self.alpha * rx;
            st.y += self.alpha * ry;
            st.vx += self.beta * rx / dt;
            st.vy += self.beta * ry / dt;
        }
        self.last_frame = Some(frame_no);
        self.updates += 1;
        ObjectPose {
            corners: std::array::from_fn(|i| (self.corners[i].x, self.corners[i].y)),
            inlier_count: observed.inlier_count,
        }
    }

    /// Predict the pose at `frame_no` without an observation (render
    /// during a dropped frame). `None` before the first observation.
    pub fn predict(&self, frame_no: u64) -> Option<ObjectPose> {
        let prev = self.last_frame?;
        let dt = frame_no.saturating_sub(prev) as f64;
        Some(ObjectPose {
            corners: std::array::from_fn(|i| {
                let st = &self.corners[i];
                (st.x + st.vx * dt, st.y + st.vy * dt)
            }),
            inlier_count: 0,
        })
    }
}

impl Default for PoseFilter {
    fn default() -> Self {
        Self::new()
    }
}

/// RMS corner distance between two poses — the shimmer metric.
pub fn pose_rms(a: &ObjectPose, b: &ObjectPose) -> f64 {
    let ss: f64 = a
        .corners
        .iter()
        .zip(&b.corners)
        .map(|(&(ax, ay), &(bx, by))| (ax - bx).powi(2) + (ay - by).powi(2))
        .sum();
    (ss / 4.0).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::SimRng;

    fn pose(x: f64, y: f64) -> ObjectPose {
        ObjectPose {
            corners: [(x, y), (x + 40.0, y), (x + 40.0, y + 30.0), (x, y + 30.0)],
            inlier_count: 12,
        }
    }

    #[test]
    fn first_observation_snaps() {
        let mut f = PoseFilter::new();
        let p = pose(100.0, 50.0);
        let out = f.update(0, &p);
        assert_eq!(out.corners, p.corners);
    }

    #[test]
    fn static_noisy_pose_is_smoothed() {
        // Noisy observations of a static box: filtered shimmer must be
        // well below raw shimmer.
        let mut rng = SimRng::new(1);
        let mut f = PoseFilter::new();
        let truth = pose(100.0, 50.0);
        let mut raw_shimmer = 0.0;
        let mut filt_shimmer = 0.0;
        let mut prev_raw = truth.clone();
        let mut prev_filt = truth.clone();
        for frame in 0..200u64 {
            let noisy = ObjectPose {
                corners: std::array::from_fn(|i| {
                    (
                        truth.corners[i].0 + rng.normal_with(0.0, 2.0),
                        truth.corners[i].1 + rng.normal_with(0.0, 2.0),
                    )
                }),
                inlier_count: 12,
            };
            let filtered = f.update(frame, &noisy);
            if frame > 10 {
                raw_shimmer += pose_rms(&noisy, &prev_raw);
                filt_shimmer += pose_rms(&filtered, &prev_filt);
            }
            prev_raw = noisy;
            prev_filt = filtered;
        }
        assert!(
            filt_shimmer < raw_shimmer * 0.6,
            "filtered shimmer {filt_shimmer:.1} not ≪ raw {raw_shimmer:.1}"
        );
    }

    #[test]
    fn tracks_constant_motion_without_lag_blowup() {
        let mut f = PoseFilter::new();
        for frame in 0..120u64 {
            let p = pose(100.0 + frame as f64 * 2.0, 50.0);
            let out = f.update(frame, &p);
            if frame > 60 {
                // Once converged, lag stays bounded within a few pixels.
                assert!(
                    pose_rms(&out, &p) < 4.0,
                    "lag {:.1} px at frame {frame}",
                    pose_rms(&out, &p)
                );
            }
        }
    }

    #[test]
    fn coasts_through_gaps() {
        let mut f = PoseFilter::new();
        // Converge on motion of 2 px/frame.
        for frame in 0..60u64 {
            f.update(frame, &pose(frame as f64 * 2.0, 0.0));
        }
        // Predict 5 frames into a drop gap.
        let predicted = f.predict(65).expect("initialized");
        let expected_x = 65.0 * 2.0;
        assert!(
            (predicted.corners[0].0 - expected_x).abs() < 6.0,
            "coasted to {:.1}, expected ≈{expected_x}",
            predicted.corners[0].0
        );
    }

    #[test]
    fn predict_before_first_observation_is_none() {
        let f = PoseFilter::new();
        assert!(f.predict(3).is_none());
    }

    #[test]
    fn gap_aware_update_does_not_jump() {
        let mut f = PoseFilter::new();
        for frame in 0..30u64 {
            f.update(frame, &pose(frame as f64 * 2.0, 0.0));
        }
        // 10-frame freeze, then the object reappears where it should be.
        let out = f.update(40, &pose(80.0, 0.0));
        assert!(
            (out.corners[0].0 - 80.0).abs() < 8.0,
            "post-gap correction at {:.1}",
            out.corners[0].0
        );
    }
}
