//! Ratio-test descriptor matching — the front half of the `matching`
//! service (the back half, pose estimation, lives in [`crate::ransac`]).

use crate::descriptor::Descriptor;

/// A correspondence between a query descriptor and a reference descriptor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Match {
    pub query_idx: usize,
    pub ref_idx: usize,
    /// Squared distance of the best match.
    pub dist2: f32,
    /// Lowe ratio `d1/d2` (best/second-best distance); lower = more
    /// distinctive.
    pub ratio: f32,
}

/// Parameters for ratio-test matching.
#[derive(Debug, Clone, Copy)]
pub struct MatchParams {
    /// Maximum allowed `d1/d2` ratio (Lowe suggests 0.8).
    pub max_ratio: f32,
    /// Absolute squared-distance ceiling on the best match.
    pub max_dist2: f32,
}

impl Default for MatchParams {
    fn default() -> Self {
        MatchParams {
            max_ratio: 0.8,
            max_dist2: 0.6,
        }
    }
}

/// Brute-force nearest + second-nearest matching with the ratio test.
///
/// O(|query| × |reference|); reference sets per object are a few hundred
/// descriptors, so this is the realistic cost profile of the service.
pub fn match_descriptors(
    query: &[Descriptor],
    reference: &[Descriptor],
    params: &MatchParams,
) -> Vec<Match> {
    let mut out = Vec::new();
    if reference.len() < 2 {
        return out;
    }
    for (qi, q) in query.iter().enumerate() {
        let mut best = f32::INFINITY;
        let mut second = f32::INFINITY;
        let mut best_idx = 0usize;
        for (ri, r) in reference.iter().enumerate() {
            let d = q.dist2(r);
            if d < best {
                second = best;
                best = d;
                best_idx = ri;
            } else if d < second {
                second = d;
            }
        }
        if best > params.max_dist2 {
            continue;
        }
        let ratio = if second > 0.0 {
            (best / second).sqrt()
        } else {
            1.0
        };
        if ratio <= params.max_ratio {
            out.push(Match {
                query_idx: qi,
                ref_idx: best_idx,
                dist2: best,
                ratio,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keypoints::Keypoint;

    fn desc(v0: f32, tag: f32) -> Descriptor {
        let mut v = [0f32; 128];
        v[0] = v0;
        v[1] = tag;
        // Normalize.
        let n = (v0 * v0 + tag * tag).sqrt().max(1e-6);
        v[0] /= n;
        v[1] /= n;
        Descriptor {
            keypoint: Keypoint {
                x: 0.0,
                y: 0.0,
                scale: 1.0,
                orientation: 0.0,
                response: 1.0,
                octave: 0,
                level: 1,
            },
            v,
        }
    }

    #[test]
    fn distinct_match_passes_ratio_test() {
        let query = vec![desc(1.0, 0.0)];
        let reference = vec![desc(1.0, 0.05), desc(0.0, 1.0), desc(-1.0, 0.2)];
        let matches = match_descriptors(&query, &reference, &MatchParams::default());
        assert_eq!(matches.len(), 1);
        assert_eq!(matches[0].ref_idx, 0);
        assert!(matches[0].ratio < 0.8);
    }

    #[test]
    fn ambiguous_match_rejected() {
        // Two nearly identical reference descriptors → ratio ≈ 1.
        let query = vec![desc(1.0, 0.0)];
        let reference = vec![desc(1.0, 0.01), desc(1.0, 0.012)];
        let matches = match_descriptors(&query, &reference, &MatchParams::default());
        assert!(matches.is_empty(), "ambiguous match must be dropped");
    }

    #[test]
    fn distant_match_rejected_by_absolute_threshold() {
        let query = vec![desc(1.0, 0.0)];
        let reference = vec![desc(-1.0, 0.0), desc(0.0, 1.0)];
        let matches = match_descriptors(&query, &reference, &MatchParams::default());
        assert!(matches.is_empty());
    }

    #[test]
    fn tiny_reference_set_yields_nothing() {
        let query = vec![desc(1.0, 0.0)];
        assert!(match_descriptors(&query, &[], &MatchParams::default()).is_empty());
        assert!(
            match_descriptors(&query, &[desc(1.0, 0.0)], &MatchParams::default()).is_empty(),
            "second-best undefined with a single reference"
        );
    }

    #[test]
    fn every_query_matched_at_most_once() {
        let query: Vec<_> = (0..10).map(|i| desc(1.0, i as f32 * 0.1)).collect();
        let reference: Vec<_> = (0..10).map(|i| desc(1.0, i as f32 * 0.1)).collect();
        let matches = match_descriptors(&query, &reference, &MatchParams::default());
        let mut seen = std::collections::HashSet::new();
        for m in &matches {
            assert!(seen.insert(m.query_idx), "query matched twice");
        }
    }
}
