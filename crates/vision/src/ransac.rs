//! RANSAC homography estimation and object pose — the back half of the
//! `matching` service.
//!
//! From ratio-test correspondences we estimate a planar homography by
//! 4-point DLT inside a RANSAC loop, then "pose" an object by projecting
//! its reference bounding box into the frame — which is exactly the
//! bounding-box augmentation scAtteR returns to the client.

use simcore::SimRng;

/// A 3×3 homography, row-major, normalized so `h[8] == 1`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Homography(pub [f64; 9]);

impl Homography {
    pub const IDENTITY: Homography = Homography([1.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 1.0]);

    /// Apply to a 2-D point. Returns `None` when the point maps to the
    /// plane at infinity (w ≈ 0).
    pub fn apply(&self, x: f64, y: f64) -> Option<(f64, f64)> {
        let h = &self.0;
        let w = h[6] * x + h[7] * y + h[8];
        if w.abs() < 1e-12 {
            return None;
        }
        Some((
            (h[0] * x + h[1] * y + h[2]) / w,
            (h[3] * x + h[4] * y + h[5]) / w,
        ))
    }
}

/// A 2-D point correspondence `(src, dst)`.
pub type Correspondence = ((f64, f64), (f64, f64));

/// Solve the 8×8 DLT system for the homography mapping the 4 `src` points
/// to the 4 `dst` points (fixing `h[8] = 1`). Returns `None` on a
/// degenerate (collinear / duplicate) configuration.
pub fn dlt4(pairs: &[Correspondence; 4]) -> Option<Homography> {
    // Each correspondence contributes two rows:
    //   [x y 1 0 0 0 -x x' -y x']  h = x'
    //   [0 0 0 x y 1 -x y' -y y']  h = y'
    let mut a = [[0f64; 9]; 8];
    for (i, &((x, y), (xp, yp))) in pairs.iter().enumerate() {
        a[2 * i] = [x, y, 1.0, 0.0, 0.0, 0.0, -x * xp, -y * xp, xp];
        a[2 * i + 1] = [0.0, 0.0, 0.0, x, y, 1.0, -x * yp, -y * yp, yp];
    }

    // Gaussian elimination with partial pivoting on the augmented matrix.
    for col in 0..8 {
        let pivot = (col..8)
            .max_by(|&r1, &r2| {
                a[r1][col]
                    .abs()
                    .partial_cmp(&a[r2][col].abs())
                    .expect("finite matrix")
            })
            .expect("non-empty range");
        if a[pivot][col].abs() < 1e-10 {
            return None;
        }
        a.swap(col, pivot);
        let p = a[col][col];
        for r in col + 1..8 {
            let f = a[r][col] / p;
            let (head, tail) = a.split_at_mut(r);
            let pivot_row = &head[col];
            for (c, cell) in tail[0].iter_mut().enumerate().skip(col) {
                *cell -= f * pivot_row[c];
            }
        }
    }
    let mut h = [0f64; 9];
    h[8] = 1.0;
    for row in (0..8).rev() {
        let mut acc = a[row][8];
        for c in row + 1..8 {
            acc -= a[row][c] * h[c];
        }
        h[row] = acc / a[row][row];
    }
    Some(Homography(h))
}

/// RANSAC parameters.
#[derive(Debug, Clone, Copy)]
pub struct RansacParams {
    pub iterations: usize,
    /// Inlier reprojection threshold in pixels.
    pub inlier_threshold: f64,
    /// Minimum inliers for the estimate to count as a detection.
    pub min_inliers: usize,
}

impl Default for RansacParams {
    fn default() -> Self {
        RansacParams {
            iterations: 200,
            inlier_threshold: 4.0,
            min_inliers: 8,
        }
    }
}

/// Result of a successful RANSAC fit.
#[derive(Debug, Clone)]
pub struct RansacResult {
    pub homography: Homography,
    pub inliers: Vec<usize>,
}

/// Robustly estimate the homography mapping `src` points to `dst` points.
pub fn ransac_homography(
    pairs: &[Correspondence],
    params: &RansacParams,
    rng: &mut SimRng,
) -> Option<RansacResult> {
    if pairs.len() < 4 || pairs.len() < params.min_inliers {
        return None;
    }
    let mut best: Option<RansacResult> = None;
    for _ in 0..params.iterations {
        // Sample 4 distinct indices.
        let mut idx = [0usize; 4];
        for slot in 0..4 {
            loop {
                let cand = rng.index(pairs.len());
                if !idx[..slot].contains(&cand) {
                    idx[slot] = cand;
                    break;
                }
            }
        }
        let sample = [pairs[idx[0]], pairs[idx[1]], pairs[idx[2]], pairs[idx[3]]];
        let Some(h) = dlt4(&sample) else { continue };
        let inliers: Vec<usize> = pairs
            .iter()
            .enumerate()
            .filter(|(_, &((sx, sy), (dx, dy)))| {
                h.apply(sx, sy).is_some_and(|(px, py)| {
                    let ex = px - dx;
                    let ey = py - dy;
                    (ex * ex + ey * ey).sqrt() <= params.inlier_threshold
                })
            })
            .map(|(i, _)| i)
            .collect();
        if inliers.len() >= params.min_inliers
            && best
                .as_ref()
                .is_none_or(|b| inliers.len() > b.inliers.len())
        {
            best = Some(RansacResult {
                homography: h,
                inliers,
            });
        }
    }
    best
}

/// An axis-aligned box in reference coordinates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BBox {
    pub x0: f64,
    pub y0: f64,
    pub x1: f64,
    pub y1: f64,
}

/// A recognized object's pose: its reference box projected into the frame.
#[derive(Debug, Clone, PartialEq)]
pub struct ObjectPose {
    /// Projected corners, clockwise from top-left.
    pub corners: [(f64, f64); 4],
    pub inlier_count: usize,
}

/// Project `bbox` through `h`; `None` if any corner degenerates.
pub fn project_bbox(h: &Homography, bbox: &BBox, inlier_count: usize) -> Option<ObjectPose> {
    let pts = [
        (bbox.x0, bbox.y0),
        (bbox.x1, bbox.y0),
        (bbox.x1, bbox.y1),
        (bbox.x0, bbox.y1),
    ];
    let mut corners = [(0.0, 0.0); 4];
    for (i, &(x, y)) in pts.iter().enumerate() {
        corners[i] = h.apply(x, y)?;
    }
    Some(ObjectPose {
        corners,
        inlier_count,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn translation(dx: f64, dy: f64) -> Homography {
        Homography([1.0, 0.0, dx, 0.0, 1.0, dy, 0.0, 0.0, 1.0])
    }

    #[test]
    fn dlt_recovers_translation() {
        let src = [(0.0, 0.0), (10.0, 0.0), (10.0, 10.0), (0.0, 10.0)];
        let pairs: [Correspondence; 4] =
            std::array::from_fn(|i| (src[i], (src[i].0 + 3.0, src[i].1 - 2.0)));
        let h = dlt4(&pairs).expect("non-degenerate");
        let (x, y) = h.apply(5.0, 5.0).unwrap();
        assert!((x - 8.0).abs() < 1e-6 && (y - 3.0).abs() < 1e-6);
    }

    #[test]
    fn dlt_rejects_collinear_points() {
        let pairs: [Correspondence; 4] = [
            ((0.0, 0.0), (0.0, 0.0)),
            ((1.0, 1.0), (1.0, 1.0)),
            ((2.0, 2.0), (2.0, 2.0)),
            ((3.0, 3.0), (3.0, 3.0)),
        ];
        assert!(dlt4(&pairs).is_none());
    }

    #[test]
    fn ransac_survives_outliers() {
        let mut rng = SimRng::new(1);
        let truth = translation(7.0, -4.0);
        let mut pairs: Vec<Correspondence> = Vec::new();
        // 40 inliers on a grid.
        for i in 0..40 {
            let x = (i % 8) as f64 * 12.0;
            let y = (i / 8) as f64 * 9.0;
            let (dx, dy) = truth.apply(x, y).unwrap();
            pairs.push(((x, y), (dx, dy)));
        }
        // 20 gross outliers.
        for _ in 0..20 {
            pairs.push((
                (rng.uniform(0.0, 100.0), rng.uniform(0.0, 100.0)),
                (rng.uniform(0.0, 100.0), rng.uniform(0.0, 100.0)),
            ));
        }
        let res = ransac_homography(&pairs, &RansacParams::default(), &mut rng)
            .expect("should fit despite outliers");
        assert!(
            res.inliers.len() >= 38,
            "found {} inliers",
            res.inliers.len()
        );
        let (x, y) = res.homography.apply(50.0, 50.0).unwrap();
        assert!((x - 57.0).abs() < 0.5 && (y - 46.0).abs() < 0.5);
    }

    #[test]
    fn ransac_refuses_pure_noise() {
        let mut rng = SimRng::new(2);
        let pairs: Vec<Correspondence> = (0..40)
            .map(|_| {
                (
                    (rng.uniform(0.0, 400.0), rng.uniform(0.0, 400.0)),
                    (rng.uniform(0.0, 400.0), rng.uniform(0.0, 400.0)),
                )
            })
            .collect();
        let params = RansacParams {
            min_inliers: 12,
            ..Default::default()
        };
        assert!(ransac_homography(&pairs, &params, &mut rng).is_none());
    }

    #[test]
    fn ransac_needs_enough_pairs() {
        let mut rng = SimRng::new(3);
        let pairs = vec![((0.0, 0.0), (1.0, 1.0)); 3];
        assert!(ransac_homography(&pairs, &RansacParams::default(), &mut rng).is_none());
    }

    #[test]
    fn bbox_projection_translates() {
        let h = translation(10.0, 5.0);
        let pose = project_bbox(
            &h,
            &BBox {
                x0: 0.0,
                y0: 0.0,
                x1: 4.0,
                y1: 2.0,
            },
            9,
        )
        .unwrap();
        assert_eq!(pose.corners[0], (10.0, 5.0));
        assert_eq!(pose.corners[2], (14.0, 7.0));
        assert_eq!(pose.inlier_count, 9);
    }

    #[test]
    fn apply_detects_degenerate_w() {
        let h = Homography([1.0, 0.0, 0.0, 0.0, 1.0, 0.0, 1.0, 0.0, -5.0]);
        // x = 5 → w = 0.
        assert!(h.apply(5.0, 0.0).is_none());
    }
}
