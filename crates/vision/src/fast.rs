//! FAST corner detection + BRIEF binary descriptors — the "faster
//! feature extractor" of §5's discussion.
//!
//! The paper argues that swapping SIFT for an accelerated extractor
//! "helps improve inference speed … but without a horizontally scalable
//! design the application will incur the same issues, delayed to a
//! higher number of clients". To make that ablation runnable we provide
//! a real alternative extractor an order of magnitude cheaper than the
//! DoG pipeline: FAST-9 segment-test corners with a smoothed 256-bit
//! BRIEF descriptor matched under Hamming distance.

use simcore::SimRng;

use crate::image::GrayImage;
use crate::pyramid::gaussian_blur;

/// A FAST corner.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Corner {
    pub x: usize,
    pub y: usize,
    /// Sum of absolute contiguous-arc differences (corner strength).
    pub score: f32,
}

/// Bresenham circle of radius 3: the 16 segment-test offsets.
const CIRCLE: [(isize, isize); 16] = [
    (0, -3),
    (1, -3),
    (2, -2),
    (3, -1),
    (3, 0),
    (3, 1),
    (2, 2),
    (1, 3),
    (0, 3),
    (-1, 3),
    (-2, 2),
    (-3, 1),
    (-3, 0),
    (-3, -1),
    (-2, -2),
    (-1, -3),
];

/// FAST-N segment test: a pixel is a corner if ≥ `arc_len` contiguous
/// circle pixels are all brighter than `p + t` or all darker than
/// `p − t`.
fn is_corner(img: &GrayImage, x: usize, y: usize, t: f32, arc_len: usize) -> Option<f32> {
    let p = img.get(x, y);
    // Classify the 16 circle pixels: +1 brighter, −1 darker, 0 similar.
    let mut classes = [0i8; 16];
    for (i, &(dx, dy)) in CIRCLE.iter().enumerate() {
        let v = img.get_clamped(x as isize + dx, y as isize + dy);
        classes[i] = if v > p + t {
            1
        } else if v < p - t {
            -1
        } else {
            0
        };
    }
    // Longest contiguous arc (wrapping) of one polarity.
    for polarity in [1i8, -1] {
        let mut best = 0usize;
        let mut run = 0usize;
        // Scan twice around the circle to handle wraparound.
        for i in 0..32 {
            if classes[i % 16] == polarity {
                run += 1;
                best = best.max(run);
                if best >= arc_len {
                    // Score: mean |difference| over the arc polarity.
                    let score: f32 = CIRCLE
                        .iter()
                        .map(|&(dx, dy)| {
                            (img.get_clamped(x as isize + dx, y as isize + dy) - p).abs()
                        })
                        .sum();
                    return Some(score);
                }
            } else {
                run = 0;
            }
        }
    }
    None
}

/// Detect FAST-9 corners (the standard segment-test variant; a perfect
/// axis-aligned square corner subtends an 11-pixel arc, which FAST-12
/// would reject) with non-maximum suppression in a 3×3
/// neighbourhood, strongest `max_corners` kept.
pub fn detect_fast(img: &GrayImage, threshold: f32, max_corners: usize) -> Vec<Corner> {
    let (w, h) = (img.width(), img.height());
    if w < 8 || h < 8 {
        return Vec::new();
    }
    let mut score_map = vec![0f32; w * h];
    let mut corners = Vec::new();
    for y in 3..h - 3 {
        for x in 3..w - 3 {
            if let Some(score) = is_corner(img, x, y, threshold, 9) {
                score_map[y * w + x] = score;
                corners.push(Corner { x, y, score });
            }
        }
    }
    // 3×3 non-max suppression.
    let mut kept: Vec<Corner> = corners
        .into_iter()
        .filter(|c| {
            let mut is_max = true;
            for dy in -1isize..=1 {
                for dx in -1isize..=1 {
                    if dx == 0 && dy == 0 {
                        continue;
                    }
                    let nx = (c.x as isize + dx) as usize;
                    let ny = (c.y as isize + dy) as usize;
                    if score_map[ny * w + nx] > c.score {
                        is_max = false;
                    }
                }
            }
            is_max
        })
        .collect();
    kept.sort_by(|a, b| {
        b.score
            .partial_cmp(&a.score)
            .expect("finite scores")
            .then(a.y.cmp(&b.y))
            .then(a.x.cmp(&b.x))
    });
    kept.truncate(max_corners);
    kept
}

/// 256-bit BRIEF descriptor: intensity comparisons at pseudo-random
/// offset pairs on a smoothed image.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BriefDescriptor {
    pub bits: [u64; 4],
    pub x: f32,
    pub y: f32,
}

impl BriefDescriptor {
    /// Hamming distance between two descriptors (0–256).
    pub fn distance(&self, other: &BriefDescriptor) -> u32 {
        self.bits
            .iter()
            .zip(&other.bits)
            .map(|(a, b)| (a ^ b).count_ones())
            .sum()
    }
}

/// One BRIEF comparison: a pair of patch offsets.
pub type BriefPair = ((i8, i8), (i8, i8));

/// The comparison pattern: 256 offset pairs in a 31×31 patch, generated
/// once from a fixed seed so every extractor instance agrees.
pub fn brief_pattern() -> Vec<BriefPair> {
    let mut rng = SimRng::new(0xB21EF);
    (0..256)
        .map(|_| {
            let p = (
                rng.normal_with(0.0, 6.0).clamp(-15.0, 15.0) as i8,
                rng.normal_with(0.0, 6.0).clamp(-15.0, 15.0) as i8,
            );
            let q = (
                rng.normal_with(0.0, 6.0).clamp(-15.0, 15.0) as i8,
                rng.normal_with(0.0, 6.0).clamp(-15.0, 15.0) as i8,
            );
            (p, q)
        })
        .collect()
}

/// Extract BRIEF descriptors at the given corners. The image is smoothed
/// once (σ = 2) to stabilize the pointwise comparisons.
pub fn describe_brief(
    img: &GrayImage,
    corners: &[Corner],
    pattern: &[BriefPair],
) -> Vec<BriefDescriptor> {
    assert_eq!(pattern.len(), 256, "BRIEF pattern must have 256 pairs");
    let smooth = gaussian_blur(img, 2.0);
    corners
        .iter()
        .map(|c| {
            let mut bits = [0u64; 4];
            for (i, &((px, py), (qx, qy))) in pattern.iter().enumerate() {
                let a = smooth.get_clamped(c.x as isize + px as isize, c.y as isize + py as isize);
                let b = smooth.get_clamped(c.x as isize + qx as isize, c.y as isize + qy as isize);
                if a > b {
                    bits[i / 64] |= 1 << (i % 64);
                }
            }
            BriefDescriptor {
                bits,
                x: c.x as f32,
                y: c.y as f32,
            }
        })
        .collect()
}

/// Hamming ratio-test matching, mirroring
/// [`crate::matching::match_descriptors`]. Returns `(query idx, ref
/// idx)` pairs.
pub fn match_brief(
    query: &[BriefDescriptor],
    reference: &[BriefDescriptor],
    max_distance: u32,
    max_ratio: f32,
) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    if reference.len() < 2 {
        return out;
    }
    for (qi, q) in query.iter().enumerate() {
        let mut best = u32::MAX;
        let mut second = u32::MAX;
        let mut best_idx = 0;
        for (ri, r) in reference.iter().enumerate() {
            let d = q.distance(r);
            if d < best {
                second = best;
                best = d;
                best_idx = ri;
            } else if d < second {
                second = d;
            }
        }
        if best <= max_distance && (best as f32) <= max_ratio * second as f32 {
            out.push((qi, best_idx));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scene::SceneGenerator;

    fn checker_corner_image() -> GrayImage {
        // A bright square on dark background: its corners are FAST corners.
        let mut img = GrayImage::new(32, 32);
        for y in 10..22 {
            for x in 10..22 {
                img.set(x, y, 1.0);
            }
        }
        img
    }

    #[test]
    fn detects_square_corners() {
        let corners = detect_fast(&checker_corner_image(), 0.3, 50);
        assert!(!corners.is_empty(), "square corners not detected");
        // All detections near the square's corners.
        for c in &corners {
            let near =
                [(10, 10), (21, 10), (10, 21), (21, 21)]
                    .iter()
                    .any(|&(cx, cy): &(i32, i32)| {
                        (c.x as i32 - cx).abs() <= 3 && (c.y as i32 - cy).abs() <= 3
                    });
            assert!(near, "corner at ({}, {}) not near the square", c.x, c.y);
        }
    }

    #[test]
    fn flat_image_has_no_corners() {
        let img = GrayImage::from_vec(32, 32, vec![0.5; 1024]);
        assert!(detect_fast(&img, 0.1, 50).is_empty());
    }

    #[test]
    fn max_corners_cap_keeps_strongest() {
        let g = SceneGenerator::workplace_scaled(1, 160, 90);
        let all = detect_fast(&g.frame(0), 0.08, 1000);
        let capped = detect_fast(&g.frame(0), 0.08, 10);
        assert!(all.len() > 10, "scene too poor: {} corners", all.len());
        assert_eq!(capped.len(), 10);
        assert!(capped[0].score >= capped[9].score);
    }

    #[test]
    fn brief_self_distance_zero_and_symmetric() {
        let g = SceneGenerator::workplace_scaled(1, 160, 90);
        let img = g.frame(0);
        let corners = detect_fast(&img, 0.08, 30);
        let pattern = brief_pattern();
        let descs = describe_brief(&img, &corners, &pattern);
        assert_eq!(descs.len(), corners.len());
        for d in &descs {
            assert_eq!(d.distance(d), 0);
        }
        if descs.len() >= 2 {
            assert_eq!(descs[0].distance(&descs[1]), descs[1].distance(&descs[0]));
        }
    }

    #[test]
    fn brief_matches_across_small_motion() {
        let g = SceneGenerator::workplace_scaled(1, 320, 180);
        let pattern = brief_pattern();
        let f0 = g.frame(0);
        let f1 = g.frame(1);
        let c0 = detect_fast(&f0, 0.08, 150);
        let c1 = detect_fast(&f1, 0.08, 150);
        let d0 = describe_brief(&f0, &c0, &pattern);
        let d1 = describe_brief(&f1, &c1, &pattern);
        let matches = match_brief(&d0, &d1, 60, 0.8);
        assert!(
            matches.len() * 4 >= d0.len(),
            "only {}/{} BRIEF descriptors matched across frames",
            matches.len(),
            d0.len()
        );
    }

    #[test]
    fn fast_is_cheaper_than_dog_detection() {
        use std::time::Instant;
        let g = SceneGenerator::workplace_scaled(1, 320, 180);
        let img = g.frame(0);
        let t0 = Instant::now();
        for _ in 0..3 {
            let _ = detect_fast(&img, 0.08, 300);
        }
        let fast = t0.elapsed();
        let t1 = Instant::now();
        for _ in 0..3 {
            let _ = crate::keypoints::detect(&img, &crate::keypoints::DetectorParams::default());
        }
        let dog = t1.elapsed();
        assert!(
            fast < dog,
            "FAST ({fast:?}) should be cheaper than the DoG pipeline ({dog:?})"
        );
    }

    #[test]
    fn pattern_is_stable() {
        assert_eq!(brief_pattern(), brief_pattern());
        assert_eq!(brief_pattern().len(), 256);
    }
}
