//! DoG extrema detection with edge rejection and orientation assignment —
//! the detection half of the `sift` service.

use crate::image::GrayImage;
use crate::pyramid::Pyramid;

/// A detected scale-space keypoint, in input-image coordinates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Keypoint {
    pub x: f32,
    pub y: f32,
    /// Characteristic scale (sigma in input-image pixels).
    pub scale: f32,
    /// Dominant gradient orientation in radians, `[-π, π]`.
    pub orientation: f32,
    /// |DoG| response; larger = stronger.
    pub response: f32,
    /// Octave and level the keypoint was found in (for descriptor
    /// extraction at the right blur level).
    pub octave: usize,
    pub level: usize,
}

/// Detection thresholds. The defaults are scaled-down Lowe constants that
/// work on the synthetic scene's contrast range.
#[derive(Debug, Clone, Copy)]
pub struct DetectorParams {
    /// Minimum |DoG| response to consider.
    pub contrast_threshold: f32,
    /// Maximum principal-curvature ratio (Lowe's r = 10).
    pub edge_ratio: f32,
    /// Hard cap on keypoints per frame (strongest kept); the real
    /// pipeline also caps features to bound downstream load.
    pub max_keypoints: usize,
}

impl Default for DetectorParams {
    fn default() -> Self {
        DetectorParams {
            contrast_threshold: 0.015,
            edge_ratio: 10.0,
            max_keypoints: 600,
        }
    }
}

/// Is `dogs[s]` at (x, y) a strict extremum over its 26 scale-space
/// neighbours?
fn is_extremum(dogs: &[GrayImage], s: usize, x: usize, y: usize) -> bool {
    let v = dogs[s].get(x, y);
    let mut is_max = true;
    let mut is_min = true;
    for img in &dogs[s - 1..=s + 1] {
        for dy in -1isize..=1 {
            for dx in -1isize..=1 {
                let n = img.get_clamped(x as isize + dx, y as isize + dy);
                // Skip self.
                if std::ptr::eq(img, &dogs[s]) && dx == 0 && dy == 0 {
                    continue;
                }
                if n >= v {
                    is_max = false;
                }
                if n <= v {
                    is_min = false;
                }
                if !is_max && !is_min {
                    return false;
                }
            }
        }
    }
    is_max || is_min
}

/// Reject edge-like responses via the Hessian trace/determinant test.
fn passes_edge_test(dog: &GrayImage, x: usize, y: usize, edge_ratio: f32) -> bool {
    let (xi, yi) = (x as isize, y as isize);
    let v = dog.get(x, y);
    let dxx = dog.get_clamped(xi + 1, yi) + dog.get_clamped(xi - 1, yi) - 2.0 * v;
    let dyy = dog.get_clamped(xi, yi + 1) + dog.get_clamped(xi, yi - 1) - 2.0 * v;
    let dxy = (dog.get_clamped(xi + 1, yi + 1)
        - dog.get_clamped(xi - 1, yi + 1)
        - dog.get_clamped(xi + 1, yi - 1)
        + dog.get_clamped(xi - 1, yi - 1))
        / 4.0;
    let tr = dxx + dyy;
    let det = dxx * dyy - dxy * dxy;
    if det <= 0.0 {
        return false;
    }
    let r = edge_ratio;
    tr * tr / det < (r + 1.0) * (r + 1.0) / r
}

/// Dominant gradient orientation from a 36-bin histogram over a
/// Gaussian-weighted neighbourhood.
fn dominant_orientation(img: &GrayImage, x: usize, y: usize, sigma: f32) -> f32 {
    let radius = (2.5 * sigma).ceil().max(2.0) as isize;
    let mut hist = [0f32; 36];
    for dy in -radius..=radius {
        for dx in -radius..=radius {
            let px = x as isize + dx;
            let py = y as isize + dy;
            if px < 1 || py < 1 || px >= img.width() as isize - 1 || py >= img.height() as isize - 1
            {
                continue;
            }
            let (gx, gy) = img.gradient(px as usize, py as usize);
            let mag = (gx * gx + gy * gy).sqrt();
            let weight =
                (-((dx * dx + dy * dy) as f32) / (2.0 * (1.5 * sigma) * (1.5 * sigma))).exp();
            let angle = gy.atan2(gx); // [-π, π]
            let bin =
                (((angle + std::f32::consts::PI) / std::f32::consts::TAU * 36.0) as usize).min(35);
            hist[bin] += mag * weight;
        }
    }
    let best = hist
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite hist"))
        .map(|(i, _)| i)
        .unwrap_or(0);
    (best as f32 + 0.5) / 36.0 * std::f32::consts::TAU - std::f32::consts::PI
}

/// Detect keypoints on a prebuilt pyramid.
pub fn detect_on_pyramid(pyr: &Pyramid, params: &DetectorParams) -> Vec<Keypoint> {
    let mut kps = Vec::new();
    let k = 2f32.powf(1.0 / pyr.scales_per_octave as f32);
    for (oi, oct) in pyr.octaves.iter().enumerate() {
        let (w, h) = (oct.dogs[0].width(), oct.dogs[0].height());
        for s in 1..oct.dogs.len() - 1 {
            for y in 1..h - 1 {
                for x in 1..w - 1 {
                    let v = oct.dogs[s].get(x, y);
                    if v.abs() < params.contrast_threshold {
                        continue;
                    }
                    if !is_extremum(&oct.dogs, s, x, y) {
                        continue;
                    }
                    if !passes_edge_test(&oct.dogs[s], x, y, params.edge_ratio) {
                        continue;
                    }
                    let sigma = pyr.sigma0 * k.powi(s as i32) * oct.downscale as f32;
                    let orientation = dominant_orientation(&oct.levels[s], x, y, pyr.sigma0);
                    kps.push(Keypoint {
                        x: x as f32 * oct.downscale as f32,
                        y: y as f32 * oct.downscale as f32,
                        scale: sigma,
                        orientation,
                        response: v.abs(),
                        octave: oi,
                        level: s,
                    });
                }
            }
        }
    }
    // Keep the strongest responses, deterministically tie-broken by
    // position so equal-response keypoints sort stably.
    kps.sort_by(|a, b| {
        b.response
            .partial_cmp(&a.response)
            .expect("finite responses")
            .then(a.y.partial_cmp(&b.y).expect("finite"))
            .then(a.x.partial_cmp(&b.x).expect("finite"))
    });
    kps.truncate(params.max_keypoints);
    kps
}

/// Detect keypoints on an image: build the standard 3-octave pyramid and
/// run detection. This is the `sift` service's detection entry point.
pub fn detect(img: &GrayImage, params: &DetectorParams) -> (Pyramid, Vec<Keypoint>) {
    let pyr = Pyramid::build(img, 3, 3, 1.6);
    let kps = detect_on_pyramid(&pyr, params);
    (pyr, kps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scene::SceneGenerator;

    fn blob_image() -> GrayImage {
        // A bright Gaussian blob on black: a canonical DoG detection.
        let mut img = GrayImage::new(64, 64);
        for y in 0..64 {
            for x in 0..64 {
                let dx = x as f32 - 32.0;
                let dy = y as f32 - 32.0;
                img.set(x, y, (-(dx * dx + dy * dy) / 18.0).exp());
            }
        }
        img
    }

    #[test]
    fn detects_blob_near_centre() {
        let (_, kps) = detect(&blob_image(), &DetectorParams::default());
        assert!(!kps.is_empty(), "blob must be detected");
        let best = &kps[0];
        assert!(
            (best.x - 32.0).abs() < 6.0 && (best.y - 32.0).abs() < 6.0,
            "strongest keypoint at ({}, {}) not near blob centre",
            best.x,
            best.y,
        );
    }

    #[test]
    fn blank_image_has_no_keypoints() {
        let img = GrayImage::from_vec(64, 64, vec![0.5; 64 * 64]);
        let (_, kps) = detect(&img, &DetectorParams::default());
        assert!(
            kps.is_empty(),
            "constant image produced {} keypoints",
            kps.len()
        );
    }

    #[test]
    fn straight_edge_is_rejected() {
        // A step edge: strong DoG response but edge-like curvature.
        let mut img = GrayImage::new(64, 64);
        for y in 0..64 {
            for x in 32..64 {
                img.set(x, y, 1.0);
            }
        }
        let (_, kps) = detect(&img, &DetectorParams::default());
        // Keypoints on the interior of the edge (far from image corners)
        // should be rejected by the curvature test.
        let on_edge = kps
            .iter()
            .filter(|k| (k.x - 32.0).abs() < 3.0 && k.y > 12.0 && k.y < 52.0)
            .count();
        assert_eq!(on_edge, 0, "edge interior produced {on_edge} keypoints");
    }

    #[test]
    fn synthetic_scene_yields_rich_features() {
        let g = SceneGenerator::workplace_scaled(1, 320, 180);
        let (_, kps) = detect(&g.frame(0), &DetectorParams::default());
        assert!(
            kps.len() >= 50,
            "workplace scene produced only {} keypoints",
            kps.len()
        );
    }

    #[test]
    fn max_keypoints_cap_enforced() {
        let g = SceneGenerator::workplace_scaled(1, 320, 180);
        let params = DetectorParams {
            max_keypoints: 20,
            ..Default::default()
        };
        let (_, kps) = detect(&g.frame(0), &params);
        assert!(kps.len() <= 20);
        // Cap keeps the strongest.
        for w in kps.windows(2) {
            assert!(w[0].response >= w[1].response);
        }
    }

    #[test]
    fn detection_is_deterministic() {
        let g = SceneGenerator::workplace_scaled(1, 160, 90);
        let (_, a) = detect(&g.frame(3), &DetectorParams::default());
        let (_, b) = detect(&g.frame(3), &DetectorParams::default());
        assert_eq!(a, b);
    }

    #[test]
    fn orientation_in_range() {
        let g = SceneGenerator::workplace_scaled(2, 160, 90);
        let (_, kps) = detect(&g.frame(0), &DetectorParams::default());
        for k in kps {
            assert!(k.orientation >= -std::f32::consts::PI - 1e-3);
            assert!(k.orientation <= std::f32::consts::PI + 1e-3);
        }
    }
}
