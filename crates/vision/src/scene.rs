//! Deterministic synthetic "workplace" video.
//!
//! The paper replays a pre-recorded 10 s, 30 FPS, 720p smartphone clip of
//! a workplace with a monitor, keyboard, and table. We cannot ship that
//! clip, so this module renders an equivalent: three textured rectangular
//! objects on a noisy background, observed by a camera that drifts
//! smoothly (sinusoidal pan + slight zoom). Texture gives the feature
//! detector corner-rich content; deterministic generation gives every
//! experiment identical input — the property the paper gets from replay.

use simcore::SimRng;

use crate::image::GrayImage;

/// Frame geometry of the paper's input video.
pub const VIDEO_WIDTH: usize = 1280;
pub const VIDEO_HEIGHT: usize = 720;
pub const VIDEO_FPS: u32 = 30;
pub const VIDEO_SECONDS: u32 = 10;
/// Total frames in one replay loop.
pub const VIDEO_FRAMES: u32 = VIDEO_FPS * VIDEO_SECONDS;

/// An axis-aligned textured object in the scene, in world coordinates.
#[derive(Debug, Clone)]
pub struct SceneObject {
    pub name: &'static str,
    pub x: f32,
    pub y: f32,
    pub w: f32,
    pub h: f32,
    /// Texture frequency: higher → finer detail → more keypoints.
    pub freq: f32,
    /// Base intensity of the object's surface.
    pub base: f32,
}

impl SceneObject {
    /// Procedural texture: a sum of phase-shifted sinusoids plus a hash
    /// noise term. Purely positional, so the texture is rigidly attached
    /// to the object as the camera moves — which is what lets descriptor
    /// matching track it across frames.
    fn texture(&self, u: f32, v: f32) -> f32 {
        let s1 = (u * self.freq).sin() * (v * self.freq * 0.83).cos();
        let s2 = ((u + v) * self.freq * 0.41).sin();
        // Integer-lattice hash noise for corner-like micro structure.
        let xi = (u * self.freq * 2.0) as i64;
        let yi = (v * self.freq * 2.0) as i64;
        let h = xi
            .wrapping_mul(0x9E37_79B9_7F4A_7C15u64 as i64)
            .wrapping_add(yi.wrapping_mul(0xC2B2_AE3D_27D4_EB4Fu64 as i64));
        let noise = ((h >> 33) & 0xFF) as f32 / 255.0 - 0.5;
        (self.base + 0.22 * s1 + 0.14 * s2 + 0.18 * noise).clamp(0.0, 1.0)
    }
}

/// The default workplace: monitor, keyboard, and table.
pub fn workplace_objects() -> Vec<SceneObject> {
    vec![
        SceneObject {
            name: "table",
            x: 120.0,
            y: 420.0,
            w: 1040.0,
            h: 260.0,
            freq: 0.05,
            base: 0.30,
        },
        SceneObject {
            name: "monitor",
            x: 420.0,
            y: 90.0,
            w: 430.0,
            h: 270.0,
            freq: 0.145,
            base: 0.62,
        },
        SceneObject {
            name: "keyboard",
            x: 460.0,
            y: 470.0,
            w: 360.0,
            h: 130.0,
            freq: 0.235,
            base: 0.42,
        },
    ]
}

/// Camera state for a given frame: translation + zoom about the centre.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CameraPose {
    pub tx: f32,
    pub ty: f32,
    pub zoom: f32,
}

/// Deterministic handheld-camera drift for frame `idx` (loops every
/// [`VIDEO_FRAMES`]).
pub fn camera_pose(idx: u32) -> CameraPose {
    let t = (idx % VIDEO_FRAMES) as f32 / VIDEO_FPS as f32;
    CameraPose {
        tx: 24.0 * (t * 0.9).sin(),
        ty: 14.0 * (t * 1.3 + 0.7).sin(),
        zoom: 1.0 + 0.04 * (t * 0.5).sin(),
    }
}

/// Renders replayable synthetic video frames.
#[derive(Debug, Clone)]
pub struct SceneGenerator {
    objects: Vec<SceneObject>,
    width: usize,
    height: usize,
    /// Per-generator background noise seed (fixed per client so replays
    /// are identical, different across clients like distinct cameras).
    noise_seed: u64,
}

impl SceneGenerator {
    pub fn workplace(seed: u64) -> Self {
        SceneGenerator {
            objects: workplace_objects(),
            width: VIDEO_WIDTH,
            height: VIDEO_HEIGHT,
            noise_seed: seed,
        }
    }

    /// Smaller frames for fast tests.
    pub fn workplace_scaled(seed: u64, width: usize, height: usize) -> Self {
        let sx = width as f32 / VIDEO_WIDTH as f32;
        let sy = height as f32 / VIDEO_HEIGHT as f32;
        let objects = workplace_objects()
            .into_iter()
            .map(|mut o| {
                o.x *= sx;
                o.w *= sx;
                o.y *= sy;
                o.h *= sy;
                // Keep texture frequency in *pixel* units comparable.
                o.freq /= sx.min(sy);
                o
            })
            .collect();
        SceneGenerator {
            objects,
            width,
            height,
            noise_seed: seed,
        }
    }

    pub fn objects(&self) -> &[SceneObject] {
        &self.objects
    }

    /// Render frame `idx` of the loop.
    pub fn frame(&self, idx: u32) -> GrayImage {
        self.frame_with_pose(camera_pose(idx))
    }

    /// The identity camera: the canonical reference view used to train
    /// the recognition database.
    pub fn reference_frame(&self) -> GrayImage {
        self.frame_with_pose(CameraPose {
            tx: 0.0,
            ty: 0.0,
            zoom: 1.0,
        })
    }

    /// Render the scene under an explicit camera pose.
    pub fn frame_with_pose(&self, pose: CameraPose) -> GrayImage {
        let cx = self.width as f32 / 2.0;
        let cy = self.height as f32 / 2.0;
        let mut img = GrayImage::new(self.width, self.height);
        let mut bg_rng = SimRng::new(self.noise_seed);
        for y in 0..self.height {
            for x in 0..self.width {
                // Screen → world: undo zoom about centre, then translation.
                let wx = (x as f32 - cx) / pose.zoom + cx + pose.tx;
                let wy = (y as f32 - cy) / pose.zoom + cy + pose.ty;
                // Later objects render on top (keyboard over table).
                let mut val = 0.12 + 0.04 * bg_rng.next_f64() as f32;
                for obj in &self.objects {
                    if wx >= obj.x && wx < obj.x + obj.w && wy >= obj.y && wy < obj.y + obj.h {
                        val = obj.texture(wx, wy);
                    }
                }
                img.set(x, y, val);
            }
        }
        img
    }

    /// Serialized size in bytes of a raw grayscale frame at the paper's
    /// pre-processed resolution — used by the transport model.
    pub fn frame_bytes(&self) -> usize {
        self.width * self.height
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn video_constants_match_paper() {
        assert_eq!(VIDEO_WIDTH, 1280);
        assert_eq!(VIDEO_HEIGHT, 720);
        assert_eq!(VIDEO_FPS, 30);
        assert_eq!(VIDEO_FRAMES, 300);
    }

    #[test]
    fn frames_are_deterministic() {
        let g1 = SceneGenerator::workplace_scaled(5, 64, 36);
        let g2 = SceneGenerator::workplace_scaled(5, 64, 36);
        assert_eq!(g1.frame(17), g2.frame(17));
    }

    #[test]
    fn different_seeds_differ() {
        let g1 = SceneGenerator::workplace_scaled(5, 64, 36);
        let g2 = SceneGenerator::workplace_scaled(6, 64, 36);
        assert_ne!(g1.frame(0), g2.frame(0));
    }

    #[test]
    fn video_loops() {
        let g = SceneGenerator::workplace_scaled(1, 64, 36);
        assert_eq!(g.frame(3), g.frame(3 + VIDEO_FRAMES));
    }

    #[test]
    fn camera_moves_between_frames() {
        let a = camera_pose(0);
        let b = camera_pose(15);
        assert!(a != b, "camera should drift");
        let g = SceneGenerator::workplace_scaled(1, 64, 36);
        assert_ne!(g.frame(0), g.frame(15));
    }

    #[test]
    fn objects_brighter_than_background() {
        let g = SceneGenerator::workplace_scaled(1, 128, 72);
        let f = g.frame(0);
        // Monitor centre (world ≈ (635,225) scaled to 128x72 ≈ (63,22)).
        let on_monitor = f.get(63, 22);
        let corner = f.get(2, 2);
        assert!(on_monitor > corner, "monitor {on_monitor} vs bg {corner}");
    }

    #[test]
    fn workplace_has_three_objects() {
        let names: Vec<_> = workplace_objects().iter().map(|o| o.name).collect();
        assert_eq!(names, vec!["table", "monitor", "keyboard"]);
    }
}
