//! # vision — the computer-vision substrate of the scAtteR pipeline
//!
//! The paper's five services wrap classic CV stages: grayscale
//! pre-processing, SIFT feature detection/extraction, PCA + Fisher-vector
//! encoding, LSH nearest-neighbour search, and descriptor matching with
//! pose estimation. The authors run CUDA implementations on edge GPUs; we
//! implement each stage from scratch in portable Rust so the pipeline's
//! data plane is real end-to-end:
//!
//! - [`image`]: grayscale frames, RGB→gray, bilinear resize.
//! - [`scene`]: deterministic synthetic "workplace" video (monitor,
//!   keyboard, table) standing in for the paper's pre-recorded 10 s,
//!   30 FPS, 720p smartphone clip.
//! - [`pyramid`]: separable Gaussian blur, scale-space, difference of
//!   Gaussians.
//! - [`keypoints`]: DoG extrema with edge-response rejection and
//!   orientation assignment ([Lowe 2004] structure, reduced constants).
//! - [`descriptor`]: 128-dimensional gradient-histogram descriptors.
//! - [`pca`]: principal component analysis by power iteration.
//! - [`gmm`]: diagonal-covariance Gaussian mixture fitted with EM.
//! - [`fisher`]: improved Fisher vectors (power + L2 normalized).
//! - [`lsh`]: random-hyperplane locality-sensitive hashing.
//! - [`matching`]: ratio-test descriptor matching.
//! - [`ransac`]: RANSAC homography and object pose (projected bounding
//!   box) estimation.
//! - [`db`]: the reference-object database the `matching` service
//!   recognizes against.
//! - [`fast`]: FAST corners + BRIEF binary descriptors — the "faster
//!   extractor" of §5's model-optimization discussion.
//! - [`tracking`]: persistent multi-frame object tracks (the stability
//!   the paper's FPS metric proxies).
//! - [`codec`]: block-DCT intra-frame compression for the client uplink
//!   (the compressed-vs-raw asymmetry behind fig. 11).
//!
//! Everything is deterministic given a seed; no SIMD/GPU so results are
//! identical across hosts.

pub mod codec;
pub mod db;
pub mod descriptor;
pub mod fast;
pub mod fisher;
pub mod gmm;
pub mod image;
pub mod keypoints;
pub mod lsh;
pub mod matching;
pub mod pca;
pub mod pose_filter;
pub mod pyramid;
pub mod ransac;
pub mod scene;
pub mod tracking;

pub use db::ReferenceDb;
pub use descriptor::Descriptor;
pub use fisher::FisherEncoder;
pub use gmm::DiagGmm;
pub use image::GrayImage;
pub use keypoints::Keypoint;
pub use lsh::LshIndex;
pub use pca::Pca;
