//! Principal component analysis by power iteration with deflation — the
//! dimensionality-reduction half of the `encoding` service.
//!
//! The pipeline compresses 128-d SIFT descriptors before Fisher encoding
//! (Perronnin et al. use PCA-64; we default to the same). Power iteration
//! is O(components × iters × n × d) with no external linear-algebra
//! dependency, and is deterministic given the seeded start vectors.

use simcore::SimRng;

/// A fitted PCA model.
#[derive(Debug, Clone)]
pub struct Pca {
    /// Mean of the training data, length `d`.
    pub mean: Vec<f64>,
    /// Principal axes, `components[k]` has length `d`, unit norm,
    /// mutually orthogonal.
    pub components: Vec<Vec<f64>>,
    /// Explained variance (eigenvalue) per component, non-increasing.
    pub explained_variance: Vec<f64>,
}

impl Pca {
    /// Fit `n_components` principal components to `data` (rows are
    /// samples). Requires at least two samples and `n_components ≤ d`.
    pub fn fit(data: &[Vec<f64>], n_components: usize, rng: &mut SimRng) -> Pca {
        assert!(data.len() >= 2, "PCA needs at least two samples");
        let d = data[0].len();
        assert!(n_components >= 1 && n_components <= d);
        assert!(data.iter().all(|r| r.len() == d), "ragged data");

        let n = data.len() as f64;
        let mut mean = vec![0.0; d];
        for row in data {
            for (m, &x) in mean.iter_mut().zip(row) {
                *m += x;
            }
        }
        for m in &mut mean {
            *m /= n;
        }

        // Centred data copy.
        let centred: Vec<Vec<f64>> = data
            .iter()
            .map(|row| row.iter().zip(&mean).map(|(&x, &m)| x - m).collect())
            .collect();

        let mut components: Vec<Vec<f64>> = Vec::with_capacity(n_components);
        let mut variances = Vec::with_capacity(n_components);

        for _ in 0..n_components {
            // Random unit start vector.
            let mut v: Vec<f64> = (0..d).map(|_| rng.normal()).collect();
            orthogonalize(&mut v, &components);
            normalize(&mut v);

            let mut eigenvalue = 0.0;
            for _ in 0..60 {
                // w = (Xᵀ X / n) v computed as Xᵀ (X v) / n without
                // materializing the covariance matrix.
                let mut w = vec![0.0; d];
                for row in &centred {
                    let proj: f64 = row.iter().zip(&v).map(|(a, b)| a * b).sum();
                    for (wi, &xi) in w.iter_mut().zip(row) {
                        *wi += proj * xi;
                    }
                }
                for wi in &mut w {
                    *wi /= n;
                }
                orthogonalize(&mut w, &components);
                let norm = normed(&w);
                if norm < 1e-14 {
                    // No variance left in the remaining subspace.
                    eigenvalue = 0.0;
                    break;
                }
                eigenvalue = norm;
                for (vi, wi) in v.iter_mut().zip(&w) {
                    *vi = wi / norm;
                }
            }
            components.push(v);
            variances.push(eigenvalue);
        }

        Pca {
            mean,
            components,
            explained_variance: variances,
        }
    }

    /// Project one sample onto the principal axes.
    pub fn transform(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.mean.len(), "dimension mismatch");
        self.components
            .iter()
            .map(|c| {
                c.iter()
                    .zip(x.iter().zip(&self.mean))
                    .map(|(&ci, (&xi, &mi))| ci * (xi - mi))
                    .sum()
            })
            .collect()
    }

    /// Project a batch.
    pub fn transform_batch(&self, xs: &[Vec<f64>]) -> Vec<Vec<f64>> {
        xs.iter().map(|x| self.transform(x)).collect()
    }

    /// Output dimensionality.
    pub fn n_components(&self) -> usize {
        self.components.len()
    }
}

fn normed(v: &[f64]) -> f64 {
    v.iter().map(|x| x * x).sum::<f64>().sqrt()
}

fn normalize(v: &mut [f64]) {
    let n = normed(v);
    if n > 1e-14 {
        for x in v {
            *x /= n;
        }
    }
}

/// Remove the projections of `v` onto each of `basis` (Gram–Schmidt).
fn orthogonalize(v: &mut [f64], basis: &[Vec<f64>]) {
    for b in basis {
        let dot: f64 = v.iter().zip(b).map(|(a, c)| a * c).sum();
        for (vi, bi) in v.iter_mut().zip(b) {
            *vi -= dot * bi;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Anisotropic Gaussian cloud with a known dominant axis.
    fn cloud(rng: &mut SimRng, n: usize) -> Vec<Vec<f64>> {
        (0..n)
            .map(|_| {
                let a = rng.normal() * 10.0; // dominant direction (1, 1)/√2
                let b = rng.normal() * 1.0; // minor direction (1, -1)/√2
                vec![(a + b) / 2f64.sqrt() + 5.0, (a - b) / 2f64.sqrt() - 3.0]
            })
            .collect()
    }

    #[test]
    fn recovers_dominant_axis() {
        let mut rng = SimRng::new(1);
        let data = cloud(&mut rng, 2000);
        let pca = Pca::fit(&data, 2, &mut rng);
        let c0 = &pca.components[0];
        // Dominant axis should be ±(1,1)/√2.
        let expected = 1.0 / 2f64.sqrt();
        assert!(
            (c0[0].abs() - expected).abs() < 0.05 && (c0[1].abs() - expected).abs() < 0.05,
            "axis {c0:?}"
        );
        assert!(
            (c0[0] - c0[1]).abs() < 0.1,
            "components should share sign structure"
        );
    }

    #[test]
    fn variances_non_increasing_and_match_scales() {
        let mut rng = SimRng::new(2);
        let data = cloud(&mut rng, 2000);
        let pca = Pca::fit(&data, 2, &mut rng);
        let ev = &pca.explained_variance;
        assert!(ev[0] >= ev[1]);
        assert!((ev[0] - 100.0).abs() < 12.0, "major variance {}", ev[0]);
        assert!((ev[1] - 1.0).abs() < 0.3, "minor variance {}", ev[1]);
    }

    #[test]
    fn components_orthonormal() {
        let mut rng = SimRng::new(3);
        let data: Vec<Vec<f64>> = (0..500)
            .map(|_| (0..6).map(|_| rng.normal()).collect())
            .collect();
        let pca = Pca::fit(&data, 4, &mut rng);
        for i in 0..4 {
            let ni = normed(&pca.components[i]);
            assert!((ni - 1.0).abs() < 1e-6, "component {i} norm {ni}");
            for j in 0..i {
                let dot: f64 = pca.components[i]
                    .iter()
                    .zip(&pca.components[j])
                    .map(|(a, b)| a * b)
                    .sum();
                assert!(dot.abs() < 1e-6, "components {i},{j} dot {dot}");
            }
        }
    }

    #[test]
    fn transform_centres_data() {
        let mut rng = SimRng::new(4);
        let data = cloud(&mut rng, 1000);
        let pca = Pca::fit(&data, 2, &mut rng);
        let projected = pca.transform_batch(&data);
        for k in 0..2 {
            let mean_k: f64 = projected.iter().map(|p| p[k]).sum::<f64>() / projected.len() as f64;
            assert!(mean_k.abs() < 1e-9, "projected mean {mean_k}");
        }
    }

    #[test]
    fn projection_variance_matches_eigenvalue() {
        let mut rng = SimRng::new(5);
        let data = cloud(&mut rng, 2000);
        let pca = Pca::fit(&data, 1, &mut rng);
        let projected = pca.transform_batch(&data);
        let var: f64 = projected.iter().map(|p| p[0] * p[0]).sum::<f64>() / projected.len() as f64;
        let rel = (var - pca.explained_variance[0]).abs() / pca.explained_variance[0];
        assert!(rel < 0.01, "variance mismatch {rel}");
    }

    #[test]
    fn degenerate_rank_yields_zero_variance_components() {
        // Rank-1 data in 3-D: second and third components find no variance.
        let mut rng = SimRng::new(6);
        let data: Vec<Vec<f64>> = (0..100)
            .map(|_| {
                let t = rng.normal();
                vec![t, 2.0 * t, -t]
            })
            .collect();
        let pca = Pca::fit(&data, 3, &mut rng);
        assert!(pca.explained_variance[1] < 1e-6);
        assert!(pca.explained_variance[2] < 1e-6);
    }

    #[test]
    #[should_panic(expected = "at least two samples")]
    fn rejects_single_sample() {
        let mut rng = SimRng::new(7);
        Pca::fit(&[vec![1.0, 2.0]], 1, &mut rng);
    }
}
