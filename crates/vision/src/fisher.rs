//! Improved Fisher-vector encoding (Perronnin et al., CVPR 2010) — the
//! aggregation half of the `encoding` service.
//!
//! Given a diagonal GMM with K components over d-dimensional (PCA-reduced)
//! descriptors, a set of descriptors is encoded as the normalized gradient
//! of its average log-likelihood with respect to the GMM means and
//! variances: a fixed-length `2 K d` vector regardless of how many
//! descriptors the frame produced. Power ("signed square root") and L2
//! normalization follow the "improved FV" recipe.

use crate::gmm::DiagGmm;

/// Fisher-vector encoder wrapping a fitted GMM.
#[derive(Debug, Clone)]
pub struct FisherEncoder {
    gmm: DiagGmm,
}

impl FisherEncoder {
    pub fn new(gmm: DiagGmm) -> Self {
        FisherEncoder { gmm }
    }

    pub fn gmm(&self) -> &DiagGmm {
        &self.gmm
    }

    /// Output dimensionality: `2 × K × d`.
    pub fn dim(&self) -> usize {
        2 * self.gmm.n_components() * self.gmm.dim()
    }

    /// Encode a set of descriptors into one Fisher vector.
    ///
    /// An empty descriptor set encodes to the zero vector (a frame with no
    /// features matches nothing, which is the desired downstream effect).
    pub fn encode(&self, descriptors: &[Vec<f64>]) -> Vec<f64> {
        let k = self.gmm.n_components();
        let d = self.gmm.dim();
        let mut fv = vec![0.0f64; 2 * k * d];
        if descriptors.is_empty() {
            return fv;
        }
        let n = descriptors.len() as f64;

        for x in descriptors {
            assert_eq!(x.len(), d, "descriptor dimension mismatch");
            let gamma = self.gmm.posteriors(x);
            for c in 0..k {
                let g = gamma[c];
                if g < 1e-12 {
                    continue;
                }
                for j in 0..d {
                    let sigma = self.gmm.vars[c][j].sqrt();
                    let u = (x[j] - self.gmm.means[c][j]) / sigma;
                    // Gradient w.r.t. mean.
                    fv[c * d + j] += g * u;
                    // Gradient w.r.t. variance.
                    fv[k * d + c * d + j] += g * (u * u - 1.0);
                }
            }
        }

        // Fisher information normalization.
        for c in 0..k {
            let wc = self.gmm.weights[c].max(1e-12);
            let mean_scale = 1.0 / (n * wc.sqrt());
            let var_scale = 1.0 / (n * (2.0 * wc).sqrt());
            for j in 0..d {
                fv[c * d + j] *= mean_scale;
                fv[k * d + c * d + j] *= var_scale;
            }
        }

        // Improved FV: power normalization then L2.
        for v in &mut fv {
            *v = v.signum() * v.abs().sqrt();
        }
        let norm = fv.iter().map(|v| v * v).sum::<f64>().sqrt();
        if norm > 1e-12 {
            for v in &mut fv {
                *v /= norm;
            }
        }
        fv
    }
}

/// Cosine similarity between two (normalized) Fisher vectors.
pub fn cosine(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len());
    let dot: f64 = a.iter().zip(b).map(|(x, y)| x * y).sum();
    let na = a.iter().map(|x| x * x).sum::<f64>().sqrt();
    let nb = b.iter().map(|x| x * x).sum::<f64>().sqrt();
    if na < 1e-12 || nb < 1e-12 {
        0.0
    } else {
        dot / (na * nb)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gmm::DiagGmm;
    use simcore::SimRng;

    fn encoder() -> FisherEncoder {
        let mut rng = SimRng::new(1);
        let data: Vec<Vec<f64>> = (0..300)
            .map(|i| {
                let (cx, cy) = if i % 2 == 0 { (-3.0, 0.0) } else { (3.0, 1.0) };
                vec![cx + rng.normal() * 0.4, cy + rng.normal() * 0.4]
            })
            .collect();
        FisherEncoder::new(DiagGmm::fit(&data, 2, 20, &mut rng))
    }

    #[test]
    fn dimensionality_is_2kd() {
        let enc = encoder();
        assert_eq!(enc.dim(), 2 * 2 * 2);
        let fv = enc.encode(&[vec![0.0, 0.0]]);
        assert_eq!(fv.len(), enc.dim());
    }

    #[test]
    fn empty_set_encodes_to_zero() {
        let enc = encoder();
        let fv = enc.encode(&[]);
        assert!(fv.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn encoded_vectors_are_unit_norm() {
        let enc = encoder();
        let mut rng = SimRng::new(2);
        let descs: Vec<Vec<f64>> = (0..20)
            .map(|_| vec![rng.normal() * 2.0, rng.normal() * 2.0])
            .collect();
        let fv = enc.encode(&descs);
        let norm = fv.iter().map(|v| v * v).sum::<f64>().sqrt();
        assert!((norm - 1.0).abs() < 1e-9, "norm {norm}");
    }

    #[test]
    fn similar_sets_closer_than_different_sets() {
        let enc = encoder();
        let mut rng = SimRng::new(3);
        let set_a: Vec<Vec<f64>> = (0..30)
            .map(|_| vec![-3.0 + rng.normal() * 0.3, rng.normal() * 0.3])
            .collect();
        let set_a2: Vec<Vec<f64>> = (0..30)
            .map(|_| vec![-3.0 + rng.normal() * 0.3, rng.normal() * 0.3])
            .collect();
        let set_b: Vec<Vec<f64>> = (0..30)
            .map(|_| vec![3.0 + rng.normal() * 0.3, 1.0 + rng.normal() * 0.3])
            .collect();
        let fa = enc.encode(&set_a);
        let fa2 = enc.encode(&set_a2);
        let fb = enc.encode(&set_b);
        let sim_same = cosine(&fa, &fa2);
        let sim_diff = cosine(&fa, &fb);
        assert!(
            sim_same > sim_diff + 0.2,
            "same {sim_same} vs diff {sim_diff}"
        );
    }

    #[test]
    fn encoding_is_permutation_invariant() {
        let enc = encoder();
        let descs = vec![vec![1.0, 0.5], vec![-2.0, 0.1], vec![0.3, -0.7]];
        let mut rev = descs.clone();
        rev.reverse();
        let a = enc.encode(&descs);
        let b = enc.encode(&rev);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-12);
        }
    }

    #[test]
    fn cosine_of_zero_vector_is_zero() {
        assert_eq!(cosine(&[0.0, 0.0], &[1.0, 0.0]), 0.0);
    }
}
