//! Grayscale image storage and the `primary` service's pre-processing
//! kernels: RGB→grayscale conversion and bilinear dimension reduction.

/// A row-major grayscale image with `f32` intensities in `[0, 1]`.
#[derive(Debug, Clone, PartialEq)]
pub struct GrayImage {
    width: usize,
    height: usize,
    data: Vec<f32>,
}

impl GrayImage {
    /// All-zero (black) image.
    pub fn new(width: usize, height: usize) -> Self {
        assert!(width > 0 && height > 0, "degenerate image");
        GrayImage {
            width,
            height,
            data: vec![0.0; width * height],
        }
    }

    /// Wrap an existing buffer; `data.len()` must equal `width * height`.
    pub fn from_vec(width: usize, height: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), width * height, "buffer size mismatch");
        GrayImage {
            width,
            height,
            data,
        }
    }

    /// Convert interleaved RGB bytes (length `3 * w * h`) using the
    /// Rec. 601 luma weights — the same conversion OpenCV's `cvtColor`
    /// applies in the original pipeline's `primary` stage.
    pub fn from_rgb8(width: usize, height: usize, rgb: &[u8]) -> Self {
        assert_eq!(rgb.len(), 3 * width * height, "rgb buffer size mismatch");
        let data = rgb
            .chunks_exact(3)
            .map(|px| (0.299 * px[0] as f32 + 0.587 * px[1] as f32 + 0.114 * px[2] as f32) / 255.0)
            .collect();
        GrayImage {
            width,
            height,
            data,
        }
    }

    pub fn width(&self) -> usize {
        self.width
    }

    pub fn height(&self) -> usize {
        self.height
    }

    pub fn data(&self) -> &[f32] {
        &self.data
    }

    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    #[inline]
    pub fn get(&self, x: usize, y: usize) -> f32 {
        debug_assert!(x < self.width && y < self.height);
        self.data[y * self.width + x]
    }

    #[inline]
    pub fn set(&mut self, x: usize, y: usize, v: f32) {
        debug_assert!(x < self.width && y < self.height);
        self.data[y * self.width + x] = v;
    }

    /// Clamped-border access: out-of-range coordinates read the nearest
    /// edge pixel. Used by convolution and gradient kernels.
    #[inline]
    pub fn get_clamped(&self, x: isize, y: isize) -> f32 {
        let xc = x.clamp(0, self.width as isize - 1) as usize;
        let yc = y.clamp(0, self.height as isize - 1) as usize;
        self.data[yc * self.width + xc]
    }

    /// Bilinear sample at fractional coordinates (clamped).
    pub fn sample_bilinear(&self, x: f32, y: f32) -> f32 {
        let x = x.clamp(0.0, (self.width - 1) as f32);
        let y = y.clamp(0.0, (self.height - 1) as f32);
        let x0 = x.floor() as usize;
        let y0 = y.floor() as usize;
        let x1 = (x0 + 1).min(self.width - 1);
        let y1 = (y0 + 1).min(self.height - 1);
        let fx = x - x0 as f32;
        let fy = y - y0 as f32;
        let top = self.get(x0, y0) * (1.0 - fx) + self.get(x1, y0) * fx;
        let bot = self.get(x0, y1) * (1.0 - fx) + self.get(x1, y1) * fx;
        top * (1.0 - fy) + bot * fy
    }

    /// Bilinear resize to `(new_w, new_h)` — the `primary` stage's
    /// dimension reduction.
    pub fn resize(&self, new_w: usize, new_h: usize) -> GrayImage {
        assert!(new_w > 0 && new_h > 0);
        let mut out = GrayImage::new(new_w, new_h);
        let sx = self.width as f32 / new_w as f32;
        let sy = self.height as f32 / new_h as f32;
        for y in 0..new_h {
            for x in 0..new_w {
                // Sample at the centre of the source footprint.
                let src_x = (x as f32 + 0.5) * sx - 0.5;
                let src_y = (y as f32 + 0.5) * sy - 0.5;
                out.set(x, y, self.sample_bilinear(src_x.max(0.0), src_y.max(0.0)));
            }
        }
        out
    }

    /// Downscale by exactly 2 via 2×2 box averaging — used between
    /// pyramid octaves where the Gaussian prefilter already bandlimits.
    pub fn half(&self) -> GrayImage {
        let w = (self.width / 2).max(1);
        let h = (self.height / 2).max(1);
        let mut out = GrayImage::new(w, h);
        for y in 0..h {
            for x in 0..w {
                let a = self.get(2 * x, 2 * y);
                let b = self.get_clamped(2 * x as isize + 1, 2 * y as isize);
                let c = self.get_clamped(2 * x as isize, 2 * y as isize + 1);
                let d = self.get_clamped(2 * x as isize + 1, 2 * y as isize + 1);
                out.set(x, y, (a + b + c + d) / 4.0);
            }
        }
        out
    }

    /// Central-difference gradient (dx, dy) at interior pixel (x, y),
    /// clamped borders.
    #[inline]
    pub fn gradient(&self, x: usize, y: usize) -> (f32, f32) {
        let x = x as isize;
        let y = y as isize;
        let dx = (self.get_clamped(x + 1, y) - self.get_clamped(x - 1, y)) * 0.5;
        let dy = (self.get_clamped(x, y + 1) - self.get_clamped(x, y - 1)) * 0.5;
        (dx, dy)
    }

    /// Mean intensity — handy as a cheap content checksum in tests.
    pub fn mean(&self) -> f32 {
        self.data.iter().sum::<f32>() / self.data.len() as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rgb_conversion_uses_luma_weights() {
        // Pure red, green, blue pixels.
        let rgb = [255u8, 0, 0, 0, 255, 0, 0, 0, 255];
        let img = GrayImage::from_rgb8(3, 1, &rgb);
        assert!((img.get(0, 0) - 0.299).abs() < 1e-5);
        assert!((img.get(1, 0) - 0.587).abs() < 1e-5);
        assert!((img.get(2, 0) - 0.114).abs() < 1e-5);
    }

    #[test]
    fn resize_preserves_constant_image() {
        let img = GrayImage::from_vec(8, 8, vec![0.5; 64]);
        let small = img.resize(3, 5);
        assert_eq!(small.width(), 3);
        assert_eq!(small.height(), 5);
        for &v in small.data() {
            assert!((v - 0.5).abs() < 1e-6);
        }
    }

    #[test]
    fn resize_identity_size_close_to_original() {
        let mut img = GrayImage::new(4, 4);
        for y in 0..4 {
            for x in 0..4 {
                img.set(x, y, (x + 4 * y) as f32 / 16.0);
            }
        }
        let same = img.resize(4, 4);
        for (a, b) in img.data().iter().zip(same.data()) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn half_averages_quads() {
        let img = GrayImage::from_vec(2, 2, vec![0.0, 1.0, 1.0, 0.0]);
        let h = img.half();
        assert_eq!(h.width(), 1);
        assert_eq!(h.height(), 1);
        assert!((h.get(0, 0) - 0.5).abs() < 1e-6);
    }

    #[test]
    fn clamped_access_replicates_edges() {
        let img = GrayImage::from_vec(2, 1, vec![0.25, 0.75]);
        assert_eq!(img.get_clamped(-5, 0), 0.25);
        assert_eq!(img.get_clamped(7, 0), 0.75);
        assert_eq!(img.get_clamped(0, -3), 0.25);
    }

    #[test]
    fn bilinear_interpolates_midpoint() {
        let img = GrayImage::from_vec(2, 1, vec![0.0, 1.0]);
        assert!((img.sample_bilinear(0.5, 0.0) - 0.5).abs() < 1e-6);
    }

    #[test]
    fn gradient_of_ramp_is_constant() {
        let mut img = GrayImage::new(5, 5);
        for y in 0..5 {
            for x in 0..5 {
                img.set(x, y, x as f32 * 0.1);
            }
        }
        let (dx, dy) = img.gradient(2, 2);
        assert!((dx - 0.1).abs() < 1e-6);
        assert!(dy.abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "buffer size mismatch")]
    fn from_vec_validates_len() {
        GrayImage::from_vec(3, 3, vec![0.0; 8]);
    }
}
