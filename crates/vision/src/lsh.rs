//! Random-hyperplane locality-sensitive hashing — the `lsh` service.
//!
//! Fisher vectors are compared by cosine similarity; sign-of-projection
//! hashing (Charikar's SimHash) is the classic LSH family for that metric.
//! The service maintains several hash tables and answers nearest-neighbour
//! queries by scanning only the buckets the query lands in.

use std::collections::HashMap;

use simcore::SimRng;

/// A multi-table random-hyperplane LSH index over fixed-dimension vectors.
#[derive(Debug, Clone)]
pub struct LshIndex {
    dim: usize,
    bits: usize,
    /// `planes[t][b]` is hyperplane `b` of table `t`, length `dim`.
    planes: Vec<Vec<Vec<f64>>>,
    tables: Vec<HashMap<u64, Vec<usize>>>,
    /// Stored vectors, indexed by insertion id.
    items: Vec<Vec<f64>>,
}

impl LshIndex {
    /// Build an index with `n_tables` tables of `bits`-bit hashes.
    pub fn new(dim: usize, n_tables: usize, bits: usize, rng: &mut SimRng) -> Self {
        assert!(dim > 0 && n_tables > 0 && bits > 0 && bits <= 64);
        let planes = (0..n_tables)
            .map(|_| {
                (0..bits)
                    .map(|_| (0..dim).map(|_| rng.normal()).collect())
                    .collect()
            })
            .collect();
        LshIndex {
            dim,
            bits,
            planes,
            tables: vec![HashMap::new(); n_tables],
            items: Vec::new(),
        }
    }

    pub fn len(&self) -> usize {
        self.items.len()
    }

    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    pub fn dim(&self) -> usize {
        self.dim
    }

    fn hash(&self, table: usize, v: &[f64]) -> u64 {
        let mut h = 0u64;
        for (b, plane) in self.planes[table].iter().enumerate() {
            let dot: f64 = plane.iter().zip(v).map(|(p, x)| p * x).sum();
            if dot >= 0.0 {
                h |= 1 << b;
            }
        }
        h
    }

    /// Insert a vector; returns its id.
    pub fn insert(&mut self, v: Vec<f64>) -> usize {
        assert_eq!(v.len(), self.dim, "dimension mismatch");
        let id = self.items.len();
        for t in 0..self.tables.len() {
            let h = self.hash(t, &v);
            self.tables[t].entry(h).or_default().push(id);
        }
        self.items.push(v);
        id
    }

    /// Candidate ids colliding with `q` in at least one table
    /// (deduplicated, ascending).
    pub fn candidates(&self, q: &[f64]) -> Vec<usize> {
        assert_eq!(q.len(), self.dim, "dimension mismatch");
        let mut out: Vec<usize> = Vec::new();
        for t in 0..self.tables.len() {
            if let Some(bucket) = self.tables[t].get(&self.hash(t, q)) {
                out.extend_from_slice(bucket);
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Approximate nearest neighbours: the top-`k` candidates by cosine
    /// similarity, `(id, similarity)` in descending similarity. Falls back
    /// to a linear scan when no bucket collides (rare with several tables)
    /// so the pipeline never returns "nothing" for a valid query.
    pub fn query(&self, q: &[f64], k: usize) -> Vec<(usize, f64)> {
        let mut cands = self.candidates(q);
        if cands.is_empty() {
            cands = (0..self.items.len()).collect();
        }
        let mut scored: Vec<(usize, f64)> = cands
            .into_iter()
            .map(|id| (id, crate::fisher::cosine(q, &self.items[id])))
            .collect();
        scored.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .expect("finite sim")
                .then(a.0.cmp(&b.0))
        });
        scored.truncate(k);
        scored
    }

    /// Fraction of buckets a linear scan is reduced to for `q` — the
    /// speedup diagnostic the `lsh` service exports.
    pub fn candidate_fraction(&self, q: &[f64]) -> f64 {
        if self.items.is_empty() {
            return 0.0;
        }
        self.candidates(q).len() as f64 / self.items.len() as f64
    }

    pub fn item(&self, id: usize) -> &[f64] {
        &self.items[id]
    }

    pub fn n_bits(&self) -> usize {
        self.bits
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn unit(rng: &mut SimRng, dim: usize) -> Vec<f64> {
        let mut v: Vec<f64> = (0..dim).map(|_| rng.normal()).collect();
        let n = v.iter().map(|x| x * x).sum::<f64>().sqrt();
        for x in &mut v {
            *x /= n;
        }
        v
    }

    fn perturb(rng: &mut SimRng, v: &[f64], eps: f64) -> Vec<f64> {
        let mut out: Vec<f64> = v.iter().map(|&x| x + eps * rng.normal()).collect();
        let n = out.iter().map(|x| x * x).sum::<f64>().sqrt();
        for x in &mut out {
            *x /= n;
        }
        out
    }

    #[test]
    fn exact_duplicate_is_top_hit() {
        let mut rng = SimRng::new(1);
        let mut idx = LshIndex::new(16, 4, 12, &mut rng);
        let mut ids = Vec::new();
        for _ in 0..100 {
            let v = unit(&mut rng, 16);
            ids.push(idx.insert(v));
        }
        let probe = idx.item(37).to_vec();
        let hits = idx.query(&probe, 1);
        assert_eq!(hits[0].0, 37);
        assert!((hits[0].1 - 1.0).abs() < 1e-9);
    }

    #[test]
    fn near_neighbour_found_under_noise() {
        let mut rng = SimRng::new(2);
        let mut idx = LshIndex::new(32, 6, 10, &mut rng);
        let targets: Vec<Vec<f64>> = (0..200).map(|_| unit(&mut rng, 32)).collect();
        for t in &targets {
            idx.insert(t.clone());
        }
        let mut found = 0;
        for (i, t) in targets.iter().enumerate().take(50) {
            let noisy = perturb(&mut rng, t, 0.05);
            if idx.query(&noisy, 1)[0].0 == i {
                found += 1;
            }
        }
        assert!(found >= 45, "only {found}/50 noisy probes recovered");
    }

    #[test]
    fn candidate_fraction_below_full_scan() {
        let mut rng = SimRng::new(3);
        let mut idx = LshIndex::new(32, 2, 14, &mut rng);
        for _ in 0..2000 {
            let v = unit(&mut rng, 32);
            idx.insert(v);
        }
        let q = unit(&mut rng, 32);
        let frac = idx.candidate_fraction(&q);
        assert!(frac < 0.25, "LSH scanned {frac} of the index");
    }

    #[test]
    fn empty_index_queries_safely() {
        let mut rng = SimRng::new(4);
        let idx = LshIndex::new(8, 2, 8, &mut rng);
        assert!(idx.query(&[0.5; 8], 3).is_empty());
        assert_eq!(idx.candidate_fraction(&[0.5; 8]), 0.0);
    }

    #[test]
    fn fallback_linear_scan_when_no_collision() {
        let mut rng = SimRng::new(5);
        // 1 table × 16 bits on opposite vectors: likely no collision.
        let mut idx = LshIndex::new(4, 1, 16, &mut rng);
        idx.insert(vec![1.0, 0.0, 0.0, 0.0]);
        let hits = idx.query(&[-1.0, 0.0, 0.0, 0.0], 1);
        assert_eq!(hits.len(), 1, "fallback must return the only item");
    }

    proptest! {
        #[test]
        fn query_returns_at_most_k(
            k in 1usize..10,
            n in 0usize..30,
            seed in 0u64..100,
        ) {
            let mut rng = SimRng::new(seed);
            let mut idx = LshIndex::new(8, 3, 6, &mut rng);
            for _ in 0..n {
                let v = unit(&mut rng, 8);
                idx.insert(v);
            }
            let q = unit(&mut rng, 8);
            let hits = idx.query(&q, k);
            prop_assert!(hits.len() <= k.min(n));
            // Similarities sorted descending.
            for w in hits.windows(2) {
                prop_assert!(w[0].1 >= w[1].1);
            }
        }
    }
}
