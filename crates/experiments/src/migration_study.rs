//! Dynamic service migration — the paper's introduction: "the interplay
//! of virtualization and orchestration frameworks … to facilitate
//! dynamic migrations and scaling of AR services has remained largely
//! unexplored to date."
//!
//! Scenario: a provider onboards a new edge site. The pipeline starts in
//! the cloud (clients already connected); at T the orchestrator live-
//! migrates the four GPU stages to the edge server E2, one every two
//! seconds (rolling migration — never more than one service in restart).
//! We time-slice QoS around the migration window.

use scatter::config::{placements, RunConfig};
use scatter::{run_experiment, Mode, ServiceKind};
use simcore::{SimDuration, SimTime};

use crate::common::SEED;
use crate::table::{f1, Table};

pub fn run_figure() -> Vec<Table> {
    let clients = 2;
    let duration = 60u64;
    let migrate_at = 24u64;
    // Roll sift, encoding, lsh, matching from the cloud to E2; primary
    // follows last so the ingress moves once the backend is ready.
    let mut cfg = RunConfig::new(Mode::Scatter, placements::cloud_only(), clients)
        .with_duration(SimDuration::from_secs(duration))
        .with_warmup(SimDuration::from_secs(0))
        .with_seed(SEED)
        .with_recovery(SimDuration::from_secs(2));
    for (i, kind) in [
        ServiceKind::Sift,
        ServiceKind::Encoding,
        ServiceKind::Lsh,
        ServiceKind::Matching,
        ServiceKind::Primary,
    ]
    .iter()
    .enumerate()
    {
        cfg = cfg.with_migration(
            SimDuration::from_secs(migrate_at + 2 * i as u64),
            *kind,
            0,
            "E2",
        );
    }
    let r = run_experiment(cfg);

    // Time-sliced QoS: completions per 6-second window, mean E2E.
    let mut t = Table::new(
        "Migration study: cloud → edge rolling live-migration at t=24 s (scAtteR, 2 clients)",
        &["window", "FPS/client", "phase"],
    );
    let windows = duration / 6;
    for wdx in 0..windows {
        let ws = SimTime::from_secs(wdx * 6);
        let we = SimTime::from_secs((wdx + 1) * 6);
        let completions: usize = r
            .services
            .iter()
            .filter(|s| s.kind == ServiceKind::Matching)
            .map(|s| s.ingress.window_count(ws, we))
            .sum();
        // Matching ingress ≈ completions (its own drops are small); good
        // enough for the time-resolved view.
        let fps = completions as f64 / 6.0 / clients as f64;
        let phase = if (wdx * 6) < migrate_at {
            "cloud"
        } else if (wdx * 6) < migrate_at + 12 {
            "migrating"
        } else {
            "edge"
        };
        t.row(vec![
            format!("{}–{} s", wdx * 6, (wdx + 1) * 6),
            f1(fps),
            phase.to_string(),
        ]);
    }
    let migrations = r.scale_events.iter().filter(|e| e.signal < 0.0).count();
    t.note(format!(
        "{migrations} migrations executed; each costs one 2 s restart"
    ));
    t.note("cloud phase: V100 wall-time penalty + 15 ms RTT cap the frame rate;");
    t.note("edge phase: the same pipeline on E2 returns to full rate — live");
    t.note("migration trades a transient dip for a permanently better placement.");
    t.note("(under scAtteR++ the cloud phase reads ≈0: its 100 ms XR budget is");
    t.note("simply unattainable from this cloud at 2 clients — see fig. 4's E2E)");
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn migration_improves_steady_state() {
        std::env::set_var("SCATTER_EXP_SECS", "10");
        let tables = run_figure();
        let rows = &tables[0].rows;
        // Compare the first cloud window against the last edge window.
        let first: f64 = rows[0][1].parse().unwrap();
        let last: f64 = rows[rows.len() - 1][1].parse().unwrap();
        assert!(
            last > first * 1.2,
            "edge phase {last} should beat cloud phase {first}"
        );
    }
}
