//! Figure 4: cloud-only deployment of scAtteR.
//!
//! The whole pipeline on the AWS V100 instance; clients reach it over
//! ≈15 ms RTT. The paper's anchors: 18.2 FPS median (vs 25 at the edge),
//! 64 % frame success, ≈+20 ms E2E — explicitly *not* a hardware
//! bottleneck (CPU <5 %, GPU <25 %, mem <2 %).

use scatter::config::placements;
use scatter::{Mode, SERVICE_KINDS};

use crate::common::run_many;
use crate::table::{f1, pct, Table};

pub fn run_figure() -> Vec<Table> {
    let mut qos = Table::new(
        "Fig 4 (QoS): scAtteR cloud-only — FPS / E2E / success vs clients",
        &[
            "clients",
            "FPS",
            "FPS median",
            "E2E ms",
            "success",
            "jitter ms",
        ],
    );
    let mut hw = Table::new(
        "Fig 4 (hardware): cloud machine utilization",
        &["clients", "CPU %", "GPU %", "mem GB"],
    );

    // Four cloud points plus the edge reference, one parallel batch.
    let mut points: Vec<_> = (1..=4)
        .map(|n| (Mode::Scatter, placements::cloud_only(), n))
        .collect();
    points.push((Mode::Scatter, placements::c1(), 1));
    let mut reports = run_many(&points).into_iter();

    let mut n1_median = 0.0;
    let mut n1_e2e = 0.0;
    for n in 1..=4 {
        let r = reports.next().unwrap();
        if n == 1 {
            n1_median = r.fps_median();
            n1_e2e = r.e2e_mean_ms();
        }
        qos.row(vec![
            n.to_string(),
            f1(r.fps()),
            f1(r.fps_median()),
            f1(r.e2e_mean_ms()),
            pct(r.success_rate),
            f1(r.jitter_ms),
        ]);
        let m = r.machine("cloud").expect("cloud machine in report");
        let total_mem: f64 = SERVICE_KINDS.iter().map(|&k| r.memory_gb(k)).sum();
        hw.row(vec![
            n.to_string(),
            f1(m.cpu_pct),
            f1(m.gpu_pct),
            f1(total_mem),
        ]);
    }

    let edge = reports.next().unwrap();
    qos.note(format!(
        "paper: 18.2 FPS median at 1 client (edge: 25) — measured {n1_median:.1} (edge: {:.1})",
        edge.fps_median()
    ));
    qos.note(format!(
        "paper: E2E ≈+20 ms vs edge — measured +{:.1} ms",
        n1_e2e - edge.e2e_mean_ms()
    ));
    qos.note("paper: 64% frame success at 1 client; slightly higher jitter than C1/C2");
    hw.note("paper: <5% CPU, <25% GPU — the slowdown is virtualization/arch, not capacity");
    hw.note("deviation: our PS-GPU model reports higher GPU% than the paper's nvidia-smi sampling");
    vec![qos, hw]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_client_sweep() {
        std::env::set_var("SCATTER_EXP_SECS", "15");
        let tables = run_figure();
        assert_eq!(tables[0].rows.len(), 4);
        assert_eq!(tables[1].rows.len(), 4);
    }
}
