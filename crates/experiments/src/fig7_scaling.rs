//! Figure 7: scAtteR++ FPS when scaling services and clients (1–10).
//!
//! Three replica vectors; anchor: scAtteR++ reaches with eight clients
//! the frame rate scAtteR managed with four on the same cluster (≈2.8×
//! client capacity).

use scatter::config::placements;
use scatter::Mode;

use crate::common::{run, run_batch};
use crate::table::{f1, Table};
use scatter::config::RunConfig;

pub const CONFIGS: [[usize; 5]; 3] = [[1, 2, 2, 1, 2], [1, 2, 1, 1, 2], [1, 3, 2, 1, 3]];

pub fn run_figure() -> Vec<Table> {
    let mut t = Table::new(
        "Fig 7: scAtteR++ FPS, replica vectors × 1–10 clients",
        &[
            "replicas", "n1", "n2", "n3", "n4", "n5", "n6", "n7", "n8", "n9", "n10",
        ],
    );
    // 30 points — the widest grid in the suite, and the reason the
    // harness is parallel. One batch, consumed row-major.
    let cfgs: Vec<RunConfig> = CONFIGS
        .iter()
        .flat_map(|&counts| {
            (1..=10).map(move |n| RunConfig::new(Mode::ScatterPP, placements::replicas(counts), n))
        })
        .collect();
    let mut reports = run_batch(cfgs).into_iter();
    for counts in CONFIGS {
        let mut row = vec![format!("{counts:?}")];
        for _ in 1..=10 {
            row.push(f1(reports.next().unwrap().fps()));
        }
        t.row(row);
    }
    // The 2.8× anchor: best scAtteR at 4 clients vs scAtteR++ at 8.
    let scatter4 = run(Mode::Scatter, placements::replicas([1, 2, 2, 1, 2]), 4);
    let pp8 = run(Mode::ScatterPP, placements::replicas([1, 3, 2, 1, 3]), 8);
    t.note(format!(
        "paper: scAtteR++ at 8 clients ≈ scAtteR at 4 (2.8× capacity) — measured {:.1} FPS @8 vs {:.1} FPS @4",
        pp8.fps(),
        scatter4.fps()
    ));
    t.note("paper: FPS holds ≈30 until ~4 clients, then decays as the pipeline saturates");
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn three_series_ten_points() {
        std::env::set_var("SCATTER_EXP_SECS", "12");
        let tables = run_figure();
        assert_eq!(tables[0].rows.len(), 3);
        assert_eq!(tables[0].rows[0].len(), 11);
    }
}
