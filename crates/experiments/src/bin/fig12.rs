//! Regenerate fig12 of the paper. See `experiments::fig12_timeline`.
fn main() {
    for table in experiments::fig12_timeline::run_figure() {
        println!("{}", table.render());
    }
}
