//! Extension study: see `experiments::latency_breakdown`.
fn main() {
    for table in experiments::latency_breakdown::run_figure() {
        println!("{}", table.render());
    }
}
