//! Reproducible performance benchmark suite — the gate behind
//! `scripts/bench.sh`.
//!
//! Times a fixed matrix over fixed seeds:
//!
//! * `des_steady` / `des_scatter` — single-thread DES throughput on the
//!   scAtteR++ / scAtteR C12×4 steady state (60 simulated seconds),
//!   reported as wall time and events/sec.
//! * `fig2_fig6` — regeneration of the two core figure tables, timed
//!   sequentially (`SCATTER_JOBS=1`, cache off) and again with the
//!   parallel cached harness, yielding `speedup_vs_sequential`.
//! * `figure_suite` — every simulation figure module (the `--bin all`
//!   set minus `fast_extractor`, which times real kernel wall-clock and
//!   would pollute a throughput measurement), same two passes.
//! * `vision_pyramid` / `vision_blur` — the sift-stage kernels on a
//!   synthetic 320×240 frame.
//!
//! Results land in `BENCH_2.json` as `name → {wall_ms, events_per_sec,
//! speedup_vs_sequential}` (null where a field is not meaningful).
//!
//! `perfbench --smoke <BENCH_2.json>` re-measures `des_steady` quickly
//! and fails (exit 1) if throughput regressed below 25% of the recorded
//! figure — the floor `scripts/verify.sh` enforces.
//!
//! The scale stage (DESIGN.md §14) is separate because its numbers are
//! memory- as well as time-shaped:
//!
//! * `perfbench --scale [--full] [OUT]` — the site-sharded streaming
//!   ladder (1k/10k/100k clients, 1M with `--full`), ascending so each
//!   stage's `VmHWM` read is its own peak; lands in `BENCH_7.json` as
//!   `scale_<n> → {wall_ms, events_per_sec, peak_rss_mb}`.
//! * `perfbench --smoke-scale <BENCH_7.json>` — fresh-process 100k run
//!   gated on the ISSUE's absolute acceptance: ≥ 2M events/sec AND
//!   peak RSS ≤ 2048 MiB.
//!
//! `perfbench --diff [DIR]` compares the two newest committed
//! `BENCH_<n>.json` (by numeric suffix) over their common bench names
//! and fails (exit 1) on a >10 % events/sec regression or >20 % peak-RSS
//! growth — the cross-PR ratchet behind `scripts/bench_diff.sh`.

use std::fmt::Write as _;
use std::time::Instant;

use scatter::config::{placements, RunConfig};
use scatter::{run_experiment, Mode};
use simcore::SimDuration;

/// Best-of-`reps` wall time in ms.
fn time_ms<F: FnMut()>(mut f: F, reps: usize) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64() * 1e3);
    }
    best
}

fn des_cfg(mode: Mode, secs: u64) -> RunConfig {
    RunConfig::new(mode, placements::c12(), 4)
        .with_duration(SimDuration::from_secs(secs))
        .with_warmup(SimDuration::from_secs(5))
        .with_seed(experiments::common::SEED)
}

/// One timed DES point: (wall_ms best-of-reps, events/sec at that wall).
fn bench_des(mode: Mode, secs: u64, reps: usize) -> (f64, f64) {
    let mut events = 0u64;
    let wall_ms = time_ms(
        || {
            let r = run_experiment(des_cfg(mode, secs));
            assert!(r.fps() > 0.5, "bench run produced no frames");
            events = r.events_executed;
        },
        reps,
    );
    (wall_ms, events as f64 / (wall_ms / 1e3))
}

type FigureFn = fn() -> Vec<experiments::Table>;

/// The simulation figure modules (the `--bin all` set minus
/// `fast_extractor`, which measures real kernel wall-clock).
fn sim_figures() -> Vec<(&'static str, FigureFn)> {
    vec![
        (
            "fig2",
            experiments::fig2_baseline_edge::run_figure as FigureFn,
        ),
        ("fig3", experiments::fig3_scalability::run_figure),
        ("fig4", experiments::fig4_cloud::run_figure),
        ("fig6", experiments::fig6_scatterpp_edge::run_figure),
        ("fig7", experiments::fig7_scaling::run_figure),
        ("fig8", experiments::fig8_sidecar::run_figure),
        ("fig9", experiments::fig9_network::run_figure),
        ("fig10", experiments::fig10_jitter::run_figure),
        ("fig11", experiments::fig11_hybrid::run_figure),
        ("fig12", experiments::fig12_timeline::run_figure),
        ("headline", experiments::headline::run_figure),
        ("ablation", experiments::ablation::run_figure),
        ("autoscale", experiments::autoscale_study::run_figure),
        ("scheduler", experiments::scheduler_study::run_figure),
        ("migration", experiments::migration_study::run_figure),
        ("burst_loss", experiments::burst_loss::run_figure),
        (
            "latency_breakdown",
            experiments::latency_breakdown::run_figure,
        ),
    ]
}

/// Render a set of figures, returning total rendered length (a cheap
/// checksum keeping the work from being optimized away).
fn render_figures(figs: &[(&'static str, FigureFn)]) -> usize {
    figs.iter()
        .flat_map(|(_, f)| f())
        .map(|t| t.render().len())
        .sum()
}

/// Time one figure set sequentially (jobs=1, cache off) and then with
/// the parallel cached harness; returns (par_wall_ms, speedup).
fn bench_figures(figs: &[(&'static str, FigureFn)], jobs: usize) -> (f64, f64) {
    std::env::set_var("SCATTER_JOBS", "1");
    std::env::set_var("SCATTER_RUN_CACHE", "0");
    experiments::common::clear_run_cache();
    let seq_ms = time_ms(|| assert!(render_figures(figs) > 0), 1);

    std::env::set_var("SCATTER_JOBS", jobs.to_string());
    std::env::set_var("SCATTER_RUN_CACHE", "1");
    experiments::common::clear_run_cache();
    let par_ms = time_ms(|| assert!(render_figures(figs) > 0), 1);
    experiments::common::clear_run_cache();
    (par_ms, seq_ms / par_ms)
}

fn synthetic_frame() -> vision::GrayImage {
    let (w, h) = (320usize, 240usize);
    let mut v = vec![0f32; w * h];
    for (i, px) in v.iter_mut().enumerate() {
        let (x, y) = (i % w, i / w);
        *px = ((x * 7 + y * 13) % 251) as f32 / 251.0;
    }
    vision::GrayImage::from_vec(w, h, v)
}

struct Entry {
    name: &'static str,
    wall_ms: f64,
    events_per_sec: Option<f64>,
    speedup_vs_sequential: Option<f64>,
}

fn render_json(entries: &[Entry], jobs: usize) -> String {
    let opt = |v: Option<f64>| match v {
        Some(x) => format!("{x:.2}"),
        None => "null".into(),
    };
    let cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"jobs\": {jobs},");
    // Context for reading `speedup_vs_sequential`: thread fan-out can
    // only beat sequential when host_cpus > 1 — on a single-core host
    // the recorded suite speedup is the run cache's contribution alone.
    let _ = writeln!(out, "  \"host_cpus\": {cpus},");
    for (i, e) in entries.iter().enumerate() {
        let comma = if i + 1 < entries.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "  \"{}\": {{\"wall_ms\": {:.2}, \"events_per_sec\": {}, \
             \"speedup_vs_sequential\": {}}}{comma}",
            e.name,
            e.wall_ms,
            opt(e.events_per_sec),
            opt(e.speedup_vs_sequential),
        );
    }
    out.push_str("}\n");
    out
}

/// Pull `"<bench>": {... "<field>": <number> ...}` out of BENCH_2.json.
/// The file is machine-written by this binary with one bench per line,
/// so a line scan is a full parser for it.
fn read_recorded(json: &str, bench: &str, field: &str) -> Option<f64> {
    let line = json.lines().find(|l| l.contains(&format!("\"{bench}\"")))?;
    let at = line.find(&format!("\"{field}\""))?;
    let rest = &line[at..];
    let colon = rest.find(':')?;
    let num: String = rest[colon + 1..]
        .trim_start()
        .chars()
        .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-')
        .collect();
    num.parse().ok()
}

/// Bench names of a machine-written `BENCH_*.json`: one
/// `"name": { ... }` object per line (scalar context fields like
/// `"jobs"` and `"host_cpus"` have no object and are skipped).
fn bench_names(json: &str) -> Vec<String> {
    json.lines()
        .filter(|l| l.contains(": {"))
        .filter_map(|l| {
            let rest = l.trim_start().strip_prefix('"')?;
            Some(rest[..rest.find('"')?].to_string())
        })
        .collect()
}

/// `--diff` tolerances: a bench may lose at most 10 % events/sec and
/// gain at most 20 % peak RSS against the previous recorded file.
const DIFF_EPS_FLOOR: f64 = 0.90;
const DIFF_RSS_CEILING: f64 = 1.20;

/// Compare the two newest `BENCH_<n>.json` in `dir` by numeric suffix.
/// Bench sets legitimately drift across PRs (BENCH_2 is the figure
/// suite, BENCH_7+ the scale ladder), so only names present in both
/// files are compared — and an empty intersection is reported loudly
/// rather than passed off as coverage.
fn diff(dir: &str) -> i32 {
    let mut files: Vec<(u64, std::path::PathBuf)> = match std::fs::read_dir(dir) {
        Ok(rd) => rd
            .filter_map(|e| {
                let p = e.ok()?.path();
                let name = p.file_name()?.to_str()?;
                let n = name.strip_prefix("BENCH_")?.strip_suffix(".json")?;
                Some((n.parse().ok()?, p))
            })
            .collect(),
        Err(e) => {
            eprintln!("perfbench --diff: cannot read {dir}: {e}");
            return 1;
        }
    };
    files.sort();
    let Some([(old_n, old_path), (new_n, new_path)]) = files.last_chunk::<2>() else {
        eprintln!(
            "perfbench --diff: found {} BENCH_<n>.json in {dir}, need 2 — nothing to diff",
            files.len()
        );
        return 0;
    };
    let read = |p: &std::path::Path| match std::fs::read_to_string(p) {
        Ok(s) => Some(s),
        Err(e) => {
            eprintln!("perfbench --diff: cannot read {}: {e}", p.display());
            None
        }
    };
    let (Some(old_json), Some(new_json)) = (read(old_path), read(new_path)) else {
        return 1;
    };

    println!(
        "perfbench --diff: BENCH_{new_n}.json vs BENCH_{old_n}.json \
         (floor {DIFF_EPS_FLOOR:.2}x events/sec, ceiling {DIFF_RSS_CEILING:.2}x peak RSS)"
    );
    let mut compared = 0usize;
    let mut failed = false;
    for name in bench_names(&new_json) {
        let pair = |field: &str| {
            Some((
                read_recorded(&old_json, &name, field)?,
                read_recorded(&new_json, &name, field)?,
            ))
        };
        if let Some((old, new)) = pair("events_per_sec") {
            compared += 1;
            let ratio = new / old.max(1e-9);
            println!(
                "  {name}: events/sec {old:.0} -> {new:.0} ({:+.1} %)",
                (ratio - 1.0) * 100.0
            );
            if ratio < DIFF_EPS_FLOOR {
                eprintln!("perfbench --diff: {name} lost more than 10 % events/sec");
                failed = true;
            }
        }
        if let Some((old, new)) = pair("peak_rss_mb") {
            compared += 1;
            let ratio = new / old.max(1e-9);
            println!(
                "  {name}: peak RSS {old:.1} MiB -> {new:.1} MiB ({:+.1} %)",
                (ratio - 1.0) * 100.0
            );
            if ratio > DIFF_RSS_CEILING {
                eprintln!("perfbench --diff: {name} grew peak RSS more than 20 %");
                failed = true;
            }
        }
    }
    if compared == 0 {
        eprintln!(
            "perfbench --diff: BENCH_{new_n}.json and BENCH_{old_n}.json share no \
             comparable bench (events_per_sec/peak_rss_mb) — diff is vacuous"
        );
        return 1;
    }
    if failed {
        return 1;
    }
    println!("perfbench --diff: {compared} comparison(s) within tolerance");
    0
}

/// One scale-ladder point: run it once, return (wall_ms, events/sec,
/// peak_rss_mb so far). Ascending callers get per-stage peaks because
/// `VmHWM` only ratchets upward with the largest world yet built.
fn bench_scale_point(clients: usize) -> (f64, f64, Option<f64>) {
    let t = Instant::now();
    let r = run_experiment(experiments::scale::scale_cfg(clients));
    let wall_ms = t.elapsed().as_secs_f64() * 1e3;
    assert!(
        r.scale.is_some() && r.events_executed > 0,
        "scale run produced no events"
    );
    let eps = r.events_executed as f64 / (wall_ms / 1e3);
    let rss_mb = bench::peak_rss_bytes().map(|b| b as f64 / (1024.0 * 1024.0));
    (wall_ms, eps, rss_mb)
}

fn render_scale_json(entries: &[(usize, f64, f64, Option<f64>)]) -> String {
    let cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"host_cpus\": {cpus},");
    for (i, (clients, wall_ms, eps, rss_mb)) in entries.iter().enumerate() {
        let comma = if i + 1 < entries.len() { "," } else { "" };
        let rss = match rss_mb {
            Some(mb) => format!("{mb:.1}"),
            None => "null".into(),
        };
        let _ = writeln!(
            out,
            "  \"scale_{clients}\": {{\"wall_ms\": {wall_ms:.2}, \
             \"events_per_sec\": {eps:.2}, \"peak_rss_mb\": {rss}}}{comma}"
        );
    }
    out.push_str("}\n");
    out
}

fn scale_stage(full: bool, out_path: &str) {
    let mut counts: Vec<usize> = experiments::scale::SCALE_CLIENTS.to_vec();
    if full {
        counts.push(experiments::scale::SCALE_CLIENTS_FULL);
    }
    let mut entries = Vec::new();
    for clients in counts {
        eprintln!("perfbench --scale: {clients} clients...");
        let (wall_ms, eps, rss_mb) = bench_scale_point(clients);
        eprintln!(
            "perfbench --scale: {clients} clients: {eps:.0} events/sec \
             ({wall_ms:.1} ms, peak rss {})",
            rss_mb.map_or("n/a".into(), |m| format!("{m:.0} MiB")),
        );
        entries.push((clients, wall_ms, eps, rss_mb));
    }
    let json = render_scale_json(&entries);
    print!("{json}");
    std::fs::write(out_path, &json).expect("write scale benchmark results");
    eprintln!("perfbench: wrote {out_path}");
}

/// Absolute acceptance gates for the 100k-client point (single-core
/// container budget): events/sec floor and peak-RSS ceiling.
const SCALE_EPS_FLOOR: f64 = 2_000_000.0;
const SCALE_RSS_CEILING_MB: f64 = 2048.0;

fn smoke_scale(path: &str) -> i32 {
    let json = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("perfbench --smoke-scale: cannot read {path}: {e}");
            return 1;
        }
    };
    if read_recorded(&json, "scale_100000", "events_per_sec").is_none() {
        eprintln!("perfbench --smoke-scale: no scale_100000.events_per_sec in {path}");
        return 1;
    }
    let (wall_ms, eps, rss_mb) = bench_scale_point(100_000);
    println!(
        "smoke scale_100000: {eps:.0} events/sec ({wall_ms:.1} ms), \
         peak rss {} (floor {SCALE_EPS_FLOOR:.0} ev/s, ceiling {SCALE_RSS_CEILING_MB:.0} MiB)",
        rss_mb.map_or("n/a".into(), |m| format!("{m:.0} MiB")),
    );
    if eps < SCALE_EPS_FLOOR {
        eprintln!("perfbench --smoke-scale: events/sec below the 100k-client floor");
        return 1;
    }
    if let Some(mb) = rss_mb {
        if mb > SCALE_RSS_CEILING_MB {
            eprintln!("perfbench --smoke-scale: peak RSS above the 2 GiB ceiling");
            return 1;
        }
    }
    0
}

fn smoke(path: &str) -> i32 {
    let json = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("perfbench --smoke: cannot read {path}: {e}");
            return 1;
        }
    };
    let Some(recorded) = read_recorded(&json, "des_steady", "events_per_sec") else {
        eprintln!("perfbench --smoke: no des_steady.events_per_sec in {path}");
        return 1;
    };
    // Short run, generous floor: the gate catches order-of-magnitude
    // regressions (an accidental O(n²) or debug-only path), not noise.
    let (wall_ms, eps) = bench_des(Mode::ScatterPP, 15, 2);
    let floor = recorded * 0.25;
    println!(
        "smoke des_steady: {eps:.0} events/sec ({wall_ms:.1} ms), \
         recorded {recorded:.0}, floor {floor:.0}"
    );
    if eps < floor {
        eprintln!("perfbench --smoke: throughput below floor — perf regression");
        return 1;
    }
    0
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("--smoke") {
        let path = args.get(1).map(String::as_str).unwrap_or("BENCH_2.json");
        std::process::exit(smoke(path));
    }
    if args.first().map(String::as_str) == Some("--smoke-scale") {
        let path = args.get(1).map(String::as_str).unwrap_or("BENCH_7.json");
        std::process::exit(smoke_scale(path));
    }
    if args.first().map(String::as_str) == Some("--diff") {
        let dir = args.get(1).map(String::as_str).unwrap_or(".");
        std::process::exit(diff(dir));
    }
    if args.first().map(String::as_str) == Some("--scale") {
        let full = args.get(1).map(String::as_str) == Some("--full");
        let out = args
            .get(if full { 2 } else { 1 })
            .map(String::as_str)
            .unwrap_or("BENCH_7.json");
        scale_stage(full, out);
        return;
    }
    let out_path = args
        .first()
        .cloned()
        .unwrap_or_else(|| "BENCH_2.json".to_string());
    let jobs = 4; // fixed for reproducible speedup accounting

    eprintln!("perfbench: DES steady state (scAtteR++ C12, 4 clients, 60 s)...");
    let (des_ms, des_eps) = bench_des(Mode::ScatterPP, 60, 3);
    eprintln!("perfbench: DES scAtteR (cancel-heavy fetch path)...");
    let (sca_ms, sca_eps) = bench_des(Mode::Scatter, 60, 3);

    eprintln!("perfbench: fig2 + fig6 regeneration, sequential vs parallel...");
    let core: Vec<(&'static str, FigureFn)> = vec![
        (
            "fig2",
            experiments::fig2_baseline_edge::run_figure as FigureFn,
        ),
        ("fig6", experiments::fig6_scatterpp_edge::run_figure),
    ];
    let (core_ms, core_speedup) = bench_figures(&core, jobs);
    eprintln!("perfbench: full simulation figure suite, sequential vs parallel...");
    let (suite_ms, suite_speedup) = bench_figures(&sim_figures(), jobs);

    eprintln!("perfbench: sift-stage vision kernels (320x240)...");
    let img = synthetic_frame();
    let pyr_ms = time_ms(
        || {
            assert!(!vision::pyramid::Pyramid::build(&img, 4, 3, 1.6)
                .octaves
                .is_empty())
        },
        5,
    );
    let blur_ms = time_ms(
        || assert_eq!(vision::pyramid::gaussian_blur(&img, 2.0).width(), 320),
        10,
    );

    let entries = [
        Entry {
            name: "des_steady",
            wall_ms: des_ms,
            events_per_sec: Some(des_eps),
            speedup_vs_sequential: None,
        },
        Entry {
            name: "des_scatter",
            wall_ms: sca_ms,
            events_per_sec: Some(sca_eps),
            speedup_vs_sequential: None,
        },
        Entry {
            name: "fig2_fig6",
            wall_ms: core_ms,
            events_per_sec: None,
            speedup_vs_sequential: Some(core_speedup),
        },
        Entry {
            name: "figure_suite",
            wall_ms: suite_ms,
            events_per_sec: None,
            speedup_vs_sequential: Some(suite_speedup),
        },
        Entry {
            name: "vision_pyramid",
            wall_ms: pyr_ms,
            events_per_sec: None,
            speedup_vs_sequential: None,
        },
        Entry {
            name: "vision_blur",
            wall_ms: blur_ms,
            events_per_sec: None,
            speedup_vs_sequential: None,
        },
    ];
    let json = render_json(&entries, jobs);
    print!("{json}");
    std::fs::write(&out_path, &json).expect("write benchmark results");
    eprintln!("perfbench: wrote {out_path}");
}
