//! The observatory's hard gates: overhead, retention, replay,
//! cross-plane agreement. See `experiments::observatory_study`.
fn main() {
    experiments::observatory_study::main();
}
