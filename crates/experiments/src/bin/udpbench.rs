//! Loopback UDP packets-per-second microbenchmark — the data-plane
//! gate behind the sharded/batched runtime (DESIGN.md §16).
//!
//! Measures end-to-end loopback pps: each timed round pushes a burst
//! of datagrams through the full 127.0.0.1 hop — send syscalls *and*
//! the receive drain — and pps is datagrams completing the hop per
//! second. That is the figure the data plane actually moves: syscall
//! batching cuts per-datagram cost on both sides (`UDP_SEGMENT`
//! supersends pay route lookup and socket bookkeeping once per run;
//! `recvmmsg` sweeps the queue in one wakeup), while the single path
//! pays one `send_to` plus one `recv_from` per datagram.
//!
//! Three shapes, at two payload sizes (64 B ≈ heartbeat / control
//! traffic, 1400 B ≈ a full frame fragment):
//!
//! * `single`  — one socket each side, one `send_to` and one
//!   `recv_from` syscall per datagram: the pre-shard plane, and the
//!   fallback everywhere batching or `SO_REUSEPORT` is unavailable.
//! * `sharded` — N `SO_REUSEPORT` sockets on one port, still
//!   single-datagram syscalls, drained socket by socket. The shape
//!   wins by putting cores behind one port; a single-core container
//!   records ≈ the single number, which is the honest figure there.
//! * `batched` — the batched plane end to end: the burst goes out
//!   through [`batch::send_many`] (GSO supersends, `sendmmsg` when
//!   GSO is off) and comes back through `recvmmsg` with up to
//!   [`batch::BATCH_DATAGRAMS`] datagrams per syscall.
//!
//! The full run writes `BENCH_9.json`: `udp_<mode>_<payload>` entries
//! (`events_per_sec` = hop pps, so the cross-PR `perfbench --diff`
//! ratchet picks them up) plus a fresh `scale_*` ladder so the newest
//! bench file still shares names with the previous one.
//!
//! `udpbench --smoke <BENCH_9.json>` re-measures the 64 B single and
//! batched points and fails (exit 1) if batched pps fell below the
//! recorded floor or lost its ≥2× edge over single-datagram recv —
//! the acceptance gate `scripts/verify.sh` enforces. Hosts where the
//! kernel refuses batching skip the gate (the runtime falls back to
//! the single path there by construction).

use std::fmt::Write as _;
use std::net::UdpSocket;
use std::time::{Duration, Instant};

use scatter::run_experiment;
use scatter::runtime::batch::{self, RecvBatch};

#[derive(Clone, Copy, PartialEq)]
enum Shape {
    Single,
    Sharded(usize),
    Batched,
}

impl Shape {
    fn name(self) -> &'static str {
        match self {
            Shape::Single => "single",
            Shape::Sharded(_) => "sharded",
            Shape::Batched => "batched",
        }
    }
}

/// Bind the receive side for one point: the shard set (one socket
/// unless sharding), non-blocking so a drain ends the instant the
/// queue is empty.
fn bind_rx(shape: Shape) -> Vec<UdpSocket> {
    let socks = match shape {
        Shape::Sharded(n) => {
            let Ok(first) = batch::bind_reuseport(0) else {
                return vec![UdpSocket::bind("127.0.0.1:0").expect("bind")];
            };
            let port = first.local_addr().expect("addr").port();
            let mut set = vec![first];
            for _ in 1..n {
                match batch::bind_reuseport(port) {
                    Ok(s) => set.push(s),
                    Err(_) => break,
                }
            }
            set
        }
        _ => vec![UdpSocket::bind("127.0.0.1:0").expect("bind")],
    };
    for s in &socks {
        s.set_nonblocking(true).expect("nonblocking");
    }
    socks
}

/// Datagrams per round: small enough that a default-rmem receive
/// buffer never overflows at either payload size (skb truesize on
/// loopback is ~2 KiB regardless of a 64 B payload), large enough
/// that one round amortizes many batched syscalls.
const BURST: usize = 64;

/// One measured point: timed rounds of burst-send + drain across the
/// loopback hop. The recorded pps is datagrams completing the hop per
/// second of wall time — send syscalls and receive syscalls both on
/// the clock, because the batched plane accelerates both.
fn run_point(shape: Shape, payload: usize, secs: f64) -> f64 {
    let rx_socks = bind_rx(shape);
    let to = rx_socks[0].local_addr().expect("addr");
    // Sharded needs several source sockets: the kernel steers by
    // 4-tuple hash, so one sender would land every burst on one shard.
    let tx_count = match shape {
        Shape::Sharded(n) => n.max(1) * 2,
        _ => 1,
    };
    let tx_socks: Vec<UdpSocket> = (0..tx_count)
        .map(|_| UdpSocket::bind("127.0.0.1:0").expect("bind tx"))
        .collect();
    let datagram = vec![0x5Au8; payload];
    let burst: Vec<&[u8]> = (0..BURST).map(|_| datagram.as_slice()).collect();
    let mut batch = RecvBatch::new(shape == Shape::Batched);

    let mut hopped = 0u64;
    let t0 = Instant::now();
    let deadline = t0 + Duration::from_secs_f64(secs);
    while Instant::now() < deadline {
        match shape {
            // The batched plane's send side: one send_many call per
            // burst — GSO supersends when the kernel takes them.
            Shape::Batched => {
                let _ = batch::send_many(&tx_socks[0], &burst, to);
            }
            _ => {
                for (i, d) in burst.iter().enumerate() {
                    let _ = tx_socks[i % tx_socks.len()].send_to(d, to);
                }
            }
        }
        for sock in &rx_socks {
            // Until WouldBlock: this queue is empty.
            while let Ok(n) = batch.recv(sock) {
                hopped += n as u64;
            }
        }
    }
    assert!(hopped > 0, "nothing crossed the loopback hop");
    hopped as f64 / t0.elapsed().as_secs_f64()
}

const PAYLOADS: [usize; 2] = [64, 1400];
const SHARDS: usize = 4;

/// Fresh scale-ladder points (same derivation as `perfbench --scale`,
/// best-of-2 like the DES points' best-of-reps timing so one noisy
/// lap on a shared host can't fake a regression) so BENCH_9.json
/// shares bench names with the previous file and the cross-PR diff
/// has a non-vacuous intersection.
fn scale_entries() -> Vec<(String, f64, f64, Option<f64>)> {
    experiments::scale::SCALE_CLIENTS
        .iter()
        .map(|&clients| {
            eprintln!("udpbench: scale ladder, {clients} clients...");
            let mut best: Option<(f64, f64)> = None;
            for _ in 0..2 {
                let t = Instant::now();
                let r = run_experiment(experiments::scale::scale_cfg(clients));
                let wall_ms = t.elapsed().as_secs_f64() * 1e3;
                assert!(
                    r.scale.is_some() && r.events_executed > 0,
                    "scale run produced no events"
                );
                let eps = r.events_executed as f64 / (wall_ms / 1e3);
                if best.is_none_or(|(_, b)| eps > b) {
                    best = Some((wall_ms, eps));
                }
            }
            let (wall_ms, eps) = best.expect("two laps ran");
            let rss = bench::peak_rss_bytes().map(|b| b as f64 / (1024.0 * 1024.0));
            (format!("scale_{clients}"), wall_ms, eps, rss)
        })
        .collect()
}

fn render_json(udp: &[(String, f64, f64)], scale: &[(String, f64, f64, Option<f64>)]) -> String {
    let cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"host_cpus\": {cpus},");
    let _ = writeln!(out, "  \"batch_available\": {},", batch::batch_available());
    for (name, secs, pps) in udp {
        let _ = writeln!(
            out,
            "  \"{name}\": {{\"wall_ms\": {:.2}, \"events_per_sec\": {pps:.2}}},",
            secs * 1e3,
        );
    }
    for (i, (name, wall_ms, eps, rss)) in scale.iter().enumerate() {
        let comma = if i + 1 < scale.len() { "," } else { "" };
        let rss = match rss {
            Some(mb) => format!("{mb:.1}"),
            None => "null".into(),
        };
        let _ = writeln!(
            out,
            "  \"{name}\": {{\"wall_ms\": {wall_ms:.2}, \
             \"events_per_sec\": {eps:.2}, \"peak_rss_mb\": {rss}}}{comma}"
        );
    }
    out.push_str("}\n");
    out
}

/// Same line-scan parser the perfbench gates use: the file is
/// machine-written, one bench object per line.
fn read_recorded(json: &str, bench: &str, field: &str) -> Option<f64> {
    let line = json.lines().find(|l| l.contains(&format!("\"{bench}\"")))?;
    let at = line.find(&format!("\"{field}\""))?;
    let rest = &line[at..];
    let colon = rest.find(':')?;
    let num: String = rest[colon + 1..]
        .trim_start()
        .chars()
        .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-')
        .collect();
    num.parse().ok()
}

/// The verify-gate knobs: a quick re-measure may lose at most 4× pps
/// against the recorded figure (order-of-magnitude floor, like the
/// DES smoke), and batched must keep its ≥2× edge over single.
const SMOKE_SECS: f64 = 0.3;
const SMOKE_FLOOR_FRACTION: f64 = 0.25;
const BATCH_EDGE: f64 = 2.0;

fn smoke(path: &str) -> i32 {
    if !batch::batch_available() {
        println!("udpbench --smoke: no syscall batching on this host; runtime falls back to single-datagram I/O — skipping the pps gate");
        return 0;
    }
    let json = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("udpbench --smoke: cannot read {path}: {e}");
            return 1;
        }
    };
    let Some(recorded) = read_recorded(&json, "udp_batched_64", "events_per_sec") else {
        eprintln!("udpbench --smoke: no udp_batched_64.events_per_sec in {path}");
        return 1;
    };
    let single = run_point(Shape::Single, 64, SMOKE_SECS);
    let batched = run_point(Shape::Batched, 64, SMOKE_SECS);
    let floor = recorded * SMOKE_FLOOR_FRACTION;
    println!(
        "smoke udp 64B: single {single:.0} pps, batched {batched:.0} pps \
         ({:.1}x; recorded {recorded:.0}, floor {floor:.0})",
        batched / single.max(1.0)
    );
    if batched < floor {
        eprintln!("udpbench --smoke: batched pps below the recorded floor — data-plane regression");
        return 1;
    }
    if batched < single * BATCH_EDGE {
        eprintln!(
            "udpbench --smoke: batched recv lost its {BATCH_EDGE:.0}x edge over \
             single-datagram recv"
        );
        return 1;
    }
    0
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("--smoke") {
        let path = args.get(1).map(String::as_str).unwrap_or("BENCH_9.json");
        std::process::exit(smoke(path));
    }
    let out_path = args
        .first()
        .cloned()
        .unwrap_or_else(|| "BENCH_9.json".to_string());

    let secs = 0.4;
    let shapes = [Shape::Single, Shape::Sharded(SHARDS), Shape::Batched];
    let mut udp = Vec::new();
    for payload in PAYLOADS {
        for shape in shapes {
            let pps = run_point(shape, payload, secs);
            eprintln!(
                "udpbench: {:>7} {payload:>5} B: {pps:>10.0} pps",
                shape.name()
            );
            udp.push((format!("udp_{}_{payload}", shape.name()), secs, pps));
        }
    }
    // The headline number the ISSUE gates on.
    let single64 = udp.iter().find(|e| e.0 == "udp_single_64").expect("ran").2;
    let batched64 = udp.iter().find(|e| e.0 == "udp_batched_64").expect("ran").2;
    eprintln!(
        "udpbench: batched/single at 64 B = {:.1}x",
        batched64 / single64.max(1.0)
    );

    let scale = scale_entries();
    let json = render_json(&udp, &scale);
    print!("{json}");
    std::fs::write(&out_path, &json).expect("write benchmark results");
    eprintln!("udpbench: wrote {out_path}");
}
