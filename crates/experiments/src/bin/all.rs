//! Regenerate every figure and print all tables; with `--markdown` the
//! output is GitHub-markdown (used to refresh EXPERIMENTS.md), with
//! `--json` a machine-readable JSON array (for plotting).
type FigureFn = fn() -> Vec<experiments::Table>;

fn main() {
    let markdown = std::env::args().any(|a| a == "--markdown");
    let json = std::env::args().any(|a| a == "--json");
    let figures: Vec<(&str, FigureFn)> = vec![
        ("fig2", experiments::fig2_baseline_edge::run_figure),
        ("fig3", experiments::fig3_scalability::run_figure),
        ("fig4", experiments::fig4_cloud::run_figure),
        ("fig6", experiments::fig6_scatterpp_edge::run_figure),
        ("fig7", experiments::fig7_scaling::run_figure),
        ("fig8", experiments::fig8_sidecar::run_figure),
        ("fig9", experiments::fig9_network::run_figure),
        ("fig10", experiments::fig10_jitter::run_figure),
        ("fig11", experiments::fig11_hybrid::run_figure),
        ("fig12", experiments::fig12_timeline::run_figure),
        ("headline", experiments::headline::run_figure),
        ("ablation", experiments::ablation::run_figure),
        ("autoscale", experiments::autoscale_study::run_figure),
        ("fast_extractor", experiments::fast_extractor::run_figure),
        ("scheduler", experiments::scheduler_study::run_figure),
        ("migration", experiments::migration_study::run_figure),
        ("burst_loss", experiments::burst_loss::run_figure),
        (
            "latency_breakdown",
            experiments::latency_breakdown::run_figure,
        ),
    ];
    let mut json_tables = Vec::new();
    for (name, f) in figures {
        eprintln!("running {name}...");
        for table in f() {
            if json {
                json_tables.push(table);
            } else if markdown {
                println!("{}", table.render_markdown());
            } else {
                println!("{}", table.render());
            }
        }
    }
    if json {
        let rendered: Vec<String> = json_tables.iter().map(|t| t.render_json()).collect();
        println!("[{}]", rendered.join(",\n"));
    }
}
