//! Regenerate fig3 of the paper. See `experiments::fig3_scalability`.
fn main() {
    for table in experiments::fig3_scalability::run_figure() {
        println!("{}", table.render());
    }
}
