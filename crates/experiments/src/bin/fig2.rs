//! Regenerate fig2 of the paper. See `experiments::fig2_baseline_edge`.
fn main() {
    for table in experiments::fig2_baseline_edge::run_figure() {
        println!("{}", table.render());
    }
}
