fn main() {
    experiments::wire_study::main();
}
