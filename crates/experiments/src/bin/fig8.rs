//! Regenerate fig8 of the paper. See `experiments::fig8_sidecar`.
fn main() {
    for table in experiments::fig8_sidecar::run_figure() {
        println!("{}", table.render());
    }
}
