//! Extension study: see `experiments::autoscale_study`.
fn main() {
    for table in experiments::autoscale_study::run_figure() {
        println!("{}", table.render());
    }
}
