//! Extension study: see `experiments::ablation`.
fn main() {
    for table in experiments::ablation::run_figure() {
        println!("{}", table.render());
    }
}
