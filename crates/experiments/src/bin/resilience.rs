fn main() {
    experiments::resilience_study::main();
}
