//! Extension study: see `experiments::fast_extractor`.
fn main() {
    for table in experiments::fast_extractor::run_figure() {
        println!("{}", table.render());
    }
}
