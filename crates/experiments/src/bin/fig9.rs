//! Regenerate fig9 of the paper. See `experiments::fig9_network`.
fn main() {
    for table in experiments::fig9_network::run_figure() {
        println!("{}", table.render());
    }
}
