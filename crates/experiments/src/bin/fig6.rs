//! Regenerate fig6 of the paper. See `experiments::fig6_scatterpp_edge`.
fn main() {
    for table in experiments::fig6_scatterpp_edge::run_figure() {
        println!("{}", table.render());
    }
}
