//! Extension study: see `experiments::migration_study`.
fn main() {
    for table in experiments::migration_study::run_figure() {
        println!("{}", table.render());
    }
}
