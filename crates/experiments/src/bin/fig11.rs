//! Regenerate fig11 of the paper. See `experiments::fig11_hybrid`.
fn main() {
    for table in experiments::fig11_hybrid::run_figure() {
        println!("{}", table.render());
    }
}
