fn main() {
    experiments::chaos_study::main();
}
