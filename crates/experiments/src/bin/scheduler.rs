//! Extension study: see `experiments::scheduler_study`.
fn main() {
    for table in experiments::scheduler_study::run_figure() {
        println!("{}", table.render());
    }
}
