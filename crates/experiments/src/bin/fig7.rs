//! Regenerate fig7 of the paper. See `experiments::fig7_scaling`.
fn main() {
    for table in experiments::fig7_scaling::run_figure() {
        println!("{}", table.render());
    }
}
