//! Regenerate fig4 of the paper. See `experiments::fig4_cloud`.
fn main() {
    for table in experiments::fig4_cloud::run_figure() {
        println!("{}", table.render());
    }
}
