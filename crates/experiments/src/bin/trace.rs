fn main() {
    experiments::trace_study::main();
}
