//! Extension study: see `experiments::burst_loss`.
fn main() {
    for table in experiments::burst_loss::run_figure() {
        println!("{}", table.render());
    }
}
