//! Regenerate fig10 of the paper. See `experiments::fig10_jitter`.
fn main() {
    for table in experiments::fig10_jitter::run_figure() {
        println!("{}", table.render());
    }
}
