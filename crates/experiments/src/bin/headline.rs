//! Regenerate headline of the paper. See `experiments::headline`.
fn main() {
    for table in experiments::headline::run_figure() {
        println!("{}", table.render());
    }
}
