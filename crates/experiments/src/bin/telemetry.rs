fn main() {
    experiments::telemetry_study::main();
}
