//! Live-telemetry study (`--bin telemetry`): run scAtteR vs scAtteR++
//! under load with the metrics plane attached, print the live per-service
//! view and the SLO burn-rate log, and *reconcile* the live telemetry
//! against the simulation's post-hoc [`RunReport`] accounting — the
//! sim-vs-report drift table. Counters must agree exactly (they increment
//! at the same program points); histogram-derived latencies must agree
//! within 1% (the log-linear buckets' guarantee). The same gate runs the
//! real UDP runtime with a registry attached and reconciles the scrape
//! against the deployment's `SvcStats` counters.
//!
//! Artifacts: `results/telemetry_{scatter,scatterpp}.prom` (final DES
//! scrapes), `results/telemetry_runtime.prom` (runtime scrape), and
//! `results/telemetry_tables.json`.

use std::time::Duration;

use scatter::config::{placements, RunConfig};
use scatter::obs::{PLANE, RT_PLANE};
use scatter::runtime::deploy::{LocalDeployment, RuntimeOptions};
use scatter::{DesTelemetry, Mode, RunReport, ServiceKind, SERVICE_KINDS};
use simcore::SimDuration;
use telemetry::{HistSnapshot, Labels, Registry, SloEventKind, Snapshot};

use crate::common::{run_secs, SEED};
use crate::table::{f1, f2, pct, Table};

/// One telemetered experiment point: the standard 4-client C1 deployment
/// in either mode. No warmup — the registry sees every frame the report
/// sees, so the two views cover identical populations.
pub struct ModePoint {
    pub mode: Mode,
    pub report: RunReport,
    pub tel: DesTelemetry,
    /// Final registry scrape, taken after the run ended.
    pub snap: Snapshot,
}

pub fn telemetered_run(mode: Mode, clients: usize) -> ModePoint {
    let registry = Registry::new();
    let cfg = RunConfig::new(mode, placements::c1(), clients)
        .with_duration(SimDuration::from_secs(run_secs()))
        .with_seed(SEED);
    let (report, tel) = scatter::run_experiment_telemetered(cfg, registry.clone());
    ModePoint {
        mode,
        report,
        tel,
        snap: registry.snapshot(),
    }
}

fn mode_label(mode: Mode) -> &'static str {
    match mode {
        Mode::Scatter => "scAtteR",
        Mode::ScatterPP => "scAtteR++",
        Mode::StatelessOnly => "stateless-only",
        Mode::SidecarOnly => "sidecar-only",
    }
}

/// One drift check: the same quantity seen by the report and the live
/// registry. `exact` rows are counters sharing their increment sites with
/// the report's accounting; inexact rows go through the log-linear
/// histogram and must agree within 1%.
pub struct DriftRow {
    pub label: String,
    pub report: f64,
    pub live: f64,
    pub exact: bool,
}

impl DriftRow {
    /// Relative disagreement, with a 0.05 ms floor so near-zero
    /// components don't blow up the ratio.
    pub fn rel_err(&self) -> f64 {
        let scale = self.report.abs().max(self.live.abs()).max(0.05);
        (self.report - self.live).abs() / scale
    }

    pub fn ok(&self) -> bool {
        if self.exact {
            self.report == self.live
        } else {
            self.rel_err() <= 0.01
        }
    }
}

fn des_labels(kind: ServiceKind) -> impl Fn(&Labels) -> bool {
    move |l: &Labels| l.plane == Some(PLANE) && l.service == Some(kind.name())
}

fn e2e_hist(snap: &Snapshot) -> HistSnapshot {
    snap.histogram("scatter_e2e_latency_ms", &Labels::EMPTY.with_plane(PLANE))
        .cloned()
        .unwrap_or_else(HistSnapshot::empty_latency_ms)
}

/// The drift checks for one DES run.
pub fn drift_rows(r: &RunReport, snap: &Snapshot) -> Vec<DriftRow> {
    let mut rows = Vec::new();
    let live_e2e = e2e_hist(snap);
    rows.push(DriftRow {
        label: "frames completed".into(),
        report: r.e2e_ms.len() as f64,
        live: live_e2e.count() as f64,
        exact: true,
    });
    rows.push(DriftRow {
        label: "e2e mean ms".into(),
        report: r.e2e_mean_ms(),
        live: live_e2e.mean(),
        exact: false,
    });
    let mut e2e = r.e2e_ms.clone();
    rows.push(DriftRow {
        label: "e2e p95 ms".into(),
        report: e2e.p95(),
        live: live_e2e.p95(),
        exact: false,
    });
    for kind in SERVICE_KINDS {
        let processed: u64 = r
            .services
            .iter()
            .filter(|s| s.kind == kind)
            .map(|s| s.processed)
            .sum();
        rows.push(DriftRow {
            label: format!("{} processed", kind.name()),
            report: processed as f64,
            live: snap.counter_sum("scatter_service_processed_total", des_labels(kind)) as f64,
            exact: true,
        });
        let drops: u64 = r
            .services
            .iter()
            .filter(|s| s.kind == kind)
            .map(|s| s.drops.total())
            .sum();
        rows.push(DriftRow {
            label: format!("{} drops", kind.name()),
            report: drops as f64,
            live: snap.counter_sum("scatter_drops_total", des_labels(kind)) as f64,
            exact: true,
        });
    }
    let (fetch_served, fetch_dropped) = r
        .services
        .iter()
        .filter(|s| s.kind == ServiceKind::Sift)
        .fold((0u64, 0u64), |(a, b), s| {
            (a + s.fetch_served, b + s.fetch_dropped)
        });
    rows.push(DriftRow {
        label: "sift fetches served".into(),
        report: fetch_served as f64,
        live: snap.counter_sum("scatter_fetch_served_total", des_labels(ServiceKind::Sift)) as f64,
        exact: true,
    });
    rows.push(DriftRow {
        label: "sift fetches dropped".into(),
        report: fetch_dropped as f64,
        live: snap.counter_sum("scatter_fetch_dropped_total", des_labels(ServiceKind::Sift)) as f64,
        exact: true,
    });
    rows
}

/// The two telemetered DES runs this study is built on (fanned out on
/// the shared experiment pool).
fn runs() -> Vec<ModePoint> {
    let modes = [Mode::Scatter, Mode::ScatterPP];
    crate::common::par_map(&modes, |mode| telemetered_run(*mode, 4))
}

fn live_table(points: &[ModePoint]) -> Table {
    let mut t = Table::new(
        "Live telemetry: final scrape per service (4 clients, C1)",
        &[
            "deployment",
            "service",
            "ingress",
            "processed",
            "drops",
            "lat p50 ms",
            "lat p95 ms",
        ],
    );
    for p in points {
        for kind in SERVICE_KINDS {
            let ingress = p
                .snap
                .counter_sum("scatter_service_ingress_total", des_labels(kind));
            let processed = p
                .snap
                .counter_sum("scatter_service_processed_total", des_labels(kind));
            let drops = p.snap.counter_sum("scatter_drops_total", des_labels(kind));
            let lat = p
                .snap
                .histogram_merged("scatter_service_latency_ms", des_labels(kind))
                .unwrap_or_else(HistSnapshot::empty_latency_ms);
            t.row(vec![
                mode_label(p.mode).to_string(),
                kind.name().to_string(),
                ingress.to_string(),
                processed.to_string(),
                drops.to_string(),
                f2(lat.median()),
                f2(lat.p95()),
            ]);
        }
    }
    t.note("every number is read from the lock-free registry, not the report;");
    t.note("drops sum the per-reason series (busy-ingress/threshold-filter/stale-fetch/crash)");
    t
}

fn slo_table(points: &[ModePoint]) -> Table {
    let mut t = Table::new(
        "SLO: 100 ms objective, 95% target, multi-window burn rate (30 s / 5 s)",
        &[
            "deployment",
            "observed",
            "breach frac",
            "roll p50 ms",
            "roll p95 ms",
            "roll p99 ms",
            "alerts",
            "clears",
            "first alert s",
        ],
    );
    for p in points {
        let alerts = p
            .tel
            .slo_events
            .iter()
            .filter(|e| matches!(e.kind, SloEventKind::BurnRateAlert { .. }))
            .count();
        let clears = p.tel.slo_events.len() - alerts;
        let first_alert = p
            .tel
            .slo_events
            .iter()
            .find(|e| matches!(e.kind, SloEventKind::BurnRateAlert { .. }))
            .map(|e| f1(e.at_s))
            .unwrap_or_else(|| "-".to_string());
        let q = |v: Option<f64>| v.map(f1).unwrap_or_else(|| "-".to_string());
        t.row(vec![
            mode_label(p.mode).to_string(),
            p.tel.slo.observations().to_string(),
            pct(p.tel.slo.lifetime_breach_fraction()),
            q(p.tel.slo.rolling_p50()),
            q(p.tel.slo.rolling_p95()),
            q(p.tel.slo.rolling_p99()),
            alerts.to_string(),
            clears.to_string(),
            first_alert,
        ]);
    }
    t.note("a dropped frame counts as a breach; rolling quantiles cover the last 30 s");
    t.note("alert = both windows burning ≥2× the sustainable error-budget rate");
    t
}

fn window_table(points: &[ModePoint]) -> Table {
    let mut t = Table::new(
        "Windowed scrapes: completion rate from Snapshot::delta between 5 s windows",
        &[
            "deployment",
            "windows",
            "first win fps",
            "last win fps",
            "last win e2e p95 ms",
            "bytes on wire",
        ],
    );
    for p in points {
        let wins = &p.tel.window_snapshots;
        let plane = Labels::EMPTY.with_plane(PLANE);
        let rate = |earlier: &Snapshot, later: &Snapshot, secs: f64| {
            let d = Snapshot::delta(earlier, later);
            d.counter("scatter_frames_completed_total", &plane) as f64 / secs
        };
        let (first_fps, last_fps, last_p95) = match wins.len() {
            0 => (0.0, 0.0, 0.0),
            _ => {
                let empty = Registry::new().snapshot();
                let (t0, ref s0) = wins[0];
                let first = rate(&empty, s0, t0.max(1e-9));
                let (last_fps, last_p95) = if wins.len() >= 2 {
                    let (ta, ref sa) = wins[wins.len() - 2];
                    let (tb, ref sb) = wins[wins.len() - 1];
                    let d = Snapshot::delta(sa, sb);
                    let h = d
                        .histogram("scatter_e2e_latency_ms", &plane)
                        .cloned()
                        .unwrap_or_else(HistSnapshot::empty_latency_ms);
                    (rate(sa, sb, (tb - ta).max(1e-9)), h.p95())
                } else {
                    (first, e2e_hist(s0).p95())
                };
                (first, last_fps, last_p95)
            }
        };
        t.row(vec![
            mode_label(p.mode).to_string(),
            wins.len().to_string(),
            f1(first_fps),
            f1(last_fps),
            f1(last_p95),
            p.report.bytes_on_wire.to_string(),
        ]);
    }
    t.note("the DES dumps one full scrape per 5 simulated seconds; deltas between");
    t.note("consecutive scrapes recover per-window rates without any extra state");
    t
}

fn drift_table(points: &[ModePoint]) -> Table {
    let mut t = Table::new(
        "Drift reconciliation: live registry vs post-hoc RunReport",
        &["deployment", "quantity", "report", "live", "check", "ok"],
    );
    for p in points {
        for row in drift_rows(&p.report, &p.snap) {
            t.row(vec![
                mode_label(p.mode).to_string(),
                row.label.clone(),
                f2(row.report),
                f2(row.live),
                if row.exact {
                    "exact".to_string()
                } else {
                    format!("{} (≤1%)", pct(row.rel_err()))
                },
                if row.ok() { "yes" } else { "NO" }.to_string(),
            ]);
        }
    }
    t.note("counters share their increment sites with the report's accounting, so they");
    t.note("must agree exactly; histogram quantiles carry ≤0.4% log-linear bucket error");
    t
}

/// Runtime-plane reconciliation: run the real UDP pipeline with a
/// registry attached, scrape it, and compare against `SvcStats`.
pub struct RuntimePoint {
    pub rows: Vec<DriftRow>,
    /// Final scrape (Prometheus text).
    pub scrape: String,
    /// A mid-run scrape parsed successfully.
    pub live_scrape_ok: bool,
}

pub fn runtime_point(frames: u32) -> RuntimePoint {
    let registry = Registry::new();
    let dep = LocalDeployment::start(RuntimeOptions {
        frames,
        fps: 8.0,
        threshold_ms: 250.0, // keep the staleness-filter path live
        drain: Duration::from_millis(1200),
        registry: Some(registry.clone()),
        ..Default::default()
    });
    let client_report = dep.run_client();
    let live = dep.scrape().expect("registry attached");
    let live_scrape_ok = telemetry::prom::parse(&live).is_ok();
    let (_log, counts) = dep.shutdown_with_counts();
    let snap = registry.snapshot();
    let rt = |kind: ServiceKind| {
        move |l: &Labels| l.plane == Some(RT_PLANE) && l.service == Some(kind.name())
    };
    let mut rows = Vec::new();
    for (kind, received, processed, dropped_stale) in counts {
        rows.push(DriftRow {
            label: format!("{} received", kind.name()),
            report: received as f64,
            live: snap.counter_sum("scatter_service_ingress_total", rt(kind)) as f64,
            exact: true,
        });
        rows.push(DriftRow {
            label: format!("{} processed", kind.name()),
            report: processed as f64,
            live: snap.counter_sum("scatter_service_processed_total", rt(kind)) as f64,
            exact: true,
        });
        rows.push(DriftRow {
            label: format!("{} stale drops", kind.name()),
            report: dropped_stale as f64,
            live: snap.counter_sum("scatter_drops_total", move |l| {
                rt(kind)(l) && l.reason == Some("threshold-filter")
            }) as f64,
            exact: true,
        });
    }
    let e2e = snap
        .histogram(
            "scatter_e2e_latency_ms",
            &Labels::EMPTY.with_plane(RT_PLANE),
        )
        .cloned()
        .unwrap_or_else(HistSnapshot::empty_latency_ms);
    rows.push(DriftRow {
        label: "frames completed".into(),
        report: client_report.completed as f64,
        live: e2e.count() as f64,
        exact: true,
    });
    RuntimePoint {
        rows,
        scrape: telemetry::prom::encode(&snap),
        live_scrape_ok,
    }
}

fn runtime_table(rt: &RuntimePoint) -> Table {
    let mut t = Table::new(
        "Runtime plane: post-shutdown scrape vs SvcStats (real loopback UDP)",
        &["quantity", "stats", "scrape", "ok"],
    );
    for row in &t_rows(rt) {
        t.row(row.clone());
    }
    t.note("counters are read after the service threads joined, so agreement is exact;");
    t.note(if rt.live_scrape_ok {
        "the mid-run scrape parsed as valid Prometheus text"
    } else {
        "WARNING: the mid-run scrape failed to parse"
    });
    t
}

fn t_rows(rt: &RuntimePoint) -> Vec<Vec<String>> {
    rt.rows
        .iter()
        .map(|row| {
            vec![
                row.label.clone(),
                format!("{:.0}", row.report),
                format!("{:.0}", row.live),
                if row.ok() { "yes" } else { "NO" }.to_string(),
            ]
        })
        .collect()
}

/// Everything the study produced, plus the overall gate verdict.
pub struct Study {
    pub points: Vec<ModePoint>,
    pub runtime: RuntimePoint,
    pub tables: Vec<Table>,
}

impl Study {
    pub fn ok(&self) -> bool {
        self.points
            .iter()
            .all(|p| drift_rows(&p.report, &p.snap).iter().all(|r| r.ok()))
            && self.runtime.rows.iter().all(|r| r.ok())
            && self.runtime.live_scrape_ok
    }
}

pub fn run_study(runtime_frames: u32) -> Study {
    let points = runs();
    let runtime = runtime_point(runtime_frames);
    let tables = vec![
        live_table(&points),
        slo_table(&points),
        window_table(&points),
        drift_table(&points),
        runtime_table(&runtime),
    ];
    Study {
        points,
        runtime,
        tables,
    }
}

pub fn run_figure() -> Vec<Table> {
    run_study(6).tables
}

/// `--bin telemetry` entry point. `--smoke` shortens the runs (12 s DES,
/// 4 runtime frames) for the verify gate; `--json` renders the tables as
/// a JSON array on stdout (warnings stay on stderr). Exits 1 when any
/// reconciliation check fails — drift between the live metrics plane and
/// the report accounting is a bug, not noise.
pub fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let json = std::env::args().any(|a| a == "--json");
    if smoke && std::env::var("SCATTER_EXP_SECS").is_err() {
        std::env::set_var("SCATTER_EXP_SECS", "12");
    }
    let study = run_study(if smoke { 4 } else { 8 });

    let dir = std::path::Path::new("results");
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("cannot create {}: {e}", dir.display());
    }
    for p in &study.points {
        let name = match p.mode {
            Mode::ScatterPP => "telemetry_scatterpp.prom",
            _ => "telemetry_scatter.prom",
        };
        let path = dir.join(name);
        match std::fs::write(&path, telemetry::prom::encode(&p.snap)) {
            Ok(()) => eprintln!("wrote {}", path.display()),
            Err(e) => eprintln!("cannot write {}: {e}", path.display()),
        }
    }
    let path = dir.join("telemetry_runtime.prom");
    match std::fs::write(&path, &study.runtime.scrape) {
        Ok(()) => eprintln!("wrote {}", path.display()),
        Err(e) => eprintln!("cannot write {}: {e}", path.display()),
    }
    let rendered: Vec<String> = study.tables.iter().map(|t| t.render_json()).collect();
    let doc = format!("[{}]", rendered.join(",\n"));
    let path = dir.join("telemetry_tables.json");
    if let Err(e) = std::fs::write(&path, &doc) {
        eprintln!("cannot write {}: {e}", path.display());
    } else {
        eprintln!("wrote {}", path.display());
    }

    if json {
        println!("{doc}");
    } else {
        for t in &study.tables {
            println!("{}", t.render());
        }
    }
    if !study.ok() {
        eprintln!("telemetry reconciliation FAILED (see the drift tables above)");
        std::process::exit(1);
    }
    eprintln!("telemetry reconciliation OK");
}

#[cfg(test)]
mod tests {
    use super::*;

    fn short() {
        std::env::set_var("SCATTER_EXP_SECS", "12");
    }

    #[test]
    fn des_drift_is_within_bounds_in_both_modes() {
        short();
        for mode in [Mode::Scatter, Mode::ScatterPP] {
            let p = telemetered_run(mode, 4);
            for row in drift_rows(&p.report, &p.snap) {
                assert!(
                    row.ok(),
                    "{mode:?} {}: report {} vs live {} ({}%)",
                    row.label,
                    row.report,
                    row.live,
                    row.rel_err() * 100.0
                );
            }
        }
    }

    #[test]
    fn telemetered_run_matches_untelemetered_report() {
        short();
        let p = telemetered_run(Mode::ScatterPP, 3);
        let plain = scatter::run_experiment(
            RunConfig::new(Mode::ScatterPP, placements::c1(), 3)
                .with_duration(SimDuration::from_secs(run_secs()))
                .with_seed(SEED),
        );
        assert_eq!(
            p.report.summary_line(),
            plain.summary_line(),
            "telemetry must be a pure observer: attaching a registry cannot change the run"
        );
        assert_eq!(p.report.events_executed, plain.events_executed);
    }

    #[test]
    fn overloaded_scatter_trips_the_burn_rate_alert() {
        short();
        // 10 clients on C1 drop most frames: the burn rate must trip.
        let p = telemetered_run(Mode::Scatter, 10);
        assert!(
            p.tel
                .slo_events
                .iter()
                .any(|e| matches!(e.kind, SloEventKind::BurnRateAlert { .. })),
            "no alert despite success rate {:.0}%",
            p.report.success_rate * 100.0
        );
        assert!(p.tel.slo.lifetime_breach_fraction() > 0.05);
    }

    #[test]
    fn windowed_scrapes_cover_the_run() {
        short();
        let p = telemetered_run(Mode::ScatterPP, 2);
        // 12 s run, 5 s windows -> at least 2 scrapes.
        assert!(
            p.tel.window_snapshots.len() >= 2,
            "got {} windows",
            p.tel.window_snapshots.len()
        );
        // Windows are cumulative: later scrapes never lose counts.
        let plane = Labels::EMPTY.with_plane(PLANE);
        let counts: Vec<u64> = p
            .tel
            .window_snapshots
            .iter()
            .map(|(_, s)| s.counter("scatter_frames_completed_total", &plane))
            .collect();
        assert!(counts.windows(2).all(|w| w[0] <= w[1]), "{counts:?}");
    }

    #[test]
    fn runtime_scrape_reconciles_exactly() {
        let rt = runtime_point(4);
        assert!(rt.live_scrape_ok, "mid-run scrape must parse");
        for row in &rt.rows {
            assert!(
                row.ok(),
                "{}: stats {} vs scrape {}",
                row.label,
                row.report,
                row.live
            );
        }
        telemetry::prom::parse(&rt.scrape).expect("final scrape parses");
    }
}
