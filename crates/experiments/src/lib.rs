//! # experiments — regenerating every figure of the paper
//!
//! Each module reproduces one evaluation artifact (the paper has no
//! numbered tables; its evaluation is figs. 2–4 and 6–12 plus headline
//! claims in the text). A module builds the exact workload and placement
//! sweep of its figure, runs the simulation, and renders a table whose
//! rows are the figure's series — alongside the paper's reported anchor
//! values so the shape comparison is one `cargo run` away:
//!
//! ```text
//! cargo run --release -p experiments --bin fig2      # one figure
//! cargo run --release -p experiments --bin all       # everything (also
//!                                                    # regenerates EXPERIMENTS.md content)
//! ```
//!
//! Run length defaults to 60 simulated seconds per point (the paper runs
//! five minutes); override with `SCATTER_EXP_SECS`.

pub mod ablation;
pub mod autoscale_study;
pub mod burst_loss;
pub mod chaos_study;
pub mod common;
pub mod fast_extractor;
pub mod fig10_jitter;
pub mod fig11_hybrid;
pub mod fig12_timeline;
pub mod fig2_baseline_edge;
pub mod fig3_scalability;
pub mod fig4_cloud;
pub mod fig6_scatterpp_edge;
pub mod fig7_scaling;
pub mod fig8_sidecar;
pub mod fig9_network;
pub mod headline;
pub mod latency_breakdown;
pub mod migration_study;
pub mod observatory_study;
pub mod resilience_study;
pub mod scale;
pub mod scheduler_study;
pub mod table;
pub mod telemetry_study;
pub mod trace_study;
pub mod wire_study;

pub use table::Table;
