//! Minimal aligned-table rendering for experiment output, plus a
//! markdown form used to regenerate EXPERIMENTS.md.

use trace::json::escape;

/// A rendered experiment table: header row + data rows of strings.
#[derive(Debug, Clone)]
pub struct Table {
    pub title: String,
    pub columns: Vec<String>,
    pub rows: Vec<Vec<String>>,
    /// Paper-anchor / interpretation notes printed under the table.
    pub notes: Vec<String>,
}

impl Table {
    pub fn new(title: &str, columns: &[&str]) -> Self {
        Table {
            title: title.to_string(),
            columns: columns.iter().map(|c| c.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.columns.len(), "row width mismatch");
        self.rows.push(cells);
    }

    pub fn note(&mut self, s: impl Into<String>) {
        self.notes.push(s.into());
    }

    fn widths(&self) -> Vec<usize> {
        let mut w: Vec<usize> = self.columns.iter().map(|c| c.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                w[i] = w[i].max(cell.len());
            }
        }
        w
    }

    /// Fixed-width console rendering.
    pub fn render(&self) -> String {
        let w = self.widths();
        let mut out = format!("== {} ==\n", self.title);
        let hdr: Vec<String> = self
            .columns
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>width$}", c, width = w[i]))
            .collect();
        out += &hdr.join("  ");
        out += "\n";
        out += &"-".repeat(hdr.join("  ").len());
        out += "\n";
        for row in &self.rows {
            let line: Vec<String> = row
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>width$}", c, width = w[i]))
                .collect();
            out += &line.join("  ");
            out += "\n";
        }
        for n in &self.notes {
            out += &format!("  * {n}\n");
        }
        out
    }

    /// JSON rendering (machine-readable results for plotting). Written
    /// by hand — the workspace builds offline, without serde_json — in
    /// the same pretty-printed shape the serde derive used to produce.
    pub fn render_json(&self) -> String {
        fn string_array(items: &[String], indent: &str) -> String {
            if items.is_empty() {
                return "[]".to_string();
            }
            let inner: Vec<String> = items
                .iter()
                .map(|s| format!("{indent}  \"{}\"", escape(s)))
                .collect();
            format!("[\n{}\n{indent}]", inner.join(",\n"))
        }
        let rows = if self.rows.is_empty() {
            "[]".to_string()
        } else {
            let inner: Vec<String> = self
                .rows
                .iter()
                .map(|r| format!("    {}", string_array(r, "    ")))
                .collect();
            format!("[\n{}\n  ]", inner.join(",\n"))
        };
        format!(
            "{{\n  \"title\": \"{}\",\n  \"columns\": {},\n  \"rows\": {},\n  \"notes\": {}\n}}",
            escape(&self.title),
            string_array(&self.columns, "  "),
            rows,
            string_array(&self.notes, "  "),
        )
    }

    /// GitHub-markdown rendering (for EXPERIMENTS.md).
    pub fn render_markdown(&self) -> String {
        let mut out = format!("### {}\n\n", self.title);
        out += &format!("| {} |\n", self.columns.join(" | "));
        out += &format!(
            "|{}|\n",
            self.columns
                .iter()
                .map(|_| "---")
                .collect::<Vec<_>>()
                .join("|")
        );
        for row in &self.rows {
            out += &format!("| {} |\n", row.join(" | "));
        }
        if !self.notes.is_empty() {
            out += "\n";
            for n in &self.notes {
                out += &format!("- {n}\n");
            }
        }
        out += "\n";
        out
    }
}

/// Format a float with one decimal.
pub fn f1(x: f64) -> String {
    format!("{x:.1}")
}

/// Format a float with two decimals.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Format a ratio as a percentage with no decimals.
pub fn pct(x: f64) -> String {
    format!("{:.0}%", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new("demo", &["cfg", "fps"]);
        t.row(vec!["C1".into(), "25.0".into()]);
        t.note("paper: ≥25 FPS");
        t
    }

    #[test]
    fn render_contains_all_cells() {
        let r = sample().render();
        assert!(r.contains("demo"));
        assert!(r.contains("cfg"));
        assert!(r.contains("C1"));
        assert!(r.contains("25.0"));
        assert!(r.contains("paper: ≥25 FPS"));
    }

    #[test]
    fn markdown_is_table_shaped() {
        let md = sample().render_markdown();
        assert!(md.contains("| cfg | fps |"));
        assert!(md.contains("|---|---|"));
        assert!(md.contains("| C1 | 25.0 |"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_checked() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn json_round_trips_structure() {
        let j = sample().render_json();
        assert!(j.contains("\"title\": \"demo\""));
        assert!(j.contains("\"columns\""));
        let v = trace::json::Value::parse(&j).expect("valid JSON");
        assert_eq!(
            v.get("rows")
                .unwrap()
                .idx(0)
                .unwrap()
                .idx(0)
                .unwrap()
                .as_str(),
            Some("C1")
        );
        assert_eq!(
            v.get("notes").unwrap().idx(0).unwrap().as_str(),
            Some("paper: ≥25 FPS")
        );
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(f1(2.4651), "2.5");
        assert_eq!(f2(2.4651), "2.47");
        assert_eq!(pct(0.643), "64%");
    }
}
