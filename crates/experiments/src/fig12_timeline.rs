//! Figure 12 (appendix A.2): sidecar analytics over experiment time —
//! per-service framerate and queue drop ratio on a single machine (E1)
//! as clients join one by one.
//!
//! Anchors: all services keep up until the third client joins; at
//! ≈90 FPS input the stages after `sift` show reduced framerate, with
//! `encoding` dropping almost 50 % from its queue; when `sift`'s drop
//! ratio peaks, `encoding` receives only ≈60 FPS.

use scatter::config::placements;
use scatter::SERVICE_KINDS;
use simcore::SimTime;

use crate::fig8_sidecar::run_stepped;
use crate::table::{f1, f2, Table};

pub fn run_figure() -> Vec<Table> {
    let clients = 4;
    let (r, step) = run_stepped(placements::c1(), clients);
    // Resample each service's ingress/drops into 8 equal time windows
    // (experiment-time percentage axis, like the figure).
    let windows = 8usize;
    let end = SimTime::from_secs(step * clients as u64);

    let cols: Vec<String> = std::iter::once("service".to_string())
        .chain((1..=windows).map(|i| format!("{}%", i * 100 / windows)))
        .collect();
    let col_refs: Vec<&str> = cols.iter().map(|s| s.as_str()).collect();

    let mut fps = Table::new(
        "Fig 12 (top): per-service ingress FPS over experiment time (client joins every step)",
        &col_refs,
    );
    let mut drops = Table::new(
        "Fig 12 (bottom): per-service drop ratio over experiment time",
        &col_refs,
    );
    for kind in SERVICE_KINDS {
        let (mut fps_row, mut drop_row) =
            (vec![kind.name().to_string()], vec![kind.name().to_string()]);
        for i in 0..windows {
            let ws = SimTime::from_nanos(end.as_nanos() * i as u64 / windows as u64);
            let we = SimTime::from_nanos(end.as_nanos() * (i as u64 + 1) / windows as u64);
            let (mut arrivals, mut d) = (0usize, 0usize);
            for svc in r.services.iter().filter(|s| s.kind == kind) {
                arrivals += svc.ingress.window_count(ws, we);
                d += svc.drops_over_time.window_count(ws, we);
            }
            let secs = (we.as_nanos() - ws.as_nanos()) as f64 / 1e9;
            fps_row.push(f1(arrivals as f64 / secs));
            drop_row.push(f2(if arrivals == 0 {
                0.0
            } else {
                d as f64 / arrivals as f64
            }));
        }
        fps.row(fps_row);
        drops.row(drop_row);
    }

    fps.note(
        "paper: services keep up until the 3rd client; later stages' FPS sags at 90 FPS input",
    );
    drops.note("paper: encoding's queue drops approach 0.5 once the 3rd client joins");
    vec![fps, drops]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_shape() {
        std::env::set_var("SCATTER_EXP_SECS", "60");
        let tables = run_figure();
        assert_eq!(tables[0].rows.len(), 5);
        assert_eq!(tables[0].rows[0].len(), 9);
    }
}
