//! Chaos study (`--bin chaos`): the same seeded fault schedule through
//! the DES *and* a live loopback-UDP deployment, with a hard agreement
//! gate on crash accounting.
//!
//! The schedule is **frame-indexed**, not wall-clock-indexed: "kill sift
//! half a frame-period before frame `a` is emitted, revive it exactly
//! `m` periods later". Each plane converts the schedule into its own
//! timebase (the DES clients emit on the paper's 30 FPS grid, the
//! runtime is paced slower so a 1-CPU box keeps lock-step), and as long
//! as the emission→sift delay stays under half a period, *exactly* the
//! frames `[a, a+m)` of every client arrive at a dead replica — in both
//! planes, by construction. That turns crash attribution into an exact
//! cross-plane invariant instead of a statistical comparison:
//!
//! 1. **Gate scenario** (lock-step, calm calibration): the DES trace and
//!    the runtime trace must report *identical* `Crash` drop counts,
//!    equal to `outage_frames × clients`, in both scAtteR and scAtteR++
//!    modes, with every frame attributed (no frame ends without a
//!    terminal). Any mismatch exits non-zero — this is the CI stage.
//! 2. **Survival scenario** (loaded, impaired): the paper's robustness
//!    claim. A mid-run sift crash under pipeline depth (the impairment
//!    shim adds 80 ms of sift→encoding transit plus bursty uplink loss)
//!    strands scAtteR's in-flight frames: their fetches hit the respawned
//!    replica's empty store and each burns a fetch deadline at matching,
//!    so scAtteR's recovery stretches far past the orchestrator's
//!    recovery delay, while scAtteR++'s frame-embedded state recovers
//!    within it. Tables show FPS collapse and drop forensics per plane.
//!
//! Artifacts: `results/chaos_tables.json`.

use std::time::Duration;

use scatter::client::FRAME_PERIOD;
use scatter::config::{placements, RunConfig};
use scatter::runtime::deploy::{run_local_traced, RuntimeOptions};
use scatter::runtime::impair::{Ep, ImpairmentProfile, LinkImpairment, LinkRule};
use scatter::runtime::stateful::StatefulOptions;
use scatter::{run_experiment_traced_with, CostModel, Mode, ServiceKind};
use simcore::SimDuration;
use trace::{Analysis, DropReason, FrameFate, TraceConfig, TraceLog};

use crate::table::{f1, Table};

/// One seed drives both planes (DES world seed, runtime scene/service
/// seed, and the impairment shim).
pub const CHAOS_SEED: u64 = 1107;

/// Runtime client pace for the lock-step gate: slow enough that one
/// frame fully completes (fetch round-trip included) inside a period on
/// a 1-CPU release build, fast enough to keep the stage short.
const GATE_RT_FPS: f64 = 8.0;

/// Runtime client pace for the loaded survival scenario.
const SURVIVAL_RT_FPS: f64 = 20.0;

/// A frame-indexed fault schedule, convertible to any plane's timebase.
#[derive(Debug, Clone, Copy)]
pub struct FaultSchedule {
    /// First frame index that must find the replica dead.
    pub kill_frame: u32,
    /// Outage length in frame periods; frames
    /// `[kill_frame, kill_frame + outage_frames)` arrive while down.
    pub outage_frames: u32,
}

impl FaultSchedule {
    /// `(kill_at, outage)` in a plane emitting one frame per `period`:
    /// the kill lands half a period *before* frame `kill_frame`'s
    /// emission and the outage lasts exactly `outage_frames` periods.
    /// Valid whenever the plane's emission→sift delay (plus sift's
    /// per-frame service time) stays under `period / 2` — then the
    /// outage boundary falls mid-gap on both edges and the crash-dropped
    /// frame set is exact.
    pub fn window(&self, period: Duration) -> (Duration, Duration) {
        let start = period * self.kill_frame - period / 2;
        (start, period * self.outage_frames)
    }

    /// The exact crash-drop count both planes must report.
    pub fn expected_crash_drops(&self, clients: u64) -> u64 {
        u64::from(self.outage_frames) * clients
    }
}

/// The DES plane's frame period as wall-clock time (30 FPS grid).
pub fn des_period() -> Duration {
    Duration::from_nanos(FRAME_PERIOD.as_nanos())
}

/// Low-noise DES calibration for the lock-step gate: deterministic-ish
/// service times, no emission jitter, no GPU/virtualization spikes —
/// every timing margin in [`FaultSchedule::window`]'s analysis holds
/// with millisecond headroom. The realistic default model stays in the
/// survival scenario, where exactness is not gated.
pub fn calm_cost() -> CostModel {
    CostModel {
        base_ms: [3.0, 4.0, 3.0, 2.0, 3.0],
        sigma: 0.02,
        fetch_service_ms: 1.0,
        emit_jitter_ms: 0.0,
        edge_spike_prob: 0.0,
        virt_spike_prob: 0.0,
        ..CostModel::default()
    }
}

fn mode_label(mode: Mode) -> &'static str {
    match mode {
        Mode::Scatter => "scAtteR",
        Mode::ScatterPP => "scAtteR++",
        Mode::StatelessOnly => "stateless-only",
        Mode::SidecarOnly => "sidecar-only",
    }
}

/// Audit a trace log: span invariants hold and no frame vanished
/// mid-run without a terminal. Frames still in flight when the log ends
/// are tolerated only inside the final `tail` window (the DES stops
/// mid-stream by design; the runtime's drain should leave none).
pub fn audit(log: &TraceLog, tail: Duration) -> Result<Analysis, String> {
    let a = Analysis::from_log(log);
    a.check_invariants()?;
    let horizon = a.end_ns.saturating_sub(tail.as_nanos() as u64);
    let stragglers = a
        .frames()
        .filter(|f| {
            matches!(f.fate.1, FrameFate::Dropped(DropReason::RunEnd))
                && f.emitted_ns.unwrap_or(0) < horizon
        })
        .count();
    if stragglers > 0 {
        return Err(format!(
            "{stragglers} frame(s) vanished mid-run without a terminal"
        ));
    }
    Ok(a)
}

fn crash_count(a: &Analysis) -> u64 {
    a.drop_reasons()
        .get(&DropReason::Crash)
        .copied()
        .unwrap_or(0) as u64
}

// ---------------------------------------------------------------------
// Gate scenario: exact DES-vs-real crash-drop agreement.
// ---------------------------------------------------------------------

pub struct GatePoint {
    pub mode: Mode,
    pub clients: u64,
    pub expected: u64,
    pub des_crash: u64,
    pub rt_crash: u64,
    pub des_audit: Result<(), String>,
    pub rt_audit: Result<(), String>,
}

impl GatePoint {
    pub fn ok(&self) -> bool {
        self.des_crash == self.expected
            && self.rt_crash == self.expected
            && self.des_audit.is_ok()
            && self.rt_audit.is_ok()
    }
}

/// The DES half of the gate: 30 FPS grid, calm calibration, clients
/// staggered by 6 ms so their identical emission grids never collide at
/// a drop-on-busy ingress (the stagger is well under half a period, so
/// the window analysis is unchanged).
pub fn des_gate_run(mode: Mode, clients: usize, sched: FaultSchedule) -> (Analysis, TraceLog) {
    let p = des_period();
    let (at, outage) = sched.window(p);
    let total = sched.kill_frame + 2 * sched.outage_frames + 6;
    let cfg = RunConfig::new(mode, placements::c1(), clients)
        .with_duration(SimDuration::from_secs_f64(
            f64::from(total) * p.as_secs_f64(),
        ))
        .with_warmup(SimDuration::ZERO)
        .with_seed(CHAOS_SEED)
        .with_stagger(SimDuration::from_millis(6))
        .with_failure(
            SimDuration::from_secs_f64(at.as_secs_f64()),
            ServiceKind::Sift,
            0,
        )
        .with_recovery(SimDuration::from_secs_f64(outage.as_secs_f64()))
        .with_trace(TraceConfig::default());
    let (_report, log) = run_experiment_traced_with(cfg, calm_cost());
    (Analysis::from_log(&log), log)
}

/// The runtime half of the gate: same schedule converted to the slower
/// loopback pace, pristine network, one kill of sift's replica.
fn rt_gate_run(mode: Mode, clients: u16, sched: FaultSchedule) -> (RuntimeReportLite, TraceLog) {
    let p = Duration::from_secs_f64(1.0 / GATE_RT_FPS);
    let (at, outage) = sched.window(p);
    let frames = sched.kill_frame + sched.outage_frames + 4;
    let (report, log) = run_local_traced(RuntimeOptions {
        clients,
        frames,
        fps: GATE_RT_FPS,
        stateful: mode == Mode::Scatter,
        seed: CHAOS_SEED,
        kills: vec![(at, ServiceKind::Sift, outage)],
        drain: Duration::from_millis(2000),
        ..Default::default()
    });
    (
        RuntimeReportLite {
            emitted: report.emitted,
            completed: report.completed,
            crash_drops: report.crash_drops,
            fetch_retransmits: report.fetch_retransmits,
        },
        log,
    )
}

/// The runtime fields the tables need (keeps the full report private to
/// the run helpers).
pub struct RuntimeReportLite {
    pub emitted: u32,
    pub completed: u32,
    pub crash_drops: u64,
    pub fetch_retransmits: u64,
}

pub fn gate_point(mode: Mode, sched: FaultSchedule) -> GatePoint {
    let clients = 2u64;
    let (des_a, des_log) = des_gate_run(mode, clients as usize, sched);
    let (rt_report, rt_log) = rt_gate_run(mode, clients as u16, sched);
    let rt_a = Analysis::from_log(&rt_log);
    let des_audit = audit(&des_log, Duration::from_millis(1500)).map(|_| ());
    let rt_audit = audit(&rt_log, Duration::ZERO).map(|_| ());
    // The runtime's counter plane and its trace plane must agree with
    // each other before we compare across planes.
    let rt_crash = crash_count(&rt_a);
    let rt_audit = rt_audit.and_then(|()| {
        if rt_report.crash_drops == rt_crash {
            Ok(())
        } else {
            Err(format!(
                "runtime counter/trace split: {} counted vs {} terminals",
                rt_report.crash_drops, rt_crash
            ))
        }
    });
    GatePoint {
        mode,
        clients,
        expected: sched.expected_crash_drops(clients),
        des_crash: crash_count(&des_a),
        rt_crash,
        des_audit,
        rt_audit,
    }
}

// ---------------------------------------------------------------------
// Survival scenario: the paper's fragility claim under load.
// ---------------------------------------------------------------------

pub struct SurvivalPoint {
    pub plane: &'static str,
    pub mode: Mode,
    pub emitted: usize,
    pub completed: usize,
    /// Completions/sec before the kill vs inside the fault window.
    pub baseline_fps: f64,
    pub fault_fps: f64,
    /// Restart → first completion of a frame emitted after the restart.
    pub recovery_ms: f64,
    /// Total datagram bytes offered at every send site (the wire
    /// subsystem's accounting; the DES counts simnet transmissions, the
    /// runtime counts socket sends).
    pub bytes_on_wire: u64,
    pub reasons: Vec<(DropReason, usize)>,
    pub audit: Result<(), String>,
}

fn fps_in(a: &Analysis, from_ns: u64, to_ns: u64) -> f64 {
    if to_ns <= from_ns {
        return 0.0;
    }
    let n = a
        .frames()
        .filter(|f| f.completed() && f.fate.0 >= from_ns && f.fate.0 < to_ns)
        .count();
    n as f64 / ((to_ns - from_ns) as f64 / 1e9)
}

fn recovery_ms(a: &Analysis, restart_ns: u64) -> f64 {
    a.frames()
        .filter(|f| f.completed() && f.emitted_ns.unwrap_or(0) >= restart_ns)
        .map(|f| (f.fate.0.saturating_sub(restart_ns)) as f64 / 1e6)
        .fold(f64::INFINITY, f64::min)
}

fn survival_point(
    plane: &'static str,
    mode: Mode,
    a: &Analysis,
    audit_res: Result<(), String>,
    kill_at: Duration,
    outage: Duration,
    bytes_on_wire: u64,
) -> SurvivalPoint {
    let kill_ns = kill_at.as_nanos() as u64;
    let restart_ns = kill_ns + outage.as_nanos() as u64;
    let fault_end_ns = restart_ns + outage.as_nanos() as u64;
    SurvivalPoint {
        plane,
        mode,
        emitted: a.emitted(),
        completed: a.completed(),
        baseline_fps: fps_in(
            a,
            kill_ns.saturating_sub(kill_ns.min(1_000_000_000)),
            kill_ns,
        ),
        fault_fps: fps_in(a, kill_ns, fault_end_ns),
        recovery_ms: recovery_ms(a, restart_ns),
        bytes_on_wire,
        reasons: a.drop_reasons().into_iter().collect(),
        audit: audit_res,
    }
}

/// The loaded runtime network: 80 ms of sift→encoding transit (pipeline
/// depth: several frames are always past sift) and 1 % bursty uplink
/// loss — both deterministic from [`CHAOS_SEED`].
pub fn survival_impair() -> ImpairmentProfile {
    ImpairmentProfile::new(CHAOS_SEED)
        .with_rule(LinkRule::between(
            Ep::Svc(ServiceKind::Sift),
            Ep::Svc(ServiceKind::Encoding),
            LinkImpairment::loss(0.0)
                .with_delay(Duration::from_millis(80), Duration::from_millis(10)),
        ))
        .with_rule(LinkRule::between(
            Ep::Client,
            Ep::Svc(ServiceKind::Primary),
            LinkImpairment::bursty(0.01, 4.0),
        ))
}

fn rt_survival_run(mode: Mode, sched: FaultSchedule) -> (SurvivalPoint, RuntimeReportLite) {
    let p = Duration::from_secs_f64(1.0 / SURVIVAL_RT_FPS);
    let (at, outage) = sched.window(p);
    let frames = sched.kill_frame + 2 * sched.outage_frames + 10;
    let drain = Duration::from_millis(3500);
    let (report, log) = run_local_traced(RuntimeOptions {
        clients: 2,
        frames,
        fps: SURVIVAL_RT_FPS,
        stateful: mode == Mode::Scatter,
        stateful_opts: StatefulOptions {
            fetch_timeout: Duration::from_millis(300),
            ..Default::default()
        },
        seed: CHAOS_SEED,
        impair: Some(survival_impair()),
        kills: vec![(at, ServiceKind::Sift, outage)],
        drain,
        ..Default::default()
    });
    let audit_res = audit(&log, drain).map(|_| ());
    let a = Analysis::from_log(&log);
    (
        survival_point(
            "runtime",
            mode,
            &a,
            audit_res,
            at,
            outage,
            report.bytes_on_wire,
        ),
        RuntimeReportLite {
            emitted: report.emitted,
            completed: report.completed,
            crash_drops: report.crash_drops,
            fetch_retransmits: report.fetch_retransmits,
        },
    )
}

fn des_survival_run(mode: Mode, sched: FaultSchedule) -> SurvivalPoint {
    let p = des_period();
    let (at, outage) = sched.window(p);
    let total = sched.kill_frame + 2 * sched.outage_frames + 30;
    let cfg = RunConfig::new(mode, placements::c1(), 2)
        .with_duration(SimDuration::from_secs_f64(
            f64::from(total) * p.as_secs_f64(),
        ))
        .with_warmup(SimDuration::ZERO)
        .with_seed(CHAOS_SEED)
        .with_netem(simnet::NetemProfile::new("chaos-ge", 2.0, 0.01).with_burst_loss(4.0))
        .with_failure(
            SimDuration::from_secs_f64(at.as_secs_f64()),
            ServiceKind::Sift,
            0,
        )
        .with_recovery(SimDuration::from_secs_f64(outage.as_secs_f64()))
        .with_trace(TraceConfig::default());
    let (report, log) = scatter::run_experiment_traced(cfg);
    let audit_res = audit(&log, Duration::from_millis(1500)).map(|_| ());
    let a = Analysis::from_log(&log);
    survival_point("DES", mode, &a, audit_res, at, outage, report.bytes_on_wire)
}

// ---------------------------------------------------------------------
// Study driver + tables.
// ---------------------------------------------------------------------

pub struct ChaosStudy {
    pub gates: Vec<GatePoint>,
    pub survival: Vec<SurvivalPoint>,
    /// Runtime survival recovery per mode, for the collapse gate.
    rt_recovery: Vec<(Mode, f64)>,
    /// Recovery delay of the survival scenario (runtime timebase), ms.
    rt_outage_ms: f64,
    pub tables: Vec<Table>,
}

impl ChaosStudy {
    /// Every hard condition the chaos stage enforces.
    pub fn failures(&self) -> Vec<String> {
        let mut out = Vec::new();
        for g in &self.gates {
            if g.des_crash != g.expected || g.rt_crash != g.expected {
                out.push(format!(
                    "{}: crash-drop disagreement (expected {}, DES {}, runtime {})",
                    mode_label(g.mode),
                    g.expected,
                    g.des_crash,
                    g.rt_crash
                ));
            }
            if let Err(e) = &g.des_audit {
                out.push(format!("{} DES audit: {e}", mode_label(g.mode)));
            }
            if let Err(e) = &g.rt_audit {
                out.push(format!("{} runtime audit: {e}", mode_label(g.mode)));
            }
        }
        for s in &self.survival {
            if let Err(e) = &s.audit {
                out.push(format!(
                    "survival {} {} audit: {e}",
                    s.plane,
                    mode_label(s.mode)
                ));
            }
        }
        let rec = |mode: Mode| {
            self.rt_recovery
                .iter()
                .find(|(m, _)| *m == mode)
                .map(|(_, r)| *r)
                .unwrap_or(f64::INFINITY)
        };
        let (pp, sc) = (rec(Mode::ScatterPP), rec(Mode::Scatter));
        // The paper's claim, made executable: frame-embedded state comes
        // back within the orchestrator's recovery delay; the stateful
        // dependency loop does not.
        if pp > self.rt_outage_ms {
            out.push(format!(
                "scAtteR++ runtime recovery {:.0} ms exceeds the recovery delay {:.0} ms",
                pp, self.rt_outage_ms
            ));
        }
        if sc <= pp {
            out.push(format!(
                "scAtteR runtime recovery {sc:.0} ms not slower than scAtteR++ {pp:.0} ms — \
                 the stranded-fetch collapse did not reproduce"
            ));
        }
        out
    }

    pub fn ok(&self) -> bool {
        self.failures().is_empty()
    }
}

pub fn run_study(smoke: bool) -> ChaosStudy {
    let gate_sched = if smoke {
        FaultSchedule {
            kill_frame: 10,
            outage_frames: 4,
        }
    } else {
        FaultSchedule {
            kill_frame: 24,
            outage_frames: 8,
        }
    };
    // The outage stays at 20 periods in both profiles: the stranded-fetch
    // collapse is visible precisely when the serial fetch-deadline burn at
    // matching outlasts the outage, so stretching the outage (rather than
    // the runway before the kill) would mask the effect being measured.
    let survival_sched = if smoke {
        FaultSchedule {
            kill_frame: 30,
            outage_frames: 20,
        }
    } else {
        FaultSchedule {
            kill_frame: 60,
            outage_frames: 20,
        }
    };

    let gates: Vec<GatePoint> = [Mode::Scatter, Mode::ScatterPP]
        .into_iter()
        .map(|m| gate_point(m, gate_sched))
        .collect();

    let mut survival = Vec::new();
    let mut rt_recovery = Vec::new();
    for mode in [Mode::Scatter, Mode::ScatterPP] {
        survival.push(des_survival_run(mode, survival_sched));
        let (point, _lite) = rt_survival_run(mode, survival_sched);
        rt_recovery.push((mode, point.recovery_ms));
        survival.push(point);
    }
    let rt_p = Duration::from_secs_f64(1.0 / SURVIVAL_RT_FPS);
    let rt_outage_ms = survival_sched.window(rt_p).1.as_secs_f64() * 1e3;

    let mut tables = Vec::new();

    let mut t = Table::new(
        "chaos gate — crash-attributed drops, same fault schedule in both planes",
        &[
            "mode",
            "clients",
            "expected",
            "DES",
            "runtime",
            "DES audit",
            "rt audit",
            "verdict",
        ],
    );
    for g in &gates {
        t.row(vec![
            mode_label(g.mode).into(),
            g.clients.to_string(),
            g.expected.to_string(),
            g.des_crash.to_string(),
            g.rt_crash.to_string(),
            g.des_audit
                .as_ref()
                .map_or_else(|e| e.clone(), |()| "ok".into()),
            g.rt_audit
                .as_ref()
                .map_or_else(|e| e.clone(), |()| "ok".into()),
            if g.ok() { "ok".into() } else { "FAIL".into() },
        ]);
    }
    t.note(format!(
        "schedule: kill sift half a period before frame {}, revive {} periods later \
         (DES 30 FPS grid; runtime {} FPS); expected = outage_frames x clients",
        gate_sched.kill_frame, gate_sched.outage_frames, GATE_RT_FPS
    ));
    tables.push(t);

    let mut t = Table::new(
        "survival — a mid-run sift crash, scAtteR vs scAtteR++",
        &[
            "plane",
            "mode",
            "emitted",
            "completed",
            "baseline fps",
            "fault-window fps",
            "recovery ms",
            "bytes on wire",
            "audit",
        ],
    );
    for s in &survival {
        t.row(vec![
            s.plane.into(),
            mode_label(s.mode).into(),
            s.emitted.to_string(),
            s.completed.to_string(),
            f1(s.baseline_fps),
            f1(s.fault_fps),
            if s.recovery_ms.is_finite() {
                f1(s.recovery_ms)
            } else {
                "never".into()
            },
            s.bytes_on_wire.to_string(),
            s.audit
                .as_ref()
                .map_or_else(|e| e.clone(), |()| "ok".into()),
        ]);
    }
    t.note(format!(
        "recovery = restart -> first completion of a frame emitted after the restart; \
         the runtime's recovery delay is {rt_outage_ms:.0} ms. The impairment shim adds \
         80 ms sift->encoding transit + 1% bursty uplink loss (seed {CHAOS_SEED})."
    ));
    tables.push(t);

    let mut t = Table::new(
        "drop forensics — every loss carries a reason",
        &["plane", "mode", "reason", "frames"],
    );
    for s in &survival {
        for (reason, n) in &s.reasons {
            t.row(vec![
                s.plane.into(),
                mode_label(s.mode).into(),
                format!("{reason:?}"),
                n.to_string(),
            ]);
        }
    }
    t.note(
        "RunEnd rows are frames still in flight when the log closed (tolerated only \
         within the drain tail — anything earlier fails the audit column above).",
    );
    tables.push(t);

    ChaosStudy {
        gates,
        survival,
        rt_recovery,
        rt_outage_ms,
        tables,
    }
}

/// `--bin chaos` entry point. `--smoke` shrinks both scenarios for the
/// verify gate; `--json` renders the tables as a JSON array on stdout.
/// Exits 1 when the crash-agreement gate, an attribution audit, or the
/// survival claim fails.
pub fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let json = std::env::args().any(|a| a == "--json");
    let study = run_study(smoke);

    let dir = std::path::Path::new("results");
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("cannot create {}: {e}", dir.display());
    }
    let rendered: Vec<String> = study.tables.iter().map(|t| t.render_json()).collect();
    let doc = format!("[{}]", rendered.join(",\n"));
    let path = dir.join("chaos_tables.json");
    if let Err(e) = std::fs::write(&path, &doc) {
        eprintln!("cannot write {}: {e}", path.display());
    } else {
        eprintln!("wrote {}", path.display());
    }

    if json {
        println!("{doc}");
    } else {
        for t in &study.tables {
            println!("{}", t.render());
        }
    }
    let failures = study.failures();
    if !failures.is_empty() {
        for f in &failures {
            eprintln!("chaos gate FAILED: {f}");
        }
        std::process::exit(1);
    }
    eprintln!("chaos gate OK: DES and runtime agree on crash-attributed drops");
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The window conversion: half a period early, exact outage length,
    /// linear in the period.
    #[test]
    fn schedule_windows_scale_with_the_period() {
        let s = FaultSchedule {
            kill_frame: 10,
            outage_frames: 4,
        };
        let (at, outage) = s.window(Duration::from_millis(100));
        assert_eq!(at, Duration::from_millis(950));
        assert_eq!(outage, Duration::from_millis(400));
        let (at2, outage2) = s.window(Duration::from_millis(200));
        assert_eq!(at2, at * 2);
        assert_eq!(outage2, outage * 2);
        assert_eq!(s.expected_crash_drops(2), 8);
    }

    /// The DES half of the gate is exact on its own: the calm
    /// calibration keeps every margin, so the crash-dropped frame set is
    /// precisely `[kill_frame, kill_frame+outage) x clients` — in both
    /// modes.
    #[test]
    fn des_gate_counts_exactly() {
        let sched = FaultSchedule {
            kill_frame: 10,
            outage_frames: 4,
        };
        for mode in [Mode::Scatter, Mode::ScatterPP] {
            let (a, log) = des_gate_run(mode, 2, sched);
            audit(&log, Duration::from_millis(1500)).expect("attribution audit");
            assert_eq!(
                crash_count(&a),
                sched.expected_crash_drops(2),
                "{mode:?}: {:?}",
                a.drop_reasons()
            );
        }
    }
}
