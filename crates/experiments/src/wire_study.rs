//! Wire study (`--bin wire`): protocol v2's three claims, exercised
//! through *both* planes and hard-gated.
//!
//! **Gate A — bytes-on-wire parity.** One client streams the same
//! seeded scene through the DES wire model and the live loopback-UDP
//! deployment, under v1 framing and under v2. Because both planes run
//! the *same* encoder, the same [`UplinkTx`](scatter::wirev2::tx::UplinkTx)
//! delta state machine, and the same store-if-smaller codec on the same
//! pixels, the gate is exact: predictor sum == DES `wire.uplink_bytes`
//! == runtime send-site `uplink_bytes`, byte for byte, per dialect. And
//! v2 must genuinely undercut v1 (> 5 % fewer uplink bytes) when delta
//! encoding is on.
//!
//! **Gate B — CRC accounting parity.** The first `c` uplink datagrams
//! are corrupted in flight (one byte flipped past every header — the
//! shim's [`LinkImpairment::corrupt_first`], the DES's
//! [`WireSimConfig::with_corrupt_first`]). A v2 ingress must catch
//! *exactly* `c` as counted `InvalidCrc` drops in both planes; a v1
//! ingress must count zero in both planes — the damage sails through
//! its checks silently. Exact equality, no tolerance.
//!
//! **Gate C — LTE payoff (runtime only).** 320×180 capture over a
//! bursty cellular link whose loss is drawn per 1400-byte MTU cell, so
//! longer datagrams die more often — the physics that rewards smaller
//! frames. v2 must beat v1 on goodput (more completed frames) *and* on
//! bytes per emitted frame, while holding e2e p95 inside the paper's
//! 100 ms response budget.
//!
//! Env knobs `SCATTER_WIRE_DELTA` / `SCATTER_WIRE_COMPRESS` (0/1,
//! true/false) shape the v2 policy both planes run; invalid values warn
//! once on stderr and fall back to the default (both on). The
//! undercut gate only applies while delta stays on — keyframes-only v2
//! is v1 plus a 19-byte envelope, and honestly reports as such.
//!
//! Artifacts: `results/wire_tables.json`. `--smoke` shrinks every run
//! for the verify gate; any gate failure exits non-zero.

use std::sync::Once;
use std::time::Duration;

use scatter::client::FRAME_PERIOD;
use scatter::config::{placements, RunConfig, WireSimConfig};
use scatter::runtime::deploy::{LocalDeployment, RuntimeOptions, RuntimeReport};
use scatter::runtime::impair::{Ep, ImpairmentProfile, LinkImpairment, LinkRule};
use scatter::runtime::services::WireRtConfig;
use scatter::wirev2::predict;
use scatter::wirev2::tx::UplinkPolicy;
use scatter::{run_experiment, Mode, ServiceKind};
use simcore::SimDuration;

use crate::table::{f1, pct, Table};

/// One seed drives both planes (scene, DES world, impairment shim).
pub const WIRE_SEED: u64 = 2262;

/// The paper's response-time budget the LTE leg must hold at p95.
pub const BUDGET_MS: f64 = 100.0;

/// v2 must undercut v1 by at least this fraction of uplink bytes for
/// the delta pipeline to be worth its envelope (gate A).
pub const MIN_SAVINGS: f64 = 0.05;

/// Parity legs run the standard client geometry; the LTE leg runs the
/// bigger capture where the cellular link actually hurts.
const PARITY_GEOM: (usize, usize) = (256, 144);
const LTE_GEOM: (usize, usize) = (320, 180);

/// Cellular MTU: loss is drawn once per cell of this many bytes.
const LTE_MTU: usize = 1400;

/// Parse a 0/1 boolean env knob; `None` when unset or invalid (invalid
/// warns once on stderr — same contract as `SCATTER_EXP_SECS`).
fn env_flag(name: &str, warn: &'static Once) -> Option<bool> {
    let s = std::env::var(name).ok()?;
    match s.trim() {
        "1" | "true" | "on" => Some(true),
        "0" | "false" | "off" => Some(false),
        _ => {
            warn.call_once(|| {
                eprintln!(
                    "warning: invalid {name}={s:?} (want 0/1 or true/false); \
                     using the default policy"
                );
            });
            None
        }
    }
}

/// The v2 uplink policy this study runs in *both* planes, after the
/// `SCATTER_WIRE_DELTA` / `SCATTER_WIRE_COMPRESS` overrides.
pub fn study_policy() -> UplinkPolicy {
    static DELTA_WARN: Once = Once::new();
    static COMPRESS_WARN: Once = Once::new();
    let mut p = UplinkPolicy::default();
    if let Some(v) = env_flag("SCATTER_WIRE_DELTA", &DELTA_WARN) {
        p.delta = v;
    }
    if let Some(v) = env_flag("SCATTER_WIRE_COMPRESS", &COMPRESS_WARN) {
        p.compress = v;
    }
    p
}

/// A DES duration that makes one 30 FPS client emit *exactly* `n`
/// frames: half a period past the last grid slot, far beyond the ≤2 ms
/// emission jitter, well short of slot `n`.
fn exact_frames(n: u32) -> SimDuration {
    SimDuration::from_nanos(u64::from(n) * FRAME_PERIOD.as_nanos() - FRAME_PERIOD.as_nanos() / 2)
}

/// DES half of the parity gates: one client, the wire model on, no
/// warmup so the accountant sees every frame.
fn des_wire_run(n: u32, wire: WireSimConfig) -> scatter::report::WireReport {
    let cfg = RunConfig::new(Mode::ScatterPP, placements::c1(), 1)
        .with_duration(exact_frames(n))
        .with_warmup(SimDuration::ZERO)
        .with_stagger(SimDuration::ZERO)
        .with_seed(WIRE_SEED)
        .with_wire(wire);
    run_experiment(cfg).wire
}

/// Runtime half: one real client over loopback UDP, optionally through
/// the impairment shim, v1 or v2 dialect.
fn rt_wire_run(
    n: u32,
    fps: f64,
    geom: (usize, usize),
    v2: bool,
    policy: UplinkPolicy,
    impair: Option<ImpairmentProfile>,
) -> RuntimeReport {
    let dep = LocalDeployment::start(RuntimeOptions {
        clients: 1,
        frames: n,
        fps,
        width: geom.0,
        height: geom.1,
        seed: WIRE_SEED,
        impair,
        wire: WireRtConfig { v2, policy },
        ..Default::default()
    });
    let report = dep.run_client();
    dep.shutdown();
    report
}

/// Gate A results for one dialect.
pub struct ParityPoint {
    pub label: &'static str,
    /// Analytic sum of the per-frame schedule the predictor computes.
    pub predicted: u64,
    /// What the DES wire model accounted at its send site.
    pub des: u64,
    /// What the runtime client counted at its send site.
    pub rt: u64,
    pub frames: u32,
}

impl ParityPoint {
    pub fn ok(&self) -> bool {
        self.predicted == self.des && self.des == self.rt
    }

    pub fn bytes_per_frame(&self) -> f64 {
        self.rt as f64 / f64::from(self.frames.max(1))
    }
}

/// Gate B results: corrupt-first accounting in all four cells of the
/// (plane × dialect) matrix.
pub struct CrcPoint {
    pub corrupted: u64,
    pub des_v2: u64,
    pub rt_v2: u64,
    pub des_v1: u64,
    pub rt_v1: u64,
}

impl CrcPoint {
    pub fn ok(&self) -> bool {
        self.des_v2 == self.corrupted
            && self.rt_v2 == self.corrupted
            && self.des_v1 == 0
            && self.rt_v1 == 0
    }
}

/// Gate C results: one dialect over the LTE link.
pub struct LtePoint {
    pub label: &'static str,
    pub emitted: u32,
    pub completed: u32,
    pub uplink_bytes: u64,
    pub net_drops: u64,
    pub delta_resyncs: u64,
    pub p95_e2e_ms: f64,
}

impl LtePoint {
    pub fn bytes_per_frame(&self) -> f64 {
        self.uplink_bytes as f64 / f64::from(self.emitted.max(1))
    }
}

fn lte_point(label: &'static str, r: &RuntimeReport) -> LtePoint {
    LtePoint {
        label,
        emitted: r.emitted,
        completed: r.completed,
        uplink_bytes: r.uplink_bytes,
        net_drops: r.net_drops,
        delta_resyncs: r.delta_resyncs,
        p95_e2e_ms: r.p95_e2e_ms,
    }
}

/// The cellular profile of gate C, applied to the client→primary
/// uplink only: 5 % independent loss per 1400-byte cell (the monotone
/// length penalty — more cells, more chances to die) composed with a
/// 1.5 % Gilbert–Elliott component in ~3-cell bursts (the LTE fading
/// texture), plus 8 ms ± 2 ms one-way delay. Burst loss alone would
/// not do: a burst longer than a frame kills long and short frames
/// alike, erasing exactly the advantage the cell model exists to
/// expose.
fn lte_profile() -> ImpairmentProfile {
    let imp = LinkImpairment {
        loss: 0.05,
        ..LinkImpairment::bursty(0.015, 3.0)
    }
    .with_cell_mtu(LTE_MTU)
    .with_delay(Duration::from_millis(8), Duration::from_millis(2));
    ImpairmentProfile::new(WIRE_SEED).with_rule(LinkRule::between(
        Ep::Client,
        Ep::Svc(ServiceKind::Primary),
        imp,
    ))
}

pub struct WireStudy {
    pub policy: UplinkPolicy,
    pub parity: Vec<ParityPoint>,
    pub crc: CrcPoint,
    pub lte_v1: LtePoint,
    pub lte_v2: LtePoint,
    pub tables: Vec<Table>,
}

impl WireStudy {
    pub fn failures(&self) -> Vec<String> {
        let mut out = Vec::new();
        for p in &self.parity {
            if !p.ok() {
                out.push(format!(
                    "{} bytes-on-wire disagree: predicted={} des={} rt={}",
                    p.label, p.predicted, p.des, p.rt
                ));
            }
        }
        if self.policy.delta {
            let (v1, v2) = (self.parity[0].rt as f64, self.parity[1].rt as f64);
            if v2 >= v1 * (1.0 - MIN_SAVINGS) {
                out.push(format!(
                    "v2 does not undercut v1 by {:.0} %: v1={v1:.0} B, v2={v2:.0} B",
                    MIN_SAVINGS * 100.0
                ));
            }
        }
        if !self.crc.ok() {
            out.push(format!(
                "CRC accounting disagrees: corrupted={} des_v2={} rt_v2={} des_v1={} rt_v1={}",
                self.crc.corrupted,
                self.crc.des_v2,
                self.crc.rt_v2,
                self.crc.des_v1,
                self.crc.rt_v1
            ));
        }
        if self.lte_v2.completed <= self.lte_v1.completed {
            out.push(format!(
                "v2 goodput does not beat v1 over LTE: v2 completed {} ≤ v1 {}",
                self.lte_v2.completed, self.lte_v1.completed
            ));
        }
        if self.lte_v2.bytes_per_frame() >= self.lte_v1.bytes_per_frame() {
            out.push(format!(
                "v2 bytes/frame does not beat v1 over LTE: v2 {:.0} ≥ v1 {:.0}",
                self.lte_v2.bytes_per_frame(),
                self.lte_v1.bytes_per_frame()
            ));
        }
        if self.lte_v2.p95_e2e_ms > BUDGET_MS {
            out.push(format!(
                "v2 e2e p95 {:.1} ms blows the {BUDGET_MS:.0} ms budget over LTE",
                self.lte_v2.p95_e2e_ms
            ));
        }
        out
    }

    pub fn ok(&self) -> bool {
        self.failures().is_empty()
    }
}

pub fn run_study(smoke: bool) -> WireStudy {
    let policy = study_policy();
    let (w, h) = PARITY_GEOM;
    let parity_frames: u32 = if smoke { 24 } else { 90 };
    let corrupt: u64 = if smoke { 7 } else { 15 };
    let lte_frames: u32 = if smoke { 60 } else { 150 };
    let lte_fps = 20.0;

    // --- Gate A: pristine byte parity, per dialect -------------------
    eprintln!("wire: gate A (bytes-on-wire parity, {parity_frames} frames)...");
    let n = parity_frames as usize;
    let pred_v1: u64 = predict::uplink_schedule_v1(WIRE_SEED, 0, w, h, 85, n)
        .iter()
        .sum();
    let pred_v2: u64 = predict::uplink_schedule_v2(WIRE_SEED, 0, w, h, 85, n, policy)
        .iter()
        .sum();
    let des_v1 = des_wire_run(parity_frames, WireSimConfig::v1());
    let des_v2 = des_wire_run(
        parity_frames,
        WireSimConfig {
            policy,
            ..WireSimConfig::default()
        },
    );
    let rt_v1 = rt_wire_run(parity_frames, 10.0, PARITY_GEOM, false, policy, None);
    let rt_v2 = rt_wire_run(parity_frames, 10.0, PARITY_GEOM, true, policy, None);
    let parity = vec![
        ParityPoint {
            label: "v1",
            predicted: pred_v1,
            des: des_v1.uplink_bytes,
            rt: rt_v1.uplink_bytes,
            frames: parity_frames,
        },
        ParityPoint {
            label: "v2",
            predicted: pred_v2,
            des: des_v2.uplink_bytes,
            rt: rt_v2.uplink_bytes,
            frames: parity_frames,
        },
    ];

    // --- Gate B: corrupt-first CRC accounting ------------------------
    eprintln!("wire: gate B (CRC accounting, {corrupt} corrupted datagrams)...");
    let corrupt_shim = || {
        ImpairmentProfile::new(WIRE_SEED).with_rule(LinkRule::between(
            Ep::Client,
            Ep::Svc(ServiceKind::Primary),
            LinkImpairment::corrupt_first(corrupt),
        ))
    };
    let crc = CrcPoint {
        corrupted: corrupt,
        des_v2: des_wire_run(
            parity_frames,
            WireSimConfig {
                policy,
                ..WireSimConfig::default()
            }
            .with_corrupt_first(corrupt),
        )
        .invalid_crc,
        des_v1: des_wire_run(
            parity_frames,
            WireSimConfig::v1().with_corrupt_first(corrupt),
        )
        .invalid_crc,
        rt_v2: rt_wire_run(
            parity_frames,
            10.0,
            PARITY_GEOM,
            true,
            policy,
            Some(corrupt_shim()),
        )
        .invalid_crc,
        rt_v1: rt_wire_run(
            parity_frames,
            10.0,
            PARITY_GEOM,
            false,
            policy,
            Some(corrupt_shim()),
        )
        .invalid_crc,
    };

    // --- Gate C: LTE payoff ------------------------------------------
    eprintln!("wire: gate C (LTE payoff, {lte_frames} frames @ 320x180)...");
    let lte_v1 = lte_point(
        "v1",
        &rt_wire_run(
            lte_frames,
            lte_fps,
            LTE_GEOM,
            false,
            policy,
            Some(lte_profile()),
        ),
    );
    let lte_v2 = lte_point(
        "v2",
        &rt_wire_run(
            lte_frames,
            lte_fps,
            LTE_GEOM,
            true,
            policy,
            Some(lte_profile()),
        ),
    );

    // --- Tables ------------------------------------------------------
    let mut tables = Vec::new();

    let mut t = Table::new(
        &format!(
            "Wire gate A — bytes on wire, 1 client x {parity_frames} frames @ {w}x{h} \
             (delta={}, compress={})",
            policy.delta, policy.compress
        ),
        &[
            "dialect",
            "predicted B",
            "DES B",
            "runtime B",
            "B/frame",
            "vs v1",
        ],
    );
    let v1_bytes = parity[0].rt as f64;
    for p in &parity {
        t.row(vec![
            p.label.to_string(),
            p.predicted.to_string(),
            p.des.to_string(),
            p.rt.to_string(),
            f1(p.bytes_per_frame()),
            pct(p.rt as f64 / v1_bytes - 1.0),
        ]);
    }
    t.note("gate: predicted == DES == runtime, exactly, per dialect; v2 undercuts v1 > 5 %");
    tables.push(t);

    let mut t = Table::new(
        &format!("Wire gate B — first {corrupt} uplink datagrams corrupted in flight"),
        &["plane", "dialect", "invalid-crc", "expected"],
    );
    t.row(vec![
        "DES".into(),
        "v2".into(),
        crc.des_v2.to_string(),
        corrupt.to_string(),
    ]);
    t.row(vec![
        "runtime".into(),
        "v2".into(),
        crc.rt_v2.to_string(),
        corrupt.to_string(),
    ]);
    t.row(vec![
        "DES".into(),
        "v1".into(),
        crc.des_v1.to_string(),
        "0".into(),
    ]);
    t.row(vec![
        "runtime".into(),
        "v1".into(),
        crc.rt_v1.to_string(),
        "0".into(),
    ]);
    t.note("gate: v2 counts every corruption as InvalidCrc in both planes; v1 counts none");
    tables.push(t);

    let mut t = Table::new(
        &format!(
            "Wire gate C — LTE uplink ({:.1} % loss per {LTE_MTU} B cell + bursts), \
             {lte_frames} frames @ {}x{}",
            5.0, LTE_GEOM.0, LTE_GEOM.1
        ),
        &[
            "dialect",
            "emitted",
            "completed",
            "goodput fps",
            "uplink KB",
            "B/frame",
            "net drops",
            "resyncs",
            "p95 e2e ms",
        ],
    );
    for p in [&lte_v1, &lte_v2] {
        t.row(vec![
            p.label.to_string(),
            p.emitted.to_string(),
            p.completed.to_string(),
            f1(f64::from(p.completed) / (f64::from(lte_frames) / lte_fps)),
            f1(p.uplink_bytes as f64 / 1024.0),
            f1(p.bytes_per_frame()),
            p.net_drops.to_string(),
            p.delta_resyncs.to_string(),
            f1(p.p95_e2e_ms),
        ]);
    }
    t.note(format!(
        "gate: v2 completes more frames AND ships fewer bytes/frame, p95 ≤ {BUDGET_MS:.0} ms"
    ));
    tables.push(t);

    WireStudy {
        policy,
        parity,
        crc,
        lte_v1,
        lte_v2,
        tables,
    }
}

/// `--bin wire` entry point. `--smoke` shrinks every leg for the verify
/// gate; `--json` renders the tables as a JSON array on stdout. Exits 1
/// when any parity, CRC, or LTE gate fails.
pub fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let json = std::env::args().any(|a| a == "--json");
    let study = run_study(smoke);

    let dir = std::path::Path::new("results");
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("cannot create {}: {e}", dir.display());
    }
    let rendered: Vec<String> = study.tables.iter().map(|t| t.render_json()).collect();
    let doc = format!("[{}]", rendered.join(",\n"));
    let path = dir.join("wire_tables.json");
    if let Err(e) = std::fs::write(&path, &doc) {
        eprintln!("cannot write {}: {e}", path.display());
    } else {
        eprintln!("wrote {}", path.display());
    }

    if json {
        println!("{doc}");
    } else {
        for t in &study.tables {
            println!("{}", t.render());
        }
    }
    let failures = study.failures();
    if !failures.is_empty() {
        for f in &failures {
            eprintln!("wire gate FAILED: {f}");
        }
        std::process::exit(1);
    }
    eprintln!(
        "wire gate OK: both planes agree on bytes and CRC drops exactly, \
         and v2 beats v1 over the cellular link inside the latency budget"
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The DES wire model reproduces the analytic schedule exactly —
    /// the cheap (single-plane) half of gate A, pinned as a unit test.
    #[test]
    fn des_bytes_match_the_predictor() {
        let n = 12u32;
        let policy = UplinkPolicy::default();
        let (w, h) = PARITY_GEOM;
        let pred: u64 = predict::uplink_schedule_v2(WIRE_SEED, 0, w, h, 85, n as usize, policy)
            .iter()
            .sum();
        let des = des_wire_run(n, WireSimConfig::default());
        assert_eq!(
            des.uplink_bytes, pred,
            "DES wire model drifted off the schedule"
        );
        assert!(des.v2 && des.enabled);
    }

    /// Valid env values parse; garbage warns (once) and falls back.
    #[test]
    fn env_flag_contract() {
        static W: Once = Once::new();
        std::env::set_var("SCATTER_WIRE_TEST_KNOB", "0");
        assert_eq!(env_flag("SCATTER_WIRE_TEST_KNOB", &W), Some(false));
        std::env::set_var("SCATTER_WIRE_TEST_KNOB", "true");
        assert_eq!(env_flag("SCATTER_WIRE_TEST_KNOB", &W), Some(true));
        std::env::set_var("SCATTER_WIRE_TEST_KNOB", "sideways");
        assert_eq!(env_flag("SCATTER_WIRE_TEST_KNOB", &W), None);
        std::env::remove_var("SCATTER_WIRE_TEST_KNOB");
        assert_eq!(env_flag("SCATTER_WIRE_TEST_KNOB", &W), None);
    }
}
