//! Resilience study (`--bin resilience`): the control plane's two
//! promises, exercised through *both* planes and hard-gated.
//!
//! **Part A — kill-and-recover.** One sift replica is crashed mid-run
//! in the DES (event-time heartbeats) and in the live loopback-UDP
//! deployment (real heartbeat datagrams through the impairment shim,
//! wall-clock detector). Gates:
//!
//! - exactly one detection and one detection-driven redeploy per plane,
//!   and the two planes agree on the redeploy count;
//! - zero frames routed to the dead replica *after* detection (DES
//!   misroute counter — the runtime has no balancer, so the invariant
//!   is vacuous there);
//! - detection latency within the configured bound: the DES inside
//!   `suspect_factor x hb + sweep` (400 ms for the default 50 ms/3x
//!   config), the runtime inside a generous wall-clock ceiling;
//! - 100 % drop attribution (trace audit: no frame ends without a
//!   terminal) and completions resume after the respawn.
//!
//! **Part B — overload ramp.** A 1 → 10-client DES ramp over scAtteR++
//! on C1, ladder-on vs ladder-off. At the top of the ramp the ladder
//! must hold e2e p95 for admitted frames inside the paper's 100 ms
//! response-time budget while delivering strictly more goodput
//! (completed frames/sec) than the no-ladder baseline — degraded
//! service beats collapsed service, measurably.
//!
//! Artifacts: `results/resilience_tables.json`. `--smoke` shrinks both
//! parts for the verify gate; any gate failure exits non-zero.

use std::time::Duration;

use scatter::config::{placements, RunConfig};
use scatter::resilience::{DetectionConfig, LadderConfig, ResilienceConfig};
use scatter::runtime::deploy::{LocalDeployment, RuntimeOptions};
use scatter::{run_experiment, run_experiment_traced, Mode, ServiceKind};
use simcore::SimDuration;
use trace::TraceConfig;

use crate::chaos_study::audit;
use crate::table::{f1, Table};

/// One seed drives both planes.
pub const RESIL_SEED: u64 = 2203;

/// DES detection-latency bound for the default 50 ms / 3x config:
/// `suspect_factor x hb` of silence plus one sweep plus slack.
pub const DES_DETECT_BOUND_MS: f64 = 400.0;

/// Runtime wall-clock detection bound — generous: loaded CI boxes
/// schedule the heartbeat and monitor threads with jitter the DES
/// doesn't have.
pub const RT_DETECT_BOUND_MS: f64 = 2500.0;

/// The paper's response-time budget (threshold filter + QoS target).
pub const BUDGET_MS: f64 = 100.0;

/// The ladder tuning Part B runs: watermarks *inside* the 100 ms
/// budget so the controller sheds load before queues eat the margin
/// (the library default is tuned for the staleness filter alone).
pub fn study_ladder() -> LadderConfig {
    LadderConfig {
        high_water_ms: 40.0,
        low_water_ms: 15.0,
        ..LadderConfig::default()
    }
}

// ---------------------------------------------------------------------
// Part A: kill-and-recover through both planes.
// ---------------------------------------------------------------------

/// One plane's failover accounting.
pub struct FailoverPoint {
    pub plane: &'static str,
    pub detections: u64,
    pub redeploys: u64,
    /// Crash instant -> suspicion, ms (mean over detections).
    pub detection_ms: f64,
    /// Frames handed to an instance after its detection (DES balancer
    /// invariant; always 0 in the runtime, which has no balancer).
    pub misroutes: u64,
    pub emitted: u64,
    pub completed: u64,
    /// Completions of frames emitted after the respawn — proof the
    /// plane actually recovered, not just survived.
    pub completed_after_recovery: u64,
    pub audit: Result<(), String>,
}

/// DES half: scAtteR++ with two sift replicas, one crashed at `kill_at`.
/// Detection rebinds the balancer to the survivor and drives the
/// cluster redeploy; the scheduled revive restores the second replica.
pub fn des_failover(smoke: bool) -> FailoverPoint {
    let secs = if smoke { 16 } else { 24 };
    let kill_at = SimDuration::from_secs(8);
    let recovery = SimDuration::from_secs(2);
    let cfg = RunConfig::new(Mode::ScatterPP, placements::replicas([1, 2, 1, 1, 1]), 2)
        .with_duration(SimDuration::from_secs(secs))
        .with_warmup(SimDuration::from_secs(2))
        .with_seed(RESIL_SEED)
        .with_failure(kill_at, ServiceKind::Sift, 0)
        .with_recovery(recovery)
        .with_trace(TraceConfig::default())
        .with_resilience(ResilienceConfig::default().with_detection(DetectionConfig::from_env()));
    let (report, log) = run_experiment_traced(cfg);
    let audit_res = audit(&log, Duration::from_millis(1500)).map(|_| ());
    let a = trace::Analysis::from_log(&log);
    let restart_ns = (kill_at + recovery).as_nanos();
    let completed_after = a
        .frames()
        .filter(|f| f.completed() && f.emitted_ns.unwrap_or(0) >= restart_ns)
        .count() as u64;
    FailoverPoint {
        plane: "DES",
        detections: report.resilience.detections,
        redeploys: report.resilience.redeploys,
        detection_ms: report.resilience.mean_detection_latency_ms(),
        misroutes: report.resilience.post_detection_misroutes,
        emitted: a.emitted() as u64,
        completed: a.completed() as u64,
        completed_after_recovery: completed_after,
        audit: audit_res,
    }
}

/// Runtime half: real UDP heartbeats fall silent after `take_down`,
/// the monitor's detector flags the replica, and only then is it
/// brought back — the respawn counts as a detection-driven redeploy.
pub fn rt_failover(smoke: bool) -> (FailoverPoint, Option<ServiceKind>) {
    let frames = if smoke { 10 } else { 14 };
    let dep = LocalDeployment::start(RuntimeOptions {
        frames,
        fps: 8.0,
        seed: RESIL_SEED,
        detection: Some(DetectionConfig::from_env()),
        trace: Some(TraceConfig::default()),
        drain: Duration::from_millis(3500),
        ..Default::default()
    });
    let detected = std::sync::Mutex::new(None);
    let respawned_at = std::sync::Mutex::new(None);
    let report = std::thread::scope(|scope| {
        scope.spawn(|| {
            std::thread::sleep(Duration::from_millis(400));
            let down = dep.take_down(ServiceKind::Sift);
            *detected.lock().expect("detected lock") = dep.await_detection(Duration::from_secs(5));
            dep.bring_up(down, Duration::from_millis(100));
            *respawned_at.lock().expect("respawn lock") = Some(std::time::Instant::now());
        });
        dep.run_client()
    });
    let (log, _) = dep.shutdown_with_counts();
    let audit_res = audit(&log, Duration::ZERO).map(|_| ());
    let a = trace::Analysis::from_log(&log);
    let completed_after = a.frames().filter(|f| f.completed()).count() as u64;
    let point = FailoverPoint {
        plane: "runtime",
        detections: report.detections,
        redeploys: report.redeploys,
        detection_ms: report.mean_detection_latency_ms(),
        misroutes: 0,
        emitted: u64::from(report.emitted),
        completed: u64::from(report.completed),
        // The runtime kill happens early (~frame 3 of a paced stream),
        // so any healthy tail implies post-respawn completions; gate on
        // overall completions instead of an emission-time split.
        completed_after_recovery: completed_after,
        audit: audit_res,
    };
    let detected_kind = *detected.lock().expect("detected lock");
    (point, detected_kind)
}

// ---------------------------------------------------------------------
// Part B: the overload ramp, ladder-on vs ladder-off.
// ---------------------------------------------------------------------

pub struct RampPoint {
    pub clients: usize,
    pub base_fps: f64,
    pub base_p95_ms: f64,
    pub ladder_fps: f64,
    pub ladder_p95_ms: f64,
    pub max_level: u8,
    pub degraded: u64,
    pub nacks: u64,
    pub steps: u64,
}

fn ramp_point(clients: usize, secs: u64) -> RampPoint {
    let base_cfg = RunConfig::new(Mode::ScatterPP, placements::c1(), clients)
        .with_duration(SimDuration::from_secs(secs))
        .with_warmup(SimDuration::from_secs(2))
        .with_seed(RESIL_SEED);
    let mut ladder_cfg = base_cfg.clone();
    ladder_cfg.resilience = ResilienceConfig::default().with_ladder(study_ladder());
    let mut base = run_experiment(base_cfg);
    let mut lad = run_experiment(ladder_cfg);
    RampPoint {
        clients,
        base_fps: base.fps(),
        base_p95_ms: base.e2e_ms.p95(),
        ladder_fps: lad.fps(),
        ladder_p95_ms: lad.e2e_ms.p95(),
        max_level: lad.resilience.max_ladder_level,
        degraded: lad.resilience.degraded_frames,
        nacks: lad.resilience.admission_nacks,
        steps: lad.resilience.ladder_steps,
    }
}

// ---------------------------------------------------------------------
// Study driver + tables.
// ---------------------------------------------------------------------

pub struct ResilienceStudy {
    pub failover: Vec<FailoverPoint>,
    pub rt_detected: Option<ServiceKind>,
    pub ramp: Vec<RampPoint>,
    pub tables: Vec<Table>,
}

impl ResilienceStudy {
    /// Every hard condition the stage enforces.
    pub fn failures(&self) -> Vec<String> {
        let mut out = Vec::new();
        for p in &self.failover {
            if p.detections != 1 {
                out.push(format!(
                    "{}: {} detections for one crash (want exactly 1)",
                    p.plane, p.detections
                ));
            }
            if p.redeploys != 1 {
                out.push(format!(
                    "{}: {} detection-driven redeploys (want exactly 1)",
                    p.plane, p.redeploys
                ));
            }
            if p.misroutes != 0 {
                out.push(format!(
                    "{}: {} frames routed to a replica after its detection",
                    p.plane, p.misroutes
                ));
            }
            let bound = if p.plane == "DES" {
                DES_DETECT_BOUND_MS
            } else {
                RT_DETECT_BOUND_MS
            };
            if !(p.detection_ms > 0.0 && p.detection_ms <= bound) {
                out.push(format!(
                    "{}: detection latency {:.0} ms outside (0, {bound:.0}]",
                    p.plane, p.detection_ms
                ));
            }
            if let Err(e) = &p.audit {
                out.push(format!("{}: attribution audit failed: {e}", p.plane));
            }
            if p.completed_after_recovery == 0 {
                out.push(format!("{}: no completions after the respawn", p.plane));
            }
        }
        if let (Some(d), Some(r)) = (
            self.failover.iter().find(|p| p.plane == "DES"),
            self.failover.iter().find(|p| p.plane == "runtime"),
        ) {
            if d.redeploys != r.redeploys {
                out.push(format!(
                    "cross-plane: DES counted {} redeploys, runtime {}",
                    d.redeploys, r.redeploys
                ));
            }
        }
        if self.rt_detected != Some(ServiceKind::Sift) {
            out.push(format!(
                "runtime: detector flagged {:?}, not the killed sift replica",
                self.rt_detected
            ));
        }
        if let Some(first) = self.ramp.first() {
            // The study watermarks are deliberately tight (40 ms high water,
            // vs a ~65 ms 1-client baseline p95), so a light run may trade one
            // rung of quality for latency.  The gate is therefore "no harm
            // when light": goodput must not drop and p95 must not grow.  The
            // library-default ladder's idle-at-1-client behaviour is pinned
            // separately by the world tests.
            if first.clients == 1 {
                if first.ladder_fps + 1e-9 < first.base_fps {
                    out.push(format!(
                        "1 client: ladder goodput {:.1} fps below baseline {:.1} fps",
                        first.ladder_fps, first.base_fps
                    ));
                }
                if first.ladder_p95_ms > first.base_p95_ms + 1e-9 {
                    out.push(format!(
                        "1 client: ladder e2e p95 {:.1} ms above baseline {:.1} ms",
                        first.ladder_p95_ms, first.base_p95_ms
                    ));
                }
                if first.max_level > 1 {
                    out.push(format!(
                        "1 client: ladder climbed to rung {} — more than a quality trade",
                        first.max_level
                    ));
                }
            }
        }
        if let Some(top) = self.ramp.last() {
            if top.ladder_p95_ms > BUDGET_MS {
                out.push(format!(
                    "{} clients: ladder e2e p95 {:.1} ms exceeds the {BUDGET_MS:.0} ms budget",
                    top.clients, top.ladder_p95_ms
                ));
            }
            if top.ladder_fps <= top.base_fps {
                out.push(format!(
                    "{} clients: ladder goodput {:.1} fps not above baseline {:.1} fps",
                    top.clients, top.ladder_fps, top.base_fps
                ));
            }
            if top.max_level == 0 {
                out.push(format!(
                    "{} clients never engaged the ladder — the ramp is not an overload",
                    top.clients
                ));
            }
        }
        out
    }

    pub fn ok(&self) -> bool {
        self.failures().is_empty()
    }
}

pub fn run_study(smoke: bool) -> ResilienceStudy {
    let mut failover = Vec::new();
    failover.push(des_failover(smoke));
    let (rt, rt_detected) = rt_failover(smoke);
    failover.push(rt);

    let clients: &[usize] = if smoke { &[1, 10] } else { &[1, 4, 7, 10] };
    let secs = if smoke { 12 } else { 20 };
    let ramp: Vec<RampPoint> = clients.iter().map(|&n| ramp_point(n, secs)).collect();

    let mut tables = Vec::new();

    let mut t = Table::new(
        "failover — one sift crash, heartbeat detection in both planes",
        &[
            "plane",
            "detections",
            "redeploys",
            "detect ms",
            "misroutes",
            "emitted",
            "completed",
            "post-respawn",
            "audit",
        ],
    );
    for p in &failover {
        t.row(vec![
            p.plane.into(),
            p.detections.to_string(),
            p.redeploys.to_string(),
            f1(p.detection_ms),
            p.misroutes.to_string(),
            p.emitted.to_string(),
            p.completed.to_string(),
            p.completed_after_recovery.to_string(),
            p.audit
                .as_ref()
                .map_or_else(|e| e.clone(), |()| "ok".into()),
        ]);
    }
    t.note(format!(
        "default detector: 50 ms heartbeats, suspect after 3 missed. Bounds: DES \
         {DES_DETECT_BOUND_MS:.0} ms (event time), runtime {RT_DETECT_BOUND_MS:.0} ms \
         (wall clock, through the impairment shim). misroutes counts frames handed \
         to a replica after its detection — failover correctness requires 0."
    ));
    tables.push(t);

    let mut t = Table::new(
        "overload ramp — scAtteR++ on C1, degradation ladder on vs off",
        &[
            "clients",
            "base fps",
            "base p95 ms",
            "ladder fps",
            "ladder p95 ms",
            "max rung",
            "degraded",
            "NACKs",
            "steps",
        ],
    );
    for r in &ramp {
        t.row(vec![
            r.clients.to_string(),
            f1(r.base_fps),
            f1(r.base_p95_ms),
            f1(r.ladder_fps),
            f1(r.ladder_p95_ms),
            r.max_level.to_string(),
            r.degraded.to_string(),
            r.nacks.to_string(),
            r.steps.to_string(),
        ]);
    }
    t.note(format!(
        "ladder: full -> downscaled -> half-rate -> admission NACK, stepped off the \
         sidecar backpressure signal (high water {:.0} ms, low {:.0} ms). Gate at the \
         top of the ramp: ladder p95 <= {BUDGET_MS:.0} ms and ladder goodput strictly \
         above the no-ladder baseline.",
        study_ladder().high_water_ms,
        study_ladder().low_water_ms,
    ));
    tables.push(t);

    ResilienceStudy {
        failover,
        rt_detected,
        ramp,
        tables,
    }
}

/// `--bin resilience` entry point. `--smoke` shrinks both parts for the
/// verify gate; `--json` renders the tables as a JSON array on stdout.
/// Exits 1 when any failover, agreement, or ladder gate fails.
pub fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let json = std::env::args().any(|a| a == "--json");
    let study = run_study(smoke);

    let dir = std::path::Path::new("results");
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("cannot create {}: {e}", dir.display());
    }
    let rendered: Vec<String> = study.tables.iter().map(|t| t.render_json()).collect();
    let doc = format!("[{}]", rendered.join(",\n"));
    let path = dir.join("resilience_tables.json");
    if let Err(e) = std::fs::write(&path, &doc) {
        eprintln!("cannot write {}: {e}", path.display());
    } else {
        eprintln!("wrote {}", path.display());
    }

    if json {
        println!("{doc}");
    } else {
        for t in &study.tables {
            println!("{}", t.render());
        }
    }
    let failures = study.failures();
    if !failures.is_empty() {
        for f in &failures {
            eprintln!("resilience gate FAILED: {f}");
        }
        std::process::exit(1);
    }
    eprintln!(
        "resilience gate OK: both planes detected and redeployed once, \
         and the ladder held the budget with higher goodput"
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The DES failover leg satisfies every Part A gate on its own —
    /// the cheap half of the cross-plane stage, pinned as a unit test.
    #[test]
    fn des_failover_meets_the_gates() {
        let p = des_failover(true);
        assert_eq!(p.detections, 1);
        assert_eq!(p.redeploys, 1);
        assert_eq!(p.misroutes, 0);
        assert!(
            p.detection_ms > 0.0 && p.detection_ms <= DES_DETECT_BOUND_MS,
            "detection latency {:.0} ms out of bound",
            p.detection_ms
        );
        p.audit.as_ref().expect("attribution audit");
        assert!(p.completed_after_recovery > 0, "never recovered");
    }

    /// The top of the ramp must be a real overload for the gate to mean
    /// anything: the no-ladder baseline misses the budget there.
    #[test]
    fn ramp_top_is_an_overload() {
        let r = ramp_point(10, 10);
        assert!(
            r.max_level >= 1,
            "10 clients never engaged the ladder (backpressure too low)"
        );
        assert!(r.steps > 0);
    }
}
