//! Application-aware orchestration study — §6's future-work proposal
//! (insights (I) and (IV)) evaluated end to end.
//!
//! Three controllers manage the same overloaded deployment (everything
//! on E2, 6 clients): no scaling, a hardware-utilization-threshold
//! controller (all a conventional orchestrator can see), and the
//! sidecar-hook application-aware controller the paper proposes.

use scatter::autoscale::AutoscaleConfig;
use scatter::config::{placements, RunConfig};
use scatter::{run_experiment, Mode, RunReport};
use simcore::SimDuration;

use crate::common::{run_secs, SEED};
use crate::table::{f1, pct, Table};

fn run_with(mode: Mode, auto: Option<AutoscaleConfig>, clients: usize) -> RunReport {
    let mut cfg = RunConfig::new(mode, placements::c2(), clients)
        .with_duration(SimDuration::from_secs(run_secs()))
        .with_seed(SEED);
    if let Some(a) = auto {
        cfg = cfg.with_autoscale(a);
    }
    run_experiment(cfg)
}

pub fn run_figure() -> Vec<Table> {
    let mut t = Table::new(
        "Autoscaling study: static vs hardware-driven vs application-aware (E2-only start)",
        &[
            "pipeline",
            "controller",
            "clients",
            "FPS",
            "success",
            "scale actions",
        ],
    );

    for (mode, label) in [(Mode::ScatterPP, "scAtteR++"), (Mode::Scatter, "scAtteR")] {
        for (controller, auto) in [
            ("static", None),
            ("hardware >75% busy", Some(AutoscaleConfig::hardware(0.75))),
            (
                "app-aware >10% drops",
                Some(AutoscaleConfig::application_aware(0.10)),
            ),
        ] {
            for clients in [4, 6] {
                let r = run_with(mode, auto, clients);
                t.row(vec![
                    label.to_string(),
                    controller.to_string(),
                    clients.to_string(),
                    f1(r.fps()),
                    pct(r.success_rate),
                    r.scale_events
                        .iter()
                        .map(|e| format!("{}@{}", e.service.name(), e.machine))
                        .collect::<Vec<_>>()
                        .join(" ")
                        .chars()
                        .take(40)
                        .collect(),
                ]);
            }
        }
    }

    t.note("insight (IV): the app-aware controller finds the bottleneck from sidecar drop");
    t.note("metrics; the hardware controller reacts late (scAtteR++: queues keep services");
    t.note("busy) or not at all (scAtteR: drops stall utilization below any threshold)");
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn study_covers_all_cells() {
        std::env::set_var("SCATTER_EXP_SECS", "12");
        let tables = run_figure();
        assert_eq!(tables[0].rows.len(), 12);
    }
}
