//! Application-aware orchestration study — §6's future-work proposal
//! (insights (I) and (IV)) evaluated end to end.
//!
//! Three controllers manage the same overloaded deployment (everything
//! on E2, 6 clients): no scaling, a hardware-utilization-threshold
//! controller (all a conventional orchestrator can see), and the
//! sidecar-hook application-aware controller the paper proposes.

use scatter::autoscale::AutoscaleConfig;
use scatter::config::{placements, RunConfig};
use scatter::Mode;

use crate::common::run_batch;
use crate::table::{f1, pct, Table};

fn cfg_with(mode: Mode, auto: Option<AutoscaleConfig>, clients: usize) -> RunConfig {
    let mut cfg = RunConfig::new(mode, placements::c2(), clients);
    if let Some(a) = auto {
        cfg = cfg.with_autoscale(a);
    }
    cfg
}

pub fn run_figure() -> Vec<Table> {
    let mut t = Table::new(
        "Autoscaling study: static vs hardware-driven vs application-aware (E2-only start)",
        &[
            "pipeline",
            "controller",
            "clients",
            "FPS",
            "success",
            "scale actions",
        ],
    );

    const MODES: [(Mode, &str); 2] = [(Mode::ScatterPP, "scAtteR++"), (Mode::Scatter, "scAtteR")];
    let controllers = || {
        [
            ("static", None),
            ("hardware >75% busy", Some(AutoscaleConfig::hardware(0.75))),
            (
                "app-aware >10% drops",
                Some(AutoscaleConfig::application_aware(0.10)),
            ),
        ]
    };
    // 12 grid cells, one parallel batch.
    let cfgs: Vec<RunConfig> = MODES
        .iter()
        .flat_map(|&(mode, _)| {
            controllers()
                .into_iter()
                .flat_map(move |(_, auto)| [4, 6].map(|clients| cfg_with(mode, auto, clients)))
        })
        .collect();
    let mut reports = run_batch(cfgs).into_iter();

    for (_, label) in MODES {
        for (controller, _) in controllers() {
            for clients in [4, 6] {
                let r = reports.next().unwrap();
                t.row(vec![
                    label.to_string(),
                    controller.to_string(),
                    clients.to_string(),
                    f1(r.fps()),
                    pct(r.success_rate),
                    r.scale_events
                        .iter()
                        .map(|e| format!("{}@{}", e.service.name(), e.machine))
                        .collect::<Vec<_>>()
                        .join(" ")
                        .chars()
                        .take(40)
                        .collect(),
                ]);
            }
        }
    }

    t.note("insight (IV): the app-aware controller finds the bottleneck from sidecar drop");
    t.note("metrics; the hardware controller reacts late (scAtteR++: queues keep services");
    t.note("busy) or not at all (scAtteR: drops stall utilization below any threshold)");
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn study_covers_all_cells() {
        std::env::set_var("SCATTER_EXP_SECS", "12");
        let tables = run_figure();
        assert_eq!(tables[0].rows.len(), 12);
    }
}
