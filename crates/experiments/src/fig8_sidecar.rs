//! Figure 8: sidecar analytics — per-service ingress FPS and queue drop
//! ratio as clients step from 1 to 10 at fixed intervals.
//!
//! Paper anchors: ingress FPS of the later stages plateaus around
//! ≈90 FPS from ~4 clients; `primary` maxes out at ≈240 ingress FPS;
//! `matching`'s drop ratio rises from 3 clients (10 % → 40 %); `sift`
//! drops up to ≈50 % at 8–10 clients, halving the tail stages' ingress.

use scatter::config::{placements, RunConfig};
use scatter::{Mode, RunReport, ServiceKind, SERVICE_KINDS};
use simcore::{SimDuration, SimTime};

use crate::common::SEED;
use crate::table::{f1, f2, Table};

/// Seconds each client-count step lasts (the paper uses one minute).
pub fn step_secs() -> u64 {
    (crate::common::run_secs() / 6).clamp(10, 60)
}

/// Run the stepped-arrival experiment: client `i` joins at `i × step`.
pub fn run_stepped(placement: orchestra::PlacementSpec, clients: usize) -> (RunReport, u64) {
    let step = step_secs();
    let cfg = RunConfig::new(Mode::ScatterPP, placement, clients)
        .with_stagger(SimDuration::from_secs(step))
        .with_seed(SEED)
        .with_duration(SimDuration::from_secs(step * clients as u64))
        .with_warmup(SimDuration::from_secs(0));
    (scatter::run_experiment(cfg), step)
}

/// Per-service metric within each client-count step window.
fn per_step<F>(r: &RunReport, step: u64, clients: usize, kind: ServiceKind, f: F) -> Vec<f64>
where
    F: Fn(usize, usize) -> f64, // (arrivals, drops) -> metric
{
    (0..clients)
        .map(|i| {
            let ws = SimTime::from_secs(step * i as u64);
            let we = SimTime::from_secs(step * (i as u64 + 1));
            let (mut arrivals, mut drops) = (0usize, 0usize);
            for svc in r.services.iter().filter(|s| s.kind == kind) {
                arrivals += svc.ingress.window_count(ws, we);
                drops += svc.drops_over_time.window_count(ws, we);
            }
            f(arrivals, drops)
        })
        .collect()
}

pub fn run_figure() -> Vec<Table> {
    let clients = 10;
    let (r, step) = run_stepped(placements::replicas([1, 3, 2, 1, 3]), clients);

    let cols: Vec<String> = std::iter::once("service".to_string())
        .chain((1..=clients).map(|n| format!("n{n}")))
        .collect();
    let col_refs: Vec<&str> = cols.iter().map(|s| s.as_str()).collect();

    let mut fps = Table::new(
        "Fig 8 (top): per-service ingress FPS as clients step 1→10",
        &col_refs,
    );
    let mut drops = Table::new(
        "Fig 8 (bottom): per-service drop ratio per client-count step",
        &col_refs,
    );
    for kind in SERVICE_KINDS {
        let fps_series = per_step(&r, step, clients, kind, |a, _| a as f64 / step as f64);
        let mut row = vec![kind.name().to_string()];
        row.extend(fps_series.iter().map(|&v| f1(v)));
        fps.row(row);

        let drop_series = per_step(&r, step, clients, kind, |a, d| {
            if a == 0 {
                0.0
            } else {
                d as f64 / a as f64
            }
        });
        let mut row = vec![kind.name().to_string()];
        row.extend(drop_series.iter().map(|&v| f2(v)));
        drops.row(row);
    }

    fps.note("paper: later stages plateau ≈90 ingress FPS from ~4 clients; primary caps at ≈240");
    drops.note("paper: matching drop ratio rises from 3 clients (0.1→0.4); sift up to 0.5 at 8–10");
    drops.note("paper: high drop ratios mark pipeline saturation → scale out or up");
    vec![fps, drops]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stepped_run_produces_full_grid() {
        std::env::set_var("SCATTER_EXP_SECS", "60"); // step = 10 s
        let tables = run_figure();
        assert_eq!(tables[0].rows.len(), 5);
        assert_eq!(tables[0].rows[0].len(), 11);
        // Ingress rises with steps for primary (monotone-ish head vs tail).
        let first: f64 = tables[0].rows[0][1].parse().unwrap();
        let last: f64 = tables[0].rows[0][10].parse().unwrap();
        assert!(last > first, "primary ingress should grow with clients");
    }
}
