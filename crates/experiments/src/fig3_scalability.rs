//! Figure 3: impact of service replication on scAtteR.
//!
//! Replica-count vectors `[primary, sift, encoding, lsh, matching]` over
//! the baseline-on-E2 deployment with additional replicas on E1:
//! `[2,2,1,1,1]` (replicated ingress), `[1,2,1,1,2]` (replicated
//! bottlenecks), `[1,2,2,1,2]` (the winning configuration).

use scatter::config::placements;
use scatter::{Mode, SERVICE_KINDS};

use crate::common::{run, run_many};
use crate::scale::{scale_cfg, SCALE_CLIENTS, SCALE_SITES};
use crate::table::{f1, pct, Table};

pub const CONFIGS: [[usize; 5]; 3] = [[2, 2, 1, 1, 1], [1, 2, 1, 1, 2], [1, 2, 2, 1, 2]];

pub fn run_figure() -> Vec<Table> {
    let mut qos = Table::new(
        "Fig 3 (QoS): scAtteR replication — FPS / E2E vs clients",
        &["replicas", "clients", "FPS", "E2E ms", "success"],
    );
    let mut hw = Table::new(
        "Fig 3 (hardware): memory / CPU / GPU under replication",
        &["replicas", "clients", "mem GB (total)", "CPU %", "GPU %"],
    );

    // Baselines for the improvement notes plus the 12 sweep points, all
    // fanned out together (the baselines are just two more batch items).
    let mut points: Vec<_> = vec![
        (Mode::Scatter, placements::c2(), 2),
        (Mode::Scatter, placements::c2(), 3),
    ];
    points.extend(CONFIGS.iter().flat_map(|&counts| {
        (1..=4).map(move |n| (Mode::Scatter, placements::replicas(counts), n))
    }));
    let mut reports = run_many(&points).into_iter();
    let base2 = reports.next().unwrap();
    let base3 = reports.next().unwrap();

    for counts in CONFIGS {
        for n in 1..=4 {
            let r = reports.next().unwrap();
            qos.row(vec![
                format!("{counts:?}"),
                n.to_string(),
                f1(r.fps()),
                f1(r.e2e_mean_ms()),
                pct(r.success_rate),
            ]);
            let total_mem: f64 = SERVICE_KINDS.iter().map(|&k| r.memory_gb(k)).sum();
            hw.row(vec![
                format!("{counts:?}"),
                n.to_string(),
                f1(total_mem),
                f1(r.total_cpu_pct()),
                f1(r.total_gpu_pct()),
            ]);
        }
    }

    let best2 = run(Mode::Scatter, placements::replicas([1, 2, 2, 1, 2]), 2);
    let best3 = run(Mode::Scatter, placements::replicas([1, 2, 2, 1, 2]), 3);
    qos.note(format!(
        "paper: [1,2,2,1,2] best config, +15%/+10% FPS at 2/3 clients — measured {:+.0}%/{:+.0}%",
        (best2.fps() / base2.fps() - 1.0) * 100.0,
        (best3.fps() / base3.fps() - 1.0) * 100.0
    ));
    qos.note(format!(
        "paper: its E2E rises ≈30% from balancing overhead — measured {:+.0}%",
        (best2.e2e_mean_ms() / base2.e2e_mean_ms() - 1.0) * 100.0
    ));
    qos.note(
        "paper: [2,2,1,1,1] loses FPS (−26%) — replicated ingress congests single-instance tail",
    );
    qos.note("paper: sticky sift state limits the benefit of balancing ([1,2,1,1,2] ≈ baseline)");

    // Scale-out extension (DESIGN.md §14): the same client ladder as the
    // perfbench scale stage, run directly (short fixed horizon, streaming
    // metrics — the shared run cache would override the duration).
    let mut scale = Table::new(
        "Fig 3 (scale): site-sharded scAtteR beyond the testbed's client counts",
        &[
            "clients",
            "sites",
            "mean FPS",
            "median FPS",
            "E2E ms",
            "success",
        ],
    );
    // Debug builds (plain `cargo test`) cap the ladder: the 100k point
    // is a release-only measurement.
    let cap = if cfg!(debug_assertions) {
        10_000
    } else {
        usize::MAX
    };
    for &n in SCALE_CLIENTS.iter().filter(|&&n| n <= cap) {
        let r = scatter::run_experiment(scale_cfg(n));
        scale.row(vec![
            n.to_string(),
            SCALE_SITES.to_string(),
            f1(r.fps()),
            f1(r.fps_median()),
            f1(r.e2e_mean_ms()),
            pct(r.success_rate),
        ]);
    }
    scale.note(
        "single-instance services saturate: aggregate completions stay flat, so per-client \
         FPS falls ∝ 1/clients while per-client metrics stream in O(sites + buckets) memory",
    );
    vec![qos, hw, scale]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twelve_points_per_panel() {
        std::env::set_var("SCATTER_EXP_SECS", "15");
        let tables = run_figure();
        assert_eq!(tables[0].rows.len(), 12);
        assert_eq!(tables[1].rows.len(), 12);
    }
}
