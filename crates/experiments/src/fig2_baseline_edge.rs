//! Figure 2: baseline scAtteR performance on the edge.
//!
//! Four placement configurations (C1, C2, C12, C21) under 1–4 concurrent
//! clients; panels: FPS, E2E latency, per-service latency, and
//! per-service memory / CPU / GPU utilization.

use scatter::{Mode, ServiceKind, SERVICE_KINDS};

use crate::common::{edge_configs, run_many};
use crate::table::{f1, pct, Table};

/// Run the full fig. 2 sweep and render its panels.
pub fn run_figure() -> Vec<Table> {
    let mut qos = Table::new(
        "Fig 2 (QoS): scAtteR baseline on edge — FPS / E2E / success / jitter vs clients",
        &["config", "clients", "FPS", "E2E ms", "success", "jitter ms"],
    );
    let mut service_lat = Table::new(
        "Fig 2 (service latency, ms, mean per service)",
        &[
            "config", "clients", "primary", "sift", "encoding", "lsh", "matching",
        ],
    );
    let mut hw = Table::new(
        "Fig 2 (hardware): stacked service memory and machine CPU/GPU utilization",
        &[
            "config",
            "clients",
            "mem GB (sift)",
            "mem GB (total)",
            "CPU %",
            "GPU %",
        ],
    );

    // All 16 points are independent: fan them out across the parallel
    // runner, then consume the ordered reports row by row.
    let configs = edge_configs();
    let points: Vec<_> = configs
        .iter()
        .flat_map(|(_, p)| (1..=4).map(|n| (Mode::Scatter, p.clone(), n)))
        .collect();
    let labels = configs
        .iter()
        .flat_map(|(label, _)| (1..=4).map(move |n| (*label, n)));

    for ((label, n), r) in labels.zip(run_many(&points)) {
        qos.row(vec![
            label.to_string(),
            n.to_string(),
            f1(r.fps()),
            f1(r.e2e_mean_ms()),
            pct(r.success_rate),
            f1(r.jitter_ms),
        ]);
        let mut lat_row = vec![label.to_string(), n.to_string()];
        for k in SERVICE_KINDS {
            lat_row.push(f1(r.service_latency_ms(k).mean()));
        }
        service_lat.row(lat_row);
        let total_mem: f64 = SERVICE_KINDS.iter().map(|&k| r.memory_gb(k)).sum();
        hw.row(vec![
            label.to_string(),
            n.to_string(),
            f1(r.memory_gb(ServiceKind::Sift)),
            f1(total_mem),
            f1(r.total_cpu_pct()),
            f1(r.total_gpu_pct()),
        ]);
    }

    qos.note("paper: single client ≥25 FPS at ≈40 ms E2E in all configs (≈85% success)");
    qos.note("paper: FPS degrades sharply with concurrent clients; <10 FPS by 4 clients");
    qos.note("paper: jitter grows with clients due to frame drops (fig. 10a)");
    service_lat.note("paper: sift is the heaviest stage; service latency inflates with load");
    hw.note("paper: sift memory grows several-fold with clients (state held for matching)");
    hw.note("paper: CPU/GPU utilization *declines* with clients as services stall on drops");
    vec![qos, service_lat, hw]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure_has_three_panels_and_sixteen_points() {
        std::env::set_var("SCATTER_EXP_SECS", "15");
        let tables = run_figure();
        assert_eq!(tables.len(), 3);
        for t in &tables {
            assert_eq!(t.rows.len(), 16, "4 configs × 4 client counts");
        }
    }
}
