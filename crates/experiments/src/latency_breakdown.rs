//! End-to-end latency budget decomposition — where each millisecond of
//! E2E goes (per-stage compute, queue/fetch waits, network) for the
//! paper's key deployments. The paper plots E2E and per-service latency
//! separately; this table reconciles them into one budget.

use scatter::config::placements;
use scatter::Mode;

use crate::common::run_many;
use crate::table::{f1, Table};

#[cfg(test)]
fn run(mode: Mode, placement: orchestra::PlacementSpec, clients: usize) -> scatter::RunReport {
    // Standard length/seed/warmup (the explicit warmup equals the
    // RunConfig default, so these points share cache entries with the
    // figure sweeps).
    crate::common::run(mode, placement, clients)
}

pub fn run_figure() -> Vec<Table> {
    let mut t = Table::new(
        "Latency budget: mean ms per completed frame (compute c / wait w per stage, + network)",
        &[
            "deployment",
            "primary c",
            "sift c",
            "sift w*",
            "enc c",
            "enc w",
            "lsh c",
            "lsh w",
            "match c",
            "match w*",
            "network",
            "E2E",
        ],
    );

    let cases: Vec<(&str, Mode, orchestra::PlacementSpec, usize)> = vec![
        ("scAtteR C1, 1 client", Mode::Scatter, placements::c1(), 1),
        ("scAtteR C1, 4 clients", Mode::Scatter, placements::c1(), 4),
        (
            "scAtteR++ C1, 4 clients",
            Mode::ScatterPP,
            placements::c1(),
            4,
        ),
        (
            "scAtteR++ C12, 4 clients",
            Mode::ScatterPP,
            placements::c12(),
            4,
        ),
        (
            "scAtteR cloud, 1 client",
            Mode::Scatter,
            placements::cloud_only(),
            1,
        ),
        (
            "scAtteR hybrid, 2 clients",
            Mode::Scatter,
            placements::hybrid_edge_cloud(),
            2,
        ),
    ];

    let points: Vec<_> = cases
        .iter()
        .map(|(_, m, p, c)| (*m, p.clone(), *c))
        .collect();
    for ((label, _, _, _), r) in cases.iter().zip(run_many(&points)) {
        let mut row = vec![label.to_string()];
        // primary compute; then per-stage compute + wait for the rest.
        row.push(f1(r.breakdown_compute[0].mean()));
        for i in 1..5 {
            row.push(f1(r.breakdown_compute[i].mean()));
            row.push(f1(r.breakdown_queue[i].mean()));
        }
        row.push(f1(r.breakdown_network.mean()));
        row.push(f1(r.e2e_mean_ms()));
        t.row(row);
    }

    t.note("w = sidecar queue wait (scAtteR++); for scAtteR, match w is the fetch");
    t.note("busy-wait on sift — the dependency loop's direct latency cost");
    t.note("network includes client access, inter-machine hops and return path;");
    t.note("the hybrid row shows the Internet residual dominating the budget");
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breakdown_sums_to_e2e() {
        std::env::set_var("SCATTER_EXP_SECS", "12");
        let r = run(Mode::ScatterPP, placements::c1(), 2);
        let total: f64 = (0..5)
            .map(|i| r.breakdown_compute[i].mean() + r.breakdown_queue[i].mean())
            .sum::<f64>()
            + r.breakdown_network.mean();
        let e2e = r.e2e_mean_ms();
        assert!(
            (total - e2e).abs() < e2e * 0.05,
            "breakdown {total:.1} should reconstruct E2E {e2e:.1}"
        );
    }

    #[test]
    fn fetch_wait_shows_in_scatter_matching() {
        std::env::set_var("SCATTER_EXP_SECS", "12");
        let r = run(Mode::Scatter, placements::c1(), 1);
        let fetch_wait = r.breakdown_queue[scatter::ServiceKind::Matching.index()].mean();
        assert!(
            fetch_wait > 0.5,
            "the fetch round-trip must appear in matching's wait: {fetch_wait:.2} ms"
        );
        // And the other stages have no queue in scAtteR.
        for kind in &scatter::SERVICE_KINDS[..4] {
            let w = r.breakdown_queue[kind.index()].mean();
            assert!(w < 0.2, "{kind:?} unexpectedly queued {w:.2} ms in scAtteR");
        }
    }

    #[test]
    fn hybrid_network_share_dominates() {
        std::env::set_var("SCATTER_EXP_SECS", "12");
        let edge = run(Mode::Scatter, placements::c1(), 1);
        let hybrid = run(Mode::Scatter, placements::hybrid_edge_cloud(), 1);
        assert!(
            hybrid.breakdown_network.mean() > edge.breakdown_network.mean() * 3.0,
            "hybrid network {:.1} ms should dwarf edge {:.1} ms",
            hybrid.breakdown_network.mean(),
            edge.breakdown_network.mean()
        );
    }
}
