//! Figure 11 (appendix A.1.2): hybrid edge-cloud deployment
//! [E1, C, C, C, C] — ingress `primary` at the edge, everything else in
//! the cloud.
//!
//! Anchors: severe degradation vs cloud-only — ≈2× latency increase and
//! collapsing FPS, driven by frame drops on the public Internet path
//! (the primary→sift hop now ships *uncompressed* pre-processed frames
//! across the constrained uplink).

use scatter::config::placements;
use scatter::{Mode, SERVICE_KINDS};

use crate::common::run_many;
use crate::table::{f1, pct, Table};

pub fn run_figure() -> Vec<Table> {
    let mut t = Table::new(
        "Fig 11: hybrid [E1,C,C,C,C] scAtteR vs cloud-only",
        &["deployment", "clients", "FPS", "E2E ms", "success"],
    );
    let mut lat = Table::new(
        "Fig 11 (service latency, ms, hybrid)",
        &["clients", "primary", "sift", "encoding", "lsh", "matching"],
    );

    // Hybrid + cloud reference, 8 points in one batch (cloud points are
    // cache hits after fig 4 in `--bin all`).
    let points: Vec<_> = (1..=4)
        .flat_map(|n| {
            [
                (Mode::Scatter, placements::hybrid_edge_cloud(), n),
                (Mode::Scatter, placements::cloud_only(), n),
            ]
        })
        .collect();
    let mut reports = run_many(&points).into_iter();

    let mut hybrid_e2e_n2 = 0.0;
    let mut cloud_e2e_n2 = 0.0;
    for n in 1..=4 {
        let h = reports.next().unwrap();
        let c = reports.next().unwrap();
        if n == 2 {
            hybrid_e2e_n2 = h.e2e_mean_ms();
            cloud_e2e_n2 = c.e2e_mean_ms();
        }
        t.row(vec![
            "hybrid [E1,C,C,C,C]".into(),
            n.to_string(),
            f1(h.fps()),
            f1(h.e2e_mean_ms()),
            pct(h.success_rate),
        ]);
        t.row(vec![
            "cloud-only".into(),
            n.to_string(),
            f1(c.fps()),
            f1(c.e2e_mean_ms()),
            pct(c.success_rate),
        ]);
        let mut row = vec![n.to_string()];
        for k in SERVICE_KINDS {
            row.push(f1(h.service_latency_ms(k).mean()));
        }
        lat.row(row);
    }

    t.note(format!(
        "paper: ≈2× latency vs cloud-only with multiple clients — measured {:.1}× at 2 clients",
        hybrid_e2e_n2 / cloud_e2e_n2
    ));
    t.note("paper: frame drops over the public Internet path are the primary contributor");
    vec![t, lat]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hybrid_and_cloud_rows_interleaved() {
        std::env::set_var("SCATTER_EXP_SECS", "12");
        let tables = run_figure();
        assert_eq!(tables[0].rows.len(), 8);
        assert_eq!(tables[1].rows.len(), 4);
    }
}
