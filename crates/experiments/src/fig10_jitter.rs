//! Figure 10: jitter (Δ inter-frame receive time) for (a) baseline edge,
//! (b) service scalability, and (c) cloud deployments.
//!
//! Anchors: baseline jitter grows with clients (frame drops), up to
//! ≈6–9 ms at 4 clients; replicated and cloud deployments sit lower
//! (≈1–3 ms), the cloud slightly elevated by Internet-path latency
//! fluctuations.

use scatter::config::placements;
use scatter::Mode;

use crate::common::{edge_configs, run};
use crate::table::{f1, Table};

pub fn run_figure() -> Vec<Table> {
    let mut t = Table::new(
        "Fig 10: jitter (ms) vs clients — baseline edge / scalability / cloud",
        &["deployment", "n1", "n2", "n3", "n4"],
    );
    // (a) baseline edge configs.
    for (label, placement) in edge_configs() {
        let mut row = vec![format!("a) {label}")];
        for n in 1..=4 {
            let r = run(Mode::Scatter, placement.clone(), n);
            row.push(f1(r.jitter_ms));
        }
        t.row(row);
    }
    // (b) scalability configs.
    for counts in crate::fig3_scalability::CONFIGS {
        let mut row = vec![format!("b) {counts:?}")];
        for n in 1..=4 {
            let r = run(Mode::Scatter, placements::replicas(counts), n);
            row.push(f1(r.jitter_ms));
        }
        t.row(row);
    }
    // (c) cloud.
    let mut row = vec!["c) cloud-only".to_string()];
    for n in 1..=4 {
        let r = run(Mode::Scatter, placements::cloud_only(), n);
        row.push(f1(r.jitter_ms));
    }
    t.row(row);

    t.note("paper: a) grows with clients (drops) toward ≈6–9 ms; b)+c) stay ≈1–3 ms");
    t.note("paper: cloud jitter slightly above C1/C2 due to Internet latency fluctuation");
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eight_series() {
        std::env::set_var("SCATTER_EXP_SECS", "12");
        let tables = run_figure();
        assert_eq!(tables[0].rows.len(), 4 + 3 + 1);
    }
}
