//! Figure 10: jitter (Δ inter-frame receive time) for (a) baseline edge,
//! (b) service scalability, and (c) cloud deployments.
//!
//! Anchors: baseline jitter grows with clients (frame drops), up to
//! ≈6–9 ms at 4 clients; replicated and cloud deployments sit lower
//! (≈1–3 ms), the cloud slightly elevated by Internet-path latency
//! fluctuations.

use scatter::config::placements;
use scatter::Mode;

use crate::common::{edge_configs, run_many};
use crate::table::{f1, Table};

pub fn run_figure() -> Vec<Table> {
    let mut t = Table::new(
        "Fig 10: jitter (ms) vs clients — baseline edge / scalability / cloud",
        &["deployment", "n1", "n2", "n3", "n4"],
    );
    // Every point here re-plots a fig 2/3/4 config under the jitter
    // metric, so in `--bin all` the whole figure is served from the run
    // cache; standalone it fans out as one 32-point batch.
    let mut series: Vec<(String, orchestra::PlacementSpec)> = Vec::new();
    for (label, placement) in edge_configs() {
        series.push((format!("a) {label}"), placement));
    }
    for counts in crate::fig3_scalability::CONFIGS {
        series.push((format!("b) {counts:?}"), placements::replicas(counts)));
    }
    series.push(("c) cloud-only".to_string(), placements::cloud_only()));

    let points: Vec<_> = series
        .iter()
        .flat_map(|(_, p)| (1..=4).map(|n| (Mode::Scatter, p.clone(), n)))
        .collect();
    let mut reports = run_many(&points).into_iter();
    for (label, _) in &series {
        let mut row = vec![label.clone()];
        for _ in 1..=4 {
            row.push(f1(reports.next().unwrap().jitter_ms));
        }
        t.row(row);
    }

    t.note("paper: a) grows with clients (drops) toward ≈6–9 ms; b)+c) stay ≈1–3 ms");
    t.note("paper: cloud jitter slightly above C1/C2 due to Internet latency fluctuation");
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eight_series() {
        std::env::set_var("SCATTER_EXP_SECS", "12");
        let tables = run_figure();
        assert_eq!(tables[0].rows.len(), 4 + 3 + 1);
    }
}
