//! Bursty vs uniform loss at equal average rate — an access-network
//! effect `tc netem`'s i.i.d. loss (appendix A.1.1) cannot express.
//!
//! Real mobile channels lose packets in bursts (fading, handover), and
//! for large fragmented AR frames that is *good news*: a 310 KB frame
//! spans ≈200 UDP fragments, so i.i.d. loss at rate p kills the datagram
//! with probability 1 − (1 − p)^200 (≈ 87 % at p = 1 %!), while a bursty
//! channel at the *same average packet rate* concentrates its losses
//! inside few frames and lets the rest through intact. The paper's
//! i.i.d. `tc netem` numbers therefore *understate* what AR achieves on
//! real fading channels — and overstate the steadiness (uniform loss
//! produces constant long freezes; bursts produce rare short ones).

use scatter::config::{placements, RunConfig};
use scatter::Mode;
use simnet::NetemProfile;

use crate::common::run_batch;
use crate::table::{f1, pct, Table};

pub fn run_figure() -> Vec<Table> {
    let mut t = Table::new(
        "Burst-loss study: uniform vs Gilbert–Elliott at equal average loss (scAtteR, C2)",
        &[
            "channel",
            "avg loss",
            "clients",
            "FPS",
            "success",
            "longest freeze (frames)",
        ],
    );

    const GRID: [f64; 2] = [0.01, 0.03];
    let channels = || [("uniform", None), ("bursty (mean 25 pkts)", Some(25.0))];
    let cfgs: Vec<RunConfig> = GRID
        .iter()
        .flat_map(|&avg_loss| {
            channels().into_iter().flat_map(move |(label, burst)| {
                [1usize, 2].map(move |clients| {
                    let mut profile =
                        NetemProfile::new(&format!("{label} {avg_loss}"), 5.0, avg_loss);
                    if let Some(b) = burst {
                        profile = profile.with_burst_loss(b);
                    }
                    RunConfig::new(Mode::Scatter, placements::c2(), clients).with_netem(profile)
                })
            })
        })
        .collect();
    let mut reports = run_batch(cfgs).into_iter();

    for &avg_loss in &GRID {
        for (label, _) in channels() {
            for clients in [1usize, 2] {
                let r = reports.next().unwrap();
                t.row(vec![
                    label.to_string(),
                    format!("{:.0}%", avg_loss * 100.0),
                    clients.to_string(),
                    f1(r.fps()),
                    pct(r.success_rate),
                    r.max_freeze_frames.to_string(),
                ]);
            }
        }
    }

    t.note("fragmentation couples i.i.d. loss across a frame's ~200 fragments:");
    t.note("at 1% per-packet loss, 7 FPS survive uniformly vs 26 FPS bursty —");
    t.note("i.i.d. netem loss (the paper's fig. 9a setup) understates real-channel");
    t.note("QoS for large AR frames, and overstates its steadiness");
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fragmentation_makes_uniform_loss_catastrophic() {
        std::env::set_var("SCATTER_EXP_SECS", "20");
        let tables = run_figure();
        let rows = &tables[0].rows;
        let fps = |channel: &str| -> f64 {
            rows.iter()
                .find(|r| r[0].starts_with(channel) && r[1] == "3%" && r[2] == "1")
                .unwrap()[3]
                .parse()
                .unwrap()
        };
        let freeze = |channel: &str| -> u64 {
            rows.iter()
                .find(|r| r[0].starts_with(channel) && r[1] == "3%" && r[2] == "1")
                .unwrap()[5]
                .parse()
                .unwrap()
        };
        assert!(
            fps("bursty") > fps("uniform") * 3.0,
            "bursty {:.1} FPS should dwarf uniform {:.1} at equal packet loss",
            fps("bursty"),
            fps("uniform")
        );
        assert!(
            freeze("uniform") > freeze("bursty"),
            "uniform loss freezes longer ({} vs {} frames)",
            freeze("uniform"),
            freeze("bursty")
        );
    }
}
