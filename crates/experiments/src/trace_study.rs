//! Per-frame causal tracing study (`--bin trace`): trace a 4-client
//! scAtteR vs scAtteR++ run, print the top-5 critical-path stages and a
//! drop-forensics table (every emitted frame attributed to completion or
//! exactly one drop reason), reconcile the trace aggregates against the
//! report-level [`crate::latency_breakdown`] budget, and write the
//! Perfetto-loadable Chrome trace-event JSON artifacts.

use std::collections::BTreeMap;

use scatter::config::{placements, RunConfig};
use scatter::{run_experiment_traced, Mode, RunReport};
use simcore::SimDuration;
use trace::{Analysis, DropReason, Phase, TraceLog};

use crate::common::{run_secs, SEED};
use crate::table::{f1, f2, pct, Table};

/// Hard cap on frame events per exported Chrome trace document. Study
/// logs sit far below it; a scale-sized log is cut here with a counted
/// truncation marker instead of materializing gigabytes of JSON.
const CHROME_EXPORT_MAX_EVENTS: usize = 2_000_000;

/// One traced experiment point: the standard 4-client C1 deployment in
/// either mode. No warmup — the trace sees every frame the report sees,
/// so the two aggregate views cover identical populations.
pub fn traced_run(mode: Mode, clients: usize) -> (RunReport, TraceLog) {
    run_experiment_traced(
        RunConfig::new(mode, placements::c1(), clients)
            .with_duration(SimDuration::from_secs(run_secs()))
            .with_seed(SEED)
            .with_trace(trace::TraceConfig::default()),
    )
}

/// A reconciliation row: one budget component seen by both planes.
pub struct ReconRow {
    pub label: String,
    pub report_ms: f64,
    pub trace_ms: f64,
}

impl ReconRow {
    /// Relative disagreement, with a 0.05 ms floor so that near-zero
    /// components (e.g. queue waits in an uncongested run) don't blow up
    /// the ratio.
    pub fn rel_err(&self) -> f64 {
        let scale = self.report_ms.abs().max(self.trace_ms.abs()).max(0.05);
        (self.report_ms - self.trace_ms).abs() / scale
    }
}

/// Side-by-side budget components: the report's latency breakdown vs the
/// trace aggregator, per stage. The DES trace spans tile each completed
/// frame's E2E interval exactly, so these must agree (within 5%).
pub fn reconcile(r: &RunReport, a: &Analysis) -> Vec<ReconRow> {
    let mut rows = Vec::new();
    rows.push(ReconRow {
        label: "E2E".into(),
        report_ms: r.e2e_mean_ms(),
        trace_ms: a.mean_e2e_ms(),
    });
    for kind in scatter::SERVICE_KINDS {
        let i = kind.index();
        rows.push(ReconRow {
            label: format!("{} compute", kind.name()),
            report_ms: r.breakdown_compute[i].mean(),
            trace_ms: a.mean_stage_phase_ms(i as u8, Phase::Compute),
        });
        rows.push(ReconRow {
            label: format!("{} wait", kind.name()),
            report_ms: r.breakdown_queue[i].mean(),
            trace_ms: a.mean_stage_phase_ms(i as u8, Phase::SidecarHold)
                + a.mean_stage_phase_ms(i as u8, Phase::FetchWait),
        });
    }
    rows.push(ReconRow {
        label: "network".into(),
        report_ms: r.breakdown_network.mean(),
        trace_ms: a.mean_phase_ms(Phase::NetworkTransit) + a.mean_phase_ms(Phase::IngressQueue),
    });
    rows
}

fn mode_label(mode: Mode) -> &'static str {
    match mode {
        Mode::Scatter => "scAtteR",
        Mode::ScatterPP => "scAtteR++",
        Mode::StatelessOnly => "stateless-only",
        Mode::SidecarOnly => "sidecar-only",
    }
}

/// The two traced runs this study is built on.
fn runs() -> Vec<(Mode, RunReport, TraceLog, Analysis)> {
    [Mode::Scatter, Mode::ScatterPP]
        .into_iter()
        .map(|mode| {
            let (report, log) = traced_run(mode, 4);
            let analysis = Analysis::from_log(&log);
            analysis
                .check_invariants()
                .expect("trace log violates span invariants");
            (mode, report, log, analysis)
        })
        .collect()
}

fn forensics_table(points: &[(Mode, RunReport, TraceLog, Analysis)]) -> Table {
    let mut t = Table::new(
        "Drop forensics: every emitted frame attributed (4 clients, C1)",
        &[
            "deployment",
            "emitted",
            "completed",
            "busy-ingress",
            "threshold-filter",
            "netem-loss",
            "fragment-loss",
            "stale-fetch",
            "crash",
            "run-end",
            "attributed",
        ],
    );
    for (mode, _, _, a) in points {
        let reasons: BTreeMap<DropReason, usize> = a.drop_reasons();
        let count = |r: DropReason| reasons.get(&r).copied().unwrap_or(0);
        let attributed = a.completed() + reasons.values().sum::<usize>();
        t.row(vec![
            mode_label(*mode).to_string(),
            a.emitted().to_string(),
            a.completed().to_string(),
            count(DropReason::BusyIngress).to_string(),
            count(DropReason::ThresholdFilter).to_string(),
            count(DropReason::NetemLoss).to_string(),
            count(DropReason::FragmentLoss).to_string(),
            count(DropReason::StaleFetch).to_string(),
            count(DropReason::Crash).to_string(),
            count(DropReason::RunEnd).to_string(),
            pct(attributed as f64 / a.emitted().max(1) as f64),
        ]);
    }
    t.note("attribution is structural: the analyzer closes unresolved frames as run-end,");
    t.note("so completed + Σ reasons == emitted for every finite run");
    t
}

fn critical_table(points: &[(Mode, RunReport, TraceLog, Analysis)]) -> Table {
    let mut t = Table::new(
        "Top-5 critical-path stages (share of completed frames' span time)",
        &[
            "deployment",
            "rank",
            "track",
            "phase",
            "mean ms/frame",
            "share",
        ],
    );
    for (mode, _, _, a) in points {
        for (rank, s) in a.critical_stages().into_iter().take(5).enumerate() {
            t.row(vec![
                mode_label(*mode).to_string(),
                (rank + 1).to_string(),
                s.track.clone(),
                s.phase.as_str().to_string(),
                f2(s.mean_ms),
                pct(s.share),
            ]);
        }
    }
    t.note("scAtteR's path is dominated by matching's fetch-wait (the dependency loop);");
    t.note("scAtteR++ trades it for sidecar-hold at the bottleneck stage");
    t
}

fn reconciliation_table(points: &[(Mode, RunReport, TraceLog, Analysis)]) -> Table {
    let mut t = Table::new(
        "Reconciliation: report-level latency breakdown vs trace aggregates (ms/frame)",
        &["deployment", "component", "report", "trace", "rel err"],
    );
    for (mode, r, _, a) in points {
        for row in reconcile(r, a) {
            t.row(vec![
                mode_label(*mode).to_string(),
                row.label.clone(),
                f1(row.report_ms),
                f1(row.trace_ms),
                pct(row.rel_err()),
            ]);
        }
    }
    t.note("DES trace spans tile each completed frame's E2E exactly, so the two views");
    t.note("must agree within 5% (rel err uses a 0.05 ms floor for near-zero components)");
    t
}

pub fn run_figure() -> Vec<Table> {
    let points = runs();
    vec![
        forensics_table(&points),
        critical_table(&points),
        reconciliation_table(&points),
    ]
}

/// `--bin trace` entry point: print the tables and write the artifacts
/// (Chrome trace-event JSON per mode + the tables as JSON) to
/// `results/`.
pub fn main() {
    let points = runs();
    let dir = std::path::Path::new("results");
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("cannot create {}: {e}", dir.display());
    }
    for (mode, _, log, _) in &points {
        let name = match mode {
            Mode::ScatterPP => "trace_scatterpp.json",
            _ => "trace_scatter.json",
        };
        let path = dir.join(name);
        // Stream straight to disk (capped): the document is never
        // materialized in memory, so a scale-sized log exports in O(1)
        // space; past the cap a counted `truncated:<n>` meta event
        // marks the cut for the viewer.
        match std::fs::File::create(&path).and_then(|f| {
            let mut w = std::io::BufWriter::new(f);
            trace::chrome::export_stream(log, &mut w, CHROME_EXPORT_MAX_EVENTS)
        }) {
            Ok(stats) => eprintln!(
                "wrote {} ({} events{}; load in Perfetto / chrome://tracing)",
                path.display(),
                stats.written,
                if stats.omitted > 0 {
                    format!(", {} omitted by the cap", stats.omitted)
                } else {
                    String::new()
                }
            ),
            Err(e) => eprintln!("cannot write {}: {e}", path.display()),
        }
    }
    let tables = vec![
        forensics_table(&points),
        critical_table(&points),
        reconciliation_table(&points),
    ];
    let rendered: Vec<String> = tables.iter().map(|t| t.render_json()).collect();
    let path = dir.join("trace_tables.json");
    if let Err(e) = std::fs::write(&path, format!("[{}]", rendered.join(",\n"))) {
        eprintln!("cannot write {}: {e}", path.display());
    } else {
        eprintln!("wrote {}", path.display());
    }
    for t in tables {
        println!("{}", t.render());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn short() {
        std::env::set_var("SCATTER_EXP_SECS", "12");
    }

    #[test]
    fn forensics_attributes_every_frame_in_both_modes() {
        short();
        for mode in [Mode::Scatter, Mode::ScatterPP] {
            let (_, log) = traced_run(mode, 4);
            let a = Analysis::from_log(&log);
            a.check_invariants().expect("invariants");
            let by_reason: usize = a.drop_reasons().values().sum();
            assert_eq!(
                a.completed() + by_reason,
                a.emitted(),
                "{mode:?}: attribution must be exactly 100%"
            );
            assert!(a.emitted() > 0);
        }
    }

    #[test]
    fn drop_reasons_match_the_modes_failure_signatures() {
        short();
        let (_, log) = traced_run(Mode::Scatter, 4);
        let a = Analysis::from_log(&log);
        let reasons = a.drop_reasons();
        assert!(
            reasons.get(&DropReason::BusyIngress).copied().unwrap_or(0) > 0,
            "overloaded scAtteR must drop at busy ingresses: {reasons:?}"
        );
        let (_, log) = traced_run(Mode::ScatterPP, 4);
        let a = Analysis::from_log(&log);
        let reasons = a.drop_reasons();
        assert!(
            reasons
                .get(&DropReason::ThresholdFilter)
                .copied()
                .unwrap_or(0)
                > 0,
            "overloaded scAtteR++ must filter at sidecars: {reasons:?}"
        );
        assert_eq!(
            reasons.get(&DropReason::BusyIngress),
            None,
            "scAtteR++ queues instead of dropping on busy: {reasons:?}"
        );
    }

    #[test]
    fn trace_aggregates_reconcile_with_latency_breakdown() {
        short();
        for mode in [Mode::Scatter, Mode::ScatterPP] {
            let (r, log) = traced_run(mode, 4);
            let a = Analysis::from_log(&log);
            for row in reconcile(&r, &a) {
                assert!(
                    row.rel_err() <= 0.05,
                    "{mode:?} {}: report {:.3} ms vs trace {:.3} ms ({:.1}% off)",
                    row.label,
                    row.report_ms,
                    row.trace_ms,
                    row.rel_err() * 100.0
                );
            }
        }
    }

    #[test]
    fn chrome_export_is_valid_json_with_per_instance_tracks() {
        short();
        let (_, log) = traced_run(Mode::ScatterPP, 2);
        let doc = trace::chrome::export(&log);
        let v = trace::json::Value::parse(&doc).expect("valid Chrome trace JSON");
        let events = v.get("traceEvents").unwrap().as_array().unwrap();
        let thread_names: Vec<&str> = events
            .iter()
            .filter(|e| e.get("name").and_then(|n| n.as_str()) == Some("thread_name"))
            .map(|e| {
                e.get("args")
                    .unwrap()
                    .get("name")
                    .unwrap()
                    .as_str()
                    .unwrap()
            })
            .collect();
        // One track per service instance plus one per client.
        for expected in [
            "primary#0",
            "sift#0",
            "encoding#0",
            "lsh#0",
            "matching#0",
            "client-0",
            "client-1",
        ] {
            assert!(
                thread_names.contains(&expected),
                "missing track {expected}: {thread_names:?}"
            );
        }
        assert!(
            events
                .iter()
                .any(|e| e.get("ph").and_then(|p| p.as_str()) == Some("X")),
            "no span events exported"
        );
    }

    #[test]
    fn traced_runs_are_byte_for_byte_deterministic() {
        short();
        let (r1, log1) = traced_run(Mode::ScatterPP, 3);
        let (r2, log2) = traced_run(Mode::ScatterPP, 3);
        assert_eq!(r1.e2e_mean_ms(), r2.e2e_mean_ms());
        assert_eq!(
            trace::chrome::export(&log1),
            trace::chrome::export(&log2),
            "same seed must reproduce the identical trace document"
        );
    }

    #[test]
    fn sampling_reduces_trace_volume_without_breaking_invariants() {
        short();
        let cfg = |n| {
            RunConfig::new(Mode::ScatterPP, placements::c1(), 2)
                .with_duration(SimDuration::from_secs(run_secs()))
                .with_seed(SEED)
                .with_trace(trace::TraceConfig::sample_every(n))
        };
        let (_, full) = run_experiment_traced(cfg(1));
        let (_, sampled) = run_experiment_traced(cfg(10));
        assert!(
            sampled.events.len() * 5 < full.events.len(),
            "1-in-10 sampling must shrink the log: {} vs {}",
            sampled.events.len(),
            full.events.len()
        );
        let a = Analysis::from_log(&sampled);
        a.check_invariants().expect("sampled log invariants");
    }
}
