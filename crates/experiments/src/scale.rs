//! Scale-out experiment points (DESIGN.md §14): the shared client-count
//! ladder behind `perfbench --scale` / `--smoke-scale` and fig. 3's
//! scale table, so the benchmark and the figure always sweep the same
//! worlds.
//!
//! Each point runs the scAtteR C12 deployment with clients spread over
//! [`SCALE_SITES`] access sites and streaming per-client metrics, for a
//! short fixed horizon — long enough for the event mix to reach steady
//! state, short enough that the 100k-client point stays in CI budget.

use orchestra::PlacementSpec;
use scatter::config::{placements, RunConfig, ScaleConfig};
use scatter::Mode;
use simcore::SimDuration;

use crate::common::SEED;

/// Client counts of the standard scale ladder (ascending, so a single
/// process's `VmHWM` high-water mark read after each stage reflects
/// that stage's own peak).
pub const SCALE_CLIENTS: [usize; 3] = [1_000, 10_000, 100_000];

/// The `--full` extension point.
pub const SCALE_CLIENTS_FULL: usize = 1_000_000;

/// Access sites the clients round-robin over.
pub const SCALE_SITES: usize = 16;

/// Simulated seconds per scale point (plus [`SCALE_WARMUP_SECS`] of
/// warmup inside it).
pub const SCALE_SECS: u64 = 2;
pub const SCALE_WARMUP_SECS: u64 = 1;

/// The deployment every scale point runs: scAtteR on C12.
pub fn scale_placement() -> PlacementSpec {
    placements::c12()
}

/// Build the standard scale-point config for `clients`.
pub fn scale_cfg(clients: usize) -> RunConfig {
    RunConfig::new(Mode::Scatter, scale_placement(), clients)
        .with_duration(SimDuration::from_secs(SCALE_SECS))
        .with_warmup(SimDuration::from_secs(SCALE_WARMUP_SECS))
        .with_seed(SEED)
        .with_scale(ScaleConfig::new(SCALE_SITES))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_is_ascending() {
        assert!(SCALE_CLIENTS.windows(2).all(|w| w[0] < w[1]));
        assert!(SCALE_CLIENTS[2] < SCALE_CLIENTS_FULL);
    }

    #[test]
    fn scale_point_runs_and_streams() {
        let r = scatter::run_experiment(scale_cfg(200));
        let s = r.scale.as_ref().expect("scale points stream");
        assert_eq!(s.sites, SCALE_SITES);
        assert!(r.fps() > 0.0, "fps {}", r.fps());
        assert!(r.per_client_fps.is_empty(), "streaming keeps no vectors");
    }
}
