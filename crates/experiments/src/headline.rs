//! The paper's headline claims (§1, §5), verified in one table:
//!
//! - ≈2.75× increase in concurrent client capacity;
//! - ≈4× improved framerate (scAtteR++ vs scAtteR under load);
//! - +9 % FPS and +17.6 % success for a single client;
//! - 2.5× frame-rate increase with multiple concurrent clients.

use scatter::config::placements;
use scatter::Mode;

use crate::common::{run, run_many, run_seeds};
use crate::table::{f1, f2, pct, Table};

pub fn run_figure() -> Vec<Table> {
    let mut t = Table::new(
        "Headline claims: scAtteR++ vs scAtteR",
        &["claim", "paper", "measured"],
    );

    // Single-client improvement (C1), mean over 3 seeds.
    let s1_stat = run_seeds(Mode::Scatter, &placements::c1(), 1, 3, |r| r.fps());
    let p1_stat = run_seeds(Mode::ScatterPP, &placements::c1(), 1, 3, |r| r.fps());
    let s1 = run(Mode::Scatter, placements::c1(), 1);
    let p1 = run(Mode::ScatterPP, placements::c1(), 1);
    t.row(vec![
        "single-client FPS gain".into(),
        "+9%".into(),
        format!(
            "{:+.0}% ({} → {} FPS over 3 seeds)",
            (p1_stat.mean / s1_stat.mean - 1.0) * 100.0,
            s1_stat.format(),
            p1_stat.format()
        ),
    ]);
    t.row(vec![
        "single-client success gain".into(),
        "+17.6%".into(),
        format!(
            "{:+.1} pp ({} → {})",
            (p1.success_rate - s1.success_rate) * 100.0,
            pct(s1.success_rate),
            pct(p1.success_rate)
        ),
    ]);

    // Multi-client framerate multiple (4 clients, all edge configs mean)
    // — one parallel batch of 8 points (all cache hits after figs 2/6).
    let points: Vec<_> = crate::common::edge_configs()
        .into_iter()
        .flat_map(|(_, placement)| {
            [
                (Mode::Scatter, placement.clone(), 4),
                (Mode::ScatterPP, placement, 4),
            ]
        })
        .collect();
    let mut s_sum = 0.0;
    let mut p_sum = 0.0;
    for pair in run_many(&points).chunks(2) {
        s_sum += pair[0].fps();
        p_sum += pair[1].fps();
    }
    t.row(vec![
        "4-client framerate multiple".into(),
        "≈2.5–4×".into(),
        format!("{}×", f2(p_sum / s_sum)),
    ]);

    // Client-capacity multiple: largest n where scAtteR++ still delivers
    // the FPS scAtteR manages at 4 clients, on the scaled cluster. The
    // sequential scan stopped at the first (largest-n) hit; batching all
    // nine candidate points and scanning the merged results preserves
    // that answer while letting the runs proceed in parallel.
    let scatter4 = run(Mode::Scatter, placements::c2(), 4).fps();
    let candidates: Vec<_> = (4..=12)
        .rev()
        .map(|n| (Mode::ScatterPP, placements::replicas([1, 3, 2, 1, 3]), n))
        .collect();
    let mut capacity_mult = 1.0;
    for ((_, _, n), r) in candidates.iter().zip(run_many(&candidates)) {
        if r.fps() >= scatter4 {
            capacity_mult = *n as f64 / 4.0;
            break;
        }
    }
    t.row(vec![
        "concurrent-client capacity".into(),
        "≈2.75×".into(),
        format!("{}× (scAtteR@4: {} FPS)", f2(capacity_mult), f1(scatter4)),
    ]);

    t.note(
        "capacity = largest client count where scAtteR++ (scaled) matches scAtteR's 4-client FPS",
    );
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn headline_table_has_four_claims() {
        std::env::set_var("SCATTER_EXP_SECS", "12");
        let tables = run_figure();
        assert_eq!(tables[0].rows.len(), 4);
    }
}
