//! The §5 model-optimization argument, made runnable: "substituting SIFT
//! with [an accelerated extractor] helps improve inference speed … but
//! without a horizontally scalable design the application will incur the
//! same issues … delayed to a higher number of clients."
//!
//! Part 1 measures the *real* extractors on this machine (the DoG/SIFT
//! pipeline vs FAST-9 + BRIEF from `vision::fast`) to ground the speedup
//! factor. Part 2 applies that factor to the simulated `sift` stage and
//! sweeps clients under scAtteR: the saturation point moves right, the
//! collapse shape stays.

use std::time::Instant;

use scatter::config::{placements, RunConfig};
use scatter::{run_experiment_with, CostModel, Mode};
use simcore::SimDuration;
use vision::fast::{brief_pattern, describe_brief, detect_fast};
use vision::keypoints::{detect, DetectorParams};
use vision::scene::SceneGenerator;

use crate::common::{run_secs, SEED};
use crate::table::{f1, f2, pct, Table};

/// Measure mean per-frame extraction wall time of both extractors, ms.
pub fn measure_extractors(frames: u32) -> (f64, f64) {
    let g = SceneGenerator::workplace_scaled(1, 320, 180);
    let pattern = brief_pattern();
    let rendered: Vec<_> = (0..frames).map(|i| g.frame(i)).collect();

    let t0 = Instant::now();
    for img in &rendered {
        let (pyr, kps) = detect(img, &DetectorParams::default());
        let _ = vision::descriptor::describe_all(&pyr, &kps);
    }
    let dog_ms = t0.elapsed().as_secs_f64() * 1e3 / frames as f64;

    let t1 = Instant::now();
    for img in &rendered {
        let corners = detect_fast(img, 0.08, 300);
        let _ = describe_brief(img, &corners, &pattern);
    }
    let fast_ms = t1.elapsed().as_secs_f64() * 1e3 / frames as f64;
    (dog_ms, fast_ms)
}

pub fn run_figure() -> Vec<Table> {
    let mut real = Table::new(
        "Fast extractor, part 1: measured extraction cost (real compute, 320x180)",
        &["extractor", "ms/frame", "speedup"],
    );
    let (dog_ms, fast_ms) = measure_extractors(6);
    let speedup = dog_ms / fast_ms;
    real.row(vec!["DoG/SIFT pipeline".into(), f2(dog_ms), "1.00×".into()]);
    real.row(vec![
        "FAST-9 + BRIEF".into(),
        f2(fast_ms),
        format!("{}×", f2(speedup)),
    ]);
    real.note("the speedup factor below is taken from this measurement, floored at 3×");

    // Apply the measured speedup (conservatively floored) to sift's base
    // cost and sweep clients.
    let factor = speedup.max(3.0);
    let mut sim = Table::new(
        "Fast extractor, part 2: scAtteR client sweep with accelerated sift (C2)",
        &[
            "sift model",
            "n2",
            "n4",
            "n6",
            "n8",
            "first n with <50% success",
        ],
    );
    for (label, scale) in [("SIFT (baseline)", 1.0), ("accelerated", 1.0 / factor)] {
        let mut cost = CostModel::default();
        cost.base_ms[1] *= scale;
        let mut row = vec![label.to_string()];
        let mut saturation = String::from(">8");
        let mut sat_found = false;
        for n in [2usize, 4, 6, 8] {
            let r = run_experiment_with(
                RunConfig::new(Mode::Scatter, placements::c2(), n)
                    .with_duration(SimDuration::from_secs(run_secs()))
                    .with_seed(SEED),
                cost.clone(),
            );
            row.push(f1(r.fps()));
            if !sat_found && r.success_rate < 0.5 {
                saturation = n.to_string();
                sat_found = true;
            }
        }
        row.push(saturation);
        sim.row(row);
    }
    sim.note("§5: acceleration delays the saturation point to more clients but the");
    sim.note("drop-on-busy + dependency-loop collapse shape persists — only the");
    sim.note("horizontally scalable redesign changes the asymptote");

    // Recognition quality context: success of either path on real frames.
    let mut quality = Table::new(
        "Fast extractor, part 3: cross-frame match survival (real compute)",
        &["extractor", "matched fraction frame 0→1"],
    );
    let g = SceneGenerator::workplace_scaled(1, 320, 180);
    let (f0, f1_img) = (g.frame(0), g.frame(1));
    {
        let (pyr0, kps0) = detect(&f0, &DetectorParams::default());
        let d0 = vision::descriptor::describe_all(&pyr0, &kps0);
        let (pyr1, kps1) = detect(&f1_img, &DetectorParams::default());
        let d1 = vision::descriptor::describe_all(&pyr1, &kps1);
        let matches = vision::matching::match_descriptors(
            &d0,
            &d1,
            &vision::matching::MatchParams::default(),
        );
        quality.row(vec![
            "DoG/SIFT".into(),
            pct(matches.len() as f64 / d0.len().max(1) as f64),
        ]);
    }
    {
        let pattern = brief_pattern();
        let c0 = detect_fast(&f0, 0.08, 300);
        let c1 = detect_fast(&f1_img, 0.08, 300);
        let d0 = describe_brief(&f0, &c0, &pattern);
        let d1 = describe_brief(&f1_img, &c1, &pattern);
        let matches = vision::fast::match_brief(&d0, &d1, 60, 0.8);
        quality.row(vec![
            "FAST-9 + BRIEF".into(),
            pct(matches.len() as f64 / d0.len().max(1) as f64),
        ]);
    }
    quality
        .note("both extractors track the scene across frames; BRIEF trades invariance for speed");

    vec![real, sim, quality]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fast_is_measurably_cheaper() {
        let (dog, fast) = measure_extractors(2);
        assert!(fast < dog, "FAST {fast:.2} ms !< DoG {dog:.2} ms");
    }

    #[test]
    fn tables_have_expected_shape() {
        std::env::set_var("SCATTER_EXP_SECS", "10");
        let tables = run_figure();
        assert_eq!(tables.len(), 3);
        assert_eq!(tables[1].rows.len(), 2);
    }
}
