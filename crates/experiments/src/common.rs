//! Shared experiment parameters and run helpers.
//!
//! Every figure is a set of *independent* simulation points (the runs
//! share no state and each is bit-reproducible from its `RunConfig`),
//! so the harness fans points out across a work-stealing thread pool
//! ([`run_batch`] / [`par_map`]) sized by `SCATTER_JOBS` (default: the
//! machine's available parallelism). Results are merged back in input
//! order, which keeps every table and JSON artifact byte-identical to
//! a sequential run — see DESIGN.md §9.
//!
//! On top of that sits a process-wide deterministic run cache: several
//! figures revisit the same (mode, placement, clients) point (fig. 10
//! re-plots fig. 2/3/4 points for jitter, headline re-runs the edge
//! grid, ...). Since reports are pure functions of the config, the
//! cache returns a clone instead of re-simulating. Disable with
//! `SCATTER_RUN_CACHE=0` (e.g. when timing raw simulation throughput).

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, Once, OnceLock};

use orchestra::PlacementSpec;
use scatter::config::RunConfig;
use scatter::{run_experiment, run_experiment_with, CostModel, Mode, RunReport};
use simcore::SimDuration;

/// Simulated seconds per experiment point. The paper runs five minutes;
/// 60 s is statistically equivalent for these metrics and keeps the full
/// figure suite fast. Override with `SCATTER_EXP_SECS`; an unparsable
/// value warns once on stderr and falls back to the default.
pub fn run_secs() -> u64 {
    static WARN: Once = Once::new();
    match std::env::var("SCATTER_EXP_SECS") {
        Ok(s) => match s.trim().parse::<u64>() {
            Ok(v) if v >= 1 => v,
            _ => {
                WARN.call_once(|| {
                    eprintln!(
                        "warning: invalid SCATTER_EXP_SECS={s:?} (want a positive integer); \
                         using default 60"
                    );
                });
                60
            }
        },
        Err(_) => 60,
    }
}

/// Worker threads for [`run_batch`]/[`par_map`]. `SCATTER_JOBS` wins;
/// an unparsable or zero value warns once on stderr and falls back to
/// the machine's available parallelism. `SCATTER_JOBS=1` forces the
/// sequential path.
pub fn jobs() -> usize {
    static WARN: Once = Once::new();
    match std::env::var("SCATTER_JOBS") {
        Ok(s) => match s.trim().parse::<usize>() {
            Ok(v) if v >= 1 => v,
            _ => {
                WARN.call_once(|| {
                    eprintln!(
                        "warning: invalid SCATTER_JOBS={s:?} (want a positive integer); \
                         using available parallelism"
                    );
                });
                default_jobs()
            }
        },
        Err(_) => default_jobs(),
    }
}

fn default_jobs() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Warmup discarded from aggregates.
pub const WARMUP_SECS: u64 = 5;

/// Root seed for all experiment runs (reports are seed-reproducible).
pub const SEED: u64 = 20231205; // the conference's opening day

/// Apply the standard duration/warmup/seed to a config.
pub fn std_cfg(cfg: RunConfig) -> RunConfig {
    cfg.with_duration(SimDuration::from_secs(run_secs()))
        .with_warmup(SimDuration::from_secs(WARMUP_SECS))
        .with_seed(SEED)
}

/// Map `f` over `items` on a work-stealing pool of [`jobs`] scoped
/// threads (crossbeam-style scope). Workers claim items through an
/// atomic cursor — whichever thread is free takes the next point, so an
/// expensive 10-client run does not stall the queue behind it. Results
/// are re-ordered to input order before returning, making the output
/// indistinguishable from `items.iter().map(f).collect()`.
pub fn par_map<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    let n = items.len();
    let workers = jobs().min(n);
    if workers <= 1 {
        return items.iter().map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let done: Mutex<Vec<(usize, U)>> = Mutex::new(Vec::with_capacity(n));
    crossbeam::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| {
                let mut local: Vec<(usize, U)> = Vec::new();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    local.push((i, f(&items[i])));
                }
                done.lock().unwrap().extend(local);
            });
        }
    })
    .expect("experiment worker panicked");
    let mut out = done.into_inner().unwrap();
    out.sort_by_key(|&(i, _)| i);
    debug_assert_eq!(out.len(), n);
    out.into_iter().map(|(_, v)| v).collect()
}

// ---------------------------------------------------------------------
// Deterministic run cache (default cost model only — the key is the
// config's Debug string, which does not encode a custom CostModel).
// ---------------------------------------------------------------------

fn cache() -> &'static Mutex<HashMap<String, RunReport>> {
    static CACHE: OnceLock<Mutex<HashMap<String, RunReport>>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

fn cache_enabled() -> bool {
    std::env::var("SCATTER_RUN_CACHE").map_or(true, |v| v != "0")
}

/// Drop every cached report. The benchmark harness (`--bin perfbench`)
/// calls this between timed passes so a "cold" measurement is honest.
pub fn clear_run_cache() {
    cache().lock().unwrap().clear();
}

/// Run under the default cost model, consulting the process-wide cache.
/// Runs are pure functions of their config, so a hit returns a clone of
/// the previous report; concurrent misses on the same key both simulate
/// and insert identical results (no lock held across a simulation).
fn run_cached(cfg: RunConfig) -> RunReport {
    if !cache_enabled() {
        return run_experiment(cfg);
    }
    let key = format!("{cfg:?}");
    if let Some(hit) = cache().lock().unwrap().get(&key) {
        return hit.clone();
    }
    let report = run_experiment(cfg);
    cache().lock().unwrap().insert(key, report.clone());
    report
}

/// Run one experiment point with the standard length/seed.
pub fn run(mode: Mode, placement: PlacementSpec, clients: usize) -> RunReport {
    run_config(RunConfig::new(mode, placement, clients))
}

/// Run with a custom config, applying the standard length/seed defaults.
pub fn run_config(cfg: RunConfig) -> RunReport {
    run_cached(std_cfg(cfg))
}

/// Run a batch of configs in parallel (standard length/seed applied),
/// returning reports in input order.
pub fn run_batch(cfgs: Vec<RunConfig>) -> Vec<RunReport> {
    let cfgs: Vec<RunConfig> = cfgs.into_iter().map(std_cfg).collect();
    par_map(&cfgs, |cfg| run_cached(cfg.clone()))
}

/// Run a batch of plain (mode, placement, clients) points in parallel.
pub fn run_many(points: &[(Mode, PlacementSpec, usize)]) -> Vec<RunReport> {
    run_batch(
        points
            .iter()
            .map(|(m, p, c)| RunConfig::new(*m, p.clone(), *c))
            .collect(),
    )
}

/// Parallel batch under an explicit cost model (ablation studies).
/// Bypasses the cache: the cache key does not encode the cost model.
pub fn run_batch_with(cfgs: Vec<RunConfig>, cost: &CostModel) -> Vec<RunReport> {
    let cfgs: Vec<RunConfig> = cfgs.into_iter().map(std_cfg).collect();
    par_map(&cfgs, |cfg| run_experiment_with(cfg.clone(), cost.clone()))
}

/// A metric's mean ± sample standard deviation over several seeds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SeedStat {
    pub mean: f64,
    pub std: f64,
    pub n: usize,
}

impl SeedStat {
    pub fn format(&self) -> String {
        format!("{:.1} ± {:.1}", self.mean, self.std)
    }
}

/// Run the same experiment point under `n_seeds` independent seeds (in
/// parallel) and aggregate a metric — the multi-run statistics the
/// paper's five-minute single runs forgo. Seed `i` is derived as
/// `SEED + i·7919`, so replica seeds are a pure function of the replica
/// index and the aggregate is independent of scheduling order.
pub fn run_seeds<F>(
    mode: Mode,
    placement: &PlacementSpec,
    clients: usize,
    n_seeds: u64,
    metric: F,
) -> SeedStat
where
    F: Fn(&RunReport) -> f64,
{
    assert!(n_seeds >= 1);
    let cfgs: Vec<RunConfig> = (0..n_seeds)
        .map(|i| {
            RunConfig::new(mode, placement.clone(), clients)
                .with_duration(SimDuration::from_secs(run_secs()))
                .with_warmup(SimDuration::from_secs(WARMUP_SECS))
                .with_seed(SEED.wrapping_add(i * 7919))
        })
        .collect();
    let values: Vec<f64> = par_map(&cfgs, |cfg| run_cached(cfg.clone()))
        .iter()
        .map(metric)
        .collect();
    let n = values.len();
    let mean = values.iter().sum::<f64>() / n as f64;
    let std = if n < 2 {
        0.0
    } else {
        (values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (n - 1) as f64).sqrt()
    };
    SeedStat { mean, std, n }
}

/// The four placement configurations of figs. 2 and 6, labelled as in
/// the paper.
pub fn edge_configs() -> Vec<(&'static str, PlacementSpec)> {
    use scatter::config::placements::*;
    vec![
        ("C1 (E1 only)", c1()),
        ("C2 (E2 only)", c2()),
        ("C12 [E1,E1,E2,E2,E2]", c12()),
        ("C21 [E2,E2,E1,E1,E1]", c21()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use scatter::config::placements;

    /// `SCATTER_EXP_SECS` is process-global; tests that set or read it
    /// serialize here so they cannot observe each other's values.
    static ENV_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn edge_configs_are_four() {
        assert_eq!(edge_configs().len(), 4);
    }

    #[test]
    fn run_secs_defaults_sanely() {
        let _guard = ENV_LOCK.lock().unwrap();
        std::env::remove_var("SCATTER_EXP_SECS");
        assert_eq!(run_secs(), 60);
    }

    #[test]
    fn jobs_is_positive() {
        assert!(jobs() >= 1);
    }

    #[test]
    fn par_map_preserves_order_and_length() {
        let items: Vec<u64> = (0..97).collect();
        let got = par_map(&items, |&x| x * x);
        assert_eq!(got, items.iter().map(|&x| x * x).collect::<Vec<_>>());
        assert!(par_map(&Vec::<u64>::new(), |&x: &u64| x).is_empty());
    }

    #[test]
    fn seed_stats_have_modest_spread() {
        let _guard = ENV_LOCK.lock().unwrap();
        std::env::set_var("SCATTER_EXP_SECS", "12");
        let stat = run_seeds(Mode::Scatter, &placements::c1(), 1, 3, |r| r.fps());
        assert_eq!(stat.n, 3);
        assert!(stat.mean > 20.0, "mean FPS {:.1}", stat.mean);
        assert!(
            stat.std < stat.mean * 0.2,
            "single-client FPS should be stable across seeds: {}",
            stat.format()
        );
    }

    #[test]
    fn run_cache_returns_identical_reports() {
        let _guard = ENV_LOCK.lock().unwrap();
        std::env::set_var("SCATTER_EXP_SECS", "8");
        let a = run(Mode::Scatter, placements::c1(), 1);
        let b = run(Mode::Scatter, placements::c1(), 1);
        assert_eq!(a.per_client_fps, b.per_client_fps);
        assert_eq!(a.summary_line(), b.summary_line());
        assert_eq!(a.events_executed, b.events_executed);
    }
}
