//! Shared experiment parameters and run helpers.

use orchestra::PlacementSpec;
use scatter::config::RunConfig;
use scatter::{run_experiment, Mode, RunReport};
use simcore::SimDuration;

/// Simulated seconds per experiment point. The paper runs five minutes;
/// 60 s is statistically equivalent for these metrics and keeps the full
/// figure suite under a minute of wall time. Override with
/// `SCATTER_EXP_SECS`.
pub fn run_secs() -> u64 {
    std::env::var("SCATTER_EXP_SECS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(60)
}

/// Warmup discarded from aggregates.
pub const WARMUP_SECS: u64 = 5;

/// Root seed for all experiment runs (reports are seed-reproducible).
pub const SEED: u64 = 20231205; // the conference's opening day

/// Run one experiment point with the standard length/seed.
pub fn run(mode: Mode, placement: PlacementSpec, clients: usize) -> RunReport {
    run_config(RunConfig::new(mode, placement, clients))
}

/// Run with a custom config, applying the standard length/seed defaults.
pub fn run_config(cfg: RunConfig) -> RunReport {
    run_experiment(
        cfg.with_duration(SimDuration::from_secs(run_secs()))
            .with_warmup(SimDuration::from_secs(WARMUP_SECS))
            .with_seed(SEED),
    )
}

/// A metric's mean ± sample standard deviation over several seeds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SeedStat {
    pub mean: f64,
    pub std: f64,
    pub n: usize,
}

impl SeedStat {
    pub fn format(&self) -> String {
        format!("{:.1} ± {:.1}", self.mean, self.std)
    }
}

/// Run the same experiment point under `n_seeds` independent seeds and
/// aggregate a metric — the multi-run statistics the paper's five-minute
/// single runs forgo.
pub fn run_seeds<F>(
    mode: Mode,
    placement: &PlacementSpec,
    clients: usize,
    n_seeds: u64,
    metric: F,
) -> SeedStat
where
    F: Fn(&RunReport) -> f64,
{
    assert!(n_seeds >= 1);
    let values: Vec<f64> = (0..n_seeds)
        .map(|i| {
            let r = run_experiment(
                RunConfig::new(mode, placement.clone(), clients)
                    .with_duration(SimDuration::from_secs(run_secs()))
                    .with_warmup(SimDuration::from_secs(WARMUP_SECS))
                    .with_seed(SEED.wrapping_add(i * 7919)),
            );
            metric(&r)
        })
        .collect();
    let n = values.len();
    let mean = values.iter().sum::<f64>() / n as f64;
    let std = if n < 2 {
        0.0
    } else {
        (values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (n - 1) as f64).sqrt()
    };
    SeedStat { mean, std, n }
}

/// The four placement configurations of figs. 2 and 6, labelled as in
/// the paper.
pub fn edge_configs() -> Vec<(&'static str, PlacementSpec)> {
    use scatter::config::placements::*;
    vec![
        ("C1 (E1 only)", c1()),
        ("C2 (E2 only)", c2()),
        ("C12 [E1,E1,E2,E2,E2]", c12()),
        ("C21 [E2,E2,E1,E1,E1]", c21()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use scatter::config::placements;

    #[test]
    fn edge_configs_are_four() {
        assert_eq!(edge_configs().len(), 4);
    }

    #[test]
    fn run_secs_defaults_sanely() {
        assert!(run_secs() >= 10);
    }

    #[test]
    fn seed_stats_have_modest_spread() {
        std::env::set_var("SCATTER_EXP_SECS", "12");
        let stat = run_seeds(Mode::Scatter, &placements::c1(), 1, 3, |r| r.fps());
        assert_eq!(stat.n, 3);
        assert!(stat.mean > 20.0, "mean FPS {:.1}", stat.mean);
        assert!(
            stat.std < stat.mean * 0.2,
            "single-client FPS should be stable across seeds: {}",
            stat.format()
        );
    }
}
