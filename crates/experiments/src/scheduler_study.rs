//! Hand placement vs orchestrator scheduling.
//!
//! The paper pins every placement manually. Real deployments let the
//! orchestrator place from SLAs. This study plans the same replica
//! vector with three standard disciplines (first-fit, least-loaded,
//! round-robin), deploys each plan on the simulated testbed, and
//! compares the resulting AR QoS against the paper's hand-tuned
//! configurations — quantifying how much hand tuning is worth.

use orchestra::{schedule, Cluster, Discipline, ServiceSla};
use scatter::config::placements;
use scatter::{Mode, SERVICE_NAMES};
use simnet::Testbed;

use crate::common::run_many;
use crate::table::{f1, pct, Table};

fn slas() -> Vec<ServiceSla> {
    SERVICE_NAMES
        .iter()
        .map(|name| ServiceSla::new(name, 0.5, 2.0, *name != "primary"))
        .collect()
}

pub fn run_figure() -> Vec<Table> {
    let (_, tb) = Testbed::build();
    let cluster = Cluster::testbed(tb.e1, tb.e2, tb.cloud);
    let replicas = [1usize, 2, 2, 1, 2]; // fig. 3's winning vector

    let mut t = Table::new(
        "Scheduler study: hand-tuned vs orchestrator placements ([1,2,2,1,2], scAtteR++)",
        &["placement", "clients", "FPS", "E2E ms", "success"],
    );

    let mut candidates: Vec<(String, orchestra::PlacementSpec)> = vec![(
        "hand-tuned (paper fig. 3)".into(),
        placements::replicas(replicas),
    )];
    for (name, d) in [
        ("first-fit", Discipline::FirstFit),
        ("least-loaded", Discipline::LeastLoaded),
        ("round-robin", Discipline::RoundRobin),
    ] {
        let plan = schedule(&cluster, &slas(), &replicas, d).expect("schedulable");
        candidates.push((format!("scheduler: {name}"), plan.placement));
    }

    // 4 candidate placements × 2 loads, one parallel batch.
    let points: Vec<_> = candidates
        .iter()
        .flat_map(|(_, p)| [2, 4].map(|clients| (Mode::ScatterPP, p.clone(), clients)))
        .collect();
    let mut reports = run_many(&points).into_iter();
    for (label, _) in &candidates {
        for clients in [2, 4] {
            let r = reports.next().unwrap();
            t.row(vec![
                label.clone(),
                clients.to_string(),
                f1(r.fps()),
                f1(r.e2e_mean_ms()),
                pct(r.success_rate),
            ]);
        }
    }

    t.note("first-fit packs one machine (GPU contention at 4 clients); least-loaded");
    t.note("approaches the hand-tuned configuration without knowing the pipeline");
    t.note("round-robin naively spreads into the CLOUD mid-pipeline: every frame");
    t.note("pays multiple 15 ms Internet crossings and dies on the 100 ms budget —");
    t.note("placement-naive scheduling can zero out an XR app entirely (insight IV)");
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_candidates_two_loads() {
        std::env::set_var("SCATTER_EXP_SECS", "10");
        let tables = run_figure();
        assert_eq!(tables[0].rows.len(), 8);
    }

    #[test]
    fn disciplines_produce_valid_placements() {
        let (_, tb) = Testbed::build();
        let cluster = Cluster::testbed(tb.e1, tb.e2, tb.cloud);
        for d in [
            Discipline::FirstFit,
            Discipline::LeastLoaded,
            Discipline::RoundRobin,
        ] {
            let plan = schedule(&cluster, &slas(), &[1, 2, 2, 1, 2], d).unwrap();
            assert_eq!(plan.placement.total_instances(), 8);
        }
    }
}
