//! Figure 6: scAtteR++ on the edge (same methodology as fig. 2).
//!
//! Paper anchors: +9 % FPS single client (+17.6 % success); ≥2.5× frame
//! rate with concurrent clients; 12 FPS sustained at 4 clients with C12
//! reaching ≈20 FPS; degradation is throttling (GPU) rather than drops;
//! memory no longer diverges (stateless sift) but queues hold buffers.

use scatter::{Mode, ServiceKind, SERVICE_KINDS};

use crate::common::{edge_configs, run_many};
use crate::table::{f1, pct, Table};

pub fn run_figure() -> Vec<Table> {
    let mut qos = Table::new(
        "Fig 6 (QoS): scAtteR++ on edge — FPS / E2E / success vs clients",
        &["config", "clients", "FPS", "E2E ms", "success"],
    );
    let mut service_lat = Table::new(
        "Fig 6 (service latency, ms, mean per service)",
        &[
            "config", "clients", "primary", "sift", "encoding", "lsh", "matching",
        ],
    );
    let mut hw = Table::new(
        "Fig 6 (hardware): memory and GPU under scAtteR++",
        &[
            "config",
            "clients",
            "mem GB (sift)",
            "mem GB (total)",
            "GPU %",
        ],
    );

    // 16 independent points, fanned out in parallel (same shape as fig 2).
    let configs = edge_configs();
    let points: Vec<_> = configs
        .iter()
        .flat_map(|(_, p)| (1..=4).map(|n| (Mode::ScatterPP, p.clone(), n)))
        .collect();
    let labels = configs
        .iter()
        .flat_map(|(label, _)| (1..=4).map(move |n| (*label, n)));

    for ((label, n), r) in labels.zip(run_many(&points)) {
        qos.row(vec![
            label.to_string(),
            n.to_string(),
            f1(r.fps()),
            f1(r.e2e_mean_ms()),
            pct(r.success_rate),
        ]);
        let mut lat_row = vec![label.to_string(), n.to_string()];
        for k in SERVICE_KINDS {
            lat_row.push(f1(r.service_latency_ms(k).mean()));
        }
        service_lat.row(lat_row);
        let total_mem: f64 = SERVICE_KINDS.iter().map(|&k| r.memory_gb(k)).sum();
        hw.row(vec![
            label.to_string(),
            n.to_string(),
            f1(r.memory_gb(ServiceKind::Sift)),
            f1(total_mem),
            f1(r.total_gpu_pct()),
        ]);
    }

    qos.note("paper: 12 FPS sustained at 4 clients; C12 ≈20 FPS (scAtteR: <5 FPS)");
    qos.note("paper: single client +9% FPS, +17.6% success over scAtteR");
    service_lat
        .note("paper: slightly higher per-service latency (queueing), most visible at primary");
    hw.note("paper: GPU utilization scales with load (throttling replaces request drops)");
    vec![qos, service_lat, hw]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sixteen_points_per_panel() {
        std::env::set_var("SCATTER_EXP_SECS", "15");
        let tables = run_figure();
        for t in &tables {
            assert_eq!(t.rows.len(), 16);
        }
    }
}
