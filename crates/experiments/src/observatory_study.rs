//! Observatory study (`--bin observatory`): the PR 8 instruments —
//! tail-sampled tracing, the anomaly-triggered flight recorder, and the
//! always-on self-profiler — exercised through both planes and
//! hard-gated.
//!
//! **Gate A — overhead.** The perfbench scale rung (`scale_cfg`, 10k
//! clients in `--smoke`, 100k in full) runs observability-off and
//! observability-on, interleaved best-of-N. The observed run carries the
//! tail sampler, the flight recorder, *and* the profiler; its events/s
//! must stay within [`MAX_OVERHEAD`] of the bare run's. This is the
//! "observers, not participants" claim priced in wall-clock.
//!
//! **Gate B — retention.** A seeded chaos schedule (a `sift` replica
//! crash mid-run) runs twice with identical dynamics: once under the
//! PR 1 head tracer recording *every* frame (ground truth), once under
//! the tail sampler. Every anomalous frame in the ground truth — any
//! dropped terminal, any completion slower than the SLO — must appear
//! in the tail-sampled log, event for event; per-class counts must
//! match exactly. Tail sampling keeps 100 % of the anomalies while
//! retaining a fraction of the frames.
//!
//! **Gate C — replay.** The same observed chaos run executes three
//! times — twice with one event-queue shard, once with three. The
//! flight-recorder dump JSON bytes, the tail stats, and the retained
//! trace log must be bit-identical across all three. The dumps are also
//! written to `results/flightrec_des_*.json` as the run's forensic
//! artifact.
//!
//! **Gate D — cross-plane agreement.** One scheduled fault per plane:
//! the DES kills a `sift` replica (flight dump reason `"crash"`), the
//! live loopback-UDP runtime kills its `sift` thread (reason `"kill"`).
//! Both planes must freeze exactly one dump per scheduled fault, and
//! each dump must contain the corresponding control-ring event. Runtime
//! dumps land in `results/flightrec_runtime_*.json`.
//!
//! The self-profiler rides gates A and D: the observed DES run and the
//! runtime run must both produce non-empty phase profiles, which are
//! rendered as a per-phase attribution table (reconciled against the
//! report's simulated `breakdown_*`) and exported as folded-stack
//! flamegraph text (`results/observatory_profile.folded`).
//!
//! Artifacts: `results/observatory_tables.json`, the flight dumps, and
//! the folded profile. `--smoke` shrinks every leg for the verify gate;
//! any gate failure exits non-zero.

use std::collections::BTreeMap;
use std::time::{Duration, Instant};

use observatory::flight;
use scatter::config::{placements, RunConfig, ScaleConfig};
use scatter::runtime::deploy::{run_local, RuntimeOptions};
use scatter::{
    run_experiment, run_experiment_observed, run_experiment_observed_with,
    run_experiment_traced_with, Mode, ServiceKind,
};
use simcore::SimDuration;
use trace::{FrameFate, TraceEvent, TraceLog};

use crate::chaos_study::calm_cost;
use crate::scale::scale_cfg;
use crate::table::{f1, pct, Table};

/// One seed drives every leg (DES worlds, chaos schedule, runtime).
pub const OBS_SEED: u64 = 4117;

/// Gate A: the full observatory may cost at most this fraction of the
/// bare run's events/s at the 100k-client perfbench rung.
pub const MAX_OVERHEAD: f64 = 0.05;

/// Gate A allowance at the down-scaled smoke rung (10k clients, ~150 ms
/// of driver work per rep): the sampler's pre-cap buffering and the
/// run-setup cost are fixed per run, so they weigh ~10x more here than
/// at the real rung the 5 % bound is defined against, and host timing
/// noise is a few percent of a run this short even on the CPU clock.
pub const SMOKE_MAX_OVERHEAD: f64 = 0.09;

/// Gate B runs a tighter latency objective than the production 100 ms
/// so the seeded schedule actually produces SLO-violating completions
/// to retain (the chaos crash supplies the dropped class).
const RETENTION_SLO_MS: f64 = 25.0;

/// Interleaved timing repetitions per side of gate A.
const OVERHEAD_REPS: usize = 5;

// ---------------------------------------------------------------------
// Gate A — overhead at the scale rung
// ---------------------------------------------------------------------

pub struct OverheadPoint {
    pub clients: usize,
    /// Best observed events/s, bare run.
    pub eps_off: f64,
    /// Best observed events/s with tail sampler + flight recorder +
    /// profiler all on.
    pub eps_on: f64,
    /// Fractional slowdown (positive = observatory costs throughput).
    pub overhead: f64,
    /// Gate limit this point is judged against ([`MAX_OVERHEAD`] at the
    /// real rung, [`SMOKE_MAX_OVERHEAD`] at the smoke rung).
    pub limit: f64,
    /// Tail stats from the observed run (scale rung has no faults, so
    /// retention here is reservoir + organic drops/SLO misses).
    pub tail: observatory::TailStats,
    /// DES driver profile from the observed run.
    pub prof: observatory::ProfSnapshot,
    pub sim_prof: Option<simcore::SimProfStats>,
    /// Simulated-latency means for the attribution table (ms).
    pub breakdown_compute_ms: f64,
    pub breakdown_queue_ms: f64,
    pub breakdown_network_ms: f64,
}

/// On-CPU seconds of the calling thread (Linux `schedstat`, nanosecond
/// resolution). The DES is single-threaded, so this prices exactly the
/// simulation work while staying immune to the host descheduling us
/// mid-run — on a shared box, wall clock swings ±20 % between identical
/// runs and would make a 5 % gate meaningless. Falls back to wall time
/// where the file does not exist.
fn cpu_seconds() -> f64 {
    static START: std::sync::OnceLock<Instant> = std::sync::OnceLock::new();
    if let Some(ns) = std::fs::read_to_string("/proc/thread-self/schedstat")
        .ok()
        .and_then(|s| s.split_whitespace().next()?.parse::<u64>().ok())
    {
        return ns as f64 / 1e9;
    }
    START.get_or_init(Instant::now).elapsed().as_secs_f64()
}

fn timed_eps(cfg: &RunConfig) -> f64 {
    let t0 = cpu_seconds();
    let report = run_experiment(cfg.clone());
    let cpu = (cpu_seconds() - t0).max(1e-9);
    report.events_executed as f64 / cpu
}

fn timed_eps_observed(cfg: &RunConfig) -> (f64, scatter::report::RunReport, scatter::ObsArtifacts) {
    let t0 = cpu_seconds();
    let (report, _, artifacts) = run_experiment_observed(cfg.clone());
    let cpu = (cpu_seconds() - t0).max(1e-9);
    (report.events_executed as f64 / cpu, report, artifacts)
}

fn gate_overhead(clients: usize, limit: f64) -> OverheadPoint {
    // At the smoke rung (10k clients) the standard 2-simulated-second
    // run is only ~150 ms of driver work; double the duration so the
    // per-run fixed costs (setup, the sampler's pre-cap buffering) and
    // the clock's granularity stop dominating a 5 %-scale measurement.
    let secs = if clients < 100_000 { 4 } else { 2 };
    let bare = scale_cfg(clients)
        .with_seed(OBS_SEED)
        .with_duration(SimDuration::from_secs(secs));
    let observed = bare
        .clone()
        .with_observatory(observatory::ObservatoryConfig::default());

    // One untimed run to fault in the binary, page cache, and allocator
    // arenas before anything is measured.
    let _ = run_experiment(bare.clone());
    // Interleave off/on pairs. Each rep contributes one on/off ratio —
    // the two runs are adjacent in time, so host drift (thermal, cgroup
    // quota) largely cancels inside a pair — and the gate judges the
    // MEDIAN ratio, so an isolated noisy rep cannot fail (or pass) the
    // gate by itself. The displayed events/s are each side's best rep.
    let mut eps_off = 0f64;
    let mut eps_on = 0f64;
    let mut ratios = Vec::with_capacity(OVERHEAD_REPS);
    let mut kept: Option<(scatter::report::RunReport, scatter::ObsArtifacts)> = None;
    for _ in 0..OVERHEAD_REPS {
        let off = timed_eps(&bare);
        eps_off = eps_off.max(off);
        let (eps, report, artifacts) = timed_eps_observed(&observed);
        ratios.push(eps / off.max(1e-9));
        if eps > eps_on {
            eps_on = eps;
            kept = Some((report, artifacts));
        }
    }
    ratios.sort_by(|a, b| a.total_cmp(b));
    let median_ratio = ratios[ratios.len() / 2];
    let (report, artifacts) = kept.expect("OVERHEAD_REPS >= 1");
    let mean_of = |s: &[metrics::Summary; 5]| {
        let (n, sum) = s.iter().fold((0usize, 0f64), |(n, sum), x| {
            (n + x.len(), sum + x.mean() * x.len() as f64)
        });
        if n == 0 {
            0.0
        } else {
            sum / n as f64
        }
    };
    OverheadPoint {
        clients,
        eps_off,
        eps_on,
        overhead: 1.0 - median_ratio,
        limit,
        tail: artifacts.tail.expect("observed run has tail stats"),
        prof: artifacts.prof.expect("observed run has a profile"),
        sim_prof: artifacts.sim_prof,
        breakdown_compute_ms: mean_of(&report.breakdown_compute),
        breakdown_queue_ms: mean_of(&report.breakdown_queue),
        breakdown_network_ms: report.breakdown_network.mean(),
    }
}

// ---------------------------------------------------------------------
// Gate B — 100 % anomaly retention vs. a record-everything ground truth
// ---------------------------------------------------------------------

/// The seeded chaos schedule both retention runs execute: ScatterPP on
/// C2, a `sift` replica killed mid-run and revived, calm cost model so
/// the anomaly classes come from the schedule, not host noise.
fn retention_cfg(smoke: bool) -> RunConfig {
    let secs = if smoke { 10 } else { 20 };
    RunConfig::new(Mode::ScatterPP, placements::c2(), 4)
        .with_duration(SimDuration::from_secs(secs))
        .with_warmup(SimDuration::ZERO)
        .with_seed(OBS_SEED)
        .with_failure(SimDuration::from_secs(secs / 2), ServiceKind::Sift, 0)
        .with_recovery(SimDuration::from_secs(2))
}

/// Ground-truth view of one frame, reconstructed from the head log.
struct FullFrame<'a> {
    events: Vec<&'a TraceEvent>,
    /// First terminal (the settle the tail sampler decides on).
    terminal: Option<(u64, FrameFate)>,
    emitted_ns: u64,
}

fn frames_of(log: &TraceLog) -> BTreeMap<u64, FullFrame<'_>> {
    let mut frames: BTreeMap<u64, FullFrame<'_>> = BTreeMap::new();
    for e in &log.events {
        let id = e.ctx().trace_id;
        let at = match e {
            TraceEvent::Emitted { at_ns, .. } => *at_ns,
            TraceEvent::Span(s) => s.start_ns,
            TraceEvent::Terminal { at_ns, .. } => *at_ns,
        };
        let f = frames.entry(id).or_insert_with(|| FullFrame {
            events: Vec::new(),
            terminal: None,
            emitted_ns: at,
        });
        if let TraceEvent::Terminal { at_ns, fate, .. } = e {
            if f.terminal.is_none() {
                f.terminal = Some((*at_ns, *fate));
            }
        }
        f.events.push(e);
    }
    frames
}

pub struct RetentionPoint {
    /// Distinct frames in the record-everything ground truth.
    pub full_frames: u64,
    /// Dropped terminals in the ground truth (first-terminal view).
    pub full_dropped: u64,
    /// SLO-violating completions in the ground truth.
    pub full_slo: u64,
    pub tail: observatory::TailStats,
    /// Anomalous ground-truth frames missing from the tail log.
    pub missing: u64,
    /// Anomalous single-terminal frames whose retained event sequence
    /// differs from the ground truth.
    pub mismatched: u64,
}

impl RetentionPoint {
    pub fn retained_fraction(&self) -> f64 {
        self.tail.frames_retained as f64 / self.tail.frames_seen.max(1) as f64
    }
}

fn gate_retention(smoke: bool) -> RetentionPoint {
    // Ground truth: PR 1 head tracer, sample-every-frame.
    let full_cfg = retention_cfg(smoke).with_trace(trace::TraceConfig::default());
    let (_, full_log) = run_experiment_traced_with(full_cfg, calm_cost());

    // Same world, tail-sampled, same SLO threshold in the sampler.
    let mut oc = observatory::ObservatoryConfig::default();
    oc.tail.slo_ms = RETENTION_SLO_MS;
    let tail_cfg = retention_cfg(smoke).with_observatory(oc);
    let (_, tail_log, artifacts) = run_experiment_observed_with(tail_cfg, calm_cost());
    let tail = artifacts.tail.expect("observed run has tail stats");

    let full = frames_of(&full_log);
    let retained = frames_of(&tail_log);

    let mut full_dropped = 0u64;
    let mut full_slo = 0u64;
    let mut missing = 0u64;
    let mut mismatched = 0u64;
    for (id, f) in &full {
        let anomalous = match f.terminal {
            Some((_, FrameFate::Dropped(_))) => {
                full_dropped += 1;
                true
            }
            Some((at_ns, FrameFate::Completed)) => {
                let e2e_ms = at_ns.saturating_sub(f.emitted_ns) as f64 / 1e6;
                let slow = e2e_ms > RETENTION_SLO_MS;
                full_slo += u64::from(slow);
                slow
            }
            // Still in flight at run end: the sampler retains these
            // too, but they are not an anomaly class.
            None => false,
        };
        if !anomalous {
            continue;
        }
        match retained.get(id) {
            None => missing += 1,
            Some(r) => {
                // Re-attributed frames grow extra terminals the sampler
                // stores as separate single-event frames; compare exact
                // sequences only where the ground truth is unambiguous.
                let terminals = f
                    .events
                    .iter()
                    .filter(|e| matches!(e, TraceEvent::Terminal { .. }))
                    .count();
                if terminals == 1 && r.events != f.events {
                    mismatched += 1;
                }
            }
        }
    }

    RetentionPoint {
        full_frames: full.len() as u64,
        full_dropped,
        full_slo,
        tail,
        missing,
        mismatched,
    }
}

// ---------------------------------------------------------------------
// Gate C — bit-identical replay across reruns and shard counts
// ---------------------------------------------------------------------

pub struct ReplayPoint {
    /// (label, fingerprint) per execution.
    pub runs: Vec<(String, u64)>,
    pub dumps: usize,
}

impl ReplayPoint {
    pub fn ok(&self) -> bool {
        self.dumps > 0 && self.runs.windows(2).all(|w| w[0].1 == w[1].1)
    }
}

/// FNV-1a over the replay-visible bytes: every dump rendered to its
/// canonical JSON, the tail stats, and the retained event stream.
fn fingerprint(log: &TraceLog, artifacts: &scatter::ObsArtifacts) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
    };
    for d in &artifacts.flight_dumps {
        eat(flight::dump_json(d).as_bytes());
    }
    eat(format!("{:?}", artifacts.tail).as_bytes());
    for e in &log.events {
        eat(format!("{e:?}").as_bytes());
    }
    h
}

fn gate_replay(smoke: bool) -> ReplayPoint {
    let shard_plan: [(usize, &str); 3] = [(1, "run 1"), (1, "rerun"), (3, "3 shards")];
    let mut runs = Vec::new();
    let mut dumps = 0;
    for (i, (shards, label)) in shard_plan.iter().enumerate() {
        let cfg = retention_cfg(smoke)
            .with_observatory(observatory::ObservatoryConfig::default())
            .with_scale(ScaleConfig::new(2).exact().with_shards(*shards));
        let (_, log, artifacts) = run_experiment_observed_with(cfg, calm_cost());
        if i == 0 {
            dumps = artifacts.flight_dumps.len();
            match flight::write_dumps(
                std::path::Path::new("results"),
                "des",
                &artifacts.flight_dumps,
            ) {
                Ok(paths) => eprintln!("observatory: wrote {} DES flight dump(s)", paths.len()),
                Err(e) => eprintln!("observatory: cannot write DES flight dumps: {e}"),
            }
        }
        runs.push((
            format!("{label} (shards={shards})"),
            fingerprint(&log, &artifacts),
        ));
    }
    ReplayPoint { runs, dumps }
}

// ---------------------------------------------------------------------
// Gate D — cross-plane anomaly agreement
// ---------------------------------------------------------------------

pub struct CrossPlanePoint {
    /// Scheduled faults per plane (one each).
    pub scheduled: u64,
    /// DES flight dumps frozen with reason `"crash"`.
    pub des_crash_dumps: u64,
    /// Control-ring `KIND_CRASH` events captured in those dumps.
    pub des_crash_events: u64,
    /// Runtime flight dumps frozen with reason `"kill"`.
    pub rt_kill_dumps: u64,
    /// Control-ring `KIND_KILL` events captured in those dumps.
    pub rt_kill_events: u64,
    /// Runtime self-profile (always on).
    pub rt_prof: observatory::ProfSnapshot,
}

impl CrossPlanePoint {
    pub fn ok(&self) -> bool {
        self.des_crash_dumps == self.scheduled
            && self.rt_kill_dumps == self.scheduled
            && self.des_crash_events >= self.scheduled
            && self.rt_kill_events >= self.scheduled
    }
}

fn count_events(dumps: &[observatory::FlightDump], reason: &str, kind: u64) -> (u64, u64) {
    let matching: Vec<_> = dumps.iter().filter(|d| d.reason == reason).collect();
    let mut seqs: Vec<u64> = matching
        .iter()
        .flat_map(|d| d.events.iter())
        .filter(|e| e.kind == kind)
        .map(|e| e.seq)
        .collect();
    seqs.sort_unstable();
    seqs.dedup();
    (matching.len() as u64, seqs.len() as u64)
}

fn gate_cross_plane(smoke: bool) -> CrossPlanePoint {
    // DES side: one sift crash, observed.
    let cfg = retention_cfg(smoke).with_observatory(observatory::ObservatoryConfig::default());
    let (_, _, des) = run_experiment_observed_with(cfg, calm_cost());
    let (des_crash_dumps, des_crash_events) =
        count_events(&des.flight_dumps, "crash", flight::KIND_CRASH);

    // Runtime side: one sift kill over live loopback UDP.
    let frames = if smoke { 24 } else { 48 };
    let report = run_local(RuntimeOptions {
        frames,
        fps: 10.0,
        seed: OBS_SEED,
        kills: vec![(
            Duration::from_millis(1_000),
            ServiceKind::Sift,
            Duration::from_millis(800),
        )],
        ..Default::default()
    });
    let (rt_kill_dumps, rt_kill_events) =
        count_events(&report.flight_dumps, "kill", flight::KIND_KILL);
    match flight::write_dumps(
        std::path::Path::new("results"),
        "runtime",
        &report.flight_dumps,
    ) {
        Ok(paths) => eprintln!("observatory: wrote {} runtime flight dump(s)", paths.len()),
        Err(e) => eprintln!("observatory: cannot write runtime flight dumps: {e}"),
    }

    CrossPlanePoint {
        scheduled: 1,
        des_crash_dumps,
        des_crash_events,
        rt_kill_dumps,
        rt_kill_events,
        rt_prof: report.prof,
    }
}

// ---------------------------------------------------------------------
// The study
// ---------------------------------------------------------------------

pub struct ObservatoryStudy {
    pub overhead: OverheadPoint,
    pub retention: RetentionPoint,
    pub replay: ReplayPoint,
    pub cross: CrossPlanePoint,
    pub tables: Vec<Table>,
    /// Folded-stack flamegraph text (DES + runtime phases).
    pub folded: String,
}

impl ObservatoryStudy {
    pub fn failures(&self) -> Vec<String> {
        let mut out = Vec::new();
        let o = &self.overhead;
        if o.overhead > o.limit {
            out.push(format!(
                "observatory overhead {:.1} % exceeds {:.0} % at {} clients \
                 (off {:.2} M events/s, on {:.2} M events/s)",
                o.overhead * 100.0,
                o.limit * 100.0,
                o.clients,
                o.eps_off / 1e6,
                o.eps_on / 1e6
            ));
        }
        if o.prof.phases.iter().all(|p| p.calls == 0) {
            out.push("DES self-profiler recorded no phase calls".into());
        }

        let r = &self.retention;
        if r.missing > 0 {
            out.push(format!(
                "{} anomalous ground-truth frame(s) missing from the tail-sampled log",
                r.missing
            ));
        }
        if r.mismatched > 0 {
            out.push(format!(
                "{} anomalous frame(s) retained with a different event sequence",
                r.mismatched
            ));
        }
        if r.tail.dropped != r.full_dropped {
            out.push(format!(
                "dropped-frame counts disagree: ground truth {}, tail sampler {}",
                r.full_dropped, r.tail.dropped
            ));
        }
        if r.tail.slo_violations != r.full_slo {
            out.push(format!(
                "SLO-violation counts disagree: ground truth {}, tail sampler {}",
                r.full_slo, r.tail.slo_violations
            ));
        }
        if r.tail.frames_seen != r.full_frames {
            out.push(format!(
                "frame universes disagree: head tracer saw {}, tail sampler {}",
                r.full_frames, r.tail.frames_seen
            ));
        }
        if r.full_dropped == 0 {
            out.push(
                "chaos schedule produced no dropped frames — retention gate is vacuous".into(),
            );
        }
        if r.tail.retained_truncated > 0 {
            out.push(format!(
                "retention cap truncated {} frame(s) in a gate-sized run",
                r.tail.retained_truncated
            ));
        }
        if r.tail.frames_retained >= r.tail.frames_seen {
            out.push("tail sampler retained every frame — sampling is vacuous".into());
        }

        if !self.replay.ok() {
            let fps: Vec<String> = self
                .replay
                .runs
                .iter()
                .map(|(l, f)| format!("{l}={f:016x}"))
                .collect();
            out.push(format!(
                "replay not bit-identical ({} dump(s)): {}",
                self.replay.dumps,
                fps.join(", ")
            ));
        }

        if !self.cross.ok() {
            out.push(format!(
                "cross-plane anomaly counts disagree: scheduled {}, DES crash dumps {} \
                 (events {}), runtime kill dumps {} (events {})",
                self.cross.scheduled,
                self.cross.des_crash_dumps,
                self.cross.des_crash_events,
                self.cross.rt_kill_dumps,
                self.cross.rt_kill_events
            ));
        }
        if self.cross.rt_prof.get("compute").map_or(0, |p| p.calls) == 0 {
            out.push("runtime self-profiler recorded no compute calls".into());
        }
        out
    }

    pub fn ok(&self) -> bool {
        self.failures().is_empty()
    }
}

pub fn run_study(smoke: bool) -> ObservatoryStudy {
    let rung = if smoke { 10_000 } else { 100_000 };
    eprintln!(
        "observatory: gate A (overhead, {rung} clients x {OVERHEAD_REPS} interleaved reps)..."
    );
    let overhead = gate_overhead(
        rung,
        if smoke {
            SMOKE_MAX_OVERHEAD
        } else {
            MAX_OVERHEAD
        },
    );
    eprintln!("observatory: gate B (anomaly retention vs record-everything)...");
    let retention = gate_retention(smoke);
    eprintln!("observatory: gate C (bit-identical replay, shards 1/1/3)...");
    let replay = gate_replay(smoke);
    eprintln!("observatory: gate D (cross-plane anomaly agreement)...");
    let cross = gate_cross_plane(smoke);

    // --- Tables ------------------------------------------------------
    let mut tables = Vec::new();

    let mut t = Table::new(
        &format!(
            "Observatory gate A — overhead at {} clients (best of {OVERHEAD_REPS})",
            overhead.clients
        ),
        &["observability", "events/s", "vs off"],
    );
    t.row(vec![
        "off".into(),
        format!("{:.2} M", overhead.eps_off / 1e6),
        "—".into(),
    ]);
    t.row(vec![
        "tail + flightrec + profiler".into(),
        format!("{:.2} M", overhead.eps_on / 1e6),
        pct(-overhead.overhead),
    ]);
    t.note(format!(
        "gate: full observatory costs ≤ {:.0} % events/s at this rung \
         (events per on-CPU second; the 5 % bound is defined at the \
         100k-client perfbench rung, the smoke rung allows {:.0} %)",
        overhead.limit * 100.0,
        SMOKE_MAX_OVERHEAD * 100.0
    ));
    tables.push(t);

    let r = &retention;
    let mut t = Table::new(
        "Observatory gate B — tail sampling vs record-everything ground truth",
        &["class", "ground truth", "tail sampler", "retained"],
    );
    t.row(vec![
        "frames seen".into(),
        r.full_frames.to_string(),
        r.tail.frames_seen.to_string(),
        format!(
            "{} ({})",
            r.tail.frames_retained,
            pct(r.retained_fraction())
        ),
    ]);
    t.row(vec![
        "dropped".into(),
        r.full_dropped.to_string(),
        r.tail.dropped.to_string(),
        "100% (gate)".into(),
    ]);
    t.row(vec![
        format!("slo > {RETENTION_SLO_MS:.0} ms"),
        r.full_slo.to_string(),
        r.tail.slo_violations.to_string(),
        "100% (gate)".into(),
    ]);
    t.row(vec![
        "crash-adjacent".into(),
        "—".into(),
        r.tail.crash_adjacent.to_string(),
        "100%".into(),
    ]);
    t.row(vec![
        "reservoir (1-in-64)".into(),
        "—".into(),
        r.tail.reservoir.to_string(),
        "by seed".into(),
    ]);
    t.note(format!(
        "gate: every anomalous frame retained event-for-event ({} missing, {} mismatched), \
         counts exact, 0 truncated",
        r.missing, r.mismatched
    ));
    tables.push(t);

    let mut t = Table::new(
        "Observatory gate C — flight dumps + retained log replay bit-identically",
        &["execution", "fingerprint"],
    );
    for (label, fp) in &replay.runs {
        t.row(vec![label.clone(), format!("{fp:016x}")]);
    }
    t.note(format!(
        "gate: FNV-1a over dump JSON + tail stats + retained events identical across \
         reruns and shard counts ({} dump(s) written to results/flightrec_des_*.json)",
        replay.dumps
    ));
    tables.push(t);

    let c = &cross;
    let mut t = Table::new(
        "Observatory gate D — one scheduled fault per plane",
        &["plane", "fault", "dumps", "control events"],
    );
    t.row(vec![
        "DES".into(),
        "sift crash".into(),
        c.des_crash_dumps.to_string(),
        c.des_crash_events.to_string(),
    ]);
    t.row(vec![
        "runtime".into(),
        "sift kill".into(),
        c.rt_kill_dumps.to_string(),
        c.rt_kill_events.to_string(),
    ]);
    t.note(format!(
        "gate: exactly {} dump(s) per plane, each capturing its control-ring fault event",
        c.scheduled
    ));
    tables.push(t);

    let o = &overhead;
    let mut t = Table::new(
        &format!(
            "Observatory — self-profiler attribution at {} clients",
            o.clients
        ),
        &["plane", "phase", "calls", "sampled", "est wall ms", "share"],
    );
    let des_total = o.prof.total_est_ns().max(1);
    for p in &o.prof.phases {
        t.row(vec![
            "DES".into(),
            p.name.to_string(),
            p.calls.to_string(),
            p.samples.to_string(),
            f1(p.est_total_ns as f64 / 1e6),
            pct(p.est_total_ns as f64 / des_total as f64),
        ]);
    }
    let rt_total = c.rt_prof.total_est_ns().max(1);
    for p in &c.rt_prof.phases {
        t.row(vec![
            "runtime".into(),
            p.name.to_string(),
            p.calls.to_string(),
            p.samples.to_string(),
            f1(p.est_total_ns as f64 / 1e6),
            pct(p.est_total_ns as f64 / rt_total as f64),
        ]);
    }
    if let Some(sp) = &o.sim_prof {
        t.note(format!(
            "sim core under the phases: {} events popped, {} executed",
            sp.pop_calls, sp.exec_calls
        ));
    }
    t.note(format!(
        "simulated latency for comparison (breakdown_* means): compute {:.1} ms, \
         queue {:.1} ms, network {:.1} ms — simulated time ≠ driver wall time; the \
         profiler prices the *driver*, the breakdown prices the *world*",
        o.breakdown_compute_ms, o.breakdown_queue_ms, o.breakdown_network_ms
    ));
    tables.push(t);

    let mut folded = overhead.prof.folded("des");
    folded.push_str(&cross.rt_prof.folded("runtime"));

    ObservatoryStudy {
        overhead,
        retention,
        replay,
        cross,
        tables,
        folded,
    }
}

/// `--bin observatory` entry point. `--smoke` shrinks every leg for the
/// verify gate; `--json` renders the tables as a JSON array on stdout.
/// Exits 1 when any gate fails.
pub fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let json = std::env::args().any(|a| a == "--json");
    let study = run_study(smoke);

    let dir = std::path::Path::new("results");
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("cannot create {}: {e}", dir.display());
    }
    let rendered: Vec<String> = study.tables.iter().map(|t| t.render_json()).collect();
    let doc = format!("[{}]", rendered.join(",\n"));
    let path = dir.join("observatory_tables.json");
    if let Err(e) = std::fs::write(&path, &doc) {
        eprintln!("cannot write {}: {e}", path.display());
    } else {
        eprintln!("wrote {}", path.display());
    }
    let folded_path = dir.join("observatory_profile.folded");
    if let Err(e) = std::fs::write(&folded_path, &study.folded) {
        eprintln!("cannot write {}: {e}", folded_path.display());
    } else {
        eprintln!(
            "wrote {} (flamegraph.pl / speedscope ready)",
            folded_path.display()
        );
    }

    if json {
        println!("{doc}");
    } else {
        for t in &study.tables {
            println!("{}", t.render());
        }
    }
    let failures = study.failures();
    if !failures.is_empty() {
        for f in &failures {
            eprintln!("observatory gate FAILED: {f}");
        }
        std::process::exit(1);
    }
    eprintln!(
        "observatory gate OK: ≤{:.0} % overhead at the scale rung, 100 % anomaly \
         retention, bit-identical replay, and both planes agree on the fault record",
        study.overhead.limit * 100.0
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The cheap halves of gates B and C, pinned as a unit test: a
    /// seeded crash run retains every anomaly and replays bit-identically.
    #[test]
    fn retention_and_replay_hold_on_a_small_run() {
        let r = gate_retention(true);
        assert_eq!(r.missing, 0, "anomalous frames missing from tail log");
        assert_eq!(r.mismatched, 0, "retained frames differ from ground truth");
        assert_eq!(r.tail.dropped, r.full_dropped);
        assert!(r.full_dropped > 0, "chaos schedule produced no drops");
        assert!(
            r.tail.frames_retained < r.tail.frames_seen,
            "sampling is vacuous"
        );

        let rp = gate_replay(true);
        assert!(rp.ok(), "replay fingerprints disagree: {:?}", rp.runs);
    }
}
