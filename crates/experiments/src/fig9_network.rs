//! Figure 9 (appendix A.1.1): impact of mobile network conditions on
//! scAtteR — packet-loss sweep (a) and latency sweep (b) on the client ↔
//! ingress link, with the paper's mobility emulation (10 ms oscillation
//! at 20 % probability).
//!
//! Anchors: loss reduces FPS via transmission failures but does not
//! drastically change E2E; latency shifts E2E up without collapsing the
//! frame rate (scAtteR has no staleness threshold, so late frames still
//! complete); higher loss slightly *helps* at high client counts by
//! shedding load before the congested services.

use scatter::config::placements;
use scatter::Mode;
use simnet::NetemProfile;

use crate::common::{run_batch, SEED};
use crate::table::{f1, pct, Table};
use scatter::config::RunConfig;
use simcore::SimDuration;

fn netem_cfg(profile: NetemProfile, clients: usize) -> RunConfig {
    RunConfig::new(Mode::Scatter, placements::c2(), clients).with_netem(profile)
}

/// Run a netem sweep (profiles × 1–4 clients) in one parallel batch and
/// emit its rows into `table`.
fn sweep_into(table: &mut Table, profiles: &[NetemProfile]) {
    let cfgs: Vec<RunConfig> = profiles
        .iter()
        .flat_map(|p| (1..=4).map(|n| netem_cfg(p.clone(), n)))
        .collect();
    let mut reports = run_batch(cfgs).into_iter();
    for profile in profiles {
        for n in 1..=4 {
            let r = reports.next().unwrap();
            table.row(vec![
                profile.name.clone(),
                n.to_string(),
                f1(r.fps()),
                f1(r.e2e_mean_ms()),
                pct(r.success_rate),
            ]);
        }
    }
}

pub fn run_figure() -> Vec<Table> {
    let mut loss = Table::new(
        "Fig 9a: packet-loss sweep (delay 1 ms, mobility oscillation on)",
        &["loss", "clients", "FPS", "E2E ms", "success"],
    );
    sweep_into(&mut loss, &NetemProfile::loss_sweep());
    loss.note("paper: loss lowers frame success/FPS but leaves E2E of surviving frames similar");
    loss.note("paper: at high client counts, higher loss mildly relieves congested services");

    let mut lat = Table::new(
        "Fig 9b: latency sweep (loss 0.00001%, mobility oscillation on)",
        &["RTT", "clients", "FPS", "E2E ms", "success"],
    );
    sweep_into(&mut lat, &NetemProfile::latency_sweep());
    lat.note("paper: added RTT shifts E2E up ≈ linearly; framerate stays consistent because");
    lat.note("scAtteR never drops frames for exceeding the 100 ms budget (unlike scAtteR++)");
    vec![loss, lat]
}

/// Convenience used by integration tests: one point of the latency sweep.
pub fn one_latency_point(rtt_ms: f64, clients: usize) -> scatter::RunReport {
    let profile = NetemProfile::new(&format!("{rtt_ms} ms"), rtt_ms, 1e-7).with_mobility();
    scatter::run_experiment(
        RunConfig::new(Mode::Scatter, placements::c2(), clients)
            .with_netem(profile)
            .with_duration(SimDuration::from_secs(20))
            .with_warmup(SimDuration::from_secs(3))
            .with_seed(SEED),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_shifts_e2e_not_fps() {
        let fast = one_latency_point(1.0, 1);
        let slow = one_latency_point(40.0, 1);
        assert!(
            slow.e2e_mean_ms() > fast.e2e_mean_ms() + 25.0,
            "40 ms RTT must raise E2E: {:.1} vs {:.1}",
            slow.e2e_mean_ms(),
            fast.e2e_mean_ms()
        );
        assert!(
            slow.fps() > fast.fps() * 0.8,
            "latency alone must not collapse FPS: {:.1} vs {:.1}",
            slow.fps(),
            fast.fps()
        );
    }
}
