//! Ablation studies of the design choices behind scAtteR++ — experiments
//! the paper motivates but does not run.
//!
//! 1. **Decomposition**: scAtteR++ bundles statelessness and sidecar
//!    queues; which change buys the improvement? (Answer: statelessness
//!    breaks the dependency-loop bottleneck; queues alone buffer frames
//!    that `matching` still times out on — confirming §4's remark that
//!    backpressure mitigation cannot fix a dependency loop.)
//! 2. **Staleness threshold sweep**: the paper fixes 100 ms from the XR
//!    literature; we sweep it to expose the freshness/throughput trade.
//! 3. **Fetch-timeout sweep**: how long `matching` busy-waits for
//!    `sift`'s features is the hidden knob behind scAtteR's collapse.

use scatter::config::{placements, RunConfig};
use scatter::{run_experiment_with, CostModel, Mode};
use simcore::SimDuration;

use crate::common::{par_map, run_many, run_secs, SEED};
use crate::table::{f1, pct, Table};

pub fn run_figure() -> Vec<Table> {
    // --- 1. Decomposition ---------------------------------------------
    let mut decomp = Table::new(
        "Ablation A: decomposing scAtteR++ (C2, 1–4 clients, FPS)",
        &["pipeline", "n1", "n2", "n3", "n4"],
    );
    const VARIANTS: [(&str, Mode); 4] = [
        ("scAtteR (baseline)", Mode::Scatter),
        ("+ sidecar queues only", Mode::SidecarOnly),
        ("+ stateless sift only", Mode::StatelessOnly),
        ("scAtteR++ (both)", Mode::ScatterPP),
    ];
    let points: Vec<_> = VARIANTS
        .iter()
        .flat_map(|&(_, mode)| (1..=4).map(move |n| (mode, placements::c2(), n)))
        .collect();
    let mut reports = run_many(&points).into_iter();
    for (label, _) in VARIANTS {
        let mut row = vec![label.to_string()];
        for _ in 1..=4 {
            row.push(f1(reports.next().unwrap().fps()));
        }
        decomp.row(row);
    }
    decomp.note("statelessness carries the win: it removes the sift↔matching dependency loop");
    decomp.note(
        "queues alone buffer frames that matching still times out on (§4's backpressure remark)",
    );

    // --- 2. Threshold sweep --------------------------------------------
    let mut thresh = Table::new(
        "Ablation B: scAtteR++ staleness threshold sweep (C2, 4 clients)",
        &[
            "threshold ms",
            "FPS",
            "E2E mean ms",
            "E2E p95 ms",
            "success",
        ],
    );
    // Each point ablates a *different* cost model, so these bypass the
    // run cache and fan out directly over `par_map`.
    const THRESHOLDS: [f64; 5] = [50.0, 75.0, 100.0, 150.0, 250.0];
    let thresh_reports = par_map(&THRESHOLDS, |&t| {
        run_experiment_with(
            RunConfig::new(Mode::ScatterPP, placements::c2(), 4)
                .with_duration(SimDuration::from_secs(run_secs()))
                .with_seed(SEED),
            CostModel {
                threshold_ms: t,
                ..Default::default()
            },
        )
    });
    for (t, r) in THRESHOLDS.iter().zip(thresh_reports) {
        let mut e2e = r.e2e_ms.clone();
        thresh.row(vec![
            format!("{t:.0}"),
            f1(r.fps()),
            f1(r.e2e_mean_ms()),
            f1(e2e.p95()),
            pct(r.success_rate),
        ]);
    }
    thresh.note("paper fixes 100 ms (max tolerable XR latency); lower = fresher but fewer frames");
    thresh.note("higher thresholds recover FPS at the price of stale augmentations");

    // --- 3. Fetch-timeout sweep ----------------------------------------
    let mut fetch = Table::new(
        "Ablation C: scAtteR fetch-timeout sweep (C2, 4 clients)",
        &["timeout ms", "FPS", "success", "fetch timeouts"],
    );
    const TIMEOUTS: [f64; 5] = [5.0, 10.0, 15.0, 30.0, 60.0];
    let fetch_reports = par_map(&TIMEOUTS, |&t| {
        run_experiment_with(
            RunConfig::new(Mode::Scatter, placements::c2(), 4)
                .with_duration(SimDuration::from_secs(run_secs()))
                .with_seed(SEED),
            CostModel {
                fetch_timeout_ms: t,
                ..Default::default()
            },
        )
    });
    for (t, r) in TIMEOUTS.iter().zip(fetch_reports) {
        let fetch_timeouts: u64 = r.services.iter().map(|s| s.drops.fetch_timeout).sum();
        fetch.row(vec![
            format!("{t:.0}"),
            f1(r.fps()),
            pct(r.success_rate),
            fetch_timeouts.to_string(),
        ]);
    }
    fetch.note("too short: matching gives up on fetches that would have arrived");
    fetch.note("too long: matching stalls busy-waiting, dropping its own ingress — no good value exists (the loop is the bug)");

    vec![decomp, thresh, fetch]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn three_ablations() {
        std::env::set_var("SCATTER_EXP_SECS", "12");
        let tables = run_figure();
        assert_eq!(tables.len(), 3);
        assert_eq!(tables[0].rows.len(), 4);
        assert_eq!(tables[1].rows.len(), 5);
        assert_eq!(tables[2].rows.len(), 5);
    }
}
