//! Collectors for the two execution planes.
//!
//! - [`Tracer`] is the DES-side collector: a plain `Vec` append behind a
//!   sampling gate. The simulation is single-threaded and virtual-timed,
//!   so there is nothing to synchronize and — crucially — nothing that
//!   could perturb determinism (no RNG, no wall clock).
//! - [`Collector`] / [`ThreadTracer`] is the runtime-side pair: service
//!   threads each hold a cheap [`ThreadTracer`] handle that ships events
//!   over an unbounded MPMC channel; the deployment drains the channel
//!   once at shutdown.
//!
//! Both produce the same [`TraceLog`], so the exporter and the analyzer
//! are plane-agnostic.
//!
//! **Disabled mode** is the default and costs one branch per call site:
//! the inert tracer hands out unsampled contexts, and every recording
//! method begins with `if !ctx.sampled { return }`.

use crate::model::{FrameFate, Phase, SpanRecord, TraceCtx, TraceEvent, TrackId, TrackInfo};

/// Sampling policy: record 1 frame in `sample_every` (per client, keyed
/// on frame number so the choice is deterministic and identical across
/// runs and planes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceConfig {
    /// `1` records every frame; `N` records frames `0, N, 2N, …`.
    pub sample_every: u32,
}

impl Default for TraceConfig {
    fn default() -> TraceConfig {
        TraceConfig { sample_every: 1 }
    }
}

impl TraceConfig {
    pub fn sample_every(n: u32) -> TraceConfig {
        TraceConfig {
            sample_every: n.max(1),
        }
    }

    pub fn is_sampled(&self, frame_no: u32) -> bool {
        frame_no.is_multiple_of(self.sample_every.max(1))
    }
}

/// Everything one run produced: the track table and the event stream.
#[derive(Debug, Clone, Default)]
pub struct TraceLog {
    pub tracks: Vec<TrackInfo>,
    pub events: Vec<TraceEvent>,
    /// Run end, for attributing still-in-flight frames.
    pub end_ns: u64,
}

impl TraceLog {
    pub fn track_name(&self, id: TrackId) -> &str {
        self.tracks
            .get(id.0 as usize)
            .map(|t| t.name.as_str())
            .unwrap_or("?")
    }
}

/// DES-side collector. Create with [`Tracer::new`] to record or
/// [`Tracer::disabled`] (the `Default`) for the near-zero-cost inert
/// mode.
#[derive(Debug, Default)]
pub struct Tracer {
    config: Option<TraceConfig>,
    tracks: Vec<TrackInfo>,
    events: Vec<TraceEvent>,
}

impl Tracer {
    pub fn new(config: TraceConfig) -> Tracer {
        Tracer {
            config: Some(config),
            tracks: Vec::new(),
            events: Vec::new(),
        }
    }

    /// The inert tracer: hands out unsampled contexts, records nothing.
    pub fn disabled() -> Tracer {
        Tracer::default()
    }

    pub fn is_enabled(&self) -> bool {
        self.config.is_some()
    }

    /// Register a track; ids are dense and double as `Vec` indices.
    /// Registration happens even when disabled so that ids line up if a
    /// caller builds its track table unconditionally.
    pub fn register_track(
        &mut self,
        name: impl Into<String>,
        machine: impl Into<String>,
    ) -> TrackId {
        let id = TrackId(self.tracks.len() as u16);
        self.tracks.push(TrackInfo {
            id,
            name: name.into(),
            machine: machine.into(),
        });
        id
    }

    /// Mint the context for a new frame, applying the sampling policy.
    pub fn ctx(&self, client: u16, frame_no: u32) -> TraceCtx {
        match self.config {
            Some(cfg) => TraceCtx::new(client, frame_no, cfg.is_sampled(frame_no)),
            None => TraceCtx::unsampled(),
        }
    }

    pub fn emitted(&mut self, ctx: TraceCtx, at_ns: u64) {
        if !ctx.sampled {
            return;
        }
        self.events.push(TraceEvent::Emitted { ctx, at_ns });
    }

    #[allow(clippy::too_many_arguments)]
    pub fn span(
        &mut self,
        ctx: TraceCtx,
        track: TrackId,
        stage: u8,
        phase: Phase,
        start_ns: u64,
        end_ns: u64,
    ) {
        if !ctx.sampled {
            return;
        }
        self.events.push(TraceEvent::Span(SpanRecord {
            ctx,
            phase,
            stage,
            track,
            start_ns,
            end_ns,
        }));
    }

    pub fn terminal(&mut self, ctx: TraceCtx, at_ns: u64, fate: FrameFate) {
        if !ctx.sampled {
            return;
        }
        self.events.push(TraceEvent::Terminal { ctx, at_ns, fate });
    }

    /// Close the log. `end_ns` lets the analyzer attribute frames still
    /// in flight.
    pub fn finish(self, end_ns: u64) -> TraceLog {
        TraceLog {
            tracks: self.tracks,
            events: self.events,
            end_ns,
        }
    }
}

/// Runtime-side hub: owns the channel's receive end plus the track
/// table; hand [`ThreadTracer`]s to service/client threads.
pub struct Collector {
    config: Option<TraceConfig>,
    tx: crossbeam::channel::Sender<TraceEvent>,
    rx: crossbeam::channel::Receiver<TraceEvent>,
    tracks: Vec<TrackInfo>,
}

impl Collector {
    pub fn new(config: TraceConfig) -> Collector {
        let (tx, rx) = crossbeam::channel::unbounded();
        Collector {
            config: Some(config),
            tx,
            rx,
            tracks: Vec::new(),
        }
    }

    /// Inert hub: handles it hands out are no-ops.
    pub fn disabled() -> Collector {
        let (tx, rx) = crossbeam::channel::unbounded();
        Collector {
            config: None,
            tx,
            rx,
            tracks: Vec::new(),
        }
    }

    pub fn is_enabled(&self) -> bool {
        self.config.is_some()
    }

    pub fn register_track(
        &mut self,
        name: impl Into<String>,
        machine: impl Into<String>,
    ) -> TrackId {
        let id = TrackId(self.tracks.len() as u16);
        self.tracks.push(TrackInfo {
            id,
            name: name.into(),
            machine: machine.into(),
        });
        id
    }

    /// A handle for one thread. Cloning the underlying sender is the
    /// only cost; disabled hubs hand out senderless no-op handles.
    pub fn handle(&self) -> ThreadTracer {
        ThreadTracer {
            config: self.config,
            tx: self.config.map(|_| self.tx.clone()),
        }
    }

    /// Drain everything recorded so far and close the log. Call after
    /// the producing threads have shut down (or accept a partial log).
    pub fn collect(self, end_ns: u64) -> TraceLog {
        let Collector { tx, rx, tracks, .. } = self;
        drop(tx); // only ThreadTracer senders remain
        let events: Vec<TraceEvent> = rx.try_iter().collect();
        TraceLog {
            tracks,
            events,
            end_ns,
        }
    }
}

/// Per-thread recording handle for the runtime plane. `Clone` is cheap;
/// all methods are lock-free on the caller's side except the channel's
/// internal push.
#[derive(Clone)]
pub struct ThreadTracer {
    config: Option<TraceConfig>,
    tx: Option<crossbeam::channel::Sender<TraceEvent>>,
}

impl ThreadTracer {
    /// A free-standing no-op handle (for tests and default wiring).
    pub fn disabled() -> ThreadTracer {
        ThreadTracer {
            config: None,
            tx: None,
        }
    }

    pub fn is_enabled(&self) -> bool {
        self.tx.is_some()
    }

    pub fn ctx(&self, client: u16, frame_no: u32) -> TraceCtx {
        match self.config {
            Some(cfg) => TraceCtx::new(client, frame_no, cfg.is_sampled(frame_no)),
            None => TraceCtx::unsampled(),
        }
    }

    pub fn emitted(&self, ctx: TraceCtx, at_ns: u64) {
        if !ctx.sampled {
            return;
        }
        if let Some(tx) = &self.tx {
            let _ = tx.send(TraceEvent::Emitted { ctx, at_ns });
        }
    }

    #[allow(clippy::too_many_arguments)]
    pub fn span(
        &self,
        ctx: TraceCtx,
        track: TrackId,
        stage: u8,
        phase: Phase,
        start_ns: u64,
        end_ns: u64,
    ) {
        if !ctx.sampled {
            return;
        }
        if let Some(tx) = &self.tx {
            let _ = tx.send(TraceEvent::Span(SpanRecord {
                ctx,
                phase,
                stage,
                track,
                start_ns,
                end_ns,
            }));
        }
    }

    pub fn terminal(&self, ctx: TraceCtx, at_ns: u64, fate: FrameFate) {
        if !ctx.sampled {
            return;
        }
        if let Some(tx) = &self.tx {
            let _ = tx.send(TraceEvent::Terminal { ctx, at_ns, fate });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::DropReason;

    #[test]
    fn sampling_gates_recording() {
        let mut t = Tracer::new(TraceConfig::sample_every(3));
        let tr = t.register_track("svc", "m1");
        for f in 0..9u32 {
            let ctx = t.ctx(0, f);
            assert_eq!(ctx.sampled, f % 3 == 0);
            t.emitted(ctx, f as u64);
            t.span(ctx, tr, 0, Phase::Compute, f as u64, f as u64 + 1);
            t.terminal(ctx, f as u64 + 2, FrameFate::Completed);
        }
        let log = t.finish(100);
        // 3 sampled frames × 3 events.
        assert_eq!(log.events.len(), 9);
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let mut t = Tracer::disabled();
        let tr = t.register_track("svc", "m1");
        let ctx = t.ctx(0, 0);
        assert!(!ctx.sampled);
        t.emitted(ctx, 0);
        t.span(ctx, tr, 0, Phase::Compute, 0, 1);
        t.terminal(ctx, 2, FrameFate::Dropped(DropReason::Crash));
        assert!(t.finish(10).events.is_empty());
    }

    #[test]
    fn collector_gathers_across_threads() {
        let mut c = Collector::new(TraceConfig::default());
        let tr = c.register_track("sift", "runtime");
        let handles: Vec<_> = (0..4u16)
            .map(|client| {
                let h = c.handle();
                std::thread::spawn(move || {
                    for f in 0..25u32 {
                        let ctx = h.ctx(client, f);
                        h.span(ctx, tr, 1, Phase::Compute, 0, 1);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let log = c.collect(42);
        assert_eq!(log.events.len(), 100);
        assert_eq!(log.end_ns, 42);
        assert_eq!(log.track_name(tr), "sift");
    }

    #[test]
    fn disabled_collector_handles_are_inert() {
        let c = Collector::disabled();
        let h = c.handle();
        assert!(!h.is_enabled());
        let ctx = h.ctx(0, 0);
        h.emitted(ctx, 0);
        assert!(c.collect(0).events.is_empty());
    }
}
