//! Chrome trace-event exporter: a [`TraceLog`] becomes a JSON document
//! that `chrome://tracing` and Perfetto load directly.
//!
//! Mapping:
//! - **pid** = machine (one process row per machine, named via `M`
//!   `process_name` metadata);
//! - **tid** = track (one thread row per service instance / client,
//!   named via `M` `thread_name` metadata);
//! - phase spans become complete events (`"ph": "X"`, microsecond
//!   `ts`/`dur`), carrying client / frame / trace-id args;
//! - terminals become instant events (`"ph": "i"`) named after the
//!   fate, so drops are visible as markers on the timeline.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::collect::TraceLog;
use crate::json::escape;
use crate::model::{FrameFate, TraceEvent};

/// Render the log as a Chrome trace-event JSON document.
pub fn export(log: &TraceLog) -> String {
    // Stable machine -> pid mapping (registration order).
    let mut pids: BTreeMap<&str, u32> = BTreeMap::new();
    for t in &log.tracks {
        let next = pids.len() as u32 + 1;
        pids.entry(t.machine.as_str()).or_insert(next);
    }
    let pid_of = |track: u16| -> u32 {
        log.tracks
            .get(track as usize)
            .and_then(|t| pids.get(t.machine.as_str()).copied())
            .unwrap_or(0)
    };

    let mut out = String::with_capacity(4096 + log.events.len() * 128);
    out.push_str("{\n\"displayTimeUnit\": \"ms\",\n\"traceEvents\": [\n");
    let mut first = true;
    let mut push = |out: &mut String, line: String| {
        if !std::mem::take(&mut first) {
            out.push_str(",\n");
        }
        out.push_str(&line);
    };

    for (machine, pid) in &pids {
        push(
            &mut out,
            format!(
                "{{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":{pid},\"tid\":0,\
                 \"args\":{{\"name\":\"{}\"}}}}",
                escape(machine)
            ),
        );
    }
    for t in &log.tracks {
        push(
            &mut out,
            format!(
                "{{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":{},\"tid\":{},\
                 \"args\":{{\"name\":\"{}\"}}}}",
                pid_of(t.id.0),
                t.id.0,
                escape(&t.name)
            ),
        );
    }

    for ev in &log.events {
        match ev {
            TraceEvent::Emitted { .. } => {} // implicit: first span starts here
            TraceEvent::Span(s) => {
                let mut line = String::with_capacity(160);
                let _ = write!(
                    line,
                    "{{\"ph\":\"X\",\"name\":\"{}\",\"cat\":\"frame\",\"pid\":{},\"tid\":{},\
                     \"ts\":{},\"dur\":{},\"args\":{{\"client\":{},\"frame\":{},\"trace_id\":{},\"stage\":{}}}}}",
                    s.phase.as_str(),
                    pid_of(s.track.0),
                    s.track.0,
                    s.start_ns / 1_000,
                    s.duration_ns() / 1_000,
                    s.ctx.client,
                    s.ctx.frame_no,
                    s.ctx.trace_id,
                    s.stage,
                );
                push(&mut out, line);
            }
            TraceEvent::Terminal { ctx, at_ns, fate } => {
                let name = match fate {
                    FrameFate::Completed => "completed".to_string(),
                    FrameFate::Dropped(r) => format!("dropped:{}", r.as_str()),
                };
                // Terminals land on the frame's client track when we can
                // name one; tid 0 otherwise. Client tracks are registered
                // as `client-N`.
                let tid = log
                    .tracks
                    .iter()
                    .find(|t| t.name == format!("client-{}", ctx.client))
                    .map(|t| t.id.0)
                    .unwrap_or(0);
                push(
                    &mut out,
                    format!(
                        "{{\"ph\":\"i\",\"name\":\"{}\",\"cat\":\"fate\",\"s\":\"t\",\"pid\":{},\"tid\":{},\
                         \"ts\":{},\"args\":{{\"client\":{},\"frame\":{},\"trace_id\":{}}}}}",
                        escape(&name),
                        pid_of(tid),
                        tid,
                        at_ns / 1_000,
                        ctx.client,
                        ctx.frame_no,
                        ctx.trace_id,
                    ),
                );
            }
        }
    }
    out.push_str("\n]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collect::{TraceConfig, Tracer};
    use crate::json::Value;
    use crate::model::{DropReason, Phase};

    fn log() -> TraceLog {
        let mut t = Tracer::new(TraceConfig::default());
        let cl = t.register_track("client-0", "client-host");
        let svc = t.register_track("primary#0", "c1");
        let ctx = t.ctx(0, 4);
        t.emitted(ctx, 1_000);
        t.span(ctx, cl, 0, Phase::NetworkTransit, 1_000, 2_500_000);
        t.span(ctx, svc, 0, Phase::Compute, 2_500_000, 9_000_000);
        t.terminal(ctx, 9_000_000, FrameFate::Completed);
        let ctx2 = t.ctx(0, 5);
        t.emitted(ctx2, 5_000);
        t.terminal(ctx2, 6_000, FrameFate::Dropped(DropReason::NetemLoss));
        t.finish(10_000_000)
    }

    #[test]
    fn export_is_valid_json_with_expected_rows() {
        let doc = export(&log());
        let v = Value::parse(&doc).expect("exporter emits valid JSON");
        let events = v.get("traceEvents").unwrap().as_array().unwrap();
        // 2 process_name + 2 thread_name + 2 spans + 2 terminals.
        assert_eq!(events.len(), 8);
        let span = events
            .iter()
            .find(|e| e.get("ph").unwrap().as_str() == Some("X"))
            .unwrap();
        assert_eq!(span.get("name").unwrap().as_str(), Some("network-transit"));
        assert_eq!(span.get("ts").unwrap().as_f64(), Some(1.0)); // µs
        let term = events
            .iter()
            .find(|e| e.get("name").unwrap().as_str() == Some("dropped:netem-loss"))
            .unwrap();
        assert_eq!(term.get("ph").unwrap().as_str(), Some("i"));
    }

    #[test]
    fn machines_get_distinct_pids() {
        let doc = export(&log());
        let v = Value::parse(&doc).unwrap();
        let pids: Vec<f64> = v
            .get("traceEvents")
            .unwrap()
            .as_array()
            .unwrap()
            .iter()
            .filter(|e| e.get("name").unwrap().as_str() == Some("process_name"))
            .map(|e| e.get("pid").unwrap().as_f64().unwrap())
            .collect();
        assert_eq!(pids.len(), 2);
        assert_ne!(pids[0], pids[1]);
    }
}
