//! Chrome trace-event exporter: a [`TraceLog`] becomes a JSON document
//! that `chrome://tracing` and Perfetto load directly.
//!
//! Mapping:
//! - **pid** = machine (one process row per machine, named via `M`
//!   `process_name` metadata);
//! - **tid** = track (one thread row per service instance / client,
//!   named via `M` `thread_name` metadata);
//! - phase spans become complete events (`"ph": "X"`, microsecond
//!   `ts`/`dur`), carrying client / frame / trace-id args;
//! - terminals become instant events (`"ph": "i"`) named after the
//!   fate, so drops are visible as markers on the timeline.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::io;

use crate::collect::TraceLog;
use crate::json::escape;
use crate::model::{FrameFate, TraceEvent};

/// What [`export_stream`] wrote: frame events shipped vs dropped by the
/// `max_events` cap (metadata rows are never counted or capped).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExportStats {
    pub written: usize,
    pub omitted: usize,
}

/// Render the log as a Chrome trace-event JSON document.
///
/// Convenience wrapper over [`export_stream`] with no event cap — fine
/// for study-sized logs, but a 100k-client run can hold tens of
/// millions of events; at scale, stream straight to disk with a cap
/// instead of materializing the document.
pub fn export(log: &TraceLog) -> String {
    let mut buf = Vec::with_capacity(4096 + log.events.len() * 128);
    export_stream(log, &mut buf, usize::MAX).expect("write to Vec cannot fail");
    String::from_utf8(buf).expect("exporter emits UTF-8")
}

/// Stream the log as Chrome trace-event JSON into `w`, shipping at most
/// `max_events` frame events (spans + terminals). Memory stays O(1) in
/// the log size: events are formatted and written one at a time, never
/// collected into a document string. When the cap truncates, a final
/// metadata instant event (`"cat":"meta"`, named `truncated:<n>`,
/// carrying the omitted count in `args`) marks the cut so a viewer —
/// or a gate — can tell a capped export from a complete one.
pub fn export_stream<W: io::Write>(
    log: &TraceLog,
    w: &mut W,
    max_events: usize,
) -> io::Result<ExportStats> {
    // Stable machine -> pid mapping (registration order).
    let mut pids: BTreeMap<&str, u32> = BTreeMap::new();
    for t in &log.tracks {
        let next = pids.len() as u32 + 1;
        pids.entry(t.machine.as_str()).or_insert(next);
    }
    let pid_of = |track: u16| -> u32 {
        log.tracks
            .get(track as usize)
            .and_then(|t| pids.get(t.machine.as_str()).copied())
            .unwrap_or(0)
    };

    w.write_all(b"{\n\"displayTimeUnit\": \"ms\",\n\"traceEvents\": [\n")?;
    let mut first = true;
    let mut push = |w: &mut W, line: &str| -> io::Result<()> {
        if !std::mem::take(&mut first) {
            w.write_all(b",\n")?;
        }
        w.write_all(line.as_bytes())
    };

    for (machine, pid) in &pids {
        push(
            w,
            &format!(
                "{{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":{pid},\"tid\":0,\
                 \"args\":{{\"name\":\"{}\"}}}}",
                escape(machine)
            ),
        )?;
    }
    for t in &log.tracks {
        push(
            w,
            &format!(
                "{{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":{},\"tid\":{},\
                 \"args\":{{\"name\":\"{}\"}}}}",
                pid_of(t.id.0),
                t.id.0,
                escape(&t.name)
            ),
        )?;
    }

    // Client-name -> tid lookup built once (terminals land on the
    // frame's client track); the linear scan per terminal was fine for
    // study logs but not for millions of events.
    let client_tids: BTreeMap<&str, u16> = log
        .tracks
        .iter()
        .filter(|t| t.name.starts_with("client-"))
        .map(|t| (t.name.as_str(), t.id.0))
        .collect();

    let mut written = 0usize;
    let mut omitted = 0usize;
    let mut last_ts_us = 0u64;
    let mut line = String::with_capacity(256);
    for ev in &log.events {
        match ev {
            TraceEvent::Emitted { .. } => continue, // implicit: first span starts here
            TraceEvent::Span(s) => {
                if written >= max_events {
                    omitted += 1;
                    continue;
                }
                line.clear();
                let _ = write!(
                    line,
                    "{{\"ph\":\"X\",\"name\":\"{}\",\"cat\":\"frame\",\"pid\":{},\"tid\":{},\
                     \"ts\":{},\"dur\":{},\"args\":{{\"client\":{},\"frame\":{},\"trace_id\":{},\"stage\":{}}}}}",
                    s.phase.as_str(),
                    pid_of(s.track.0),
                    s.track.0,
                    s.start_ns / 1_000,
                    s.duration_ns() / 1_000,
                    s.ctx.client,
                    s.ctx.frame_no,
                    s.ctx.trace_id,
                    s.stage,
                );
                last_ts_us = last_ts_us.max(s.start_ns / 1_000);
                push(w, &line)?;
                written += 1;
            }
            TraceEvent::Terminal { ctx, at_ns, fate } => {
                if written >= max_events {
                    omitted += 1;
                    continue;
                }
                let name = match fate {
                    FrameFate::Completed => "completed".to_string(),
                    FrameFate::Dropped(r) => format!("dropped:{}", r.as_str()),
                };
                let tid = client_tids
                    .get(format!("client-{}", ctx.client).as_str())
                    .copied()
                    .unwrap_or(0);
                line.clear();
                let _ = write!(
                    line,
                    "{{\"ph\":\"i\",\"name\":\"{}\",\"cat\":\"fate\",\"s\":\"t\",\"pid\":{},\"tid\":{},\
                     \"ts\":{},\"args\":{{\"client\":{},\"frame\":{},\"trace_id\":{}}}}}",
                    escape(&name),
                    pid_of(tid),
                    tid,
                    at_ns / 1_000,
                    ctx.client,
                    ctx.frame_no,
                    ctx.trace_id,
                );
                last_ts_us = last_ts_us.max(at_ns / 1_000);
                push(w, &line)?;
                written += 1;
            }
        }
    }
    if omitted > 0 {
        push(
            w,
            &format!(
                "{{\"ph\":\"i\",\"name\":\"truncated:{omitted}\",\"cat\":\"meta\",\"s\":\"g\",\
                 \"pid\":0,\"tid\":0,\"ts\":{last_ts_us},\"args\":{{\"omitted\":{omitted}}}}}"
            ),
        )?;
    }
    w.write_all(b"\n]\n}\n")?;
    Ok(ExportStats { written, omitted })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collect::{TraceConfig, Tracer};
    use crate::json::Value;
    use crate::model::{DropReason, Phase};

    fn log() -> TraceLog {
        let mut t = Tracer::new(TraceConfig::default());
        let cl = t.register_track("client-0", "client-host");
        let svc = t.register_track("primary#0", "c1");
        let ctx = t.ctx(0, 4);
        t.emitted(ctx, 1_000);
        t.span(ctx, cl, 0, Phase::NetworkTransit, 1_000, 2_500_000);
        t.span(ctx, svc, 0, Phase::Compute, 2_500_000, 9_000_000);
        t.terminal(ctx, 9_000_000, FrameFate::Completed);
        let ctx2 = t.ctx(0, 5);
        t.emitted(ctx2, 5_000);
        t.terminal(ctx2, 6_000, FrameFate::Dropped(DropReason::NetemLoss));
        t.finish(10_000_000)
    }

    #[test]
    fn export_is_valid_json_with_expected_rows() {
        let doc = export(&log());
        let v = Value::parse(&doc).expect("exporter emits valid JSON");
        let events = v.get("traceEvents").unwrap().as_array().unwrap();
        // 2 process_name + 2 thread_name + 2 spans + 2 terminals.
        assert_eq!(events.len(), 8);
        let span = events
            .iter()
            .find(|e| e.get("ph").unwrap().as_str() == Some("X"))
            .unwrap();
        assert_eq!(span.get("name").unwrap().as_str(), Some("network-transit"));
        assert_eq!(span.get("ts").unwrap().as_f64(), Some(1.0)); // µs
        let term = events
            .iter()
            .find(|e| e.get("name").unwrap().as_str() == Some("dropped:netem-loss"))
            .unwrap();
        assert_eq!(term.get("ph").unwrap().as_str(), Some("i"));
    }

    #[test]
    fn stream_cap_truncates_with_counted_marker() {
        let l = log(); // 2 spans + 2 terminals = 4 frame events
        let mut buf = Vec::new();
        let stats = export_stream(&l, &mut buf, 3).unwrap();
        assert_eq!(
            stats,
            ExportStats {
                written: 3,
                omitted: 1
            }
        );
        let v = Value::parse(std::str::from_utf8(&buf).unwrap()).expect("capped export is JSON");
        let events = v.get("traceEvents").unwrap().as_array().unwrap();
        let marker = events
            .iter()
            .find(|e| e.get("cat").and_then(|c| c.as_str()) == Some("meta"))
            .expect("truncation marker present");
        assert_eq!(marker.get("name").unwrap().as_str(), Some("truncated:1"));
        assert_eq!(
            marker.get("args").unwrap().get("omitted").unwrap().as_f64(),
            Some(1.0)
        );
    }

    #[test]
    fn uncapped_stream_matches_export_and_has_no_marker() {
        let l = log();
        let mut buf = Vec::new();
        let stats = export_stream(&l, &mut buf, usize::MAX).unwrap();
        assert_eq!(stats.omitted, 0);
        assert_eq!(std::str::from_utf8(&buf).unwrap(), export(&l));
        assert!(!export(&l).contains("\"cat\":\"meta\""));
    }

    #[test]
    fn machines_get_distinct_pids() {
        let doc = export(&log());
        let v = Value::parse(&doc).unwrap();
        let pids: Vec<f64> = v
            .get("traceEvents")
            .unwrap()
            .as_array()
            .unwrap()
            .iter()
            .filter(|e| e.get("name").unwrap().as_str() == Some("process_name"))
            .map(|e| e.get("pid").unwrap().as_f64().unwrap())
            .collect();
        assert_eq!(pids.len(), 2);
        assert_ne!(pids[0], pids[1]);
    }
}
