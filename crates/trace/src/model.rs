//! The span model: what one frame's journey through the pipeline looks
//! like when written down.
//!
//! A frame's life is a sequence of non-overlapping **phase spans** on
//! named **tracks** (one track per service instance per machine, plus
//! one per client), bracketed by an `Emitted` event and exactly one
//! `Terminal` event. The phase vocabulary is shared between the
//! discrete-event simulation and the real UDP runtime so that traces
//! from both planes load into the same tooling:
//!
//! - the DES emits [`Phase::NetworkTransit`], [`Phase::SidecarHold`],
//!   [`Phase::Compute`] and [`Phase::FetchWait`]; its spans tile the
//!   frame's end-to-end interval exactly, so per-phase sums reconcile
//!   with the report-level latency breakdown by construction;
//! - the runtime additionally emits [`Phase::IngressQueue`] (previous
//!   hop's send → this service's receive: loopback transit plus socket
//!   buffer wait), because on real sockets the queue is invisible from
//!   the inside and can only be observed as the recv-side gap.

/// Per-frame trace context, carried in [`crate::collect`] events, in the
/// DES frame message, and on the wire (8-byte id + 1 flag byte).
///
/// `Copy` and 16 bytes: cheap enough to ride every frame even with
/// tracing disabled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TraceCtx {
    /// Globally unique per frame and stable across runs:
    /// `client << 32 | frame_no` (no RNG involved, so tracing never
    /// perturbs DES determinism).
    pub trace_id: u64,
    pub client: u16,
    pub frame_no: u32,
    /// Whether this frame was chosen by 1-in-N sampling. Unsampled
    /// frames short-circuit every recording call.
    pub sampled: bool,
}

impl TraceCtx {
    /// Context for a sampled-or-not frame; the id derivation is the one
    /// both planes use.
    pub fn new(client: u16, frame_no: u32, sampled: bool) -> TraceCtx {
        TraceCtx {
            trace_id: ((client as u64) << 32) | frame_no as u64,
            client,
            frame_no,
            sampled,
        }
    }

    /// The inert context: never sampled, id 0. Default for frames built
    /// outside any tracer (tests, un-traced runs).
    pub fn unsampled() -> TraceCtx {
        TraceCtx {
            trace_id: 0,
            client: 0,
            frame_no: 0,
            sampled: false,
        }
    }

    /// Frame key used throughout analysis.
    pub fn key(&self) -> (u16, u32) {
        (self.client, self.frame_no)
    }
}

impl Default for TraceCtx {
    fn default() -> TraceCtx {
        TraceCtx::unsampled()
    }
}

/// What a frame is doing during a span.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Phase {
    /// Runtime only: previous hop's send to this service's reassembled
    /// receive (transit + socket buffer wait).
    IngressQueue,
    /// Service compute, accept to completion (includes GPU service time).
    Compute,
    /// `matching` parked, waiting for `sift`'s state response — the
    /// dependency loop's direct cost. Subsumes the fetch datagrams'
    /// transit, which is why those hops emit no spans of their own.
    FetchWait,
    /// In flight between services (or back to the client), including
    /// load-balancer overhead.
    NetworkTransit,
    /// Queued in the scAtteR++ sidecar awaiting admission.
    SidecarHold,
}

impl Phase {
    pub const ALL: [Phase; 5] = [
        Phase::IngressQueue,
        Phase::Compute,
        Phase::FetchWait,
        Phase::NetworkTransit,
        Phase::SidecarHold,
    ];

    pub fn as_str(&self) -> &'static str {
        match self {
            Phase::IngressQueue => "ingress-queue",
            Phase::Compute => "compute",
            Phase::FetchWait => "fetch-wait",
            Phase::NetworkTransit => "network-transit",
            Phase::SidecarHold => "sidecar-hold",
        }
    }
}

/// Why a frame failed to complete — the unified vocabulary for both
/// planes. Every emitted frame ends `Completed` or `Dropped(reason)`;
/// the forensics table in `experiments --bin trace` must account for
/// 100% of emissions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum DropReason {
    /// Arrived while the (stateful, one-in-one-out) instance was busy.
    BusyIngress,
    /// Rejected by the sidecar's projected-completion filter, at
    /// admission or on dequeue (DES), or by the staleness threshold
    /// (runtime).
    ThresholdFilter,
    /// The network ate a single-fragment datagram.
    NetemLoss,
    /// A multi-fragment datagram lost at least one fragment (or the
    /// runtime reassembler evicted a partial message).
    FragmentLoss,
    /// `matching`'s fetch to `sift` timed out / state already evicted.
    StaleFetch,
    /// Lost to an instance crash: arrived while down, queued or
    /// in-compute at crash time, or parked awaiting a fetch that the
    /// crash voided.
    Crash,
    /// Every replica of a required service is down (the failure
    /// detector removed the last one): nothing to route to, so the
    /// frame is dropped at the load balancer instead of aborting the
    /// run.
    ServiceOutage,
    /// The client's response deadline expired before the result came
    /// back; a late completion is re-attributed to this reason so the
    /// frame is not double-counted as a success after the client gave
    /// up (and possibly retried).
    ResponseDeadline,
    /// Refused at emission by the overload controller's last ladder
    /// rung: the client received an explicit NACK instead of silently
    /// losing the frame past the scalability knee.
    AdmissionNack,
    /// Still in flight when the run ended — assigned by
    /// [`crate::analysis::Analysis`], never by an instrument site. Keeps
    /// attribution at exactly 100% for finite runs.
    RunEnd,
    /// A wire-v2 datagram failed its CRC check: corrupted in flight,
    /// dropped before a single payload byte was parsed. v1 has no
    /// equivalent — corruption there surfaces (if at all) as an
    /// unattributable payload-decode failure downstream.
    InvalidCrc,
    /// A wire-v2 delta frame could not resolve its keyframe anchor
    /// (the anchor was lost or evicted): dropped whole rather than
    /// spliced against the wrong base. The next keyframe resyncs.
    DeltaResync,
}

impl DropReason {
    pub const ALL: [DropReason; 12] = [
        DropReason::BusyIngress,
        DropReason::ThresholdFilter,
        DropReason::NetemLoss,
        DropReason::FragmentLoss,
        DropReason::StaleFetch,
        DropReason::Crash,
        DropReason::ServiceOutage,
        DropReason::ResponseDeadline,
        DropReason::AdmissionNack,
        DropReason::RunEnd,
        DropReason::InvalidCrc,
        DropReason::DeltaResync,
    ];

    pub fn as_str(&self) -> &'static str {
        match self {
            DropReason::BusyIngress => "busy-ingress",
            DropReason::ThresholdFilter => "threshold-filter",
            DropReason::NetemLoss => "netem-loss",
            DropReason::FragmentLoss => "fragment-loss",
            DropReason::StaleFetch => "stale-fetch",
            DropReason::Crash => "crash",
            DropReason::ServiceOutage => "service-outage",
            DropReason::ResponseDeadline => "response-deadline",
            DropReason::AdmissionNack => "admission-nack",
            DropReason::RunEnd => "run-end",
            DropReason::InvalidCrc => "invalid-crc",
            DropReason::DeltaResync => "delta-resync",
        }
    }
}

/// How a frame's story ends.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameFate {
    Completed,
    Dropped(DropReason),
}

/// Handle to a registered track (service instance or client).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TrackId(pub u16);

/// A track: one service instance on one machine (or one client).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrackInfo {
    pub id: TrackId,
    /// e.g. `sift#1` or `client-3`.
    pub name: String,
    /// Machine the instance runs on; becomes the Chrome trace `pid`.
    pub machine: String,
}

/// Stage index of the owning service (0..=4 per
/// `scatter::ServiceKind::index`); [`STAGE_CLIENT`] for client-side
/// spans such as the result's return transit.
pub const STAGE_CLIENT: u8 = 5;

/// One contiguous interval of a frame's life on one track.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpanRecord {
    pub ctx: TraceCtx,
    pub phase: Phase,
    /// Service stage index, or [`STAGE_CLIENT`].
    pub stage: u8,
    pub track: TrackId,
    pub start_ns: u64,
    pub end_ns: u64,
}

impl SpanRecord {
    pub fn duration_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }

    pub fn duration_ms(&self) -> f64 {
        self.duration_ns() as f64 / 1e6
    }
}

/// The collector's event stream: everything needed to reconstruct every
/// sampled frame.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    Emitted {
        ctx: TraceCtx,
        at_ns: u64,
    },
    Span(SpanRecord),
    Terminal {
        ctx: TraceCtx,
        at_ns: u64,
        fate: FrameFate,
    },
}

impl TraceEvent {
    pub fn ctx(&self) -> &TraceCtx {
        match self {
            TraceEvent::Emitted { ctx, .. } => ctx,
            TraceEvent::Span(s) => &s.ctx,
            TraceEvent::Terminal { ctx, .. } => ctx,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_id_is_stable_and_distinct() {
        let a = TraceCtx::new(1, 7, true);
        let b = TraceCtx::new(1, 7, false);
        assert_eq!(a.trace_id, b.trace_id); // sampling doesn't change identity
        assert_ne!(TraceCtx::new(2, 7, true).trace_id, a.trace_id);
        assert_ne!(TraceCtx::new(1, 8, true).trace_id, a.trace_id);
        assert_eq!(a.key(), (1, 7));
    }

    #[test]
    fn vocabulary_is_total() {
        // Every phase and reason has a distinct printable name.
        let mut names: Vec<&str> = Phase::ALL.iter().map(|p| p.as_str()).collect();
        names.extend(DropReason::ALL.iter().map(|r| r.as_str()));
        let n = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), n);
    }
}
