//! From an event soup to per-frame stories: critical paths, phase
//! budgets, and drop forensics.
//!
//! [`Analysis::from_log`] groups the stream by frame, orders each
//! frame's spans, and *closes the books*: any sampled frame without a
//! terminal is assigned [`DropReason::RunEnd`] at the log's end time, so
//! `completed + dropped == emitted` holds for every finite run — the
//! 100%-attribution property the forensics table relies on.

use std::collections::BTreeMap;

use crate::collect::TraceLog;
use crate::model::{DropReason, FrameFate, Phase, SpanRecord, TraceCtx, TrackInfo};

/// One frame's reconstructed story.
#[derive(Debug, Clone)]
pub struct FrameTrace {
    pub ctx: TraceCtx,
    pub emitted_ns: Option<u64>,
    /// Sorted by start time by [`Analysis::from_log`].
    pub spans: Vec<SpanRecord>,
    pub fate: (u64, FrameFate),
}

impl FrameTrace {
    pub fn completed(&self) -> bool {
        matches!(self.fate.1, FrameFate::Completed)
    }

    /// Emission → terminal, in ms.
    pub fn e2e_ms(&self) -> f64 {
        let from = self.emitted_ns.unwrap_or(self.fate.0);
        self.fate.0.saturating_sub(from) as f64 / 1e6
    }

    /// Sum of span durations, in ms. For a completed DES frame this
    /// equals [`FrameTrace::e2e_ms`] because the DES spans tile the
    /// interval.
    pub fn span_total_ms(&self) -> f64 {
        self.spans.iter().map(|s| s.duration_ms()).sum()
    }
}

/// A (track, phase) aggregate over completed frames — one row of the
/// critical-path table.
#[derive(Debug, Clone)]
pub struct StageContribution {
    pub track: String,
    pub phase: Phase,
    pub total_ms: f64,
    /// Mean over completed frames that touched this (track, phase).
    pub mean_ms: f64,
    pub frames: usize,
    /// Fraction of all completed frames' span time.
    pub share: f64,
}

/// The analyzer: per-frame stories plus aggregates.
pub struct Analysis {
    frames: BTreeMap<(u16, u32), FrameTrace>,
    tracks: Vec<TrackInfo>,
    /// Frames closed by the analyzer as [`DropReason::RunEnd`].
    pub assigned_run_end: usize,
    /// Frames that carried more than one terminal event (a bug if > 0).
    pub duplicate_terminals: usize,
    pub end_ns: u64,
}

impl Analysis {
    pub fn from_log(log: &TraceLog) -> Analysis {
        struct Partial {
            ctx: TraceCtx,
            emitted_ns: Option<u64>,
            spans: Vec<SpanRecord>,
            fate: Option<(u64, FrameFate)>,
            extra_terminals: usize,
        }
        let mut partials: BTreeMap<(u16, u32), Partial> = BTreeMap::new();
        fn entry<'a>(
            partials: &'a mut BTreeMap<(u16, u32), Partial>,
            ctx: &TraceCtx,
        ) -> &'a mut Partial {
            partials.entry(ctx.key()).or_insert_with(|| Partial {
                ctx: *ctx,
                emitted_ns: None,
                spans: Vec::new(),
                fate: None,
                extra_terminals: 0,
            })
        }
        for ev in &log.events {
            match ev {
                crate::model::TraceEvent::Emitted { ctx, at_ns } => {
                    entry(&mut partials, ctx).emitted_ns = Some(*at_ns);
                }
                crate::model::TraceEvent::Span(s) => {
                    entry(&mut partials, &s.ctx).spans.push(*s);
                }
                crate::model::TraceEvent::Terminal { ctx, at_ns, fate } => {
                    let p = entry(&mut partials, ctx);
                    if p.fate.is_some() {
                        p.extra_terminals += 1;
                    } else {
                        p.fate = Some((*at_ns, *fate));
                    }
                }
            }
        }
        let mut assigned_run_end = 0;
        let mut duplicate_terminals = 0;
        let frames = partials
            .into_iter()
            .map(|(key, mut p)| {
                p.spans.sort_by_key(|s| (s.start_ns, s.end_ns));
                duplicate_terminals += p.extra_terminals;
                let fate = p.fate.unwrap_or_else(|| {
                    assigned_run_end += 1;
                    (log.end_ns, FrameFate::Dropped(DropReason::RunEnd))
                });
                (
                    key,
                    FrameTrace {
                        ctx: p.ctx,
                        emitted_ns: p.emitted_ns,
                        spans: p.spans,
                        fate,
                    },
                )
            })
            .collect();
        Analysis {
            frames,
            tracks: log.tracks.clone(),
            assigned_run_end,
            duplicate_terminals,
            end_ns: log.end_ns,
        }
    }

    pub fn frames(&self) -> impl Iterator<Item = &FrameTrace> {
        self.frames.values()
    }

    pub fn frame(&self, client: u16, frame_no: u32) -> Option<&FrameTrace> {
        self.frames.get(&(client, frame_no))
    }

    pub fn emitted(&self) -> usize {
        self.frames.len()
    }

    pub fn completed(&self) -> usize {
        self.frames.values().filter(|f| f.completed()).count()
    }

    pub fn dropped(&self) -> usize {
        self.emitted() - self.completed()
    }

    /// Drop counts by reason; values sum to [`Analysis::dropped`].
    pub fn drop_reasons(&self) -> BTreeMap<DropReason, usize> {
        let mut out = BTreeMap::new();
        for f in self.frames.values() {
            if let FrameFate::Dropped(r) = f.fate.1 {
                *out.entry(r).or_insert(0) += 1;
            }
        }
        out
    }

    /// Mean end-to-end latency of completed frames, ms.
    pub fn mean_e2e_ms(&self) -> f64 {
        let (mut sum, mut n) = (0.0, 0usize);
        for f in self.frames.values().filter(|f| f.completed()) {
            sum += f.e2e_ms();
            n += 1;
        }
        if n == 0 {
            0.0
        } else {
            sum / n as f64
        }
    }

    /// Mean ms spent in `phase` per completed frame (frames that skip
    /// the phase contribute 0 — matching how report-level breakdowns
    /// average).
    pub fn mean_phase_ms(&self, phase: Phase) -> f64 {
        let mut n = 0usize;
        let mut sum = 0.0;
        for f in self.frames.values().filter(|f| f.completed()) {
            n += 1;
            sum += f
                .spans
                .iter()
                .filter(|s| s.phase == phase)
                .map(|s| s.duration_ms())
                .sum::<f64>();
        }
        if n == 0 {
            0.0
        } else {
            sum / n as f64
        }
    }

    /// Mean ms per completed frame in `phase` at service stage `stage`.
    pub fn mean_stage_phase_ms(&self, stage: u8, phase: Phase) -> f64 {
        let mut n = 0usize;
        let mut sum = 0.0;
        for f in self.frames.values().filter(|f| f.completed()) {
            n += 1;
            sum += f
                .spans
                .iter()
                .filter(|s| s.phase == phase && s.stage == stage)
                .map(|s| s.duration_ms())
                .sum::<f64>();
        }
        if n == 0 {
            0.0
        } else {
            sum / n as f64
        }
    }

    /// The critical path of one frame: its spans in time order. With
    /// non-overlapping spans, the path *is* the sequence.
    pub fn critical_path(&self, client: u16, frame_no: u32) -> Option<&[SpanRecord]> {
        self.frames
            .get(&(client, frame_no))
            .map(|f| f.spans.as_slice())
    }

    /// (track, phase) contributions over completed frames, heaviest
    /// first — "where do the milliseconds go".
    pub fn critical_stages(&self) -> Vec<StageContribution> {
        let mut agg: BTreeMap<(u16, Phase), (f64, usize)> = BTreeMap::new();
        let mut grand_total = 0.0;
        for f in self.frames.values().filter(|f| f.completed()) {
            let mut seen: BTreeMap<(u16, Phase), f64> = BTreeMap::new();
            for s in &f.spans {
                *seen.entry((s.track.0, s.phase)).or_insert(0.0) += s.duration_ms();
            }
            for ((track, phase), ms) in seen {
                let e = agg.entry((track, phase)).or_insert((0.0, 0));
                e.0 += ms;
                e.1 += 1;
                grand_total += ms;
            }
        }
        let mut out: Vec<StageContribution> = agg
            .into_iter()
            .map(|((track, phase), (total_ms, frames))| StageContribution {
                track: self
                    .tracks
                    .get(track as usize)
                    .map(|t| t.name.clone())
                    .unwrap_or_else(|| format!("track-{track}")),
                phase,
                total_ms,
                mean_ms: total_ms / frames as f64,
                frames,
                share: if grand_total > 0.0 {
                    total_ms / grand_total
                } else {
                    0.0
                },
            })
            .collect();
        out.sort_by(|a, b| b.total_ms.partial_cmp(&a.total_ms).unwrap());
        out
    }

    /// Structural invariants every log must satisfy:
    ///
    /// 1. every frame has an emission event and exactly one terminal;
    /// 2. timestamps are monotone: spans end no earlier than they start,
    ///    start no earlier than the emission, and the terminal is not
    ///    before the last span's end;
    /// 3. a frame's spans do not overlap (its life is a path, not a DAG);
    /// 4. conservation: completed + dropped == emitted.
    pub fn check_invariants(&self) -> Result<(), String> {
        if self.duplicate_terminals > 0 {
            return Err(format!(
                "{} duplicate terminal events",
                self.duplicate_terminals
            ));
        }
        for f in self.frames.values() {
            let key = f.ctx.key();
            let Some(emitted) = f.emitted_ns else {
                return Err(format!("frame {key:?}: events without an Emitted record"));
            };
            let mut cursor = emitted;
            for s in &f.spans {
                if s.end_ns < s.start_ns {
                    return Err(format!(
                        "frame {key:?}: span {:?} ends before it starts",
                        s.phase
                    ));
                }
                if s.start_ns < emitted {
                    return Err(format!(
                        "frame {key:?}: span {:?} starts before emission",
                        s.phase
                    ));
                }
                if s.start_ns < cursor {
                    return Err(format!(
                        "frame {key:?}: span {:?} @{} overlaps previous span ending @{cursor}",
                        s.phase, s.start_ns
                    ));
                }
                cursor = s.end_ns;
            }
            if f.fate.0 < cursor {
                return Err(format!(
                    "frame {key:?}: terminal @{} precedes last span end @{cursor}",
                    f.fate.0
                ));
            }
        }
        let by_reason: usize = self.drop_reasons().values().sum();
        if self.completed() + by_reason != self.emitted() {
            return Err(format!(
                "conservation: {} completed + {} dropped != {} emitted",
                self.completed(),
                by_reason,
                self.emitted()
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collect::{TraceConfig, Tracer};
    use crate::model::{FrameFate, TrackId};

    fn sample_log() -> TraceLog {
        let mut t = Tracer::new(TraceConfig::default());
        let net = t.register_track("client-0", "edge");
        let svc = t.register_track("sift#0", "c1");
        // Frame 0: completes. Emit 0, transit 0-2ms, compute 2-7ms.
        let c0 = t.ctx(0, 0);
        t.emitted(c0, 0);
        t.span(c0, net, 1, Phase::NetworkTransit, 0, 2_000_000);
        t.span(c0, svc, 1, Phase::Compute, 2_000_000, 7_000_000);
        t.terminal(c0, 7_000_000, FrameFate::Completed);
        // Frame 1: dropped busy after transit.
        let c1 = t.ctx(0, 1);
        t.emitted(c1, 1_000_000);
        t.span(c1, net, 1, Phase::NetworkTransit, 1_000_000, 3_000_000);
        t.terminal(c1, 3_000_000, FrameFate::Dropped(DropReason::BusyIngress));
        // Frame 2: emitted, never resolved (in flight at end).
        let c2 = t.ctx(0, 2);
        t.emitted(c2, 2_000_000);
        t.finish(10_000_000)
    }

    #[test]
    fn reconstruction_and_conservation() {
        let log = sample_log();
        let a = Analysis::from_log(&log);
        assert_eq!(a.emitted(), 3);
        assert_eq!(a.completed(), 1);
        assert_eq!(a.dropped(), 2);
        assert_eq!(a.assigned_run_end, 1);
        let reasons = a.drop_reasons();
        assert_eq!(reasons[&DropReason::BusyIngress], 1);
        assert_eq!(reasons[&DropReason::RunEnd], 1);
        a.check_invariants().unwrap();
        // e2e of frame 0 = 7ms; spans tile it exactly.
        let f0 = a.frame(0, 0).unwrap();
        assert!((f0.e2e_ms() - 7.0).abs() < 1e-9);
        assert!((f0.span_total_ms() - 7.0).abs() < 1e-9);
    }

    #[test]
    fn critical_stages_rank_by_total_time() {
        let a = Analysis::from_log(&sample_log());
        let stages = a.critical_stages();
        assert_eq!(stages[0].phase, Phase::Compute);
        assert_eq!(stages[0].track, "sift#0");
        assert!((stages[0].total_ms - 5.0).abs() < 1e-9);
        let share_sum: f64 = stages.iter().map(|s| s.share).sum();
        assert!((share_sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn overlap_is_detected() {
        let mut t = Tracer::new(TraceConfig::default());
        let tr = t.register_track("svc", "m");
        let c = t.ctx(0, 0);
        t.emitted(c, 0);
        t.span(c, tr, 0, Phase::Compute, 0, 5);
        t.span(c, tr, 0, Phase::FetchWait, 3, 8); // overlaps
        t.terminal(c, 8, FrameFate::Completed);
        let a = Analysis::from_log(&t.finish(10));
        assert!(a.check_invariants().is_err());
    }

    #[test]
    fn unknown_track_id_does_not_panic() {
        let mut t = Tracer::new(TraceConfig::default());
        let c = t.ctx(0, 0);
        t.emitted(c, 0);
        t.span(c, TrackId(99), 0, Phase::Compute, 0, 5);
        t.terminal(c, 5, FrameFate::Completed);
        let a = Analysis::from_log(&t.finish(10));
        assert_eq!(a.critical_stages()[0].track, "track-99");
    }
}
