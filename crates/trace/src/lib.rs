//! # trace — per-frame causal tracing for both execution planes
//!
//! The paper's analysis hinges on *where frames spend their time* and
//! *why frames die*. This crate gives every frame a [`TraceCtx`] that
//! travels with it — through the discrete-event simulation's
//! `FrameMsg` and through the UDP runtime's wire header — and records
//! its journey as phase spans on per-instance tracks:
//!
//! ```text
//! emitted ──网─▶ [network-transit] ─▶ [sidecar-hold] ─▶ [compute] ─▶ …
//!                                                   └▶ dropped: threshold-filter
//! ```
//!
//! - [`model`] — contexts, phases, drop reasons, spans, tracks;
//! - [`collect`] — the DES [`Tracer`] (deterministic, allocation-only)
//!   and the runtime [`Collector`]/[`ThreadTracer`] (channel-based);
//! - [`analysis`] — per-frame reconstruction, critical paths, phase
//!   budgets, and drop forensics with 100% attribution;
//! - [`chrome`] — Chrome trace-event / Perfetto export;
//! - [`json`] — escaping + a small parser (offline substitute for
//!   serde_json, also used by `experiments`' tables).
//!
//! Tracing defaults to **off** and costs one branch per call site when
//! disabled; 1-in-N sampling is deterministic in the frame number, so
//! enabling it never perturbs the DES's RNG streams.

pub mod analysis;
pub mod chrome;
pub mod collect;
pub mod json;
pub mod model;

pub use analysis::{Analysis, FrameTrace, StageContribution};
pub use collect::{Collector, ThreadTracer, TraceConfig, TraceLog, Tracer};
pub use model::{
    DropReason, FrameFate, Phase, SpanRecord, TraceCtx, TraceEvent, TrackId, TrackInfo,
    STAGE_CLIENT,
};
