//! Hand-rolled JSON: a string escaper for the exporters and a small
//! recursive-descent parser used by tests (and by `experiments`' table
//! round-trip checks) to validate what the exporters emit. The workspace
//! builds offline, so there is no serde_json to lean on; this covers the
//! subset the repo needs: UTF-8 strings, f64 numbers, bools, null,
//! arrays, objects.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Escape `s` as the *interior* of a JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Render an f64 the way JSON expects (no NaN/inf; integers without a
/// trailing `.0` for stability across parsers).
pub fn number(v: f64) -> String {
    if !v.is_finite() {
        return "null".to_string();
    }
    if v == v.trunc() && v.abs() < 9e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

/// Parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Number(f64),
    String(String),
    Array(Vec<Value>),
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// Parse a complete JSON document (trailing whitespace allowed).
    pub fn parse(text: &str) -> Result<Value, String> {
        let mut p = Parser {
            b: text.as_bytes(),
            i: 0,
        };
        p.ws();
        let v = p.value()?;
        p.ws();
        if p.i != p.b.len() {
            return Err(format!("trailing bytes at offset {}", p.i));
        }
        Ok(v)
    }

    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(m) => m.get(key),
            _ => None,
        }
    }

    pub fn idx(&self, i: usize) -> Option<&Value> {
        match self {
            Value::Array(a) => a.get(i),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl Parser<'_> {
    fn ws(&mut self) {
        while self.i < self.b.len() && matches!(self.b[self.i], b' ' | b'\t' | b'\n' | b'\r') {
            self.i += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.i += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at offset {}", c as char, self.i))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(format!(
                "unexpected {:?} at offset {}",
                other.map(|c| c as char),
                self.i
            )),
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, String> {
        if self.b[self.i..].starts_with(lit.as_bytes()) {
            self.i += lit.len();
            Ok(v)
        } else {
            Err(format!("bad literal at offset {}", self.i))
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.i;
        if self.peek() == Some(b'-') {
            self.i += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.i += 1;
        }
        std::str::from_utf8(&self.b[start..self.i])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Value::Number)
            .ok_or_else(|| format!("bad number at offset {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = Vec::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.i += 1;
                    return String::from_utf8(out).map_err(|_| "invalid UTF-8".to_string());
                }
                Some(b'\\') => {
                    self.i += 1;
                    match self.peek() {
                        Some(b'"') => out.push(b'"'),
                        Some(b'\\') => out.push(b'\\'),
                        Some(b'/') => out.push(b'/'),
                        Some(b'n') => out.push(b'\n'),
                        Some(b'r') => out.push(b'\r'),
                        Some(b't') => out.push(b'\t'),
                        Some(b'b') => out.push(0x08),
                        Some(b'f') => out.push(0x0C),
                        Some(b'u') => {
                            if self.i + 4 >= self.b.len() {
                                return Err("truncated \\u escape".to_string());
                            }
                            let hex = std::str::from_utf8(&self.b[self.i + 1..self.i + 5])
                                .map_err(|_| "bad \\u escape".to_string())?;
                            let cp = u32::from_str_radix(hex, 16)
                                .map_err(|_| "bad \\u escape".to_string())?;
                            // BMP only — enough for exporter output.
                            let c = char::from_u32(cp).unwrap_or('\u{FFFD}');
                            let mut buf = [0u8; 4];
                            out.extend_from_slice(c.encode_utf8(&mut buf).as_bytes());
                            self.i += 4;
                        }
                        _ => return Err(format!("bad escape at offset {}", self.i)),
                    }
                    self.i += 1;
                }
                Some(c) => {
                    out.push(c);
                    self.i += 1;
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.ws();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.ws();
            items.push(self.value()?);
            self.ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(format!("expected ',' or ']' at offset {}", self.i)),
            }
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.ws();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.ws();
            let key = self.string()?;
            self.ws();
            self.expect(b':')?;
            self.ws();
            let val = self.value()?;
            map.insert(key, val);
            self.ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(format!("expected ',' or '}}' at offset {}", self.i)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let v = Value::parse(
            r#"{"a": [1, 2.5, -3e2], "s": "x\"y\n", "b": true, "n": null, "o": {"k": "v"}}"#,
        )
        .unwrap();
        assert_eq!(v.get("a").unwrap().idx(1).unwrap().as_f64(), Some(2.5));
        assert_eq!(v.get("a").unwrap().idx(2).unwrap().as_f64(), Some(-300.0));
        assert_eq!(v.get("s").unwrap().as_str(), Some("x\"y\n"));
        assert_eq!(v.get("b"), Some(&Value::Bool(true)));
        assert_eq!(v.get("n"), Some(&Value::Null));
        assert_eq!(v.get("o").unwrap().get("k").unwrap().as_str(), Some("v"));
    }

    #[test]
    fn escape_round_trips_through_parser() {
        let nasty = "he said \"hi\"\t\\ \n\u{1}";
        let doc = format!("{{\"k\": \"{}\"}}", escape(nasty));
        let v = Value::parse(&doc).unwrap();
        assert_eq!(v.get("k").unwrap().as_str(), Some(nasty));
    }

    #[test]
    fn rejects_garbage() {
        assert!(Value::parse("{").is_err());
        assert!(Value::parse("[1,]").is_err());
        assert!(Value::parse("{\"a\" 1}").is_err());
        assert!(Value::parse("12 34").is_err());
    }

    #[test]
    fn number_rendering_is_parse_stable() {
        for v in [0.0, 1.0, -17.0, 2.5, 1e12, 0.125] {
            let parsed = Value::parse(&number(v)).unwrap();
            assert_eq!(parsed.as_f64(), Some(v));
        }
        assert_eq!(number(f64::NAN), "null");
    }
}
