//! The event queue and simulation driver.
//!
//! [`Sim`] owns one or more binary heaps of scheduled events ordered by
//! `(time, seq)`. The sequence number makes same-instant events fire in
//! the order they were scheduled, which is what keeps multi-client
//! experiments deterministic: two frames arriving at a service in the
//! same nanosecond are processed in a stable order regardless of heap
//! internals.
//!
//! # Sharding
//!
//! [`Sim::with_shards`] partitions the queue into `k` independent heaps;
//! [`Sim::schedule_keyed`] routes an event to shard `key % k` (the
//! scale-out world keys client events by access site). Determinism is
//! preserved *by construction*, not by luck:
//!
//! - sequence numbers are assigned from one global counter at schedule
//!   time, independent of shard assignment;
//! - every pop scans the shard heads in fixed index order and fires the
//!   global `(time, seq)` minimum.
//!
//! The fired sequence is therefore exactly the sorted `(time, seq)`
//! order of all live events — the same total order a single heap
//! produces — for *any* shard count and *any* key assignment. Sharded
//! and unsharded runs of the same seeded world are byte-identical; the
//! win is smaller heaps (better sift depth and cache locality) once a
//! single heap holds hundreds of thousands of in-flight client events.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};
use std::time::Instant;

use crate::time::{SimDuration, SimTime};

/// Sampled self-profile of the driver's two hot phases: queue pop
/// (cancellation reap + shard-head scan) and event execution (the
/// closure body). Maintained only when [`Sim::enable_profiling`] was
/// called; 1 in `2^shift` entries pays for a wall-clock pair, the rest
/// cost one increment. Reading the clock never feeds back into event
/// order, so profiled and unprofiled runs stay byte-identical.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimProfStats {
    pub pop_calls: u64,
    pub pop_samples: u64,
    pub pop_sampled_ns: u64,
    pub exec_calls: u64,
    pub exec_samples: u64,
    pub exec_sampled_ns: u64,
}

#[derive(Debug)]
struct SimProf {
    mask: u64,
    stats: SimProfStats,
}

/// Identifier of a scheduled event, usable for cancellation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventId(u64);

type EventFn<W> = Box<dyn FnOnce(&mut W, &mut Sim<W>)>;

/// One heap entry: fire time, FIFO tie-break, and the closure. Kept
/// lean on purpose — this struct is moved during every heap sift, so
/// every byte shows up in the simulator's events/sec.
struct Scheduled<W> {
    at: SimTime,
    seq: u64,
    run: EventFn<W>,
}

/// Hasher for the cancellation set. Event sequence numbers are already
/// unique dense integers, so hashing them through SipHash (the
/// `HashSet` default) costs more than the set membership test itself;
/// a Fibonacci multiply spreads consecutive seqs across buckets at the
/// price of one instruction.
#[derive(Default, Clone)]
struct SeqHasher(u64);

impl Hasher for SeqHasher {
    fn finish(&self) -> u64 {
        self.0
    }
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0.rotate_left(8) ^ u64::from(b)).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        }
    }
    fn write_u64(&mut self, v: u64) {
        self.0 = v.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    }
}

type SeqSet = HashSet<u64, BuildHasherDefault<SeqHasher>>;

impl<W> PartialEq for Scheduled<W> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<W> Eq for Scheduled<W> {}
impl<W> PartialOrd for Scheduled<W> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<W> Ord for Scheduled<W> {
    // Reversed: BinaryHeap is a max-heap and we want the earliest event.
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A discrete-event simulator over a caller-owned world `W`.
///
/// The world is passed into [`Sim::run`] rather than owned by the
/// simulator so that event closures can borrow it mutably while the
/// simulator is also borrowed for re-scheduling — the standard split that
/// avoids `RefCell` in hot simulation loops.
pub struct Sim<W> {
    now: SimTime,
    seq: u64,
    shards: Vec<BinaryHeap<Scheduled<W>>>,
    cancelled: SeqSet,
    executed: u64,
    stopped: bool,
    prof: Option<SimProf>,
}

impl<W> Default for Sim<W> {
    fn default() -> Self {
        Self::new()
    }
}

impl<W> Sim<W> {
    pub fn new() -> Self {
        Self::with_shards(1)
    }

    /// A simulator whose queue is partitioned into `k` shards (clamped to
    /// at least 1). See the module docs: the fired order is identical for
    /// every `k`, so sharding is purely a heap-size/locality decision.
    pub fn with_shards(k: usize) -> Self {
        let k = k.max(1);
        Sim {
            now: SimTime::ZERO,
            seq: 0,
            // A steady-state AR pipeline run keeps a few hundred events in
            // flight per shard; pre-reserving skips the early growth
            // reallocations.
            shards: (0..k).map(|_| BinaryHeap::with_capacity(1024)).collect(),
            cancelled: SeqSet::default(),
            executed: 0,
            stopped: false,
            prof: None,
        }
    }

    /// Turn on the driver self-profiler, timing 1 pop/exec pair in
    /// `2^shift`. See [`SimProfStats`].
    pub fn enable_profiling(&mut self, shift: u32) {
        self.prof = Some(SimProf {
            mask: (1u64 << shift.min(63)) - 1,
            stats: SimProfStats::default(),
        });
    }

    /// The accumulated driver profile, if profiling is enabled.
    pub fn profile(&self) -> Option<SimProfStats> {
        self.prof.as_ref().map(|p| p.stats)
    }

    #[inline]
    fn prof_enter(&mut self, exec: bool) -> Option<Instant> {
        let p = self.prof.as_mut()?;
        let calls = if exec {
            &mut p.stats.exec_calls
        } else {
            &mut p.stats.pop_calls
        };
        let sampled = *calls & p.mask == 0;
        *calls += 1;
        sampled.then(Instant::now)
    }

    #[inline]
    fn prof_exit(&mut self, exec: bool, t0: Option<Instant>) {
        if let Some(t0) = t0 {
            let ns = t0.elapsed().as_nanos() as u64;
            if let Some(p) = self.prof.as_mut() {
                if exec {
                    p.stats.exec_samples += 1;
                    p.stats.exec_sampled_ns += ns;
                } else {
                    p.stats.pop_samples += 1;
                    p.stats.pop_sampled_ns += ns;
                }
            }
        }
    }

    /// Number of queue shards (≥ 1).
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// Current virtual time. Monotone across event executions.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events executed so far — useful as a progress/cost metric
    /// and in tests asserting that cancellation actually suppressed work.
    pub fn executed(&self) -> u64 {
        self.executed
    }

    /// Number of events still pending (including cancelled-but-unreaped).
    pub fn pending(&self) -> usize {
        self.shards.iter().map(|h| h.len()).sum()
    }

    /// Schedule `f` to run after `delay`. Returns an [`EventId`] that can
    /// be passed to [`Sim::cancel`].
    pub fn schedule<F>(&mut self, delay: SimDuration, f: F) -> EventId
    where
        F: FnOnce(&mut W, &mut Sim<W>) + 'static,
    {
        self.schedule_at(self.now + delay, f)
    }

    /// Schedule `f` at the absolute instant `at`. Scheduling into the past
    /// clamps to `now` (the event fires next, after already-queued events
    /// at `now`).
    pub fn schedule_at<F>(&mut self, at: SimTime, f: F) -> EventId
    where
        F: FnOnce(&mut W, &mut Sim<W>) + 'static,
    {
        self.schedule_at_keyed(0, at, f)
    }

    /// [`Sim::schedule`] routed to shard `key % shards`.
    pub fn schedule_keyed<F>(&mut self, key: u64, delay: SimDuration, f: F) -> EventId
    where
        F: FnOnce(&mut W, &mut Sim<W>) + 'static,
    {
        self.schedule_at_keyed(key, self.now + delay, f)
    }

    /// [`Sim::schedule_at`] routed to shard `key % shards`. The key only
    /// selects a heap; it never affects execution order.
    pub fn schedule_at_keyed<F>(&mut self, key: u64, at: SimTime, f: F) -> EventId
    where
        F: FnOnce(&mut W, &mut Sim<W>) + 'static,
    {
        let at = at.max(self.now);
        let seq = self.seq;
        self.seq += 1;
        let shard = (key % self.shards.len() as u64) as usize;
        self.shards[shard].push(Scheduled {
            at,
            seq,
            run: Box::new(f),
        });
        EventId(seq)
    }

    /// Cancel a previously scheduled event. Cancelling an event that
    /// already fired is a no-op. O(1): the heap entry is tombstoned and
    /// reaped on pop.
    pub fn cancel(&mut self, id: EventId) {
        self.cancelled.insert(id.0);
    }

    /// Request that the run loop stop after the current event returns.
    /// Pending events stay queued and a subsequent `run_*` call resumes.
    pub fn stop(&mut self) {
        self.stopped = true;
    }

    /// Execute the single earliest pending event. Returns `false` when the
    /// queue is empty.
    pub fn step(&mut self, world: &mut W) -> bool {
        let t_pop = self.prof_enter(false);
        let next = self.next_live_shard();
        self.prof_exit(false, t_pop);
        let Some(shard) = next else {
            return false;
        };
        let ev = self.shards[shard].pop().expect("live head vanished");
        let t_exec = self.prof_enter(true);
        self.fire(ev, world);
        self.prof_exit(true, t_exec);
        true
    }

    /// Reap cancelled heads on every shard, then return the shard whose
    /// head is the global `(time, seq)` minimum — scanning shards in fixed
    /// index order so the choice is deterministic. After this returns
    /// `Some(i)`, shard `i`'s head is known live and may be popped and
    /// fired directly.
    fn next_live_shard(&mut self) -> Option<usize> {
        let mut best: Option<(SimTime, u64, usize)> = None;
        for i in 0..self.shards.len() {
            // Fast path: no outstanding cancellations (the common case in
            // scAtteR++ runs, which cancel only on served fetches) means no
            // set lookup per pop at all.
            if !self.cancelled.is_empty() {
                while let Some(head) = self.shards[i].peek() {
                    if self.cancelled.remove(&head.seq) {
                        self.shards[i].pop();
                    } else {
                        break;
                    }
                }
            }
            if let Some(head) = self.shards[i].peek() {
                // Seqs are globally unique, so (at, seq) is a strict total
                // order and `<` picks exactly one winner.
                if best.is_none_or(|(at, seq, _)| (head.at, head.seq) < (at, seq)) {
                    best = Some((head.at, head.seq, i));
                }
            }
        }
        best.map(|(_, _, i)| i)
    }

    /// Advance the clock to `ev` and run it. Caller guarantees `ev` is
    /// live (popped and not cancelled).
    #[inline]
    fn fire(&mut self, ev: Scheduled<W>, world: &mut W) {
        debug_assert!(ev.at >= self.now, "event queue time went backwards");
        self.now = ev.at;
        self.executed += 1;
        (ev.run)(world, self);
    }

    /// Run until the queue drains or [`Sim::stop`] is called.
    pub fn run(&mut self, world: &mut W) {
        self.stopped = false;
        while !self.stopped && self.step(world) {}
    }

    /// Run until the queue drains, `stop` is called, or the next event
    /// would fire strictly after `deadline`. The clock is left at
    /// `deadline` if it was reached without draining, mirroring how a
    /// fixed-length experiment run (e.g. the paper's five minutes) ends.
    pub fn run_until(&mut self, world: &mut W, deadline: SimTime) {
        self.stopped = false;
        while !self.stopped {
            // `next_live_shard` reaps cancelled heads, so after it returns
            // the chosen head is known live and can be popped and fired
            // directly — the old peek-then-step double inspection paid the
            // cancellation check twice per event.
            let t_pop = self.prof_enter(false);
            let next = self.next_live_shard();
            self.prof_exit(false, t_pop);
            match next {
                Some(shard)
                    if self.shards[shard].peek().expect("live head vanished").at <= deadline =>
                {
                    let ev = self.shards[shard].pop().expect("live head vanished");
                    let t_exec = self.prof_enter(true);
                    self.fire(ev, world);
                    self.prof_exit(true, t_exec);
                }
                _ => break,
            }
        }
        if !self.stopped && self.now < deadline {
            self.now = deadline;
        }
    }

    /// Instant of the earliest live pending event, if any.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        self.next_live_shard()
            .map(|shard| self.shards[shard].peek().expect("live head vanished").at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_fire_in_time_order() {
        let mut sim: Sim<Vec<u64>> = Sim::new();
        sim.schedule(SimDuration::from_millis(30), |w: &mut Vec<u64>, s| {
            w.push(s.now().as_millis())
        });
        sim.schedule(SimDuration::from_millis(10), |w: &mut Vec<u64>, s| {
            w.push(s.now().as_millis())
        });
        sim.schedule(SimDuration::from_millis(20), |w: &mut Vec<u64>, s| {
            w.push(s.now().as_millis())
        });
        let mut out = Vec::new();
        sim.run(&mut out);
        assert_eq!(out, vec![10, 20, 30]);
    }

    #[test]
    fn same_instant_fifo() {
        let mut sim: Sim<Vec<u32>> = Sim::new();
        for i in 0..100u32 {
            sim.schedule(SimDuration::from_millis(5), move |w: &mut Vec<u32>, _| {
                w.push(i)
            });
        }
        let mut out = Vec::new();
        sim.run(&mut out);
        assert_eq!(out, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn events_can_reschedule() {
        // A self-rescheduling ticker: the bread-and-butter pattern for
        // frame sources and monitors.
        fn tick(count: &mut u32, sim: &mut Sim<u32>) {
            *count += 1;
            if *count < 5 {
                sim.schedule(SimDuration::from_millis(1), tick);
            }
        }
        let mut sim: Sim<u32> = Sim::new();
        sim.schedule(SimDuration::ZERO, tick);
        let mut count = 0;
        sim.run(&mut count);
        assert_eq!(count, 5);
        assert_eq!(sim.now().as_millis(), 4);
    }

    #[test]
    fn cancel_suppresses_execution() {
        let mut sim: Sim<u32> = Sim::new();
        let id = sim.schedule(SimDuration::from_millis(1), |c: &mut u32, _| *c += 1);
        sim.schedule(SimDuration::from_millis(2), |c: &mut u32, _| *c += 10);
        sim.cancel(id);
        let mut c = 0;
        sim.run(&mut c);
        assert_eq!(c, 10);
        assert_eq!(sim.executed(), 1);
    }

    #[test]
    fn run_until_leaves_clock_at_deadline() {
        let mut sim: Sim<u32> = Sim::new();
        sim.schedule(SimDuration::from_secs(10), |c: &mut u32, _| *c += 1);
        let mut c = 0;
        sim.run_until(&mut c, SimTime::from_secs(5));
        assert_eq!(c, 0);
        assert_eq!(sim.now(), SimTime::from_secs(5));
        // Resuming past the event fires it.
        sim.run_until(&mut c, SimTime::from_secs(20));
        assert_eq!(c, 1);
        assert_eq!(sim.now(), SimTime::from_secs(20));
    }

    #[test]
    fn schedule_in_past_clamps_to_now() {
        let mut sim: Sim<Vec<u64>> = Sim::new();
        sim.schedule(SimDuration::from_millis(10), |_w: &mut Vec<u64>, s| {
            // Attempt to schedule "before now" — must fire at now, not panic.
            s.schedule_at(SimTime::from_millis(1), |w: &mut Vec<u64>, s| {
                w.push(s.now().as_millis())
            });
        });
        let mut out = Vec::new();
        sim.run(&mut out);
        assert_eq!(out, vec![10]);
    }

    #[test]
    fn stop_pauses_and_resumes() {
        let mut sim: Sim<Vec<u32>> = Sim::new();
        sim.schedule(SimDuration::from_millis(1), |w: &mut Vec<u32>, s| {
            w.push(1);
            s.stop();
        });
        sim.schedule(SimDuration::from_millis(2), |w: &mut Vec<u32>, _| w.push(2));
        let mut out = Vec::new();
        sim.run(&mut out);
        assert_eq!(out, vec![1]);
        sim.run(&mut out);
        assert_eq!(out, vec![1, 2]);
    }

    #[test]
    fn peek_time_skips_cancelled() {
        let mut sim: Sim<u32> = Sim::new();
        let id = sim.schedule(SimDuration::from_millis(1), |_, _| {});
        sim.schedule(SimDuration::from_millis(3), |_, _| {});
        sim.cancel(id);
        assert_eq!(sim.peek_time(), Some(SimTime::from_millis(3)));
    }

    #[test]
    fn profiling_counts_pops_and_execs() {
        let mut sim: Sim<u32> = Sim::new();
        sim.enable_profiling(0); // sample every entry
        for _ in 0..10 {
            sim.schedule(SimDuration::from_millis(1), |c: &mut u32, _| *c += 1);
        }
        let mut c = 0;
        sim.run_until(&mut c, SimTime::from_secs(1));
        let p = sim.profile().expect("profiling enabled");
        assert_eq!(p.exec_calls, 10);
        assert_eq!(p.exec_samples, 10);
        // One pop scan per fired event plus the final empty scan.
        assert_eq!(p.pop_calls, 11);
        assert!(sim.profile().is_some());
    }

    #[test]
    fn profiling_does_not_change_execution() {
        let run = |prof: bool| {
            let mut sim: Sim<Vec<u64>> = Sim::with_shards(3);
            if prof {
                sim.enable_profiling(2);
            }
            for i in 0..50u64 {
                sim.schedule_keyed(i, SimDuration::from_millis(i % 7), move |w, _| w.push(i));
            }
            let mut out = Vec::new();
            sim.run(&mut out);
            (out, sim.executed(), sim.now())
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn zero_shards_clamps_to_one() {
        let sim: Sim<u32> = Sim::with_shards(0);
        assert_eq!(sim.shards(), 1);
    }

    #[test]
    fn keyed_events_interleave_across_shards_in_global_order() {
        let mut sim: Sim<Vec<(u64, u64)>> = Sim::with_shards(3);
        // Same instant, keys striped over shards: FIFO by global seq must
        // hold even though each entry sits in a different heap.
        for key in 0..9u64 {
            sim.schedule_keyed(key, SimDuration::from_millis(5), move |w, _| {
                w.push((5, key));
            });
        }
        sim.schedule_keyed(7, SimDuration::from_millis(1), |w, s| {
            w.push((s.now().as_millis(), 7));
        });
        let mut out = Vec::new();
        sim.run(&mut out);
        let expected: Vec<(u64, u64)> = std::iter::once((1, 7))
            .chain((0..9).map(|k| (5, k)))
            .collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn cancel_works_across_shards() {
        let mut sim: Sim<Vec<u64>> = Sim::with_shards(4);
        let id = sim.schedule_keyed(3, SimDuration::from_millis(1), |w: &mut Vec<u64>, _| {
            w.push(1)
        });
        sim.schedule_keyed(2, SimDuration::from_millis(2), |w: &mut Vec<u64>, _| {
            w.push(2)
        });
        sim.cancel(id);
        assert_eq!(sim.pending(), 2);
        assert_eq!(sim.peek_time(), Some(SimTime::from_millis(2)));
        let mut out = Vec::new();
        sim.run(&mut out);
        assert_eq!(out, vec![2]);
        assert_eq!(sim.executed(), 1);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Whatever order events are scheduled in, they execute in
        /// non-decreasing time order, with FIFO tie-breaking.
        #[test]
        fn execution_order_is_time_then_fifo(
            delays in proptest::collection::vec(0u64..1000, 1..200),
        ) {
            let mut sim: Sim<Vec<(u64, usize)>> = Sim::new();
            for (seq, &d) in delays.iter().enumerate() {
                sim.schedule(SimDuration::from_millis(d), move |w: &mut Vec<(u64, usize)>, s| {
                    w.push((s.now().as_millis(), seq));
                });
            }
            let mut log = Vec::new();
            sim.run(&mut log);
            prop_assert_eq!(log.len(), delays.len());
            for w in log.windows(2) {
                prop_assert!(w[0].0 <= w[1].0, "time went backwards: {:?}", w);
                if w[0].0 == w[1].0 {
                    prop_assert!(w[0].1 < w[1].1, "same-instant FIFO violated: {:?}", w);
                }
            }
        }

        /// Cancelling a random subset suppresses exactly those events.
        #[test]
        fn cancellation_is_exact(
            delays in proptest::collection::vec(1u64..100, 1..100),
            cancel_mask in proptest::collection::vec(proptest::bool::ANY, 100),
        ) {
            let mut sim: Sim<Vec<usize>> = Sim::new();
            let mut expected = Vec::new();
            let mut ids = Vec::new();
            for (i, &d) in delays.iter().enumerate() {
                let id = sim.schedule(SimDuration::from_millis(d), move |w: &mut Vec<usize>, _| {
                    w.push(i);
                });
                ids.push((i, id));
            }
            for &(i, id) in &ids {
                if cancel_mask[i % cancel_mask.len()] {
                    sim.cancel(id);
                } else {
                    expected.push(i);
                }
            }
            let mut fired = Vec::new();
            sim.run(&mut fired);
            fired.sort_unstable();
            expected.sort_unstable();
            prop_assert_eq!(fired, expected);
        }

        /// run_until never executes an event past the deadline and the
        /// remainder fires on resume.
        #[test]
        fn run_until_partitions_cleanly(
            delays in proptest::collection::vec(1u64..200, 1..100),
            deadline in 1u64..200,
        ) {
            let mut sim: Sim<Vec<u64>> = Sim::new();
            for &d in &delays {
                sim.schedule(SimDuration::from_millis(d), move |w: &mut Vec<u64>, s| {
                    w.push(s.now().as_millis());
                });
            }
            let mut first = Vec::new();
            sim.run_until(&mut first, SimTime::from_millis(deadline));
            prop_assert!(first.iter().all(|&t| t <= deadline));
            let mut rest = Vec::new();
            sim.run(&mut rest);
            prop_assert!(rest.iter().all(|&t| t > deadline));
            prop_assert_eq!(first.len() + rest.len(), delays.len());
        }

        /// The fired order is independent of shard count and key
        /// assignment: any `(shards, keys)` produces exactly the single-heap
        /// execution trace. This is the determinism foundation the
        /// scale-out world builds on.
        #[test]
        fn sharding_never_changes_execution_order(
            delays in proptest::collection::vec(0u64..50, 1..150),
            keys in proptest::collection::vec(0u64..97, 150),
            shards in 1usize..8,
            cancel_mask in proptest::collection::vec(proptest::bool::ANY, 150),
        ) {
            let run = |k: usize| {
                let mut sim: Sim<Vec<(u64, usize)>> = Sim::with_shards(k);
                let mut ids = Vec::new();
                for (i, &d) in delays.iter().enumerate() {
                    let id = sim.schedule_keyed(
                        if k == 1 { 0 } else { keys[i] },
                        SimDuration::from_millis(d),
                        move |w: &mut Vec<(u64, usize)>, s| w.push((s.now().as_millis(), i)),
                    );
                    ids.push(id);
                }
                for (i, &id) in ids.iter().enumerate() {
                    if cancel_mask[i] {
                        sim.cancel(id);
                    }
                }
                let mut log = Vec::new();
                sim.run(&mut log);
                (log, sim.executed(), sim.now())
            };
            let single = run(1);
            let sharded = run(shards);
            prop_assert_eq!(single, sharded);
        }
    }
}
