//! Virtual time for the simulation: an absolute instant ([`SimTime`]) and a
//! span ([`SimDuration`]), both counted in integer nanoseconds so that
//! arithmetic is exact and ordering is total. Floating-point time is the
//! classic source of non-reproducible discrete-event simulations; we avoid
//! it at the representation layer and only convert at the measurement edge.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An absolute instant on the simulation clock, in nanoseconds since the
/// start of the run. `SimTime::ZERO` is the epoch of every experiment.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

/// A span of virtual time, in nanoseconds. Unsigned: the simulator never
/// schedules into the past, and subtraction saturates to zero to keep
/// latency arithmetic panic-free in the presence of reordered deliveries.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimTime {
    pub const ZERO: SimTime = SimTime(0);
    /// Largest representable instant; used as the "run to completion" bound.
    pub const MAX: SimTime = SimTime(u64::MAX);

    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    pub const fn as_nanos(self) -> u64 {
        self.0
    }
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }
    pub const fn as_secs(self) -> u64 {
        self.0 / 1_000_000_000
    }
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Time elapsed since `earlier`, saturating to zero if `earlier` is in
    /// the future (e.g. comparing against a timestamp taken on another
    /// clock domain in the real-UDP runtime).
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    pub const ZERO: SimDuration = SimDuration(0);
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }
    /// Construct from fractional seconds, rounding to the nearest
    /// nanosecond. Negative and non-finite inputs clamp to zero — cost
    /// models occasionally produce tiny negative samples from additive
    /// noise and those must not panic mid-experiment.
    pub fn from_secs_f64(s: f64) -> Self {
        if !s.is_finite() || s <= 0.0 {
            return SimDuration(0);
        }
        SimDuration((s * 1e9).round() as u64)
    }
    pub fn from_millis_f64(ms: f64) -> Self {
        Self::from_secs_f64(ms / 1e3)
    }

    pub const fn as_nanos(self) -> u64 {
        self.0
    }
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    pub fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }

    pub fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    /// Panics in debug builds if `rhs` is later than `self`; use
    /// [`SimTime::saturating_since`] where reordering is possible.
    fn sub(self, rhs: SimTime) -> SimDuration {
        debug_assert!(self.0 >= rhs.0, "SimTime subtraction underflow");
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        debug_assert!(self.0 >= rhs.0, "SimDuration subtraction underflow");
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 < 1_000_000 {
            write!(f, "{}us", self.as_micros())
        } else {
            write!(f, "{:.2}ms", self.as_millis_f64())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        assert_eq!(SimTime::from_millis(42).as_millis(), 42);
        assert_eq!(SimTime::from_secs(3).as_millis(), 3_000);
        assert_eq!(SimDuration::from_micros(1500).as_millis(), 1);
        assert_eq!(SimDuration::from_millis(7).as_nanos(), 7_000_000);
    }

    #[test]
    fn from_secs_f64_clamps_bad_input() {
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::INFINITY), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(0.001).as_millis(), 1);
    }

    #[test]
    fn time_arithmetic() {
        let t = SimTime::from_millis(10) + SimDuration::from_millis(5);
        assert_eq!(t.as_millis(), 15);
        assert_eq!((t - SimTime::from_millis(10)).as_millis(), 5);
        assert_eq!(
            SimTime::from_millis(3).saturating_since(SimTime::from_millis(9)),
            SimDuration::ZERO
        );
    }

    #[test]
    fn duration_arithmetic_saturates() {
        let max = SimDuration::MAX;
        assert_eq!(max + SimDuration::from_secs(1), SimDuration::MAX);
        assert_eq!(SimDuration::from_millis(6) / 2, SimDuration::from_millis(3));
        assert_eq!(
            SimDuration::from_millis(6) * 3,
            SimDuration::from_millis(18)
        );
    }

    #[test]
    fn ordering_is_total() {
        let mut v = [
            SimTime::from_millis(5),
            SimTime::ZERO,
            SimTime::from_secs(1),
        ];
        v.sort();
        assert_eq!(v[0], SimTime::ZERO);
        assert_eq!(v[2], SimTime::from_secs(1));
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", SimDuration::from_micros(250)), "250us");
        assert_eq!(format!("{}", SimDuration::from_millis(12)), "12.00ms");
    }
}
