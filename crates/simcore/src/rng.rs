//! Seeded, splittable random-number streams for simulation.
//!
//! Every stochastic element in the reproduction (service-time jitter, link
//! loss, netem delay oscillation, workload phase offsets) draws from a
//! [`SimRng`]: a xoshiro256** generator seeded through SplitMix64. The
//! generator is implemented here rather than taken from the `rand` crate
//! so that stream values are stable across dependency upgrades — the
//! experiment outputs in EXPERIMENTS.md must be regenerable bit-for-bit.
//!
//! [`SimRng::split`] derives an independent child stream, letting each
//! simulated component own its RNG without cross-component draw-order
//! coupling (adding a draw in the link model must not perturb the
//! service-time sequence).

/// xoshiro256** PRNG with convenience distributions.
#[derive(Debug, Clone)]
pub struct SimRng {
    s: [u64; 4],
    /// Cached second output of the last Box-Muller transform.
    gauss_spare: Option<f64>,
    /// Child-stream counter for `split`.
    splits: u64,
    seed: u64,
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

impl SimRng {
    /// Create a stream from a 64-bit seed. Equal seeds give equal streams.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        SimRng {
            s,
            gauss_spare: None,
            splits: 0,
            seed,
        }
    }

    /// The seed this stream was created from (children record their derived
    /// seed). Diagnostic only.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Derive an independent child stream. Deterministic: the n-th split of
    /// a given stream is always the same stream.
    pub fn split(&mut self) -> SimRng {
        self.splits += 1;
        // Mix the parent seed with the split index through SplitMix64 so
        // children of consecutive splits are decorrelated.
        let mut sm = self.seed ^ self.splits.wrapping_mul(0xA24BAED4963EE407);
        let child_seed = splitmix64(&mut sm);
        SimRng::new(child_seed)
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)`. Uses Lemire's method; `bound` must
    /// be non-zero.
    pub fn next_bounded(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "next_bounded requires bound > 0");
        // Debiased multiply-shift.
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (bound as u128);
            let l = m as u64;
            if l >= bound || l >= (u64::MAX - bound + 1) % bound {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform float in `[lo, hi)`.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.next_f64()
    }

    /// Bernoulli trial with success probability `p` (clamped to `[0, 1]`).
    pub fn bernoulli(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        self.next_f64() < p
    }

    /// Standard normal via Box-Muller (polar form avoided to keep the
    /// draw count per sample fixed at 2, aiding reproducibility reasoning).
    pub fn normal(&mut self) -> f64 {
        if let Some(z) = self.gauss_spare.take() {
            return z;
        }
        // u1 in (0,1] to keep ln finite.
        let u1 = 1.0 - self.next_f64();
        let u2 = self.next_f64();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = std::f64::consts::TAU * u2;
        self.gauss_spare = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Normal with the given mean and standard deviation.
    pub fn normal_with(&mut self, mean: f64, std_dev: f64) -> f64 {
        mean + std_dev * self.normal()
    }

    /// Lognormal with the given log-space parameters. Used for service
    /// times: multiplicative noise with a hard positive support is the
    /// standard model for GPU kernel latency variation.
    pub fn lognormal(&mut self, mu: f64, sigma: f64) -> f64 {
        (mu + sigma * self.normal()).exp()
    }

    /// Exponential with rate `lambda` (mean `1/lambda`).
    pub fn exponential(&mut self, lambda: f64) -> f64 {
        assert!(lambda > 0.0, "exponential requires lambda > 0");
        -(1.0 - self.next_f64()).ln() / lambda
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.next_bounded(i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }

    /// Pick a uniformly random element index for a non-empty slice length.
    pub fn index(&mut self, len: usize) -> usize {
        self.next_bounded(len as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2, "streams from different seeds should diverge");
    }

    #[test]
    fn split_is_deterministic_and_independent() {
        let mut a = SimRng::new(7);
        let mut b = SimRng::new(7);
        let mut ca = a.split();
        let mut cb = b.split();
        for _ in 0..32 {
            assert_eq!(ca.next_u64(), cb.next_u64());
        }
        // Parent draws don't perturb an already-split child.
        let mut p = SimRng::new(9);
        let mut child1 = p.split();
        let _ = p.next_u64();
        let mut p2 = SimRng::new(9);
        let mut child2 = p2.split();
        for _ in 0..16 {
            assert_eq!(child1.next_u64(), child2.next_u64());
        }
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut r = SimRng::new(3);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn bounded_respects_bound() {
        let mut r = SimRng::new(5);
        for _ in 0..10_000 {
            assert!(r.next_bounded(7) < 7);
        }
        // All residues reachable.
        let mut seen = [false; 7];
        for _ in 0..1_000 {
            seen[r.next_bounded(7) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn bernoulli_extremes() {
        let mut r = SimRng::new(11);
        assert!(!r.bernoulli(0.0));
        assert!(r.bernoulli(1.0));
        let hits = (0..20_000).filter(|_| r.bernoulli(0.25)).count();
        let freq = hits as f64 / 20_000.0;
        assert!((freq - 0.25).abs() < 0.02, "frequency {freq} far from 0.25");
    }

    #[test]
    fn normal_moments() {
        let mut r = SimRng::new(13);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| r.normal()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn lognormal_positive() {
        let mut r = SimRng::new(17);
        for _ in 0..10_000 {
            assert!(r.lognormal(0.0, 0.5) > 0.0);
        }
    }

    #[test]
    fn exponential_mean() {
        let mut r = SimRng::new(19);
        let n = 50_000;
        let mean = (0..n).map(|_| r.exponential(2.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = SimRng::new(23);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(
            v, sorted,
            "50-element shuffle landing on identity is ~impossible"
        );
    }
}
