//! # simcore — deterministic discrete-event simulation kernel
//!
//! This crate provides the virtual-time substrate on which the rest of the
//! workspace models the paper's edge-cloud testbed: a monotonically
//! advancing [`SimTime`], a stable-ordered event queue ([`Sim`]), and
//! seeded, splittable random-number streams ([`rng::SimRng`]) so that every
//! experiment run is bit-for-bit reproducible from its seed.
//!
//! ## Design
//!
//! Events are boxed `FnOnce(&mut W, &mut Sim<W>)` closures over a
//! caller-owned world `W`. Two events scheduled for the same instant fire
//! in scheduling order (a monotone sequence number breaks ties), which
//! keeps co-timed network deliveries deterministic — the property the
//! whole reproduction rests on.
//!
//! ```
//! use simcore::{Sim, SimDuration};
//!
//! let mut sim: Sim<Vec<u64>> = Sim::new();
//! sim.schedule(SimDuration::from_millis(5), |w: &mut Vec<u64>, s| {
//!     w.push(s.now().as_millis());
//! });
//! let mut world = Vec::new();
//! sim.run(&mut world);
//! assert_eq!(world, vec![5]);
//! ```

pub mod queue;
pub mod rng;
pub mod time;

pub use queue::{EventId, Sim, SimProfStats};
pub use rng::SimRng;
pub use time::{SimDuration, SimTime};
