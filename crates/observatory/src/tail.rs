//! Deterministic tail-sampled tracing.
//!
//! Head sampling (the PR 1 `trace::Tracer` with `sample_every: N`)
//! decides a frame's fate *before* anything is known about it, so at
//! 1-in-1000 it keeps 999 of every 1000 anomalies invisible — exactly
//! the frames a million-client characterization needs. The
//! [`TailSampler`] inverts the decision: every frame is recorded while
//! in flight, and the keep/discard choice is made at the frame's
//! *terminal*, when its fate is known:
//!
//! - **dropped** frames are always retained (any [`DropReason`]);
//! - **SLO-violating** completions (end-to-end above `slo_ms`) are
//!   always retained;
//! - **crash-adjacent** frames — terminal within `crash_window_ns`
//!   after the most recent [`TailSampler::note_crash`] mark — are
//!   always retained, capturing the healthy-looking collateral around
//!   a failure;
//! - everything else survives only the **deterministic reservoir**:
//!   `splitmix64(seed ^ trace_id) % reservoir_1_in == 0`.
//!
//! # Determinism
//!
//! The decision ([`decide`]) is a pure function of the config and the
//! frame's own events — no RNG draw, no wall clock, no global counter.
//! Retained events are appended in terminal order, and the DES fires
//! events in the global `(time, seq)` order for *any* event-queue shard
//! count ([`simcore::Sim::with_shards`]'s invariant), so the retained
//! log is bit-identical across reruns and shard counts. The proptests
//! in `tests/observatory.rs` pin this end to end.
//!
//! # Memory
//!
//! Pending state is O(frames in flight), not O(frames emitted): a
//! frame's buffered events are released (retained or recycled) at its
//! terminal. The retained set itself is capped at
//! `max_retained_frames`; once the cap is reached the sampler flips
//! into **counting mode** — no more per-frame map entries or event
//! buffers, just the classification counters
//! ([`TailStats::retained_truncated`] and the per-class counts) — so a
//! pathological run — e.g. scAtteR dropping most of a 100k-client
//! offered load, where *every* drop is anomalous — degrades to anomaly
//! *counting* at a few nanoseconds per frame instead of unbounded
//! anomaly *storage*. Counting mode changes two accounting details
//! (documented on [`TailSampler::terminal_with_emit`]): `frames_seen`
//! counts emissions rather than frame lifetimes, and SLO
//! classification uses the terminal site's emit-time hint rather than
//! the pending map. The flip itself happens in global event order, so
//! bit-identity across shard counts and reruns is preserved.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

use trace::{FrameFate, Phase, SpanRecord, TraceCtx, TraceEvent, TraceLog, TrackId, TrackInfo};

/// Tail-sampling policy. All decisions are pure in `(self, frame)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TailConfig {
    /// Latency objective: completions slower than this are anomalous
    /// (mirrors `telemetry::SloConfig`'s 100 ms budget).
    pub slo_ms: f64,
    /// Frames whose terminal falls within this window after a crash
    /// mark are retained as crash-adjacent.
    pub crash_window_ns: u64,
    /// Uninteresting frames are kept 1-in-N by the seeded reservoir.
    pub reservoir_1_in: u64,
    /// Reservoir seed; the DES xors the run seed in so different runs
    /// keep different (but individually reproducible) survivor sets.
    pub seed: u64,
    /// Hard cap on fully-retained frames; past it the sampler degrades
    /// to counting mode — frames are classified and counted
    /// (`retained_truncated` for would-be keeps) with no buffering.
    pub max_retained_frames: u64,
}

impl Default for TailConfig {
    fn default() -> Self {
        TailConfig {
            slo_ms: 100.0,
            crash_window_ns: 250_000_000,
            reservoir_1_in: 64,
            seed: 0,
            max_retained_frames: 2_000,
        }
    }
}

/// Why a frame was (or was not) retained.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Retain {
    Dropped,
    SloViolation,
    CrashAdjacent,
    Reservoir,
    Discard,
}

impl Retain {
    pub fn keeps(self) -> bool {
        !matches!(self, Retain::Discard)
    }

    /// Anomalous = retained unconditionally, not by reservoir luck.
    pub fn anomalous(self) -> bool {
        matches!(
            self,
            Retain::Dropped | Retain::SloViolation | Retain::CrashAdjacent
        )
    }
}

/// SplitMix64 finalizer: the reservoir's hash. Public so the gates and
/// proptests can reproduce decisions independently.
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The retention decision for one frame — a pure function of the
/// config, the frame's identity and timing, its fate (`None` = still in
/// flight at run end), and the most recent crash mark at or before its
/// terminal. This purity is what the bit-identical-replay gates rest
/// on.
pub fn decide(
    cfg: &TailConfig,
    trace_id: u64,
    emitted_ns: u64,
    at_ns: u64,
    fate: Option<FrameFate>,
    last_crash_ns: Option<u64>,
) -> Retain {
    if matches!(fate, Some(FrameFate::Dropped(_))) {
        return Retain::Dropped;
    }
    if matches!(fate, Some(FrameFate::Completed)) {
        let e2e_ms = at_ns.saturating_sub(emitted_ns) as f64 / 1e6;
        if e2e_ms > cfg.slo_ms {
            return Retain::SloViolation;
        }
    }
    if let Some(crash) = last_crash_ns {
        if at_ns >= crash && at_ns.saturating_sub(crash) <= cfg.crash_window_ns {
            return Retain::CrashAdjacent;
        }
    }
    if splitmix64(cfg.seed ^ trace_id).is_multiple_of(cfg.reservoir_1_in.max(1)) {
        return Retain::Reservoir;
    }
    Retain::Discard
}

/// Retention accounting, returned beside the retained [`TraceLog`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TailStats {
    /// Frames that entered the sampler (first event seen).
    pub frames_seen: u64,
    /// Frames fully retained (events present in the log).
    pub frames_retained: u64,
    /// Anomalous decisions by class — counted even past the retention
    /// cap, so anomaly *counts* are always exact.
    pub dropped: u64,
    pub slo_violations: u64,
    pub crash_adjacent: u64,
    pub reservoir: u64,
    /// Frames whose decision said "keep" after the cap was reached:
    /// counted, events recycled.
    pub retained_truncated: u64,
    /// High-water mark of simultaneously-pending frames — the
    /// sampler's actual memory bound.
    pub peak_pending: u64,
}

impl TailStats {
    pub fn anomalous(&self) -> u64 {
        self.dropped + self.slo_violations + self.crash_adjacent
    }
}

/// Trace ids are `client << 32 | frame_no` — already uniformly usable
/// integers, so the pending map hashes them with one Fibonacci multiply
/// instead of SipHash (same reasoning as `simcore`'s tombstone set:
/// this map is touched several times per simulated frame).
#[derive(Default, Clone)]
struct IdHasher(u64);

impl Hasher for IdHasher {
    fn finish(&self) -> u64 {
        self.0
    }
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0.rotate_left(8) ^ u64::from(b)).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        }
    }
    fn write_u64(&mut self, v: u64) {
        self.0 = v.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    }
}

struct PendingFrame {
    emitted_ns: u64,
    events: Vec<TraceEvent>,
}

/// The tail-sampling collector. Mirrors the `trace::Tracer` recording
/// API exactly, so the DES's record sites are identical whichever
/// collector is behind them (see [`crate::sink::DesSink`]).
pub struct TailSampler {
    cfg: TailConfig,
    tracks: Vec<TrackInfo>,
    pending: HashMap<u64, PendingFrame, BuildHasherDefault<IdHasher>>,
    retained: Vec<TraceEvent>,
    /// Recycled event buffers: a frame's Vec goes back in the pool at
    /// its terminal, so steady state allocates nothing per frame.
    pool: Vec<Vec<TraceEvent>>,
    last_crash_ns: Option<u64>,
    stats: TailStats,
    /// Set (permanently) once `frames_retained` hits the cap: from then
    /// on frames are classified and counted without buffering.
    counting: bool,
}

impl TailSampler {
    pub fn new(cfg: TailConfig) -> TailSampler {
        TailSampler {
            cfg,
            tracks: Vec::new(),
            pending: HashMap::default(),
            retained: Vec::new(),
            pool: Vec::new(),
            last_crash_ns: None,
            stats: TailStats::default(),
            counting: false,
        }
    }

    pub fn config(&self) -> &TailConfig {
        &self.cfg
    }

    pub fn register_track(
        &mut self,
        name: impl Into<String>,
        machine: impl Into<String>,
    ) -> TrackId {
        let id = TrackId(self.tracks.len() as u16);
        self.tracks.push(TrackInfo {
            id,
            name: name.into(),
            machine: machine.into(),
        });
        id
    }

    /// Tail sampling has no head gate: every context is live.
    #[inline]
    pub fn ctx(&self, client: u16, frame_no: u32) -> TraceCtx {
        TraceCtx::new(client, frame_no, true)
    }

    /// Mark a crash instant: terminals within `crash_window_ns` after
    /// it are retained as crash-adjacent.
    pub fn note_crash(&mut self, at_ns: u64) {
        self.last_crash_ns = Some(at_ns);
    }

    #[inline]
    fn frame_mut(&mut self, trace_id: u64, first_ns: u64) -> &mut PendingFrame {
        let entry = self.pending.entry(trace_id);
        if let std::collections::hash_map::Entry::Vacant(_) = entry {
            self.stats.frames_seen += 1;
        }
        let pool = &mut self.pool;
        let frame = entry.or_insert_with(|| PendingFrame {
            emitted_ns: first_ns,
            events: pool.pop().unwrap_or_default(),
        });
        frame
    }

    #[inline]
    pub fn emitted(&mut self, ctx: TraceCtx, at_ns: u64) {
        if !ctx.sampled {
            return;
        }
        if self.counting {
            // No map entry, no buffer: the emission itself is the count.
            self.stats.frames_seen += 1;
            return;
        }
        self.frame_mut(ctx.trace_id, at_ns)
            .events
            .push(TraceEvent::Emitted { ctx, at_ns });
        self.stats.peak_pending = self.stats.peak_pending.max(self.pending.len() as u64);
    }

    #[allow(clippy::too_many_arguments)]
    #[inline]
    pub fn span(
        &mut self,
        ctx: TraceCtx,
        track: TrackId,
        stage: u8,
        phase: Phase,
        start_ns: u64,
        end_ns: u64,
    ) {
        if !ctx.sampled {
            return;
        }
        if self.counting {
            return;
        }
        self.frame_mut(ctx.trace_id, start_ns)
            .events
            .push(TraceEvent::Span(SpanRecord {
                ctx,
                phase,
                stage,
                track,
                start_ns,
                end_ns,
            }));
    }

    /// The frame's fate is known: decide, then retain or recycle. A
    /// terminal for a frame already settled (the deadline leg's late
    /// re-attribution) is judged as its own single-event frame, so the
    /// re-attribution stays visible in the retained log. Equivalent to
    /// [`TailSampler::terminal_with_emit`] with `at_ns` as the hint.
    #[inline]
    pub fn terminal(&mut self, ctx: TraceCtx, at_ns: u64, fate: FrameFate) {
        self.terminal_with_emit(ctx, at_ns, at_ns, fate);
    }

    /// [`TailSampler::terminal`] plus the caller's own record of when
    /// the frame was emitted. While the pending map is live its
    /// buffered emit time is authoritative and the hint is ignored; in
    /// counting mode (cap reached) the hint is what keeps SLO
    /// classification exact without the map. Counting-mode accounting
    /// differs in one more way: `frames_seen` counts emissions, so a
    /// terminal with no prior `emitted` (late re-attribution) is not
    /// counted as a new frame.
    #[inline]
    pub fn terminal_with_emit(
        &mut self,
        ctx: TraceCtx,
        emitted_hint_ns: u64,
        at_ns: u64,
        fate: FrameFate,
    ) {
        if !ctx.sampled {
            return;
        }
        if self.counting {
            // Pre-cap leftovers still in the map drain through the
            // normal settle path; once the map is empty the lookup is
            // skipped entirely.
            if !self.pending.is_empty() {
                if let Some(mut frame) = self.pending.remove(&ctx.trace_id) {
                    frame.events.push(TraceEvent::Terminal { ctx, at_ns, fate });
                    let r = decide(
                        &self.cfg,
                        ctx.trace_id,
                        frame.emitted_ns,
                        at_ns,
                        Some(fate),
                        self.last_crash_ns,
                    );
                    self.settle(frame, r);
                    return;
                }
            }
            let r = decide(
                &self.cfg,
                ctx.trace_id,
                emitted_hint_ns,
                at_ns,
                Some(fate),
                self.last_crash_ns,
            );
            match r {
                Retain::Dropped => self.stats.dropped += 1,
                Retain::SloViolation => self.stats.slo_violations += 1,
                Retain::CrashAdjacent => self.stats.crash_adjacent += 1,
                Retain::Reservoir => self.stats.reservoir += 1,
                Retain::Discard => {}
            }
            if r.keeps() {
                self.stats.retained_truncated += 1;
            }
            return;
        }
        let mut frame = match self.pending.remove(&ctx.trace_id) {
            Some(f) => f,
            None => {
                self.stats.frames_seen += 1;
                PendingFrame {
                    emitted_ns: at_ns,
                    events: self.pool.pop().unwrap_or_default(),
                }
            }
        };
        frame.events.push(TraceEvent::Terminal { ctx, at_ns, fate });
        let r = decide(
            &self.cfg,
            ctx.trace_id,
            frame.emitted_ns,
            at_ns,
            Some(fate),
            self.last_crash_ns,
        );
        self.settle(frame, r);
    }

    fn settle(&mut self, mut frame: PendingFrame, r: Retain) {
        match r {
            Retain::Dropped => self.stats.dropped += 1,
            Retain::SloViolation => self.stats.slo_violations += 1,
            Retain::CrashAdjacent => self.stats.crash_adjacent += 1,
            Retain::Reservoir => self.stats.reservoir += 1,
            Retain::Discard => {}
        }
        if r.keeps() {
            if self.stats.frames_retained < self.cfg.max_retained_frames {
                self.stats.frames_retained += 1;
                self.retained.append(&mut frame.events);
            } else {
                self.stats.retained_truncated += 1;
            }
        }
        frame.events.clear();
        if self.pool.len() < 1024 {
            self.pool.push(frame.events);
        }
        // The flip is a pure function of the settle sequence, which the
        // DES fires in global (time, seq) order for any shard count —
        // so when counting engages is itself bit-identical on replay.
        self.counting = self.stats.frames_retained >= self.cfg.max_retained_frames;
    }

    /// Close the log. Frames still in flight have no fate; they pass
    /// through the reservoir only (the analyzer attributes them
    /// `RunEnd`), flushed in ascending trace-id order so the output is
    /// independent of hash-map iteration order.
    pub fn finish(mut self, end_ns: u64) -> (TraceLog, TailStats) {
        let mut in_flight: Vec<(u64, PendingFrame)> = self.pending.drain().collect();
        in_flight.sort_unstable_by_key(|(id, _)| *id);
        for (id, frame) in in_flight {
            let r = decide(
                &self.cfg,
                id,
                frame.emitted_ns,
                end_ns,
                None,
                self.last_crash_ns,
            );
            self.settle(frame, r);
        }
        (
            TraceLog {
                tracks: self.tracks,
                events: self.retained,
                end_ns,
            },
            self.stats,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trace::DropReason;

    fn cfg() -> TailConfig {
        TailConfig {
            reservoir_1_in: 1 << 30, // effectively off for these tests
            ..TailConfig::default()
        }
    }

    #[test]
    fn dropped_frames_are_always_retained() {
        let mut t = TailSampler::new(cfg());
        let tr = t.register_track("svc", "m");
        let ctx = t.ctx(0, 1);
        t.emitted(ctx, 0);
        t.span(ctx, tr, 0, Phase::Compute, 0, 5);
        t.terminal(ctx, 5, FrameFate::Dropped(DropReason::BusyIngress));
        let (log, stats) = t.finish(100);
        assert_eq!(log.events.len(), 3);
        assert_eq!(stats.dropped, 1);
        assert_eq!(stats.frames_retained, 1);
    }

    #[test]
    fn fast_completions_are_discarded_slow_ones_kept() {
        let mut t = TailSampler::new(cfg());
        let fast = t.ctx(0, 1);
        t.emitted(fast, 0);
        t.terminal(fast, 40_000_000, FrameFate::Completed); // 40 ms
        let slow = t.ctx(0, 2);
        t.emitted(slow, 0);
        t.terminal(slow, 140_000_000, FrameFate::Completed); // 140 ms
        let (log, stats) = t.finish(1_000_000_000);
        assert_eq!(stats.slo_violations, 1);
        assert_eq!(stats.frames_retained, 1);
        assert!(log.events.iter().all(|e| e.ctx().frame_no == 2,));
    }

    #[test]
    fn crash_adjacency_keeps_healthy_neighbours() {
        let mut t = TailSampler::new(cfg());
        let before = t.ctx(0, 1);
        t.emitted(before, 0);
        t.terminal(before, 10_000_000, FrameFate::Completed);
        t.note_crash(500_000_000);
        let near = t.ctx(0, 2);
        t.emitted(near, 490_000_000);
        t.terminal(near, 510_000_000, FrameFate::Completed);
        let far = t.ctx(0, 3);
        t.emitted(far, 900_000_000);
        t.terminal(far, 910_000_000, FrameFate::Completed);
        let (_, stats) = t.finish(1_000_000_000);
        assert_eq!(stats.crash_adjacent, 1);
        assert_eq!(stats.frames_retained, 1);
    }

    #[test]
    fn reservoir_is_seed_deterministic() {
        let c = TailConfig {
            reservoir_1_in: 4,
            ..TailConfig::default()
        };
        let pick = |seed: u64| -> Vec<u64> {
            (0..1000u64)
                .filter(|id| {
                    decide(
                        &TailConfig { seed, ..c },
                        *id,
                        0,
                        1,
                        Some(FrameFate::Completed),
                        None,
                    )
                    .keeps()
                })
                .collect()
        };
        assert_eq!(pick(7), pick(7));
        assert_ne!(pick(7), pick(8));
        let n = pick(7).len();
        assert!((100..500).contains(&n), "reservoir kept {n} of 1000");
    }

    #[test]
    fn retention_cap_counts_without_storing() {
        let mut t = TailSampler::new(TailConfig {
            max_retained_frames: 2,
            ..cfg()
        });
        for f in 0..5u32 {
            let ctx = t.ctx(0, f);
            t.emitted(ctx, 0);
            t.terminal(ctx, 1, FrameFate::Dropped(DropReason::NetemLoss));
        }
        let (log, stats) = t.finish(10);
        assert_eq!(stats.dropped, 5);
        assert_eq!(stats.frames_retained, 2);
        assert_eq!(stats.retained_truncated, 3);
        assert_eq!(log.events.len(), 4);
    }

    #[test]
    fn pending_is_bounded_by_in_flight_frames() {
        let mut t = TailSampler::new(cfg());
        for f in 0..100u32 {
            let ctx = t.ctx(0, f);
            t.emitted(ctx, f as u64);
            t.terminal(ctx, f as u64 + 1, FrameFate::Completed);
        }
        let (_, stats) = t.finish(1000);
        assert_eq!(stats.peak_pending, 1);
        assert_eq!(stats.frames_seen, 100);
    }
}
