//! Anomaly-triggered flight recorder.
//!
//! Always-on logging at 100k–1M clients is exactly the observability
//! cost this crate exists to retire, but *post-hoc* forensics still
//! need the moments before a failure. The [`FlightRecorder`] squares
//! that: every shard (DES) or thread (runtime) continuously overwrites
//! a small fixed ring of structured events — crashes, kills,
//! detections, SLO transitions, notable drops — at a cost of a few
//! atomic stores per event, and only when an anomaly *fires* (crash,
//! detector suspicion, `SloTracker` burn-rate alert) is the merged
//! recent history frozen into a [`FlightDump`] and later written to
//! `results/flightrec_*.json`.
//!
//! # Concurrency model
//!
//! Each ring has exactly one writer (a DES world is single-threaded; a
//! runtime service pins one ring per thread), but a dump may be taken
//! from another thread while writers are live. Slots are a seqlock in
//! miniature: the writer parks the slot's tag at 0, stores the payload,
//! then publishes the global sequence number with `Release`; the reader
//! accepts a slot only if the tag reads the same nonzero value with
//! `Acquire` before and after copying the payload. Torn slots are
//! skipped, never invented. No locks, no allocation on the record path.
//!
//! # Determinism
//!
//! In the DES every `record`/`trigger` happens at a deterministic
//! `(time, seq)` point, so dumps — contents, order, and JSON bytes —
//! are bit-identical across reruns and event-queue shard counts (rings
//! are indexed by *site*, which is shard-layout-invariant). The
//! runtime's dumps are real concurrent snapshots and make no such
//! promise; the cross-plane gate compares anomaly *counts*, not bytes.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Event kinds — small integers on the record path, names in dumps.
pub const KIND_CRASH: u64 = 1;
pub const KIND_REVIVE: u64 = 2;
pub const KIND_DETECT: u64 = 3;
pub const KIND_SLO_ALERT: u64 = 4;
pub const KIND_SLO_CLEAR: u64 = 5;
pub const KIND_KILL: u64 = 6;
pub const KIND_DROP: u64 = 7;
pub const KIND_FAILOVER: u64 = 8;
pub const KIND_SEND_ERR: u64 = 9;

pub fn kind_name(kind: u64) -> &'static str {
    match kind {
        KIND_CRASH => "crash",
        KIND_REVIVE => "revive",
        KIND_DETECT => "detect",
        KIND_SLO_ALERT => "slo-alert",
        KIND_SLO_CLEAR => "slo-clear",
        KIND_KILL => "kill",
        KIND_DROP => "drop",
        KIND_FAILOVER => "failover",
        KIND_SEND_ERR => "send-err",
        _ => "unknown",
    }
}

/// One recovered ring entry. `seq` is the global record order, so a
/// merged dump totally orders events across rings.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlightEvent {
    pub seq: u64,
    pub ring: u16,
    pub t_ns: u64,
    pub kind: u64,
    /// Kind-specific payload: typically (site/service, slot/detail).
    pub a: u64,
    pub b: u64,
}

/// A frozen snapshot of all rings at trigger time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlightDump {
    pub at_ns: u64,
    pub reason: String,
    /// Merged across rings, ascending `seq`.
    pub events: Vec<FlightEvent>,
}

struct Slot {
    /// 0 = empty or mid-write; otherwise the event's global seq.
    tag: AtomicU64,
    t_ns: AtomicU64,
    kind: AtomicU64,
    a: AtomicU64,
    b: AtomicU64,
}

impl Slot {
    fn empty() -> Slot {
        Slot {
            tag: AtomicU64::new(0),
            t_ns: AtomicU64::new(0),
            kind: AtomicU64::new(0),
            a: AtomicU64::new(0),
            b: AtomicU64::new(0),
        }
    }
}

struct Ring {
    slots: Vec<Slot>,
    /// Next write position (monotonic; slot = pos % cap). Single
    /// writer, but atomic so readers can size their scan.
    pos: AtomicU64,
}

/// Fixed-memory, lock-free recent-event recorder. See module docs.
pub struct FlightRecorder {
    rings: Vec<Ring>,
    cap: usize,
    seq: AtomicU64,
    dumps: Mutex<Vec<FlightDump>>,
    max_dumps: usize,
}

impl FlightRecorder {
    /// `rings` writers (one per DES site / runtime thread), each keeping
    /// its most recent `cap` events. Memory: `rings * cap * 40` bytes,
    /// fixed for the life of the recorder.
    pub fn new(rings: usize, cap: usize) -> FlightRecorder {
        let cap = cap.max(1);
        FlightRecorder {
            rings: (0..rings.max(1))
                .map(|_| Ring {
                    slots: (0..cap).map(|_| Slot::empty()).collect(),
                    pos: AtomicU64::new(0),
                })
                .collect(),
            cap,
            seq: AtomicU64::new(0),
            dumps: Mutex::new(Vec::new()),
            max_dumps: 8,
        }
    }

    pub fn ring_count(&self) -> usize {
        self.rings.len()
    }

    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Record one event into `ring` (clamped). A few atomic stores; no
    /// allocation, no branching on fullness — old events are simply
    /// overwritten.
    pub fn record(&self, ring: usize, t_ns: u64, kind: u64, a: u64, b: u64) {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed) + 1;
        let ring = &self.rings[ring.min(self.rings.len() - 1)];
        let pos = ring.pos.fetch_add(1, Ordering::Relaxed) as usize % self.cap;
        let slot = &ring.slots[pos];
        slot.tag.store(0, Ordering::Release);
        slot.t_ns.store(t_ns, Ordering::Relaxed);
        slot.kind.store(kind, Ordering::Relaxed);
        slot.a.store(a, Ordering::Relaxed);
        slot.b.store(b, Ordering::Relaxed);
        slot.tag.store(seq, Ordering::Release);
    }

    /// Snapshot every ring into a merged dump. Returns `false` when the
    /// dump budget (`max_dumps`, a storm guard: one crash can cascade
    /// into detector + SLO triggers) is already spent.
    pub fn trigger(&self, at_ns: u64, reason: &str) -> bool {
        {
            let dumps = self.dumps.lock().unwrap();
            if dumps.len() >= self.max_dumps {
                return false;
            }
        }
        let mut events = Vec::new();
        for (ri, ring) in self.rings.iter().enumerate() {
            for slot in &ring.slots {
                let tag = slot.tag.load(Ordering::Acquire);
                if tag == 0 {
                    continue;
                }
                let ev = FlightEvent {
                    seq: tag,
                    ring: ri as u16,
                    t_ns: slot.t_ns.load(Ordering::Relaxed),
                    kind: slot.kind.load(Ordering::Relaxed),
                    a: slot.a.load(Ordering::Relaxed),
                    b: slot.b.load(Ordering::Relaxed),
                };
                // Seqlock validation: accept only if untouched while
                // we copied.
                if slot.tag.load(Ordering::Acquire) == tag {
                    events.push(ev);
                }
            }
        }
        events.sort_unstable_by_key(|e| e.seq);
        let mut dumps = self.dumps.lock().unwrap();
        if dumps.len() >= self.max_dumps {
            return false;
        }
        dumps.push(FlightDump {
            at_ns,
            reason: reason.to_string(),
            events,
        });
        true
    }

    pub fn dump_count(&self) -> usize {
        self.dumps.lock().unwrap().len()
    }

    /// Take the accumulated dumps (drains, so a recorder can be reused).
    pub fn take_dumps(&self) -> Vec<FlightDump> {
        std::mem::take(&mut *self.dumps.lock().unwrap())
    }
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Render one dump as JSON. Deterministic: field order is fixed and no
/// wall-clock or pid material enters, so identical dumps produce
/// identical bytes — the replay gate diffs these strings directly.
pub fn dump_json(dump: &FlightDump) -> String {
    let mut out = String::with_capacity(64 + dump.events.len() * 64);
    out.push_str(&format!(
        "{{\"reason\":\"{}\",\"at_ns\":{},\"events\":[",
        escape_json(&dump.reason),
        dump.at_ns
    ));
    for (i, e) in dump.events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"seq\":{},\"ring\":{},\"t_ns\":{},\"kind\":\"{}\",\"a\":{},\"b\":{}}}",
            e.seq,
            e.ring,
            e.t_ns,
            kind_name(e.kind),
            e.a,
            e.b
        ));
    }
    out.push_str("]}");
    out
}

/// Write each dump to `<dir>/flightrec_<plane>_<i>.json`; returns the
/// paths written.
pub fn write_dumps(
    dir: &std::path::Path,
    plane: &str,
    dumps: &[FlightDump],
) -> std::io::Result<Vec<std::path::PathBuf>> {
    std::fs::create_dir_all(dir)?;
    let mut paths = Vec::with_capacity(dumps.len());
    for (i, d) in dumps.iter().enumerate() {
        let path = dir.join(format!("flightrec_{plane}_{i}.json"));
        std::fs::write(&path, dump_json(d))?;
        paths.push(path);
    }
    Ok(paths)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_trigger_round_trip() {
        let fr = FlightRecorder::new(2, 8);
        fr.record(0, 10, KIND_KILL, 3, 0);
        fr.record(1, 20, KIND_CRASH, 3, 7);
        fr.record(0, 30, KIND_DETECT, 3, 1);
        assert!(fr.trigger(30, "crash"));
        let dumps = fr.take_dumps();
        assert_eq!(dumps.len(), 1);
        let d = &dumps[0];
        assert_eq!(d.reason, "crash");
        assert_eq!(
            d.events.iter().map(|e| e.seq).collect::<Vec<_>>(),
            vec![1, 2, 3],
            "merged dump is globally ordered"
        );
        assert_eq!(d.events[1].ring, 1);
        assert_eq!(d.events[1].kind, KIND_CRASH);
    }

    #[test]
    fn ring_overwrites_oldest() {
        let fr = FlightRecorder::new(1, 4);
        for i in 0..10u64 {
            fr.record(0, i, KIND_DROP, i, 0);
        }
        fr.trigger(10, "slo-alert");
        let d = &fr.take_dumps()[0];
        // Only the 4 newest survive.
        assert_eq!(
            d.events.iter().map(|e| e.a).collect::<Vec<_>>(),
            vec![6, 7, 8, 9]
        );
    }

    #[test]
    fn dump_budget_is_enforced() {
        let fr = FlightRecorder::new(1, 4);
        fr.record(0, 1, KIND_CRASH, 0, 0);
        for i in 0..20 {
            fr.trigger(i, "storm");
        }
        assert_eq!(fr.dump_count(), 8);
        assert!(!fr.trigger(99, "over"));
    }

    #[test]
    fn json_is_deterministic_and_parseable() {
        let fr = FlightRecorder::new(2, 4);
        fr.record(0, 5, KIND_KILL, 1, 2);
        fr.record(1, 6, KIND_SLO_ALERT, 0, 0);
        fr.trigger(7, "detector \"sift#1\"");
        let dumps = fr.take_dumps();
        let a = dump_json(&dumps[0]);
        let b = dump_json(&dumps[0]);
        assert_eq!(a, b);
        let v = trace::json::Value::parse(&a).expect("dump json parses");
        assert_eq!(v.get("at_ns").and_then(|x| x.as_f64()), Some(7.0));
        assert_eq!(
            v.get("events").and_then(|e| e.as_array()).map(|e| e.len()),
            Some(2)
        );
    }

    #[test]
    fn empty_slots_are_skipped() {
        let fr = FlightRecorder::new(3, 16);
        fr.record(2, 1, KIND_REVIVE, 0, 0);
        fr.trigger(1, "probe");
        assert_eq!(fr.take_dumps()[0].events.len(), 1);
    }
}
