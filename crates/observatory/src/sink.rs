//! The DES-side recording facade.
//!
//! The simulation records trace events at a dozen sites (`client_emit`,
//! `route_to_service`, `deliver_result`, …). Those sites must not care
//! whether the run is untraced, head-sampled (the PR 1 `trace::Tracer`,
//! kept for the original small-world studies), or tail-sampled (this
//! crate). [`DesSink`] is the one type behind them: an enum rather than
//! a trait object so the hot path is a two-arm match the optimizer can
//! see through, with the `Off` arm collapsing to a `sampled` flag test
//! exactly as before.

use trace::{FrameFate, Phase, TraceCtx, TraceLog, Tracer, TrackId};

use crate::tail::{TailSampler, TailStats};

/// Either the legacy head-sampling tracer, the tail sampler, or inert.
pub enum DesSink {
    Off(Tracer),
    Head(Tracer),
    Tail(Box<TailSampler>),
}

impl Default for DesSink {
    fn default() -> Self {
        DesSink::disabled()
    }
}

impl DesSink {
    /// Records nothing, mints unsampled contexts (so every record site
    /// short-circuits on the `sampled` flag).
    pub fn disabled() -> DesSink {
        DesSink::Off(Tracer::disabled())
    }

    pub fn head(tracer: Tracer) -> DesSink {
        DesSink::Head(tracer)
    }

    pub fn tail(sampler: TailSampler) -> DesSink {
        DesSink::Tail(Box::new(sampler))
    }

    pub fn is_enabled(&self) -> bool {
        !matches!(self, DesSink::Off(_))
    }

    pub fn is_tail(&self) -> bool {
        matches!(self, DesSink::Tail(_))
    }

    pub fn register_track(
        &mut self,
        name: impl Into<String>,
        machine: impl Into<String>,
    ) -> TrackId {
        match self {
            DesSink::Off(t) | DesSink::Head(t) => t.register_track(name, machine),
            DesSink::Tail(t) => t.register_track(name, machine),
        }
    }

    #[inline]
    pub fn ctx(&self, client: u16, frame_no: u32) -> TraceCtx {
        match self {
            DesSink::Off(t) | DesSink::Head(t) => t.ctx(client, frame_no),
            DesSink::Tail(t) => t.ctx(client, frame_no),
        }
    }

    #[inline]
    pub fn emitted(&mut self, ctx: TraceCtx, at_ns: u64) {
        match self {
            DesSink::Off(t) | DesSink::Head(t) => t.emitted(ctx, at_ns),
            DesSink::Tail(t) => t.emitted(ctx, at_ns),
        }
    }

    #[inline]
    #[allow(clippy::too_many_arguments)]
    pub fn span(
        &mut self,
        ctx: TraceCtx,
        track: TrackId,
        stage: u8,
        phase: Phase,
        start_ns: u64,
        end_ns: u64,
    ) {
        match self {
            DesSink::Off(t) | DesSink::Head(t) => {
                t.span(ctx, track, stage, phase, start_ns, end_ns)
            }
            DesSink::Tail(t) => t.span(ctx, track, stage, phase, start_ns, end_ns),
        }
    }

    #[inline]
    pub fn terminal(&mut self, ctx: TraceCtx, at_ns: u64, fate: FrameFate) {
        match self {
            DesSink::Off(t) | DesSink::Head(t) => t.terminal(ctx, at_ns, fate),
            DesSink::Tail(t) => t.terminal(ctx, at_ns, fate),
        }
    }

    /// [`DesSink::terminal`] with the caller's record of the frame's
    /// emit time. Head and off modes have no use for the hint; tail
    /// mode needs it to keep SLO classification exact once the
    /// retention cap flips the sampler into counting mode (see
    /// [`TailSampler::terminal_with_emit`]).
    #[inline]
    pub fn terminal_with_emit(
        &mut self,
        ctx: TraceCtx,
        emitted_hint_ns: u64,
        at_ns: u64,
        fate: FrameFate,
    ) {
        match self {
            DesSink::Off(t) | DesSink::Head(t) => t.terminal(ctx, at_ns, fate),
            DesSink::Tail(t) => t.terminal_with_emit(ctx, emitted_hint_ns, at_ns, fate),
        }
    }

    /// Forwarded to the tail sampler's crash-adjacency mark; head and
    /// off modes have no use for it.
    #[inline]
    pub fn note_crash(&mut self, at_ns: u64) {
        if let DesSink::Tail(t) = self {
            t.note_crash(at_ns);
        }
    }

    /// Close the log. Tail mode also yields its retention accounting.
    pub fn finish(self, end_ns: u64) -> (TraceLog, Option<TailStats>) {
        match self {
            DesSink::Off(t) | DesSink::Head(t) => (t.finish(end_ns), None),
            DesSink::Tail(t) => {
                let (log, stats) = t.finish(end_ns);
                (log, Some(stats))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tail::TailConfig;
    use trace::{DropReason, TraceConfig};

    #[test]
    fn off_sink_records_nothing() {
        let mut s = DesSink::disabled();
        let tr = s.register_track("svc", "m");
        let ctx = s.ctx(0, 0);
        assert!(!ctx.sampled);
        s.emitted(ctx, 0);
        s.span(ctx, tr, 0, Phase::Compute, 0, 1);
        s.terminal(ctx, 1, FrameFate::Completed);
        let (log, stats) = s.finish(10);
        assert!(log.events.is_empty());
        assert!(stats.is_none());
    }

    #[test]
    fn head_sink_behaves_like_tracer() {
        let mut s = DesSink::head(Tracer::new(TraceConfig { sample_every: 2 }));
        let _tr = s.register_track("svc", "m");
        for f in 0..4u32 {
            let ctx = s.ctx(0, f);
            s.emitted(ctx, f as u64);
            s.terminal(ctx, f as u64 + 1, FrameFate::Completed);
        }
        let (log, stats) = s.finish(10);
        assert_eq!(log.events.len(), 4, "frames 0 and 2 sampled");
        assert!(stats.is_none());
    }

    #[test]
    fn tail_sink_keeps_anomalies_and_reports_stats() {
        let mut s = DesSink::tail(TailSampler::new(TailConfig {
            reservoir_1_in: 1 << 30,
            ..TailConfig::default()
        }));
        let ctx = s.ctx(3, 9);
        assert!(ctx.sampled, "tail mode has no head gate");
        s.emitted(ctx, 0);
        s.terminal(ctx, 5, FrameFate::Dropped(DropReason::Crash));
        let (log, stats) = s.finish(10);
        assert_eq!(log.events.len(), 2);
        assert_eq!(stats.unwrap().dropped, 1);
    }
}
