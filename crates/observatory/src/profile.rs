//! Always-on sampled self-profiler.
//!
//! A million-client DES run executes a few million events per second,
//! leaving a per-event overhead budget of a handful of nanoseconds —
//! two `Instant::now()` calls per event would alone blow the
//! observatory's 5% gate. The profiler therefore *samples*: every call
//! increments a plain counter, and only 1 in `2^shift` calls (a mask
//! test) pays for a wall-clock pair. Per-phase totals are estimated as
//! `sampled_ns * calls / samples`; hot loops are uniform enough that
//! the estimate reconciles with `latency_breakdown` (the observatory
//! bin prints the comparison table).
//!
//! Reading the wall clock never perturbs determinism: no RNG is drawn,
//! no event is scheduled, and timings only flow into reports — the
//! same discipline as the PR 3 telemetry plane.
//!
//! Two flavours share the snapshot type: [`PhaseProfiler`] (`&mut
//! self`, for the single-threaded DES loop) and [`AtomicPhaseProf`]
//! (`&self`, shared across runtime service threads).

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use telemetry::Labels;

/// Aggregate for one phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhaseStat {
    pub name: &'static str,
    /// Every entry, sampled or not.
    pub calls: u64,
    /// Entries that paid for a clock pair.
    pub samples: u64,
    /// Wall time inside sampled entries.
    pub sampled_ns: u64,
    /// `sampled_ns * calls / samples` — the extrapolated phase total.
    pub est_total_ns: u64,
}

/// Point-in-time view of a profiler; mergeable across shards/threads.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ProfSnapshot {
    pub phases: Vec<PhaseStat>,
}

impl ProfSnapshot {
    /// Fold another snapshot in (same-name phases sum; new names
    /// append) — used to aggregate per-service runtime profilers.
    pub fn merge(&mut self, other: &ProfSnapshot) {
        for p in &other.phases {
            match self.phases.iter_mut().find(|q| q.name == p.name) {
                Some(q) => {
                    q.calls += p.calls;
                    q.samples += p.samples;
                    q.sampled_ns += p.sampled_ns;
                    q.est_total_ns = est_total(q.sampled_ns, q.calls, q.samples);
                }
                None => self.phases.push(*p),
            }
        }
    }

    /// Folded-stack flamegraph text: one `prefix;phase <µs>` line per
    /// active phase, ready for `flamegraph.pl` / speedscope.
    pub fn folded(&self, prefix: &str) -> String {
        let mut out = String::new();
        for p in &self.phases {
            if p.calls == 0 {
                continue;
            }
            out.push_str(&format!("{prefix};{} {}\n", p.name, p.est_total_ns / 1_000));
        }
        out
    }

    pub fn total_est_ns(&self) -> u64 {
        self.phases.iter().map(|p| p.est_total_ns).sum()
    }

    pub fn get(&self, name: &str) -> Option<&PhaseStat> {
        self.phases.iter().find(|p| p.name == name)
    }
}

fn est_total(sampled_ns: u64, calls: u64, samples: u64) -> u64 {
    if samples == 0 {
        return 0;
    }
    ((sampled_ns as u128 * calls as u128) / samples as u128) as u64
}

#[derive(Clone, Copy, Default)]
struct Cell {
    calls: u64,
    samples: u64,
    sampled_ns: u64,
}

/// Single-writer profiler for the DES hot loops. `enter` costs one
/// increment and a mask test on the unsampled path.
pub struct PhaseProfiler {
    phases: &'static [&'static str],
    mask: u64,
    cells: Vec<Cell>,
    hists: Option<Vec<telemetry::Histogram>>,
}

impl PhaseProfiler {
    /// `shift`: time 1 entry in `2^shift`. Shift 0 times everything
    /// (tests); the DES default is 6 (1-in-64).
    pub fn new(phases: &'static [&'static str], shift: u32) -> PhaseProfiler {
        PhaseProfiler {
            phases,
            mask: (1u64 << shift.min(63)) - 1,
            cells: vec![Cell::default(); phases.len()],
            hists: None,
        }
    }

    /// Mirror sampled durations into per-phase `telemetry` histograms
    /// (`prof_phase_ms{plane,reason=<phase>}`).
    pub fn attach_registry(&mut self, reg: &telemetry::Registry, plane: &'static str) {
        self.hists = Some(
            self.phases
                .iter()
                .map(|name| {
                    reg.histogram(
                        "prof_phase_ms",
                        "sampled self-profiler phase duration",
                        Labels::EMPTY.with_plane(plane).with_reason(name),
                    )
                })
                .collect(),
        );
    }

    #[inline]
    pub fn enter(&mut self, phase: usize) -> Option<Instant> {
        let c = &mut self.cells[phase];
        let sampled = c.calls & self.mask == 0;
        c.calls += 1;
        sampled.then(Instant::now)
    }

    #[inline]
    pub fn exit(&mut self, phase: usize, t0: Option<Instant>) {
        if let Some(t0) = t0 {
            let ns = t0.elapsed().as_nanos() as u64;
            let c = &mut self.cells[phase];
            c.samples += 1;
            c.sampled_ns += ns;
            if let Some(hists) = &self.hists {
                hists[phase].record(ns as f64 / 1e6);
            }
        }
    }

    pub fn snapshot(&self) -> ProfSnapshot {
        ProfSnapshot {
            phases: self
                .phases
                .iter()
                .zip(&self.cells)
                .map(|(name, c)| PhaseStat {
                    name,
                    calls: c.calls,
                    samples: c.samples,
                    sampled_ns: c.sampled_ns,
                    est_total_ns: est_total(c.sampled_ns, c.calls, c.samples),
                })
                .collect(),
        }
    }
}

struct AtomicCell {
    calls: AtomicU64,
    samples: AtomicU64,
    sampled_ns: AtomicU64,
}

/// Shared-reference profiler for runtime threads; same sampling
/// contract as [`PhaseProfiler`] with relaxed atomics.
pub struct AtomicPhaseProf {
    phases: &'static [&'static str],
    mask: u64,
    cells: Vec<AtomicCell>,
}

impl AtomicPhaseProf {
    pub fn new(phases: &'static [&'static str], shift: u32) -> AtomicPhaseProf {
        AtomicPhaseProf {
            phases,
            mask: (1u64 << shift.min(63)) - 1,
            cells: (0..phases.len())
                .map(|_| AtomicCell {
                    calls: AtomicU64::new(0),
                    samples: AtomicU64::new(0),
                    sampled_ns: AtomicU64::new(0),
                })
                .collect(),
        }
    }

    #[inline]
    pub fn enter(&self, phase: usize) -> Option<Instant> {
        let c = self.cells[phase].calls.fetch_add(1, Ordering::Relaxed);
        (c & self.mask == 0).then(Instant::now)
    }

    #[inline]
    pub fn exit(&self, phase: usize, t0: Option<Instant>) {
        if let Some(t0) = t0 {
            let ns = t0.elapsed().as_nanos() as u64;
            let c = &self.cells[phase];
            c.samples.fetch_add(1, Ordering::Relaxed);
            c.sampled_ns.fetch_add(ns, Ordering::Relaxed);
        }
    }

    pub fn snapshot(&self) -> ProfSnapshot {
        ProfSnapshot {
            phases: self
                .phases
                .iter()
                .zip(&self.cells)
                .map(|(name, c)| {
                    let calls = c.calls.load(Ordering::Relaxed);
                    let samples = c.samples.load(Ordering::Relaxed);
                    let sampled_ns = c.sampled_ns.load(Ordering::Relaxed);
                    PhaseStat {
                        name,
                        calls,
                        samples,
                        sampled_ns,
                        est_total_ns: est_total(sampled_ns, calls, samples),
                    }
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const PHASES: &[&str] = &["pop", "exec"];

    #[test]
    fn sampling_respects_shift() {
        let mut p = PhaseProfiler::new(PHASES, 3); // 1 in 8
        for _ in 0..80 {
            let t = p.enter(0);
            p.exit(0, t);
        }
        let s = p.snapshot();
        let pop = s.get("pop").unwrap();
        assert_eq!(pop.calls, 80);
        assert_eq!(pop.samples, 10);
        assert!(pop.est_total_ns >= pop.sampled_ns);
    }

    #[test]
    fn shift_zero_times_everything() {
        let mut p = PhaseProfiler::new(PHASES, 0);
        for _ in 0..5 {
            let t = p.enter(1);
            assert!(t.is_some());
            p.exit(1, t);
        }
        let s = p.snapshot();
        assert_eq!(s.get("exec").unwrap().samples, 5);
    }

    #[test]
    fn folded_output_shape() {
        let mut p = PhaseProfiler::new(PHASES, 0);
        let t = p.enter(0);
        p.exit(0, t);
        let folded = p.snapshot().folded("des");
        assert!(folded.starts_with("des;pop "));
        assert_eq!(folded.lines().count(), 1, "idle phases are omitted");
    }

    #[test]
    fn merge_sums_and_reestimates() {
        let mut a = ProfSnapshot {
            phases: vec![PhaseStat {
                name: "pop",
                calls: 100,
                samples: 10,
                sampled_ns: 1000,
                est_total_ns: 10_000,
            }],
        };
        let b = a.clone();
        a.merge(&b);
        let p = a.get("pop").unwrap();
        assert_eq!(p.calls, 200);
        assert_eq!(p.est_total_ns, 20_000);
    }

    #[test]
    fn atomic_prof_is_shareable() {
        let p = std::sync::Arc::new(AtomicPhaseProf::new(PHASES, 0));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let p = p.clone();
                std::thread::spawn(move || {
                    for _ in 0..25 {
                        let t = p.enter(0);
                        p.exit(0, t);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(p.snapshot().get("pop").unwrap().calls, 100);
    }

    #[test]
    fn registry_mirror_records_histograms() {
        let reg = telemetry::Registry::new();
        let mut p = PhaseProfiler::new(PHASES, 0);
        p.attach_registry(&reg, "des");
        let t = p.enter(0);
        p.exit(0, t);
        let snap = reg.snapshot();
        let h = snap
            .histogram(
                "prof_phase_ms",
                &Labels::EMPTY.with_plane("des").with_reason("pop"),
            )
            .expect("histogram exists");
        assert_eq!(h.count(), 1);
    }
}
