//! # observatory — seeing a million-client run without paying for it
//!
//! PR 7 scaled the DES to 100k–1M simulated clients; at that size the
//! original observability planes stop being observers and start being
//! the bottleneck: blanket 1-in-N head-sampled tracing keeps O(clients)
//! span buffers, and "log everything, grep later" is not an option when
//! a run executes millions of events per second. This crate holds the
//! three instruments that replace them, shared by the DES and the real
//! UDP runtime:
//!
//! - [`tail`] — **tail-sampled tracing**: every frame is traced while in
//!   flight, but only *interesting* frames (dropped, SLO-violating,
//!   crash-adjacent, or deterministic-reservoir survivors) are retained
//!   when their fate is known. Memory is bounded by frames in flight,
//!   not frames emitted; retention is a pure function of the seed and
//!   the event stream, so retained sets are bit-identical across reruns
//!   and event-queue shard counts.
//! - [`flight`] — an **anomaly-triggered flight recorder**: fixed-size
//!   lock-free rings of recent structured control-plane events, dumped
//!   as deterministic JSON when a crash, a detector suspicion, or an
//!   SLO burn-rate alert fires. Post-hoc forensics without always-on
//!   logging.
//! - [`profile`] — an **always-on self-profiler**: sampled (1-in-2^k)
//!   wall-clock phase timers over the hot loops, cheap enough to leave
//!   enabled (unsampled cost: one increment and a mask test), exported
//!   as folded-stack flamegraph text and `telemetry` histograms.
//! - [`sink`] — the DES-side recording facade: one type that is either
//!   the legacy head-sampling `trace::Tracer`, the tail sampler, or
//!   inert, so the simulation's record sites stay identical in all
//!   three modes.

pub mod flight;
pub mod profile;
pub mod sink;
pub mod tail;

pub use flight::{FlightDump, FlightEvent, FlightRecorder};
pub use profile::{AtomicPhaseProf, PhaseProfiler, PhaseStat, ProfSnapshot};
pub use sink::DesSink;
pub use tail::{Retain, TailConfig, TailSampler, TailStats};

/// Everything the observatory plane is configured by — carried on the
/// run config (DES) or the runtime options. `Default` is the shape the
/// gates run with.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ObservatoryConfig {
    pub tail: TailConfig,
    /// Flight-recorder ring capacity (events per ring).
    pub flight_cap: usize,
    /// Profiler sampling shift: time 1 event in `2^shift`.
    pub prof_shift: u32,
}

impl Default for ObservatoryConfig {
    fn default() -> Self {
        ObservatoryConfig {
            tail: TailConfig::default(),
            flight_cap: 256,
            prof_shift: 7,
        }
    }
}

impl ObservatoryConfig {
    pub fn with_reservoir(mut self, one_in: u64) -> Self {
        self.tail.reservoir_1_in = one_in.max(1);
        self
    }

    pub fn with_flight_cap(mut self, cap: usize) -> Self {
        self.flight_cap = cap.max(1);
        self
    }
}
