//! One benchmark per paper figure: times regenerating that figure's
//! central experiment point. `cargo bench -p bench --bench figures`.

use bench::bench_config;
use criterion::{criterion_group, criterion_main, Criterion};
use scatter::config::{placements, RunConfig};
use scatter::{run_experiment, Mode};
use simcore::SimDuration;
use simnet::NetemProfile;
use std::hint::black_box;

fn figures(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures");
    g.sample_size(10);

    // Fig 2: baseline scAtteR on one edge machine, 4 clients.
    g.bench_function("fig2_baseline_edge_c1_n4", |b| {
        b.iter(|| {
            black_box(run_experiment(bench_config(
                Mode::Scatter,
                placements::c1(),
                4,
            )))
        })
    });

    // Fig 3: replicated scAtteR, the winning [1,2,2,1,2] vector.
    g.bench_function("fig3_replicated_12212_n3", |b| {
        b.iter(|| {
            black_box(run_experiment(bench_config(
                Mode::Scatter,
                placements::replicas([1, 2, 2, 1, 2]),
                3,
            )))
        })
    });

    // Fig 4: cloud-only deployment.
    g.bench_function("fig4_cloud_only_n2", |b| {
        b.iter(|| {
            black_box(run_experiment(bench_config(
                Mode::Scatter,
                placements::cloud_only(),
                2,
            )))
        })
    });

    // Fig 6: scAtteR++ on the edge.
    g.bench_function("fig6_scatterpp_c12_n4", |b| {
        b.iter(|| {
            black_box(run_experiment(bench_config(
                Mode::ScatterPP,
                placements::c12(),
                4,
            )))
        })
    });

    // Fig 7: scAtteR++ at scale (8 clients, 10 instances).
    g.bench_function("fig7_scatterpp_13213_n8", |b| {
        b.iter(|| {
            black_box(run_experiment(bench_config(
                Mode::ScatterPP,
                placements::replicas([1, 3, 2, 1, 3]),
                8,
            )))
        })
    });

    // Fig 8 / fig 12: stepped client arrivals with sidecar analytics.
    g.bench_function("fig8_stepped_arrivals_n6", |b| {
        b.iter(|| {
            let cfg = RunConfig::new(Mode::ScatterPP, placements::replicas([1, 3, 2, 1, 3]), 6)
                .with_stagger(SimDuration::from_secs(2))
                .with_duration(SimDuration::from_secs(12))
                .with_warmup(SimDuration::from_secs(0))
                .with_seed(7);
            black_box(run_experiment(cfg))
        })
    });

    // Fig 9: netem conditions (LTE with mobility).
    g.bench_function("fig9_netem_lte_n2", |b| {
        b.iter(|| {
            black_box(run_experiment(
                bench_config(Mode::Scatter, placements::c2(), 2)
                    .with_netem(NetemProfile::lte().with_mobility()),
            ))
        })
    });

    // Fig 10: jitter measurement path (same run, jitter aggregation).
    g.bench_function("fig10_jitter_c2_n4", |b| {
        b.iter(|| {
            let r = run_experiment(bench_config(Mode::Scatter, placements::c2(), 4));
            black_box(r.jitter_ms)
        })
    });

    // Fig 11: hybrid edge-cloud.
    g.bench_function("fig11_hybrid_n2", |b| {
        b.iter(|| {
            black_box(run_experiment(bench_config(
                Mode::Scatter,
                placements::hybrid_edge_cloud(),
                2,
            )))
        })
    });

    g.finish();
}

criterion_group!(benches, figures);
criterion_main!(benches);
