//! Micro-benchmarks of the real CV substrate — the per-stage costs the
//! DES cost model abstracts, measured on this machine.

use criterion::{criterion_group, criterion_main, Criterion};
use simcore::SimRng;
use std::hint::black_box;
use vision::db::TrainParams;
use vision::descriptor::describe_all;
use vision::fisher::FisherEncoder;
use vision::gmm::DiagGmm;
use vision::keypoints::{detect, DetectorParams};
use vision::lsh::LshIndex;
use vision::matching::{match_descriptors, MatchParams};
use vision::pca::Pca;
use vision::pyramid::{gaussian_blur, Pyramid};
use vision::ransac::{ransac_homography, Correspondence, RansacParams};
use vision::scene::SceneGenerator;
use vision::ReferenceDb;

const W: usize = 320;
const H: usize = 180;

fn vision_kernels(c: &mut Criterion) {
    let scene = SceneGenerator::workplace_scaled(1, W, H);
    let frame = scene.frame(0);
    let mut rng = SimRng::new(42);

    // primary: pre-processing kernels.
    c.bench_function("primary/resize_0.75", |b| {
        b.iter(|| black_box(frame.resize(W * 3 / 4, H * 3 / 4)))
    });
    c.bench_function("primary/render_frame", |b| {
        let mut idx = 0u32;
        b.iter(|| {
            idx = (idx + 1) % 300;
            black_box(scene.frame(idx))
        })
    });

    // sift: pyramid + detection + description.
    c.bench_function("sift/gaussian_blur_sigma1.6", |b| {
        b.iter(|| black_box(gaussian_blur(&frame, 1.6)))
    });
    c.bench_function("sift/pyramid_3oct", |b| {
        b.iter(|| black_box(Pyramid::build(&frame, 3, 3, 1.6)))
    });
    c.bench_function("sift/detect_full", |b| {
        b.iter(|| black_box(detect(&frame, &DetectorParams::default())))
    });
    let (pyr, kps) = detect(&frame, &DetectorParams::default());
    c.bench_function("sift/describe_all", |b| {
        b.iter(|| black_box(describe_all(&pyr, &kps)))
    });
    let descs = describe_all(&pyr, &kps);

    // encoding: PCA + Fisher.
    let pooled: Vec<Vec<f64>> = descs
        .iter()
        .map(|d| d.v.iter().map(|&x| x as f64).collect())
        .collect();
    let pca = Pca::fit(&pooled, 16, &mut rng);
    let reduced = pca.transform_batch(&pooled);
    let gmm = DiagGmm::fit(&reduced, 4, 10, &mut rng);
    let encoder = FisherEncoder::new(gmm);
    c.bench_function("encoding/pca_transform_batch", |b| {
        b.iter(|| black_box(pca.transform_batch(&pooled)))
    });
    c.bench_function("encoding/fisher_encode", |b| {
        b.iter(|| black_box(encoder.encode(&reduced)))
    });

    // lsh: index + query.
    let fv = encoder.encode(&reduced);
    let mut lsh = LshIndex::new(fv.len(), 4, 8, &mut rng);
    for i in 0..64 {
        let mut v = fv.clone();
        let idx = i % v.len();
        v[idx] += 0.01 * (i as f64);
        lsh.insert(v);
    }
    c.bench_function("lsh/query_top2", |b| {
        b.iter(|| black_box(lsh.query(&fv, 2)))
    });

    // matching: ratio test + RANSAC pose.
    c.bench_function("matching/ratio_test", |b| {
        b.iter(|| black_box(match_descriptors(&descs, &descs, &MatchParams::default())))
    });
    let pairs: Vec<Correspondence> = (0..60)
        .map(|i| {
            let x = (i % 10) as f64 * 12.0;
            let y = (i / 10) as f64 * 14.0;
            ((x, y), (x + 5.0, y - 3.0))
        })
        .collect();
    c.bench_function("matching/ransac_homography", |b| {
        b.iter(|| {
            black_box(ransac_homography(
                &pairs,
                &RansacParams::default(),
                &mut rng,
            ))
        })
    });

    // Full-pipeline recognition (the whole data plane, in-process).
    let db = ReferenceDb::train(&scene, TrainParams::default(), &mut rng);
    c.bench_function("pipeline/recognize_frame", |b| {
        b.iter(|| black_box(db.recognize(&frame, &mut rng)))
    });

    // The fast extractor (§5's model-optimization alternative).
    c.bench_function("fast/detect_fast9", |b| {
        b.iter(|| black_box(vision::fast::detect_fast(&frame, 0.08, 300)))
    });
    let pattern = vision::fast::brief_pattern();
    let corners = vision::fast::detect_fast(&frame, 0.08, 300);
    c.bench_function("fast/describe_brief", |b| {
        b.iter(|| black_box(vision::fast::describe_brief(&frame, &corners, &pattern)))
    });
    let briefs = vision::fast::describe_brief(&frame, &corners, &pattern);
    c.bench_function("fast/match_brief_hamming", |b| {
        b.iter(|| black_box(vision::fast::match_brief(&briefs, &briefs, 60, 0.8)))
    });

    // The client uplink codec.
    c.bench_function("codec/encode_q85", |b| {
        b.iter(|| black_box(vision::codec::encode(&frame, vision::codec::Quality(85))))
    });
    let stream = vision::codec::encode(&frame, vision::codec::Quality(85));
    c.bench_function("codec/decode", |b| {
        b.iter(|| black_box(vision::codec::decode(stream.clone())))
    });
}

criterion_group!(benches, vision_kernels);
criterion_main!(benches);
