//! Micro-benchmarks of the simulation and transport substrates.

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, Criterion};
use scatter::gpu::GpuPool;
use scatter::message::{FrameMsg, ServiceKind};
use scatter::runtime::wire::{self, WireMsg};
use scatter::sidecar::Sidecar;
use simcore::{Sim, SimDuration, SimRng, SimTime};
use simnet::{Link, NetemProfile, Testbed, UdpNet};
use std::hint::black_box;

fn substrates(c: &mut Criterion) {
    // Event queue: schedule/execute churn.
    c.bench_function("simcore/event_churn_10k", |b| {
        b.iter(|| {
            let mut sim: Sim<u64> = Sim::new();
            for i in 0..10_000u64 {
                sim.schedule(SimDuration::from_micros(i % 997), |w, _| *w += 1);
            }
            let mut count = 0u64;
            sim.run(&mut count);
            black_box(count)
        })
    });

    // RNG stream throughput.
    c.bench_function("simcore/rng_lognormal_10k", |b| {
        let mut rng = SimRng::new(1);
        b.iter(|| {
            let mut acc = 0.0;
            for _ in 0..10_000 {
                acc += rng.lognormal(0.0, 0.08);
            }
            black_box(acc)
        })
    });

    // Link sampling (clean + netem).
    let clean = Link::from_rtt_ms(1.0).bandwidth_mbps(1000.0);
    let lte = NetemProfile::lte().with_mobility().to_link();
    c.bench_function("simnet/link_send_clean", |b| {
        let mut rng = SimRng::new(2);
        b.iter(|| black_box(clean.send(150_000, &mut rng)))
    });
    c.bench_function("simnet/link_send_lte_fragmented", |b| {
        let mut rng = SimRng::new(3);
        b.iter(|| black_box(lte.send(480_000, &mut rng)))
    });

    // UdpNet with serialization queueing.
    c.bench_function("simnet/udpnet_send", |b| {
        let (topo, tb) = Testbed::build();
        let mut net = UdpNet::new(topo, SimRng::new(4));
        let mut t = 0u64;
        b.iter(|| {
            t += 1;
            black_box(net.send(tb.client_host, tb.e1, 150_000, SimTime::from_micros(t * 33)))
        })
    });

    // Sidecar enqueue/dequeue under projection.
    c.bench_function("scatter/sidecar_cycle", |b| {
        let mut sc = Sidecar::new(
            SimDuration::from_millis(100),
            SimDuration::from_millis(10),
            SimDuration::from_millis(20),
        );
        let mut t = 0u64;
        b.iter(|| {
            t += 1;
            let now = SimTime::from_micros(t * 500);
            let msg = FrameMsg::new(0, t, simnet::NodeId(0), now, 1000);
            sc.enqueue(msg, now);
            black_box(sc.dequeue(now))
        })
    });

    // GPU pool PS admission.
    c.bench_function("scatter/gpu_ps_cycle", |b| {
        let mut pool = GpuPool::new(2);
        b.iter(|| {
            let s = pool.ps_begin(1.0);
            pool.ps_end(1.0);
            black_box(s)
        })
    });

    // Wire codec: fragment + reassemble a stateless (480 KB-class) frame.
    let msg = WireMsg {
        client: 1,
        frame_no: 7,
        step: ServiceKind::Encoding,
        emit_micros: 0,
        return_port: 40_000,
        trace_id: (1u64 << 32) | 7,
        flags: 0,
        sent_micros: 0,
        payload: Bytes::from(vec![0xAB; 300_000]),
    };
    c.bench_function("wire/encode_300k", |b| {
        b.iter(|| black_box(wire::encode(&msg)))
    });
    let frames = wire::encode(&msg);
    c.bench_function("wire/decode_reassemble_300k", |b| {
        b.iter(|| {
            let mut r = wire::Reassembler::new();
            let mut out = None;
            for f in &frames {
                out = r.offer(wire::decode_fragment(f).expect("valid"));
            }
            black_box(out)
        })
    });
}

criterion_group!(benches, substrates);
criterion_main!(benches);
