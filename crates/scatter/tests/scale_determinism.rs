//! Scale-plane invariants (DESIGN.md §14), pinned end-to-end:
//!
//! 1. a sited run with `sites = 1` and exact metrics produces a report
//!    byte-identical to the legacy (no-scale) run — the scale plane is
//!    opt-in down to the last bit;
//! 2. the sharded event queue is execution-order invisible: any shard
//!    count yields byte-identical reports, event counts, and trace
//!    streams, including under crash/failover schedules;
//! 3. streaming metrics agree with the exact collectors on every
//!    aggregate they summarize (exactly for counters, within histogram
//!    resolution for distributions).
//!
//! `SCATTER_SHARDS` is process-global state, and `run_experiment` reads
//! it on every call — all tests here serialize on one mutex so the env
//! test cannot leak its override into a concurrently-running sibling.

use std::sync::Mutex;

use scatter::config::{placements, RunConfig, ScaleConfig};
use scatter::{run_experiment, run_experiment_traced, Mode, ServiceKind};
use simcore::SimDuration;

static ENV_SERIAL: Mutex<()> = Mutex::new(());

fn base_cfg(clients: usize) -> RunConfig {
    RunConfig::new(Mode::Scatter, placements::c12(), clients)
        .with_duration(SimDuration::from_secs(3))
        .with_warmup(SimDuration::from_secs(1))
        .with_seed(99)
}

fn sited(cfg: RunConfig, sites: usize, shards: usize, streaming: bool) -> RunConfig {
    let mut sc = ScaleConfig::new(sites).with_shards(shards);
    if !streaming {
        sc = sc.exact();
    }
    cfg.with_scale(sc)
}

#[test]
fn one_site_exact_run_is_byte_identical_to_legacy() {
    let _serial = ENV_SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let legacy = run_experiment(base_cfg(4));
    let sited_run = run_experiment(sited(base_cfg(4), 1, 1, false));
    assert_eq!(
        format!("{legacy:?}"),
        format!("{sited_run:?}"),
        "sites=1 exact must reproduce the legacy report bit for bit"
    );
    assert_eq!(legacy.events_executed, sited_run.events_executed);
}

#[test]
fn shard_count_never_changes_any_output_byte() {
    let _serial = ENV_SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    // Crash/revive churn exercises cancel + cross-shard interleaving.
    let cfg = |shards| {
        sited(base_cfg(6), 3, shards, true)
            .with_trace(trace::TraceConfig::default())
            .with_failure(SimDuration::from_millis(1200), ServiceKind::Sift, 0)
            .with_failure(SimDuration::from_millis(1700), ServiceKind::Encoding, 0)
    };
    let (r1, log1) = run_experiment_traced(cfg(1));
    for shards in [2usize, 5, 8] {
        let (rk, logk) = run_experiment_traced(cfg(shards));
        // The report embeds the executed shard count; mask it out — it
        // is the ONLY field allowed to differ.
        let strip = |r: &scatter::RunReport| {
            let mut s = format!("{r:?}");
            let from = format!("shards: {}", r.scale.as_ref().unwrap().shards);
            s = s.replace(&from, "shards: X");
            s
        };
        assert_eq!(rk.scale.as_ref().unwrap().shards, shards);
        assert_eq!(strip(&r1), strip(&rk), "report diverged at {shards} shards");
        assert_eq!(r1.events_executed, rk.events_executed);
        assert_eq!(
            format!("{:?}", log1.events),
            format!("{:?}", logk.events),
            "trace stream diverged at {shards} shards"
        );
    }
}

#[test]
fn streaming_aggregates_agree_with_exact_collectors() {
    let _serial = ENV_SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let exact = run_experiment(sited(base_cfg(6), 3, 1, false));
    let streamed = run_experiment(sited(base_cfg(6), 3, 1, true));

    // Exact counters: success rate and window completions are integers.
    assert_eq!(exact.success_rate, streamed.success_rate);
    let s = streamed.scale.as_ref().expect("streaming report");
    let secs = exact
        .measure_end
        .saturating_since(exact.measure_start)
        .as_secs_f64();
    let exact_completions: f64 = exact.per_client_fps.iter().sum::<f64>() * secs;
    assert!(
        (exact_completions - s.completed_in_window as f64).abs() < 1e-6,
        "window completions: exact {exact_completions}, streamed {}",
        s.completed_in_window
    );
    // Mean FPS is the same ratio computed two ways.
    assert!(
        (exact.fps() - streamed.fps()).abs() < 1e-9,
        "fps: exact {}, streamed {}",
        exact.fps(),
        streamed.fps()
    );
    // Jitter uses the identical per-client arithmetic — bitwise equal.
    assert_eq!(exact.jitter_ms, streamed.jitter_ms);
    // Freeze: the streaming monotone-subsequence gap is a lower bound.
    assert!(streamed.max_freeze_frames <= exact.max_freeze_frames);
    // E2E mean within the histogram's ~2% bucket resolution.
    let (em, sm) = (exact.e2e_mean_ms(), streamed.e2e_mean_ms());
    assert!(
        (em - sm).abs() <= em * 0.001 + 1e-9,
        "e2e mean: exact {em}, streamed {sm}"
    );
    // Per-service counters agree with the exact series-derived ones.
    for (es, ss) in exact.services.iter().zip(&streamed.services) {
        assert_eq!(es.ingress_total, ss.ingress_total);
        assert_eq!(es.ingress_in_window, ss.ingress_in_window);
        assert_eq!(es.drop_events_in_window, ss.drop_events_in_window);
        assert!(ss.ingress.is_empty(), "streaming keeps no ingress series");
        assert!(ss.drops_over_time.is_empty());
    }
    // And the streaming run carries no per-client vectors at all.
    assert!(streamed.per_client_fps.is_empty());
    assert!(streamed.per_client_fps_median.is_empty());
    assert_eq!(streamed.e2e_ms.samples().len(), 0);
}

/// Autoscale reads the ingress/drop time series, which streaming
/// metrics do not populate — asking for both is a config error, not a
/// silent zero-signal run (DESIGN.md §14).
#[test]
#[should_panic(expected = "autoscale is unsupported under streaming scale metrics")]
fn autoscale_under_streaming_metrics_is_rejected() {
    let cfg = sited(base_cfg(2), 2, 1, true)
        .with_autoscale(scatter::autoscale::AutoscaleConfig::application_aware(0.10));
    let _ = run_experiment(cfg);
}

#[test]
fn scatter_shards_env_overrides_config() {
    let _serial = ENV_SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    std::env::set_var("SCATTER_SHARDS", "5");
    let r = run_experiment(sited(base_cfg(2), 2, 1, true));
    std::env::remove_var("SCATTER_SHARDS");
    assert_eq!(r.scale.as_ref().unwrap().shards, 5);
    // And — per the invariant above — the report matches the un-forced
    // run everywhere but the recorded shard count.
    let baseline = run_experiment(sited(base_cfg(2), 2, 1, true));
    assert_eq!(
        format!("{r:?}").replace("shards: 5", "shards: N"),
        format!("{baseline:?}").replace("shards: 1", "shards: N"),
    );
}

mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Randomized small worlds: any (clients, sites, shards, crash
        /// schedule) combination executes identically sharded and not.
        #[test]
        fn sharding_invisible_over_random_worlds(
            (clients, sites, shards, crash_sift, crash_at_ms) in
                (1usize..10, 1usize..5, 2usize..8, proptest::bool::ANY, 600u64..2200),
        ) {
            let _serial = ENV_SERIAL.lock().unwrap_or_else(|e| e.into_inner());
            let cfg = |k: usize| {
                let kind = if crash_sift { ServiceKind::Sift } else { ServiceKind::Primary };
                sited(base_cfg(clients), sites, k, true)
                    .with_duration(SimDuration::from_millis(2500))
                    .with_warmup(SimDuration::from_millis(500))
                    .with_failure(SimDuration::from_millis(crash_at_ms), kind, 0)
            };
            let r1 = run_experiment(cfg(1));
            let rk = run_experiment(cfg(shards));
            let strip = |r: &scatter::RunReport| {
                let from = format!("shards: {}", r.scale.as_ref().unwrap().shards);
                format!("{r:?}").replace(&from, "shards: X")
            };
            prop_assert_eq!(r1.events_executed, rk.events_executed);
            prop_assert_eq!(strip(&r1), strip(&rk));
        }
    }
}
