//! The inter-service frame message and the pipeline's service taxonomy.
//!
//! The paper lists the intermediary fields explicitly: "client ID, frame
//! number, client's IP address and port number, and the current pipeline
//! step — allowing us to map multiple client inputs to the same service
//! instance". [`FrameMsg`] carries exactly those, plus the measurement
//! timestamps and the sticky `sift` replica binding that the stateful
//! fetch path needs.

use serde::{Deserialize, Serialize};
use simcore::SimTime;
use simnet::NodeId;

/// The five pipeline services, in pipeline order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ServiceKind {
    /// Pre-processing: grayscale + dimension reduction. CPU-only.
    Primary,
    /// Feature detection and extraction (SIFT). Stateful in scAtteR.
    Sift,
    /// PCA + Fisher encoding.
    Encoding,
    /// LSH nearest-neighbour tables.
    Lsh,
    /// Feature matching + pose estimation + tracking.
    Matching,
}

/// Pipeline order of the services.
pub const SERVICE_KINDS: [ServiceKind; 5] = [
    ServiceKind::Primary,
    ServiceKind::Sift,
    ServiceKind::Encoding,
    ServiceKind::Lsh,
    ServiceKind::Matching,
];

/// Canonical lowercase names, used in placement specs and reports.
pub const SERVICE_NAMES: [&str; 5] = ["primary", "sift", "encoding", "lsh", "matching"];

impl ServiceKind {
    pub fn name(self) -> &'static str {
        SERVICE_NAMES[self.index()]
    }

    pub fn index(self) -> usize {
        match self {
            ServiceKind::Primary => 0,
            ServiceKind::Sift => 1,
            ServiceKind::Encoding => 2,
            ServiceKind::Lsh => 3,
            ServiceKind::Matching => 4,
        }
    }

    pub fn from_index(i: usize) -> ServiceKind {
        SERVICE_KINDS[i]
    }

    /// Next service in pipeline order (`None` after `matching`).
    pub fn next(self) -> Option<ServiceKind> {
        let i = self.index();
        if i + 1 < SERVICE_KINDS.len() {
            Some(SERVICE_KINDS[i + 1])
        } else {
            None
        }
    }

    /// All services but `primary` run on the GPU (§3.1).
    pub fn needs_gpu(self) -> bool {
        self != ServiceKind::Primary
    }
}

/// A frame (or its descriptor representation) travelling the pipeline.
#[derive(Debug, Clone)]
pub struct FrameMsg {
    /// Originating client.
    pub client: usize,
    /// Frame sequence number within the client's stream.
    pub frame_no: u64,
    /// Client's return address (network node; the port is implied by the
    /// client index in the simulation).
    pub client_addr: NodeId,
    /// Instant the client emitted the frame — E2E latency and the
    /// scAtteR++ staleness filter both measure from here.
    pub emitted_at: SimTime,
    /// Pipeline step the message is currently bound for.
    pub step: ServiceKind,
    /// Current payload size in bytes (changes as the representation
    /// changes hop to hop; grows to ≈480 KB after stateless `sift`).
    pub payload_bytes: usize,
    /// Which `sift` replica processed this frame — `matching` must fetch
    /// the frame state from exactly that replica (scAtteR), and the
    /// balancer must honour the binding.
    pub sift_replica: Option<usize>,
    /// Accumulated per-stage wall time (accept → complete, including GPU
    /// wait and, for scAtteR matching, the fetch wait), ms, indexed by
    /// [`ServiceKind::index`]. With the sidecar queue wait below, the
    /// residual of E2E is pure network time — the latency breakdown.
    pub stage_compute_ms: [f64; 5],
    /// Accumulated sidecar queue wait per stage, ms.
    pub stage_queue_ms: [f64; 5],
    /// Causal trace context (sampled flag + ids). Defaults to unsampled;
    /// [`world`](crate::world) stamps it at emission when tracing is on.
    pub trace: trace::TraceCtx,
    /// Degradation-ladder rung the frame was captured at (0 = full
    /// resolution; ≥ [`crate::resilience::LADDER_DOWNSCALE`] means the
    /// client sent a pyramid-downscaled capture, shrinking both payload
    /// and GPU work).
    pub quality: u8,
    /// Which delivery attempt this is (0 = original emission; retries
    /// after a response deadline re-capture with `attempt + 1`). Keeps
    /// per-attempt trace identities distinct so frame conservation
    /// holds attempt by attempt.
    pub attempt: u8,
    /// The emulated network corrupted this datagram in flight (wire
    /// model only). A v2 ingress catches it by CRC and drops it as
    /// `InvalidCrc`; a v1 ingress never notices.
    pub corrupted: bool,
}

impl FrameMsg {
    /// A fresh frame leaving a client.
    pub fn new(
        client: usize,
        frame_no: u64,
        client_addr: NodeId,
        now: SimTime,
        bytes: usize,
    ) -> Self {
        FrameMsg {
            client,
            frame_no,
            client_addr,
            emitted_at: now,
            step: ServiceKind::Primary,
            payload_bytes: bytes,
            sift_replica: None,
            stage_compute_ms: [0.0; 5],
            stage_queue_ms: [0.0; 5],
            trace: trace::TraceCtx::unsampled(),
            quality: 0,
            attempt: 0,
            corrupted: false,
        }
    }

    /// Total time spent computing across stages, ms.
    pub fn total_compute_ms(&self) -> f64 {
        self.stage_compute_ms.iter().sum()
    }

    /// Total time spent queued in sidecars, ms.
    pub fn total_queue_ms(&self) -> f64 {
        self.stage_queue_ms.iter().sum()
    }

    /// Stable key identifying the frame across services.
    pub fn key(&self) -> (usize, u64) {
        (self.client, self.frame_no)
    }

    /// Frame age at `now` — what the sidecar threshold filter inspects.
    pub fn age(&self, now: SimTime) -> simcore::SimDuration {
        now.saturating_since(self.emitted_at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipeline_order() {
        assert_eq!(ServiceKind::Primary.next(), Some(ServiceKind::Sift));
        assert_eq!(ServiceKind::Sift.next(), Some(ServiceKind::Encoding));
        assert_eq!(ServiceKind::Matching.next(), None);
    }

    #[test]
    fn names_and_indices_round_trip() {
        for (i, k) in SERVICE_KINDS.iter().enumerate() {
            assert_eq!(k.index(), i);
            assert_eq!(ServiceKind::from_index(i), *k);
            assert_eq!(k.name(), SERVICE_NAMES[i]);
        }
    }

    #[test]
    fn only_primary_is_cpu_only() {
        assert!(!ServiceKind::Primary.needs_gpu());
        for k in &SERVICE_KINDS[1..] {
            assert!(k.needs_gpu());
        }
    }

    #[test]
    fn frame_age_measures_from_emission() {
        let m = FrameMsg::new(0, 1, NodeId(0), SimTime::from_millis(100), 1000);
        assert_eq!(m.age(SimTime::from_millis(160)).as_millis(), 60);
        assert_eq!(m.key(), (0, 1));
        // Age never negative even if clocks disagree.
        assert_eq!(m.age(SimTime::from_millis(50)).as_millis(), 0);
    }
}
