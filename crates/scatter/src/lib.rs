//! # scatter — the paper's contribution: scAtteR and scAtteR++
//!
//! scAtteR (§3.1) is a distributed stream-processing AR pipeline of five
//! containerized microservices:
//!
//! ```text
//! client ──► primary ──► sift ──► encoding ──► lsh ──► matching ──► client
//!                         ▲                               │
//!                         └──────── feature fetch ────────┘   (scAtteR only)
//! ```
//!
//! `sift` is stateful: it keeps each frame's extracted features in memory
//! until `matching` fetches them for pose estimation — the dependency loop
//! the paper identifies as the scalability bottleneck. Every service
//! processes one frame at a time and *drops* requests that arrive while it
//! is busy.
//!
//! scAtteR++ (§5) applies the paper's recommendations: `sift` becomes
//! stateless by embedding the feature state in the forwarded frame
//! (≈180 KB → ≈480 KB), and a sidecar attaches to each service ingress to
//! queue, filter (100 ms staleness threshold), and meter requests.
//!
//! Two execution substrates share this crate's service semantics:
//!
//! - [`world`]: the deterministic discrete-event simulation of the
//!   paper's testbed (used by every experiment/figure reproduction);
//! - [`runtime`]: a real-threads, real-`UdpSocket` loopback deployment
//!   whose services run the actual `vision` compute — demonstrating the
//!   pipeline's data plane end-to-end on one host.

pub mod autoscale;
pub mod client;
pub mod config;
pub mod costmodel;
pub mod gpu;
pub mod message;
pub mod obs;
pub mod report;
pub mod resilience;
pub mod runtime;
pub mod service;
pub mod sidecar;
pub mod wirev2;
pub mod world;

pub use config::{Mode, RunConfig, ScaleConfig};
pub use costmodel::CostModel;
pub use message::{FrameMsg, ServiceKind, SERVICE_KINDS, SERVICE_NAMES};
pub use obs::DesTelemetry;
pub use report::RunReport;
pub use world::{
    run_experiment, run_experiment_observed, run_experiment_observed_with,
    run_experiment_telemetered, run_experiment_telemetered_observed, run_experiment_traced,
    run_experiment_traced_with, run_experiment_with, ObsArtifacts,
};
