//! The five services as socket-driven threads running real CV compute.

use std::collections::HashMap;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use bytes::Bytes;
use simcore::SimRng;
use vision::keypoints::DetectorParams;
use vision::pose_filter::PoseFilter;
use vision::tracking::TrackTable;
use vision::ReferenceDb;

use crate::message::ServiceKind;
use crate::obs::RtSvcObs;
use crate::runtime::batch::RecvBatch;
use crate::runtime::impair::RtSocket;
use crate::runtime::wire::{
    self, decode_frame, decode_state, encode_frame, encode_result, encode_state, FrameKey,
    FrameState, Reassembler, WireError, WireMsg,
};
use crate::wirev2::{self, DeltaRx, FrameKind, IngestError, RxState, UplinkPolicy};

/// Runtime-plane wire protocol selection, shared by every socket in a
/// deployment (all sockets of one deployment speak the same dialect;
/// receivers stay bilingual regardless).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct WireRtConfig {
    /// Frame v2 envelopes (CRC + codec + delta) on every message send.
    /// Off (the default) is byte-for-byte the v1 runtime.
    pub v2: bool,
    /// Client uplink shaping (delta/keyframe cadence, compression).
    /// `policy.compress` also governs inter-service sends.
    pub policy: UplinkPolicy,
}

/// Shared read-only context: the trained recognition artifacts.
pub struct SharedCtx {
    pub db: ReferenceDb,
    /// Dimension-reduction factor applied by `primary`.
    pub reduce: f32,
    /// Cap on descriptors carried in the frame state (bounds datagrams).
    pub max_descriptors: usize,
    /// Staleness threshold in ms (the sidecar filter); 0 disables.
    pub threshold_ms: f64,
    /// Deployment epoch for timestamping.
    pub epoch: Instant,
    /// Wire dialect every service (and client) sends with.
    pub wire: WireRtConfig,
    /// Always-on sampled self-profiler shared by every service thread
    /// (1-in-64 clock pairs on the unsampled path cost one relaxed
    /// fetch_add — cheap enough to never be optional).
    pub prof: observatory::AtomicPhaseProf,
}

/// Runtime self-profiler phases (see [`SharedCtx::prof`]): the per-stage
/// CV compute and the datagram send path.
pub const RT_PHASES: &[&str] = &["compute", "net-send"];
pub(crate) const PH_RT_COMPUTE: usize = 0;
pub(crate) const PH_RT_SEND: usize = 1;
/// Default sampling shift for the runtime profiler (1 in 64).
pub(crate) const RT_PROF_SHIFT: u32 = 6;

/// Per-service counters, shared with the deployment for reporting.
#[derive(Debug, Default)]
pub struct SvcStats {
    pub received: AtomicU64,
    pub processed: AtomicU64,
    pub dropped_stale: AtomicU64,
    /// Frames the reassembler gave up on (lost a fragment): capacity
    /// evictions plus age-based sweeps.
    pub dropped_fragment: AtomicU64,
    /// Frames lost to a replica crash (half-reassembled state that died
    /// with the thread + arrivals at the dead socket during recovery).
    pub dropped_crash: AtomicU64,
    /// Stateful `matching`: frames that completed reassembly during a
    /// fetch-wait but overflowed the parked queue.
    pub dropped_busy: AtomicU64,
    pub send_errors: AtomicU64,
    /// Datagrams rejected by [`wire::decode_fragment`] — malformed or
    /// foreign traffic, counted instead of crashing the service.
    pub malformed: AtomicU64,
    /// Real (non-WouldBlock/TimedOut) receive-path socket errors.
    pub io_errors: AtomicU64,
    /// Frame messages eaten whole by the impairment shim, attributed at
    /// this sender (the runtime mirror of the DES netem loss counters).
    pub net_dropped: AtomicU64,
    /// Stateful `matching`: fetch-request retransmissions.
    pub fetch_retransmits: AtomicU64,
    /// Times this replica was killed by fault injection.
    pub kills: AtomicU64,
    /// Stateful `matching`: late fetch responses that arrived after
    /// their fetch-wait had already given up (recognized by the CTRL
    /// wire flag instead of being mistaken for frame traffic).
    pub late_fetch_rsp: AtomicU64,
    /// `matching` only: live object tracks across all clients.
    pub tracks_active: AtomicU64,
    /// `matching` only: tracks retired after going unobserved.
    pub tracks_retired: AtomicU64,
    /// v2 datagrams rejected by their CRC check (corrupted in flight).
    pub invalid_crc: AtomicU64,
    /// v2 delta frames dropped because their keyframe anchor was
    /// unavailable (self-synchronizing resync, never a bad splice).
    pub delta_resync: AtomicU64,
    /// Datagram bytes offered at this socket's send sites (counted
    /// before the impairment shim's verdict — the same "offered at the
    /// send site" definition the DES uses, which is what makes the
    /// cross-plane bytes-on-wire gate exact).
    pub bytes_sent: AtomicU64,
}

/// Crash-injection cell shared between a replica's thread, its runner,
/// and the deployment. The thread snapshots `generation` at spawn and
/// exits as soon as the live value differs — the runtime analogue of
/// the DES `generation` bump in `crash_instance`, which voids all of
/// the replica's in-memory state.
#[derive(Debug, Default)]
pub struct FaultCell {
    pub generation: AtomicU64,
}

impl FaultCell {
    pub fn current(&self) -> u64 {
        self.generation.load(Ordering::Relaxed)
    }
}

/// What a service thread leaves behind when it exits: the identities of
/// frames whose in-memory state died with it (`(client, frame_no,
/// flags)`), for the supervisor to attribute as crash drops. Empty on a
/// clean shutdown.
#[derive(Debug, Default)]
pub struct ExitReport {
    pub lost_frames: Vec<FrameKey>,
}

/// One service's wiring: its socket, where its output goes, and (for
/// `matching`) where results return to.
pub struct ServiceWiring {
    pub kind: ServiceKind,
    pub socket: RtSocket,
    pub next: SocketAddr,
}

/// How a whole message fared against the impairment shim.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendOutcome {
    /// At least one fragment reached the wire — the receiver owns any
    /// further attribution (partial loss ages out of its reassembler).
    Delivered,
    /// The shim ate *every* fragment: the receiver can never know this
    /// message existed, so the SENDER must attribute the loss.
    AllShimDropped { frags: usize },
}

/// Ship a message as fragments; errors are counted, not fatal (UDP).
pub fn send_msg(socket: &RtSocket, to: SocketAddr, msg: &WireMsg, stats: &SvcStats) -> SendOutcome {
    send_msg_obs(socket, to, msg, stats, None)
}

/// [`send_msg`] with an optional telemetry handle so `send_errors`
/// increments in both planes at the same program point.
pub fn send_msg_obs(
    socket: &RtSocket,
    to: SocketAddr,
    msg: &WireMsg,
    stats: &SvcStats,
    obs: Option<&RtSvcObs>,
) -> SendOutcome {
    send_datagrams(socket, to, &wire::encode(msg), stats, obs)
}

/// Ship a message under the deployment's wire dialect: v2 envelopes
/// (with `kind`/`base_frame_no` and the configured codec) when the
/// config says so, bare v1 fragments otherwise. Non-frame hops pass
/// [`FrameKind::Plain`] and `base 0`.
#[allow(clippy::too_many_arguments)]
pub fn send_msg_wire(
    socket: &RtSocket,
    to: SocketAddr,
    msg: &WireMsg,
    wire_cfg: &WireRtConfig,
    kind: FrameKind,
    base_frame_no: u32,
    stats: &SvcStats,
    obs: Option<&RtSvcObs>,
) -> SendOutcome {
    if wire_cfg.v2 {
        let (dgrams, _codec) =
            wirev2::encode_msg(msg, wire_cfg.policy.compress, kind, base_frame_no);
        send_datagrams(socket, to, &dgrams, stats, obs)
    } else {
        send_msg_obs(socket, to, msg, stats, obs)
    }
}

/// The one place datagrams meet the socket: per-datagram send-error
/// accounting and offered-bytes counting (see [`SvcStats::bytes_sent`]).
/// On a batch-enabled socket, multi-fragment messages ship runs of
/// shim-passed datagrams through one `sendmmsg`; accounting is
/// per-datagram either way.
fn send_datagrams(
    socket: &RtSocket,
    to: SocketAddr,
    datagrams: &[Bytes],
    stats: &SvcStats,
    obs: Option<&RtSvcObs>,
) -> SendOutcome {
    let frags = datagrams.len();
    for frame in datagrams {
        stats
            .bytes_sent
            .fetch_add(frame.len() as u64, Ordering::Relaxed);
    }
    let rep = socket.send_many(datagrams, to);
    if rep.errors > 0 {
        stats
            .send_errors
            .fetch_add(rep.errors as u64, Ordering::Relaxed);
        if let Some(o) = obs {
            for _ in 0..rep.errors {
                o.send_errors.inc();
            }
        }
    }
    if frags > 0 && rep.shim_dropped == frags {
        SendOutcome::AllShimDropped { frags }
    } else {
        SendOutcome::Delivered
    }
}

/// Sender-side attribution when the shim ate a *frame* message whole:
/// the runtime mirror of the DES's `net_loss_reason` split (single
/// fragment → netem loss, multi-fragment → fragment loss). Control
/// traffic (fetch req/rsp) must NOT go through here — its loss is
/// recovered by retransmit or surfaces as a stale fetch.
pub fn attribute_net_drop(
    outcome: SendOutcome,
    tctx: trace::TraceCtx,
    at_ns: u64,
    tracer: &trace::ThreadTracer,
    stats: &SvcStats,
    obs: Option<&RtSvcObs>,
) {
    let SendOutcome::AllShimDropped { frags } = outcome else {
        return;
    };
    stats.net_dropped.fetch_add(1, Ordering::Relaxed);
    let reason = if frags > 1 {
        trace::DropReason::FragmentLoss
    } else {
        trace::DropReason::NetemLoss
    };
    tracer.terminal(tctx, at_ns, trace::FrameFate::Dropped(reason));
    if let Some(o) = obs {
        match reason {
            trace::DropReason::FragmentLoss => o.net_drop_fragment.inc(),
            _ => o.net_drop_netem.inc(),
        }
    }
}

/// Count (and, when the corrupted datagram's inner identity survived,
/// attribute) a datagram rejected by [`RxState::ingest`]. A corrupt
/// fragment of a *multi-fragment* message is instead attributed by
/// reassembly eviction (`FragmentLoss`) — it IS a lost fragment; CTRL
/// traffic never gets a frame terminal (its loss is recovered by
/// retransmit or surfaces as a stale fetch).
pub fn attribute_ingest_error(
    err: IngestError,
    epoch: Instant,
    tracer: &trace::ThreadTracer,
    stats: &SvcStats,
    obs: Option<&RtSvcObs>,
) {
    match err {
        IngestError::InvalidCrc { recovered } => {
            stats.invalid_crc.fetch_add(1, Ordering::Relaxed);
            if let Some(o) = obs {
                o.invalid_crc.inc();
            }
            if let Some(id) = recovered {
                if id.single_fragment && id.flags & wire::FLAG_CTRL == 0 {
                    let tctx = trace::TraceCtx::new(
                        id.client,
                        id.frame_no,
                        id.flags & wire::FLAG_SAMPLED != 0,
                    );
                    tracer.terminal(
                        tctx,
                        epoch_ns(epoch),
                        trace::FrameFate::Dropped(trace::DropReason::InvalidCrc),
                    );
                }
            }
        }
        IngestError::Malformed(_) => {
            stats.malformed.fetch_add(1, Ordering::Relaxed);
            if let Some(o) = obs {
                o.malformed.inc();
            }
        }
    }
}

/// Classify a receive-path error: `true` = "no data yet — retry now"
/// (WouldBlock / TimedOut, plus EINTR: a signal cut the syscall short,
/// e.g. a profiler's SIGPROF, and the only correct move is to reissue
/// it immediately), `false` = a real socket error the caller must
/// count. Previously every error was treated as the former, which both
/// hid real faults and hot-spun on them; later EINTR landed in the
/// *latter* bucket, so any signal-heavy environment charged a bogus
/// io_error plus a 1 ms penalty sleep per interrupt — silently
/// collapsing throughput under sampling profilers.
pub fn is_would_block(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::WouldBlock
            | std::io::ErrorKind::TimedOut
            | std::io::ErrorKind::Interrupted
    )
}

/// How long a partial message may sit in a reassembler before the
/// age-based sweep gives up on it. Far beyond any healthy reassembly
/// window (fragments of one message arrive back-to-back on loopback),
/// far below a run's drain period — so a frame that lost a fragment is
/// attributed before the run ends even when no later traffic pushes it
/// out by capacity.
pub const REASM_MAX_AGE: Duration = Duration::from_millis(1000);

/// Sweep aged partial messages and attribute every eviction (capacity
/// or age) exactly once: `FragmentLoss` terminal + per-service counter.
pub fn attribute_evictions(
    reassembler: &mut Reassembler,
    epoch: Instant,
    tracer: &trace::ThreadTracer,
    stats: &SvcStats,
    obs: Option<&RtSvcObs>,
) {
    reassembler.sweep(REASM_MAX_AGE);
    let at_ns = epoch_ns(epoch);
    for key in reassembler.drain_evicted() {
        stats.dropped_fragment.fetch_add(1, Ordering::Relaxed);
        tracer.terminal(
            key.trace_ctx(),
            at_ns,
            trace::FrameFate::Dropped(trace::DropReason::FragmentLoss),
        );
        if let Some(o) = obs {
            o.drop_fragment.inc();
        }
    }
}

/// Nanoseconds since the deployment epoch (the runtime trace clock).
pub fn epoch_ns(epoch: Instant) -> u64 {
    epoch.elapsed().as_nanos() as u64
}

/// Service main loop: receive → reassemble → filter → compute → forward.
///
/// Exits when `shutdown` is raised *or* the [`FaultCell`] generation
/// moves past the snapshot this thread was spawned with (a kill). The
/// returned [`ExitReport`] names the frames whose in-memory state died
/// here so the supervisor can attribute them.
#[allow(clippy::too_many_arguments)]
pub fn run_service(
    wiring: ServiceWiring,
    ctx: Arc<SharedCtx>,
    stats: Arc<SvcStats>,
    shutdown: Arc<AtomicBool>,
    fault: Arc<FaultCell>,
    my_gen: u64,
    rng_seed: u64,
    tracer: trace::ThreadTracer,
    track: trace::TrackId,
    obs: Option<RtSvcObs>,
) -> ExitReport {
    let ServiceWiring { kind, socket, next } = wiring;
    let stage = kind.index() as u8;
    socket
        .set_read_timeout(Some(Duration::from_millis(20)))
        .expect("set_read_timeout");
    let mut reassembler = Reassembler::new();
    let mut rx = RxState::new();
    let mut rng = SimRng::new(rng_seed);
    // One wakeup drains up to a whole batch of datagrams (a single
    // recvmmsg on a batch-enabled socket; exactly one recv_from
    // otherwise — the bit-compatible legacy path).
    let mut batch = RecvBatch::new(socket.batched());
    // matching keeps per-client track tables: the "(ii) tracking them
    // across multiple frames" half of the pipeline's core operation —
    // plus a per-track pose filter that smooths the rendered overlay.
    let mut tracks: HashMap<u16, TrackTable> = HashMap::new();
    let mut filters: HashMap<(u16, u64), PoseFilter> = HashMap::new();
    // primary only: per-client delta anchor stores. A crash loses them
    // with the thread — the respawned replica resyncs on the next
    // keyframe (deltas until then drop counted, never mis-splice).
    let mut delta_rx: HashMap<u16, DeltaRx> = HashMap::new();
    while !shutdown.load(Ordering::Relaxed) && fault.current() == my_gen {
        if let Err(e) = socket.recv_batch(&mut batch) {
            if is_would_block(&e) {
                // Quiet socket: still age out (and attribute) partial
                // messages that will never complete.
                attribute_evictions(&mut reassembler, ctx.epoch, &tracer, &stats, obs.as_ref());
            } else {
                stats.io_errors.fetch_add(1, Ordering::Relaxed);
                if let Some(o) = &obs {
                    o.io_errors.inc();
                }
                std::thread::sleep(Duration::from_millis(1));
            }
            continue;
        }
        for dgram in batch.iter() {
            let frag = match rx.ingest(dgram) {
                Ok(frag) => frag,
                Err(e) => {
                    attribute_ingest_error(e, ctx.epoch, &tracer, &stats, obs.as_ref());
                    continue;
                }
            };
            let completed = reassembler.offer(frag);
            // Attribute frames the reassembler gave up on (lost fragment).
            attribute_evictions(&mut reassembler, ctx.epoch, &tracer, &stats, obs.as_ref());
            if let Some(o) = &obs {
                o.reassembly_pending.set(reassembler.pending_count() as f64);
            }
            let Some(msg) = completed else {
                continue;
            };
            // Post-reassembly v2 reconstruction: decompression first …
            let (mut msg, meta) = match rx.finish(msg) {
                Ok(x) => x,
                Err(_) => {
                    stats.malformed.fetch_add(1, Ordering::Relaxed);
                    if let Some(o) = &obs {
                        o.malformed.inc();
                    }
                    continue;
                }
            };
            stats.received.fetch_add(1, Ordering::Relaxed);
            if let Some(o) = &obs {
                o.ingress.inc();
            }
            let tctx = msg.trace_ctx();
            let recv_ns = epoch_ns(ctx.epoch);
            // Previous hop's send → this service's reassembled receive:
            // loopback transit plus socket buffer wait.
            tracer.span(
                tctx,
                track,
                stage,
                trace::Phase::IngressQueue,
                (msg.sent_micros * 1_000).min(recv_ns),
                recv_ns,
            );
            // … then delta reconstruction (primary's uplink only): splice
            // the delta onto its keyframe anchor, or drop for resync when
            // the anchor is gone. The reconstructed payload is byte-equal
            // to the full stream the client would have sent.
            if kind == ServiceKind::Primary && meta.kind != FrameKind::Plain {
                match delta_rx.entry(msg.client).or_default().accept_frame(
                    meta.kind,
                    meta.base_frame_no,
                    msg.frame_no,
                    msg.payload.clone(),
                ) {
                    Some(full) => msg.payload = full,
                    None => {
                        stats.delta_resync.fetch_add(1, Ordering::Relaxed);
                        if let Some(o) = &obs {
                            o.delta_resync.inc();
                        }
                        tracer.terminal(
                            tctx,
                            epoch_ns(ctx.epoch),
                            trace::FrameFate::Dropped(trace::DropReason::DeltaResync),
                        );
                        continue;
                    }
                }
            }
            // Sidecar staleness filter: do not spend compute on frames that
            // can no longer meet the latency budget.
            if ctx.threshold_ms > 0.0 && msg.age_ms(ctx.epoch) > ctx.threshold_ms {
                stats.dropped_stale.fetch_add(1, Ordering::Relaxed);
                if let Some(o) = &obs {
                    o.drop_stale.inc();
                }
                tracer.terminal(
                    tctx,
                    epoch_ns(ctx.epoch),
                    trace::FrameFate::Dropped(trace::DropReason::ThresholdFilter),
                );
                continue;
            }
            let pt = ctx.prof.enter(PH_RT_COMPUTE);
            let out = process(kind, &msg, &ctx, &mut rng, &mut tracks, &mut filters);
            ctx.prof.exit(PH_RT_COMPUTE, pt);
            let out = match out {
                Ok(out) => Some(out),
                Err(_) => {
                    // Payload decoded fine at the wire layer but failed the
                    // stage's typed decode: counted like any malformed input.
                    stats.malformed.fetch_add(1, Ordering::Relaxed);
                    if let Some(o) = &obs {
                        o.malformed.inc();
                    }
                    None
                }
            };
            if let Some(out) = out {
                let done_ns = epoch_ns(ctx.epoch);
                tracer.span(tctx, track, stage, trace::Phase::Compute, recv_ns, done_ns);
                let fwd = WireMsg {
                    client: msg.client,
                    frame_no: msg.frame_no,
                    step: kind.next().unwrap_or(ServiceKind::Primary),
                    emit_micros: msg.emit_micros,
                    return_port: msg.return_port,
                    trace_id: msg.trace_id,
                    flags: msg.flags,
                    // Re-stamped per hop: the next service's ingress-queue
                    // span starts where this compute span ends. Rounded
                    // *up* so the truncated stamp can never precede this
                    // hop's span end (the trace overlap invariant).
                    sent_micros: done_ns.div_ceil(1_000),
                    payload: out,
                };
                stats.processed.fetch_add(1, Ordering::Relaxed);
                if let Some(o) = &obs {
                    o.processed.inc();
                    o.latency_ms
                        .record(done_ns.saturating_sub(recv_ns) as f64 / 1e6);
                }
                // matching delivers to the frame's own return address.
                let next = if kind == ServiceKind::Matching {
                    SocketAddr::from(([127, 0, 0, 1], msg.return_port))
                } else {
                    next
                };
                if kind == ServiceKind::Matching {
                    stats.tracks_active.store(
                        tracks.values().map(|t| t.len() as u64).sum(),
                        Ordering::Relaxed,
                    );
                    stats
                        .tracks_retired
                        .store(tracks.values().map(|t| t.retired).sum(), Ordering::Relaxed);
                }
                let pt = ctx.prof.enter(PH_RT_SEND);
                let outcome = send_msg_wire(
                    &socket,
                    next,
                    &fwd,
                    &ctx.wire,
                    FrameKind::Plain,
                    0,
                    &stats,
                    obs.as_ref(),
                );
                ctx.prof.exit(PH_RT_SEND, pt);
                attribute_net_drop(
                    outcome,
                    tctx,
                    epoch_ns(ctx.epoch),
                    &tracer,
                    &stats,
                    obs.as_ref(),
                );
            }
        }
    }
    ExitReport {
        lost_frames: reassembler.pending_keys(),
    }
}

/// The actual per-stage computation, on real pixels and descriptors.
fn process(
    kind: ServiceKind,
    msg: &WireMsg,
    ctx: &SharedCtx,
    rng: &mut SimRng,
    tracks: &mut HashMap<u16, TrackTable>,
    filters: &mut HashMap<(u16, u64), PoseFilter>,
) -> Result<Bytes, WireError> {
    match kind {
        ServiceKind::Primary => {
            // The client uplink is DCT-compressed; primary decodes it,
            // grayscales (implicit) and dimension-reduces, forwarding
            // *raw* pixels — the compressed-vs-raw asymmetry that makes
            // fig. 11's hybrid split expensive.
            let img = vision::codec::decode(msg.payload.clone()).ok_or(WireError::PayloadValue)?;
            let w = ((img.width() as f32 * ctx.reduce) as usize).max(16);
            let h = ((img.height() as f32 * ctx.reduce) as usize).max(16);
            Ok(encode_frame(&img.resize(w, h)))
        }
        ServiceKind::Sift => {
            let img = decode_frame(msg.payload.clone())?;
            let (pyr, kps) = vision::keypoints::detect(&img, &DetectorParams::default());
            let mut descriptors = vision::descriptor::describe_all(&pyr, &kps);
            descriptors.truncate(ctx.max_descriptors);
            // Stateless sift: the descriptors travel IN the frame.
            Ok(encode_state(&FrameState {
                descriptors,
                fisher: Vec::new(),
                candidates: Vec::new(),
            }))
        }
        ServiceKind::Encoding => {
            let mut state = decode_state(msg.payload.clone())?;
            let fisher = ctx.db.encode_frame(&state.descriptors);
            state.fisher = fisher.iter().map(|&v| v as f32).collect();
            Ok(encode_state(&state))
        }
        ServiceKind::Lsh => {
            let mut state = decode_state(msg.payload.clone())?;
            let fisher: Vec<f64> = state.fisher.iter().map(|&v| v as f64).collect();
            state.candidates = ctx
                .db
                .lsh_candidates(&fisher, 2)
                .into_iter()
                .map(|(idx, _)| idx as u32)
                .collect();
            Ok(encode_state(&state))
        }
        ServiceKind::Matching => {
            let state = decode_state(msg.payload.clone())?;
            let mut observations = Vec::new();
            for &cand in &state.candidates {
                if let Some(rec) = ctx
                    .db
                    .match_object(cand as usize, &state.descriptors, 0.0, rng)
                {
                    observations.push((rec.name, rec.pose));
                }
            }
            // Track association (stable identity) + per-track temporal
            // pose smoothing (stable rendering).
            let table = tracks.entry(msg.client).or_default();
            let track_ids = table.observe(msg.frame_no as u64, &observations);
            let recognitions: Vec<(String, [(f64, f64); 4])> = observations
                .into_iter()
                .zip(track_ids)
                .map(|((name, pose), track_id)| {
                    let filter = filters.entry((msg.client, track_id)).or_default();
                    let smoothed = filter.update(msg.frame_no as u64, &pose);
                    (name, smoothed.corners)
                })
                .collect();
            Ok(encode_result(&recognitions))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::SimRng;
    use vision::db::TrainParams;
    use vision::scene::SceneGenerator;

    fn ctx() -> SharedCtx {
        let scene = SceneGenerator::workplace_scaled(1, 256, 144);
        let mut rng = SimRng::new(7);
        SharedCtx {
            db: ReferenceDb::train(&scene, TrainParams::default(), &mut rng),
            reduce: 0.75,
            max_descriptors: 200,
            threshold_ms: 0.0,
            epoch: Instant::now(),
            wire: WireRtConfig::default(),
            prof: observatory::AtomicPhaseProf::new(RT_PHASES, RT_PROF_SHIFT),
        }
    }

    /// Drive a frame through all five `process` stages in-process — the
    /// data plane without sockets.
    #[test]
    fn full_pipeline_recognizes_objects() {
        let ctx = ctx();
        let scene = SceneGenerator::workplace_scaled(1, 256, 144);
        let mut payload = vision::codec::encode(&scene.frame(0), vision::codec::Quality(85));
        let mut rng = SimRng::new(9);
        let mut tracks = HashMap::new();
        for kind in crate::message::SERVICE_KINDS {
            let msg = WireMsg {
                client: 0,
                frame_no: 0,
                step: kind,
                emit_micros: 0,
                return_port: 0,
                trace_id: 0,
                flags: 0,
                sent_micros: 0,
                payload,
            };
            payload = process(kind, &msg, &ctx, &mut rng, &mut tracks, &mut HashMap::new())
                .expect("stage output");
        }
        let recs = wire::decode_result(payload).expect("result payload");
        assert!(!recs.is_empty(), "no objects recognized end-to-end");
        let names: Vec<_> = recs.iter().map(|(n, _)| n.as_str()).collect();
        assert!(
            names.contains(&"monitor") || names.contains(&"keyboard") || names.contains(&"table"),
            "unexpected names {names:?}"
        );
    }

    #[test]
    fn primary_reduces_dimensions() {
        let ctx = ctx();
        let scene = SceneGenerator::workplace_scaled(1, 256, 144);
        let msg = WireMsg {
            client: 0,
            frame_no: 0,
            step: ServiceKind::Primary,
            emit_micros: 0,
            return_port: 0,
            trace_id: 0,
            flags: 0,
            sent_micros: 0,
            payload: vision::codec::encode(&scene.frame(0), vision::codec::Quality(85)),
        };
        let out = process(
            ServiceKind::Primary,
            &msg,
            &ctx,
            &mut SimRng::new(1),
            &mut HashMap::new(),
            &mut HashMap::new(),
        )
        .unwrap();
        let img = decode_frame(out).unwrap();
        assert_eq!(img.width(), 192);
        assert_eq!(img.height(), 108);
    }

    /// Regression: EINTR must land in the quiet-socket bucket. Before
    /// the fix, `ErrorKind::Interrupted` fell through to the real-error
    /// arm, charging a bogus io_error plus a 1 ms penalty sleep per
    /// signal — collapsing throughput under sampling profilers.
    #[test]
    fn interrupted_recv_is_classified_as_would_block() {
        use std::io::{Error, ErrorKind};
        assert!(is_would_block(&Error::from(ErrorKind::Interrupted)));
        assert!(is_would_block(&Error::from(ErrorKind::WouldBlock)));
        assert!(is_would_block(&Error::from(ErrorKind::TimedOut)));
        assert!(!is_would_block(&Error::from(ErrorKind::ConnectionRefused)));
        // The raw-errno forms the syscalls actually produce.
        assert!(is_would_block(&Error::from_raw_os_error(4 /* EINTR */)));
        assert!(is_would_block(&Error::from_raw_os_error(11 /* EAGAIN */)));
    }

    #[test]
    fn corrupt_payload_yields_none() {
        let ctx = ctx();
        let msg = WireMsg {
            client: 0,
            frame_no: 0,
            step: ServiceKind::Sift,
            emit_micros: 0,
            return_port: 0,
            trace_id: 0,
            flags: 0,
            sent_micros: 0,
            payload: Bytes::from_static(b"not a frame"),
        };
        assert!(process(
            ServiceKind::Sift,
            &msg,
            &ctx,
            &mut SimRng::new(1),
            &mut HashMap::new(),
            &mut HashMap::new()
        )
        .is_err());
    }
}
