//! Local deployment of the real pipeline: five service threads on
//! loopback UDP sockets plus a paced client — with fault injection at
//! parity with the DES: a seeded impairment shim on every socket
//! ([`crate::runtime::impair`]) and replica kill/restart with
//! generation-stamped state loss ([`LocalDeployment::kill`], mirroring
//! the DES `crash_instance`).

use std::collections::{HashMap, HashSet};
use std::net::{SocketAddr, UdpSocket};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

use orchestra::{FailureDetector, InstanceId};

use simcore::SimRng;
use vision::db::TrainParams;
use vision::scene::SceneGenerator;
use vision::ReferenceDb;

use std::sync::atomic::AtomicU64;

use crate::message::{ServiceKind, SERVICE_KINDS};
use crate::obs::{RtClientObs, RtSvcObs};
use crate::runtime::batch;
use crate::runtime::impair::{Ep, ImpairedNet, ImpairmentProfile, RtSocket, SendDisposition};
use crate::runtime::services::{
    attribute_ingest_error, attribute_net_drop, is_would_block, run_service, send_msg_wire,
    ExitReport, FaultCell, ServiceWiring, SharedCtx, SvcStats, WireRtConfig, RT_PHASES,
    RT_PROF_SHIFT,
};
use crate::runtime::stateful::{run_stateful_matching, run_stateful_sift, StatefulOptions};
use crate::runtime::wire::{self, Reassembler, WireMsg};
use crate::wirev2::{self, predict, FrameKind, RxState, UplinkTx};

/// Options for a local run.
#[derive(Debug, Clone)]
pub struct RuntimeOptions {
    /// Concurrent clients (each streams its own camera).
    pub clients: u16,
    /// Frames each client streams.
    pub frames: u32,
    /// Client frame rate (Hz).
    pub fps: f64,
    /// Scene resolution (the 720p clip scaled down for CPU-only CV).
    pub width: usize,
    pub height: usize,
    /// Sidecar staleness threshold in ms (0 disables, like scAtteR).
    pub threshold_ms: f64,
    /// Run the scAtteR-baseline data plane: stateful `sift` with a real
    /// fetch round-trip from `matching` (see [`crate::runtime::stateful`]).
    pub stateful: bool,
    /// Fetch-loop tuning for the stateful plane (timeout, retransmit
    /// backoff, store TTL).
    pub stateful_opts: StatefulOptions,
    pub seed: u64,
    /// Extra time after the last frame to wait for in-flight results.
    pub drain: Duration,
    /// Per-frame causal tracing; `None` (default) is the near-zero-cost
    /// disabled mode. Same config type as the DES plane.
    pub trace: Option<trace::TraceConfig>,
    /// Live metrics registry; `None` (default) disables instrumentation
    /// (service threads skip every record call). When set, the running
    /// deployment can be scraped via [`LocalDeployment::scrape`].
    pub registry: Option<telemetry::Registry>,
    /// Deterministic, seeded network impairment applied at every
    /// socket's send site (`None` = pristine loopback, the default).
    pub impair: Option<ImpairmentProfile>,
    /// Fault schedule: `(at, service, recovery)` — `at` after the run
    /// starts, the replica is killed and respawned `recovery` later
    /// with all in-memory state lost (the runtime `crash_instance`).
    pub kills: Vec<(Duration, ServiceKind, Duration)>,
    /// Heartbeat failure detection: when set, every replica streams
    /// tiny UDP heartbeats *through the impairment shim* to a monitor
    /// thread that runs the same [`orchestra::FailureDetector`] math as
    /// the DES plane. `None` (default) spawns no extra threads.
    pub detection: Option<crate::resilience::DetectionConfig>,
    /// Wire dialect: v2 (CRC-sealed, optionally compressed,
    /// delta-encoded uplink) or the byte-identical v1 default.
    pub wire: WireRtConfig,
    /// UDP ingress shards per service: N `SO_REUSEPORT` sockets sharing
    /// one port, each drained by its own worker thread (the kernel
    /// steers every client's 4-tuple to a fixed shard, so per-client
    /// reassembly state stays shard-local). 1 (the default) is today's
    /// single-socket plane, bit-compatible. Hosts that can't shard
    /// (non-Linux, kernel refuses `SO_REUSEPORT`) degrade to 1; in
    /// stateful mode `sift` and `matching` are pinned to 1 shard
    /// because the fetch round-trip's 4-tuples would hash to shards
    /// that don't hold the store / the waiting frame.
    pub shards: usize,
    /// Drain a whole syscall batch (`recvmmsg`) per service wakeup and
    /// group consecutive pass-verdict fragments through one `sendmmsg`,
    /// instead of one datagram per syscall. `false` (the default) is
    /// the legacy single-datagram path, bit-compatible.
    pub batch: bool,
}

impl Default for RuntimeOptions {
    fn default() -> Self {
        RuntimeOptions {
            clients: 1,
            frames: 30,
            fps: 10.0,
            width: 256,
            height: 144,
            threshold_ms: 0.0,
            stateful: false,
            stateful_opts: StatefulOptions::default(),
            seed: 7,
            drain: Duration::from_millis(1500),
            trace: None,
            registry: None,
            impair: None,
            kills: Vec::new(),
            detection: None,
            wire: WireRtConfig::default(),
            shards: 1,
            batch: false,
        }
    }
}

/// Results of a local run.
#[derive(Debug)]
pub struct RuntimeReport {
    pub emitted: u32,
    pub completed: u32,
    pub mean_e2e_ms: f64,
    pub max_e2e_ms: f64,
    /// Recognized-object counts over all completed frames.
    pub recognitions: HashMap<String, u32>,
    /// Per-service (received, processed, dropped_stale).
    pub service_counts: Vec<(ServiceKind, u64, u64, u64)>,
    /// Live object tracks at shutdown (matching's track tables).
    pub tracks_active: u64,
    /// Per-client completions (index = client id).
    pub per_client_completed: Vec<u32>,
    /// Stateful mode: fetches that timed out at matching.
    pub fetch_failures: u64,
    /// Stateful mode: sift store entries at shutdown.
    pub sift_store_size: u64,
    /// Datagrams every service rejected as malformed (see
    /// [`crate::runtime::wire::WireError`]).
    pub malformed_datagrams: u64,
    /// Frames lost to replica crashes (state that died with a killed
    /// thread + arrivals at the dead socket during recovery).
    pub crash_drops: u64,
    /// Frames dropped because matching's parked queue overflowed
    /// during a fetch-wait.
    pub busy_drops: u64,
    /// Frame messages the impairment shim ate whole, attributed at the
    /// send site (services + clients).
    pub net_drops: u64,
    /// Frames whose reassembly gave up after partial fragment loss.
    pub fragment_drops: u64,
    /// Real receive-path socket errors (not WouldBlock/TimedOut).
    pub io_errors: u64,
    /// Heartbeat datagrams whose OS send failed (distinct from shim
    /// drops, which are the impairment plane's verdicts). Before the
    /// fix these were `let _ =` discarded, making a transient ENOBUFS
    /// indistinguishable from a real silence at the detector.
    pub hb_send_errors: u64,
    /// Delay-line datagrams (the reorder thread's deferred sends)
    /// whose OS send failed — previously discarded the same way.
    pub delay_send_errors: u64,
    /// Stateful mode: fetch-request retransmissions.
    pub fetch_retransmits: u64,
    /// Stateful mode: fetch responses that arrived after their wait
    /// expired (recognized by the CTRL flag, counted not swallowed).
    pub late_fetch_rsp: u64,
    /// Replica kills injected during the run.
    pub kills: u64,
    /// Detection plane: suspicions raised by the heartbeat monitor
    /// (0 when [`RuntimeOptions::detection`] is `None`).
    pub detections: u64,
    /// Respawns that happened *after* the detector had flagged the
    /// replica — the runtime analogue of the DES's detection-driven
    /// `redeploy_failed` count.
    pub redeploys: u64,
    /// Wall-clock detection latencies (take-down instant → suspicion),
    /// ms, one per detected crash.
    pub detection_latency_ms: Vec<f64>,
    /// Client uplink datagram bytes, counted at the send site before
    /// the impairment shim's verdict (all clients summed).
    pub uplink_bytes: u64,
    /// Datagram bytes offered at *every* send site (clients + services).
    pub bytes_on_wire: u64,
    /// v2 datagrams rejected by their CRC check across all receivers.
    pub invalid_crc: u64,
    /// v2 delta frames dropped for want of their keyframe anchor.
    pub delta_resyncs: u64,
    /// 95th-percentile end-to-end latency over completed frames, ms.
    pub p95_e2e_ms: f64,
    /// Flight-recorder dumps frozen by anomaly triggers during the run
    /// (kills and detector suspicions); empty on a quiet run. Unlike the
    /// DES plane's, these are real concurrent snapshots and make no
    /// byte-identity promise — the cross-plane gate compares counts.
    pub flight_dumps: Vec<observatory::FlightDump>,
    /// Always-on self-profiler totals across all service threads
    /// (per-stage compute + datagram send path).
    pub prof: observatory::ProfSnapshot,
}

impl RuntimeReport {
    pub fn success_rate(&self) -> f64 {
        if self.emitted == 0 {
            0.0
        } else {
            self.completed as f64 / self.emitted as f64
        }
    }

    pub fn mean_detection_latency_ms(&self) -> f64 {
        if self.detection_latency_ms.is_empty() {
            return 0.0;
        }
        self.detection_latency_ms.iter().sum::<f64>() / self.detection_latency_ms.len() as f64
    }
}

/// What one client's loop returns: `(emitted, completed, e2e samples,
/// recognition counts)`.
type ClientOutcome = (u32, u32, Vec<f64>, HashMap<String, u32>);

/// Heartbeat datagram: `[b'H', b'B', kind_index]`. Small enough that
/// the shim treats it like any other datagram (the point: a lossy link
/// delays detection in the runtime exactly as dropped heartbeat events
/// would in the DES).
const HB_MAGIC: [u8; 2] = [b'H', b'B'];

fn hb_datagram(kind: ServiceKind) -> [u8; 3] {
    [HB_MAGIC[0], HB_MAGIC[1], kind.index() as u8]
}

fn parse_hb(datagram: &[u8]) -> Option<ServiceKind> {
    if datagram.len() == 3 && datagram[..2] == HB_MAGIC && (datagram[2] as usize) < 5 {
        Some(ServiceKind::from_index(datagram[2] as usize))
    } else {
        None
    }
}

/// Where a replica's heartbeat thread reports to.
#[derive(Clone)]
struct HbSpec {
    monitor: SocketAddr,
    interval: Duration,
    net: Option<Arc<ImpairedNet>>,
    /// OS send failures across every heartbeat thread (shim drops are
    /// the impairment plane's and excluded). Surfaced on the report,
    /// the scrape, and the flight recorder.
    errors: Arc<AtomicU64>,
    flight: Arc<observatory::FlightRecorder>,
    epoch: Instant,
}

/// Everything needed to (re)spawn one service replica — the runtime
/// analogue of a container image plus its mounts. Cloned by the kill
/// supervisor to restart the service after the recovery delay.
#[derive(Clone)]
struct ReplicaRunner {
    kind: ServiceKind,
    /// Which `SO_REUSEPORT` shard of the service this worker drains
    /// (0 for the single-socket plane). Shard 0 owns the per-replica
    /// singletons: the heartbeat thread and the legacy seed/track
    /// derivations.
    shard: usize,
    socket: RtSocket,
    next: SocketAddr,
    sift_addr: SocketAddr,
    ctx: Arc<SharedCtx>,
    stats: Arc<SvcStats>,
    shutdown: Arc<AtomicBool>,
    fault: Arc<FaultCell>,
    seed: u64,
    stateful: bool,
    sopts: StatefulOptions,
    store_size: Arc<AtomicU64>,
    fetch_failures: Arc<AtomicU64>,
    tracer: trace::ThreadTracer,
    track: trace::TrackId,
    obs: Option<RtSvcObs>,
    /// Heartbeat reporting (None when detection is off).
    hb: Option<HbSpec>,
}

impl ReplicaRunner {
    /// Spawn the service thread at the fault cell's *current*
    /// generation. The thread exits (returning its [`ExitReport`]) as
    /// soon as the live generation moves past its snapshot. When the
    /// detection plane is on, a sibling heartbeat thread is spawned at
    /// the same generation: it streams `[H, B, kind]` datagrams through
    /// the impairment shim to the monitor and dies with its generation,
    /// so a killed replica falls silent within one interval.
    fn spawn(&self) -> std::thread::JoinHandle<ExitReport> {
        let r = self.clone();
        let my_gen = r.fault.current();
        if let Some(hb) = &self.hb {
            let hb = hb.clone();
            let kind = self.kind;
            let fault = self.fault.clone();
            let shutdown = self.shutdown.clone();
            std::thread::Builder::new()
                .name(format!("scatter-hb-{}", kind.name()))
                .spawn(move || {
                    let sock =
                        RtSocket::new(Arc::new(bind_loopback()), Ep::Svc(kind), hb.net.clone());
                    let beat = hb_datagram(kind);
                    while !shutdown.load(Ordering::Relaxed) && fault.current() == my_gen {
                        // Satellite fix: an OS send failure used to be
                        // discarded here, so a transient ENOBUFS read as
                        // replica silence at the detector with nothing to
                        // attribute it to. Count it and leave a flight
                        // record (shim drops stay the shim's business).
                        if sock.send_to(&beat, hb.monitor) == SendDisposition::Error {
                            hb.errors.fetch_add(1, Ordering::Relaxed);
                            hb.flight.record(
                                0,
                                hb.epoch.elapsed().as_nanos() as u64,
                                observatory::flight::KIND_SEND_ERR,
                                kind.index() as u64,
                                0,
                            );
                        }
                        std::thread::sleep(hb.interval);
                    }
                })
                .expect("spawn heartbeat thread");
        }
        let thread_name = if r.shard == 0 {
            format!("scatter-{}", r.kind.name())
        } else {
            format!("scatter-{}-s{}", r.kind.name(), r.shard)
        };
        std::thread::Builder::new()
            .name(thread_name)
            .spawn(move || {
                if r.stateful && r.kind == ServiceKind::Sift {
                    run_stateful_sift(
                        r.socket,
                        r.next,
                        r.ctx,
                        r.stats,
                        r.shutdown,
                        r.fault.clone(),
                        my_gen,
                        r.sopts,
                        r.store_size,
                        r.tracer,
                        r.track,
                        r.obs,
                    )
                } else if r.stateful && r.kind == ServiceKind::Matching {
                    run_stateful_matching(
                        r.socket,
                        r.sift_addr,
                        r.ctx,
                        r.stats,
                        r.shutdown,
                        r.fault.clone(),
                        my_gen,
                        r.sopts,
                        r.fetch_failures,
                        r.seed,
                        r.tracer,
                        r.track,
                        r.obs,
                    )
                } else {
                    run_service(
                        ServiceWiring {
                            kind: r.kind,
                            socket: r.socket,
                            next: r.next,
                        },
                        r.ctx,
                        r.stats,
                        r.shutdown,
                        r.fault.clone(),
                        my_gen,
                        r.seed,
                        r.tracer,
                        r.track,
                        r.obs,
                    )
                }
            })
            .expect("spawn service thread")
    }
}

/// The runtime detection plane: a monitor thread owning the heartbeat
/// socket and the same [`orchestra::FailureDetector`] the DES runs,
/// plus the accounting the report surfaces. Instance ids are stable
/// `InstanceId(kind.index())` — a respawned replica inherits the
/// identity, so its first heartbeat clears the suspicion.
struct DetectionPlane {
    /// Suspicions raised by the monitor.
    detections: Arc<AtomicU64>,
    /// Respawns that happened after a detection flagged the replica.
    redeploys: AtomicU64,
    /// take-down instant → suspicion instant, ms.
    latencies: Arc<Mutex<Vec<f64>>>,
    /// Crash instants recorded by [`LocalDeployment::take_down`],
    /// consumed by the monitor when the detector fires.
    crash_at: Arc<Mutex<[Option<Instant>; 5]>>,
    /// Kinds the detector has flagged since their last respawn;
    /// `bring_up` consumes the flag to count a detection-driven
    /// redeploy (parity with the DES `redeploy_failed` count).
    detected_down: Arc<Mutex<[bool; 5]>>,
    /// Detection events, for experiment drivers that want to sequence
    /// take-down → detection → bring-up ([`LocalDeployment::await_detection`]).
    events: Mutex<mpsc::Receiver<ServiceKind>>,
    monitor: Mutex<Option<std::thread::JoinHandle<()>>>,
}

/// A running local deployment.
pub struct LocalDeployment {
    /// One slot row per service, one slot per shard; `None` while a
    /// replica is down (killed and not yet respawned) or after
    /// shutdown joined it. A kill takes every shard of the service
    /// down together (they share one fault cell).
    #[allow(clippy::type_complexity)]
    handles: Mutex<Vec<Vec<Option<std::thread::JoinHandle<ExitReport>>>>>,
    /// `[service][shard]`, parallel to `handles` and `stats`.
    runners: Vec<Vec<ReplicaRunner>>,
    shutdown: Arc<AtomicBool>,
    /// Per-shard counters, merged wherever the deployment reports
    /// (scrape, report, shutdown counts) — shards never contend on one
    /// cache line during the run.
    stats: Vec<Vec<Arc<SvcStats>>>,
    client_stats: Arc<SvcStats>,
    client_socket: RtSocket,
    primary_addr: SocketAddr,
    ctx: Arc<SharedCtx>,
    scene: SceneGenerator,
    opts: RuntimeOptions,
    fetch_failures: Arc<AtomicU64>,
    sift_store_size: Arc<AtomicU64>,
    collector: trace::Collector,
    /// One trace track per client, registered up front.
    client_tracks: Vec<trace::TrackId>,
    /// Live metrics plane (when `opts.registry` was set).
    registry: Option<telemetry::Registry>,
    client_obs: Option<RtClientObs>,
    /// The impairment plane shared by every socket (None = pristine).
    net: Option<Arc<ImpairedNet>>,
    /// Heartbeat failure detection (None when `opts.detection` is off).
    detection: Option<DetectionPlane>,
    /// Always-on flight recorder (kills, drops, detections); dumps are
    /// frozen on anomaly triggers and surfaced in the report.
    flight: Arc<observatory::FlightRecorder>,
    /// Heartbeat OS send failures across every replica's hb thread.
    hb_send_errors: Arc<AtomicU64>,
}

fn bind_loopback() -> UdpSocket {
    UdpSocket::bind("127.0.0.1:0").expect("bind loopback socket")
}

/// Bind one service's shard set: `n` sockets sharing a single port via
/// `SO_REUSEPORT` (shard 0 lets the kernel pick the port, the rest
/// join it). Degrades to one plain socket when the host can't shard —
/// non-Linux builds, or a kernel that refuses the option — so a
/// sharded config still runs everywhere, just unsharded.
fn bind_shard_set(n: usize) -> Vec<Arc<UdpSocket>> {
    if n <= 1 {
        return vec![Arc::new(bind_loopback())];
    }
    let Ok(first) = batch::bind_reuseport(0) else {
        return vec![Arc::new(bind_loopback())];
    };
    let port = first.local_addr().expect("local addr").port();
    let mut set = vec![Arc::new(first)];
    for _ in 1..n {
        match batch::bind_reuseport(port) {
            Ok(s) => set.push(Arc::new(s)),
            Err(_) => {
                set.truncate(1);
                return set;
            }
        }
    }
    set
}

/// Token returned by [`LocalDeployment::take_down`]: the replica is
/// crashed and its socket dark until the token is redeemed with
/// [`LocalDeployment::bring_up`]. Carries the frames already
/// attributed so the drain window never double-counts.
pub struct DownReplica {
    kind: ServiceKind,
    seen: HashSet<(u16, u32)>,
}

impl DownReplica {
    pub fn kind(&self) -> ServiceKind {
        self.kind
    }
}

impl LocalDeployment {
    /// Train the recognition database and launch the five services.
    pub fn start(opts: RuntimeOptions) -> LocalDeployment {
        // Client 0's scene, via the shared derivation the DES predictor
        // uses (cid 0 reduces to the plain seed) — what anchors the
        // cross-plane bytes-on-wire gate to identical payloads.
        let scene = predict::client_scene(opts.seed, 0, opts.width, opts.height);
        let mut rng = SimRng::new(opts.seed);
        let db = ReferenceDb::train(&scene, TrainParams::default(), &mut rng);

        let net = opts.impair.clone().map(ImpairedNet::new);
        let client_socket = RtSocket::new(Arc::new(bind_loopback()), Ep::Client, net.clone());

        // One port per service (N `SO_REUSEPORT` shard sockets behind
        // it); wire each to its successor, matching back to the client.
        // Stateful mode pins sift and matching to one shard: the fetch
        // round-trip's request/response 4-tuples would hash to shards
        // that don't hold the store entry / the waiting frame.
        let client_addr = client_socket.local_addr().expect("local addr");
        let shard_sockets: Vec<Vec<Arc<UdpSocket>>> = SERVICE_KINDS
            .iter()
            .map(|&kind| {
                let pinned =
                    opts.stateful && matches!(kind, ServiceKind::Sift | ServiceKind::Matching);
                bind_shard_set(if pinned { 1 } else { opts.shards.max(1) })
            })
            .collect();
        let addrs: Vec<SocketAddr> = shard_sockets
            .iter()
            .map(|set| set[0].local_addr().expect("local addr"))
            .collect();
        let primary_addr = addrs[0];
        if let Some(n) = &net {
            for (i, addr) in addrs.iter().enumerate() {
                n.register_port(addr.port(), Ep::Svc(SERVICE_KINDS[i]));
            }
        }

        let ctx = Arc::new(SharedCtx {
            db,
            reduce: 0.75,
            max_descriptors: 200,
            threshold_ms: opts.threshold_ms,
            epoch: Instant::now(),
            wire: opts.wire,
            prof: observatory::AtomicPhaseProf::new(RT_PHASES, RT_PROF_SHIFT),
        });
        // Always-on flight recorder: ring 0 carries control-plane events
        // (kills, detections, revives), rings 1..=5 the per-service drop
        // history. ~60 KB fixed at the default capacity — cheap enough
        // to never be behind an option.
        let flight = Arc::new(observatory::FlightRecorder::new(
            1 + SERVICE_KINDS.len(),
            crate::world::env_flightrec().unwrap_or(256),
        ));
        // The delay line sends from its own thread; give it the flight
        // recorder so its send failures leave a record (satellite fix —
        // they were silently discarded).
        if let Some(n) = &net {
            n.attach_flight(flight.clone(), ctx.epoch);
        }
        let hb_send_errors = Arc::new(AtomicU64::new(0));
        let shutdown = Arc::new(AtomicBool::new(false));
        let fetch_failures = Arc::new(AtomicU64::new(0));
        let sift_store_size = Arc::new(AtomicU64::new(0));
        let sift_addr = addrs[1];

        // Detection plane: bind the monitor socket first so replicas
        // know where to report, then run the detector on its own
        // thread against the shared wall-clock epoch.
        let mut hb_spec = None;
        let detection = opts.detection.map(|dcfg| {
            let monitor_sock = bind_loopback();
            let monitor_addr = monitor_sock.local_addr().expect("monitor addr");
            monitor_sock
                .set_read_timeout(Some(Duration::from_millis(5)))
                .expect("monitor timeout");
            hb_spec = Some(HbSpec {
                monitor: monitor_addr,
                interval: Duration::from_secs_f64(dcfg.hb_interval.as_millis_f64() / 1e3),
                net: net.clone(),
                errors: hb_send_errors.clone(),
                flight: flight.clone(),
                epoch: ctx.epoch,
            });
            let detections = Arc::new(AtomicU64::new(0));
            let latencies = Arc::new(Mutex::new(Vec::new()));
            let crash_at: Arc<Mutex<[Option<Instant>; 5]>> = Arc::new(Mutex::new([None; 5]));
            let detected_down = Arc::new(Mutex::new([false; 5]));
            let (tx, rx) = mpsc::channel();
            let monitor = {
                let shutdown = shutdown.clone();
                let ctx = ctx.clone();
                let detections = detections.clone();
                let latencies = latencies.clone();
                let crash_at = crash_at.clone();
                let detected_down = detected_down.clone();
                let flight = flight.clone();
                std::thread::Builder::new()
                    .name("scatter-monitor".into())
                    .spawn(move || {
                        let mut det = FailureDetector::new(dcfg.detector());
                        let now_ms = ctx.epoch.elapsed().as_secs_f64() * 1e3;
                        for i in 0..5u32 {
                            det.register(InstanceId(i), now_ms);
                        }
                        let mut buf = [0u8; 64];
                        while !shutdown.load(Ordering::Relaxed) {
                            match monitor_sock.recv_from(&mut buf) {
                                Ok((n, _)) => {
                                    if let Some(kind) = parse_hb(&buf[..n]) {
                                        let now_ms = ctx.epoch.elapsed().as_secs_f64() * 1e3;
                                        det.heartbeat(InstanceId(kind.index() as u32), now_ms);
                                    }
                                }
                                Err(ref e) if is_would_block(e) => {}
                                Err(_) => std::thread::sleep(Duration::from_millis(1)),
                            }
                            let now_ms = ctx.epoch.elapsed().as_secs_f64() * 1e3;
                            for s in det.check(now_ms) {
                                let idx = s.instance.0 as usize;
                                detections.fetch_add(1, Ordering::Relaxed);
                                if let Some(at) =
                                    crash_at.lock().expect("crash_at lock")[idx].take()
                                {
                                    latencies
                                        .lock()
                                        .expect("latencies lock")
                                        .push(at.elapsed().as_secs_f64() * 1e3);
                                }
                                detected_down.lock().expect("detected lock")[idx] = true;
                                let now_ns = (now_ms * 1e6) as u64;
                                flight.record(
                                    0,
                                    now_ns,
                                    observatory::flight::KIND_DETECT,
                                    idx as u64,
                                    0,
                                );
                                flight.trigger(now_ns, "detect");
                                let _ = tx.send(ServiceKind::from_index(idx));
                            }
                        }
                    })
                    .expect("spawn monitor thread")
            };
            DetectionPlane {
                detections,
                redeploys: AtomicU64::new(0),
                latencies,
                crash_at,
                detected_down,
                events: Mutex::new(rx),
                monitor: Mutex::new(Some(monitor)),
            }
        });
        let mut collector = match opts.trace {
            Some(cfg) => trace::Collector::new(cfg),
            None => trace::Collector::disabled(),
        };
        let mut stats = Vec::new();
        let mut runners = Vec::new();
        let mut handles = Vec::new();
        for (i, socket_set) in shard_sockets.into_iter().enumerate() {
            let kind = SERVICE_KINDS[i];
            let next = if i + 1 < 5 { addrs[i + 1] } else { client_addr };
            // One fault cell per service: a kill takes every shard
            // worker down together, like crashing the whole container.
            let fault = Arc::new(FaultCell::default());
            let mut svc_stats = Vec::new();
            let mut svc_runners = Vec::new();
            let mut svc_handles = Vec::new();
            for (shard, socket) in socket_set.into_iter().enumerate() {
                let st = Arc::new(SvcStats::default());
                svc_stats.push(st.clone());
                // Shard 0 keeps the legacy seed and track-name
                // derivations so a one-shard deployment stays
                // bit-identical to the pre-shard plane.
                let seed = opts.seed ^ ((i as u64 + 1) * 0x9E37) ^ ((shard as u64) << 48);
                let track_name = if shard == 0 {
                    format!("{}#0", kind.name())
                } else {
                    format!("{}#0/s{shard}", kind.name())
                };
                let track = collector.register_track(track_name, "runtime-host");
                let tracer = collector.handle();
                // Telemetry handles are acquired once here (the only
                // lock), then every record on the service thread is
                // wait-free. Shards share labels, hence storage: the
                // registry merges their counts by construction.
                let obs = opts
                    .registry
                    .as_ref()
                    .map(|reg| RtSvcObs::new(reg, kind.name()));
                let runner = ReplicaRunner {
                    kind,
                    shard,
                    socket: RtSocket::new(socket, Ep::Svc(kind), net.clone())
                        .with_batch(opts.batch),
                    next,
                    sift_addr,
                    ctx: ctx.clone(),
                    stats: st,
                    shutdown: shutdown.clone(),
                    fault: fault.clone(),
                    seed,
                    stateful: opts.stateful,
                    sopts: opts.stateful_opts.clone(),
                    store_size: sift_store_size.clone(),
                    fetch_failures: fetch_failures.clone(),
                    tracer,
                    track,
                    obs,
                    // The heartbeat is per replica, not per shard.
                    hb: if shard == 0 { hb_spec.clone() } else { None },
                };
                svc_handles.push(Some(runner.spawn()));
                svc_runners.push(runner);
            }
            stats.push(svc_stats);
            runners.push(svc_runners);
            handles.push(svc_handles);
        }

        let client_tracks = (0..opts.clients)
            .map(|cid| collector.register_track(format!("client-{cid}"), "client-host"))
            .collect();
        let registry = opts.registry.clone();
        let client_obs = registry.as_ref().map(RtClientObs::new);

        LocalDeployment {
            handles: Mutex::new(handles),
            runners,
            shutdown,
            stats,
            client_stats: Arc::new(SvcStats::default()),
            client_socket,
            primary_addr,
            ctx,
            scene,
            opts,
            fetch_failures,
            sift_store_size,
            collector,
            client_tracks,
            registry,
            client_obs,
            net,
            detection,
            flight,
            hb_send_errors,
        }
    }

    /// Prometheus exposition of the live registry — the runtime's
    /// on-demand scrape endpoint (None when telemetry is disabled).
    pub fn scrape(&self) -> Option<String> {
        self.registry.as_ref().map(|reg| {
            // Send-failure counts owned by sockets without a service
            // stats block (heartbeat threads, the delay line) are
            // merged into the exposition at scrape time.
            let plane = telemetry::Labels::EMPTY.with_plane(crate::obs::RT_PLANE);
            reg.gauge(
                "scatter_hb_send_errors",
                "heartbeat datagrams whose OS send failed",
                plane.clone(),
            )
            .set(self.hb_send_errors.load(Ordering::Relaxed) as f64);
            reg.gauge(
                "scatter_delay_send_errors",
                "delay-line datagrams whose OS send failed",
                plane,
            )
            .set(
                self.net
                    .as_ref()
                    .map(|n| n.delay_send_errors())
                    .unwrap_or(0) as f64,
            );
            telemetry::prom::encode(&reg.snapshot())
        })
    }

    /// Kill one replica and supervise its recovery: mirror of the DES
    /// `crash_instance`. Blocking — call from a dedicated thread (the
    /// built-in `RuntimeOptions::kills` schedule does) while the
    /// clients run elsewhere. Sequence:
    ///
    /// 1. the fault generation is bumped; the thread notices within its
    ///    20 ms poll and exits, surrendering an [`ExitReport`] naming
    ///    the frames whose in-memory state died with it;
    /// 2. those frames get `Crash` terminals + counters (exactly once);
    /// 3. for the `recovery` window nothing serves the socket — the
    ///    supervisor drains arriving datagrams and attributes each
    ///    distinct frame as a `Crash` drop (DES: `drops.down`), while
    ///    control traffic is ignored (requesters retransmit into the
    ///    void and give up on their own deadline);
    /// 4. the replica is respawned at the new generation with empty
    ///    state (fresh store/reassembler/parked queue).
    ///
    /// `kill` composes [`Self::take_down`] + [`Self::bring_up`]; use
    /// the halves directly to sequence a detection in between
    /// (take-down → [`Self::await_detection`] → bring-up), which is
    /// how detection-driven redeploys are counted.
    pub fn kill(&self, kind: ServiceKind, recovery: Duration) {
        let down = self.take_down(kind);
        self.bring_up(down, recovery);
    }

    /// Crash one replica *without* recovering it: bump the fault
    /// generation (the heartbeat thread dies with it, so the detector
    /// starts accruing silence), join the thread, and attribute the
    /// frames whose in-memory state died with it. The replica's socket
    /// stays dark until the returned token is passed to
    /// [`Self::bring_up`].
    pub fn take_down(&self, kind: ServiceKind) -> DownReplica {
        let idx = kind.index();
        let shards = &self.runners[idx];
        // One kill event per replica regardless of shard count; the
        // shared fault cell moves every shard worker past its
        // generation snapshot at once.
        shards[0].stats.kills.fetch_add(1, Ordering::Relaxed);
        shards[0].fault.generation.fetch_add(1, Ordering::Relaxed);
        self.flight.record(
            0,
            self.ctx.epoch.elapsed().as_nanos() as u64,
            observatory::flight::KIND_KILL,
            idx as u64,
            0,
        );
        if let Some(d) = &self.detection {
            d.crash_at.lock().expect("crash_at lock")[idx] = Some(Instant::now());
        }
        let old: Vec<_> = self.handles.lock().expect("handles lock")[idx]
            .iter_mut()
            .map(|slot| slot.take())
            .collect();

        let mut seen: HashSet<(u16, u32)> = HashSet::new();
        for (shard, slot) in old.into_iter().enumerate() {
            let exit = slot
                .map(|h| h.join().expect("service thread"))
                .unwrap_or_default();
            for key in exit.lost_frames {
                if seen.insert((key.client, key.frame_no)) {
                    self.attribute_crash(&shards[shard], key.client, key.frame_no, key.flags);
                }
            }
        }
        self.flight
            .trigger(self.ctx.epoch.elapsed().as_nanos() as u64, "kill");
        DownReplica { kind, seen }
    }

    /// Drain the dead replica's socket for the `recovery` window
    /// (attributing each distinct arriving frame as a `Crash` drop),
    /// then respawn it at the new generation with empty state. If the
    /// detector flagged the replica while it was down, the respawn
    /// counts as a detection-driven redeploy.
    pub fn bring_up(&self, down: DownReplica, recovery: Duration) {
        let DownReplica { kind, mut seen } = down;
        let idx = kind.index();
        let shards = &self.runners[idx];

        // Nothing listens on a crashed container's port: drain and
        // attribute arrivals for the whole recovery window. With
        // `SO_REUSEPORT` the kernel steers arrivals across every shard
        // socket, so the drain round-robins the whole set.
        for runner in shards {
            let _ = runner
                .socket
                .set_read_timeout(Some(Duration::from_millis(5)));
        }
        let mut buf = vec![0u8; 65_536];
        let t_end = Instant::now() + recovery;
        while Instant::now() < t_end && !self.shutdown.load(Ordering::Relaxed) {
            for runner in shards {
                match runner.socket.recv_from(&mut buf) {
                    Ok((n, _)) => {
                        // Bilingual drain: recover the frame identity from
                        // either wire dialect.
                        if let Ok(decoded) = wirev2::decode_any(&buf[..n]) {
                            let frag = match decoded {
                                wirev2::Decoded::V1(f) => f,
                                wirev2::Decoded::V2(f, _) => f,
                            };
                            if frag.flags & wire::FLAG_CTRL != 0 {
                                continue; // fetch responses: not frame traffic
                            }
                            if seen.insert((frag.client, frag.frame_no)) {
                                self.attribute_crash(
                                    runner,
                                    frag.client,
                                    frag.frame_no,
                                    frag.flags,
                                );
                            }
                        }
                        // Control requests / malformed datagrams die silently,
                        // exactly like a dark port.
                    }
                    Err(ref e) if is_would_block(e) => continue,
                    Err(_) => std::thread::sleep(Duration::from_millis(1)),
                }
            }
        }

        if !self.shutdown.load(Ordering::Relaxed) {
            if let Some(d) = &self.detection {
                let flagged = {
                    let mut down = d.detected_down.lock().expect("detected lock");
                    std::mem::take(&mut down[idx])
                };
                if flagged {
                    d.redeploys.fetch_add(1, Ordering::Relaxed);
                }
                // A respawn without a detection also clears the stale
                // crash instant so a later unrelated detection doesn't
                // measure against it.
                d.crash_at.lock().expect("crash_at lock")[idx] = None;
            }
            self.flight.record(
                0,
                self.ctx.epoch.elapsed().as_nanos() as u64,
                observatory::flight::KIND_REVIVE,
                idx as u64,
                0,
            );
            let mut handles = self.handles.lock().expect("handles lock");
            for (shard, runner) in shards.iter().enumerate() {
                handles[idx][shard] = Some(runner.spawn());
            }
        }
    }

    /// Block until the detector raises a suspicion (returns the flagged
    /// service), or `timeout` elapses. `None` when detection is off or
    /// nothing fired in time.
    pub fn await_detection(&self, timeout: Duration) -> Option<ServiceKind> {
        let d = self.detection.as_ref()?;
        d.events
            .lock()
            .expect("events lock")
            .recv_timeout(timeout)
            .ok()
    }

    fn attribute_crash(&self, runner: &ReplicaRunner, client: u16, frame_no: u32, flags: u8) {
        runner.stats.dropped_crash.fetch_add(1, Ordering::Relaxed);
        if let Some(o) = &runner.obs {
            o.drop_crash.inc();
        }
        self.flight.record(
            1 + runner.kind.index(),
            self.ctx.epoch.elapsed().as_nanos() as u64,
            observatory::flight::KIND_DROP,
            ((client as u64) << 32) | frame_no as u64,
            runner.kind.index() as u64,
        );
        let tctx = trace::TraceCtx::new(client, frame_no, flags & wire::FLAG_SAMPLED != 0);
        runner.tracer.terminal(
            tctx,
            self.ctx.epoch.elapsed().as_nanos() as u64,
            trace::FrameFate::Dropped(trace::DropReason::Crash),
        );
    }

    /// One client's stream: emit paced frames from `scene`, collect
    /// completions. Runs on the calling thread.
    #[allow(clippy::too_many_arguments)]
    fn client_loop(
        client_id: u16,
        socket: &RtSocket,
        primary_addr: SocketAddr,
        scene: &SceneGenerator,
        ctx: &SharedCtx,
        opts: &RuntimeOptions,
        client_stats: &SvcStats,
        tracer: &trace::ThreadTracer,
        track: trace::TrackId,
        obs: Option<&RtClientObs>,
    ) -> ClientOutcome {
        socket
            .set_read_timeout(Some(Duration::from_millis(5)))
            .expect("set_read_timeout");
        let period = Duration::from_secs_f64(1.0 / opts.fps);
        let mut reassembler = Reassembler::new();
        let mut rx = RxState::new();
        // v2 uplink shaping: the delta/keyframe state machine. Acked by
        // each completed result (the client hears about its own frames),
        // re-keyed automatically when acks stop coming.
        let mut uplink = opts.wire.v2.then(|| UplinkTx::new(opts.wire.policy));
        let mut buf = vec![0u8; 65_536];
        let mut completed = 0u32;
        let mut e2e = Vec::new();
        let mut recognitions: HashMap<String, u32> = HashMap::new();

        let mut drain_until = Instant::now() + opts.drain;
        let mut next_emit = Instant::now();
        let mut emitted = 0u32;
        while emitted < opts.frames || Instant::now() < drain_until {
            if emitted < opts.frames && Instant::now() >= next_emit {
                // Encode the camera frame for the uplink (the paper's
                // clients stream compressed video; primary decodes).
                let img = scene.frame(emitted);
                let compressed = vision::codec::encode(&img, vision::codec::Quality(85));
                // v2: run the delta/keyframe decision; v1 ships the full
                // DCT stream every frame.
                let (kind, base, payload) = match &mut uplink {
                    Some(tx) => tx.prepare(emitted, compressed),
                    None => (FrameKind::Plain, 0, compressed),
                };
                let tctx = tracer.ctx(client_id, emitted);
                let emit_micros = ctx.epoch.elapsed().as_micros() as u64;
                tracer.emitted(tctx, emit_micros * 1_000);
                let msg = WireMsg {
                    client: client_id,
                    frame_no: emitted,
                    step: ServiceKind::Primary,
                    emit_micros,
                    return_port: socket.local_addr().expect("local addr").port(),
                    trace_id: tctx.trace_id,
                    flags: if tctx.sampled { wire::FLAG_SAMPLED } else { 0 },
                    sent_micros: emit_micros,
                    payload,
                };
                let outcome = send_msg_wire(
                    socket,
                    primary_addr,
                    &msg,
                    &opts.wire,
                    kind,
                    base,
                    client_stats,
                    None,
                );
                // An uplink frame the shim ate whole never reaches
                // primary: the client is the only witness.
                attribute_net_drop(
                    outcome,
                    tctx,
                    ctx.epoch.elapsed().as_nanos() as u64,
                    tracer,
                    client_stats,
                    None,
                );
                if let Some(o) = obs {
                    o.frames_emitted.inc();
                }
                emitted += 1;
                next_emit += period;
                drain_until = Instant::now() + opts.drain;
            }
            let n = match socket.recv_from(&mut buf) {
                Ok((n, _)) => n,
                Err(ref e) if is_would_block(e) => continue,
                Err(_) => {
                    client_stats.io_errors.fetch_add(1, Ordering::Relaxed);
                    std::thread::sleep(Duration::from_millis(1));
                    continue;
                }
            };
            let frag = match rx.ingest(&buf[..n]) {
                Ok(frag) => frag,
                Err(e) => {
                    attribute_ingest_error(e, ctx.epoch, tracer, client_stats, None);
                    continue;
                }
            };
            let Some(msg) = reassembler.offer(frag) else {
                continue;
            };
            let Ok((msg, _meta)) = rx.finish(msg) else {
                client_stats.malformed.fetch_add(1, Ordering::Relaxed);
                continue;
            };
            // Full-ns receive stamp: matching's `sent_micros` is rounded
            // up at the send site, so flooring here to whole micros
            // could order this span *before* matching's compute end.
            let recv_ns = ctx.epoch.elapsed().as_nanos() as u64;
            let now_micros = recv_ns / 1_000;
            let tctx = msg.trace_ctx();
            // Return hop: matching's send → this client's receive.
            tracer.span(
                tctx,
                track,
                trace::STAGE_CLIENT,
                trace::Phase::IngressQueue,
                (msg.sent_micros * 1_000).min(recv_ns),
                recv_ns,
            );
            tracer.terminal(tctx, recv_ns, trace::FrameFate::Completed);
            // A completed round trip proves primary reconstructed the
            // frame: safe to anchor future deltas on it.
            if let Some(tx) = &mut uplink {
                tx.ack(msg.frame_no);
            }
            let e2e_ms = now_micros.saturating_sub(msg.emit_micros) as f64 / 1e3;
            if let Some(o) = obs {
                o.frames_completed.inc();
                o.e2e_ms.record(e2e_ms);
            }
            e2e.push(e2e_ms);
            completed += 1;
            if let Ok(recs) = wire::decode_result(msg.payload) {
                for (name, _) in recs {
                    *recognitions.entry(name).or_insert(0) += 1;
                }
            }
        }
        (emitted, completed, e2e, recognitions)
    }

    /// Stream frames from all configured clients concurrently (client 0
    /// runs on the calling thread; the rest get their own threads and
    /// sockets — like the paper's containerized NUC clients), executing
    /// the `RuntimeOptions::kills` fault schedule on timer threads.
    pub fn run_client(&self) -> RuntimeReport {
        if self.opts.kills.is_empty() {
            return self.run_client_inner();
        }
        let started = Instant::now();
        std::thread::scope(|scope| {
            for &(at, kind, recovery) in &self.opts.kills {
                scope.spawn(move || {
                    // Sleep in slices so a finished run isn't held open.
                    while started.elapsed() < at && !self.shutdown.load(Ordering::Relaxed) {
                        let left = at - started.elapsed();
                        std::thread::sleep(left.min(Duration::from_millis(10)));
                    }
                    if !self.shutdown.load(Ordering::Relaxed) {
                        self.kill(kind, recovery);
                    }
                });
            }
            self.run_client_inner()
        })
    }

    fn run_client_inner(&self) -> RuntimeReport {
        let opts = &self.opts;
        // Results are returned to the socket the frame was sent from,
        // but routing goes through the service chain; every client needs
        // its own return socket. Client 0 reuses the deployment socket.
        let extra: Vec<std::thread::JoinHandle<ClientOutcome>> = (1..opts.clients)
            .map(|cid| {
                let primary_addr = self.primary_addr;
                let ctx = self.ctx.clone();
                let opts = self.opts.clone();
                let tracer = self.collector.handle();
                let track = self.client_tracks[cid as usize];
                let obs = self.client_obs.clone();
                let client_stats = self.client_stats.clone();
                let net = self.net.clone();
                // Each client replays its own camera (distinct seed),
                // via the shared derivation the DES predictor uses.
                let scene = predict::client_scene(opts.seed, cid, opts.width, opts.height);
                std::thread::Builder::new()
                    .name(format!("scatter-client-{cid}"))
                    .spawn(move || {
                        let socket = RtSocket::new(Arc::new(bind_loopback()), Ep::Client, net);
                        Self::client_loop(
                            cid,
                            &socket,
                            primary_addr,
                            &scene,
                            &ctx,
                            &opts,
                            &client_stats,
                            &tracer,
                            track,
                            obs.as_ref(),
                        )
                    })
                    .expect("spawn client thread")
            })
            .collect();

        let tracer0 = self.collector.handle();
        let (em0, cp0, mut e2e, mut recognitions) = Self::client_loop(
            0,
            &self.client_socket,
            self.primary_addr,
            &self.scene,
            &self.ctx,
            opts,
            &self.client_stats,
            &tracer0,
            self.client_tracks[0],
            self.client_obs.as_ref(),
        );
        let mut per_client_completed = vec![cp0];
        let mut emitted = em0;
        let mut completed = cp0;
        for h in extra {
            let (em, cp, e, recs) = h.join().expect("client thread");
            emitted += em;
            completed += cp;
            e2e.extend(e);
            per_client_completed.push(cp);
            for (name, count) in recs {
                *recognitions.entry(name).or_insert(0) += count;
            }
        }

        let mean_e2e = if e2e.is_empty() {
            0.0
        } else {
            e2e.iter().sum::<f64>() / e2e.len() as f64
        };
        let max_e2e = e2e.iter().copied().fold(0.0f64, f64::max);
        let p95_e2e = if e2e.is_empty() {
            0.0
        } else {
            let mut sorted = e2e.clone();
            sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
            sorted[((sorted.len() as f64 * 0.95).ceil() as usize).saturating_sub(1)]
        };
        let sum = |f: &dyn Fn(&SvcStats) -> u64| -> u64 {
            self.stats.iter().flatten().map(|s| f(s)).sum::<u64>() + f(&self.client_stats)
        };
        RuntimeReport {
            emitted,
            completed,
            mean_e2e_ms: mean_e2e,
            max_e2e_ms: max_e2e,
            recognitions,
            tracks_active: self.stats[4]
                .iter()
                .map(|s| s.tracks_active.load(Ordering::Relaxed))
                .sum(),
            per_client_completed,
            fetch_failures: self.fetch_failures.load(Ordering::Relaxed),
            sift_store_size: self.sift_store_size.load(Ordering::Relaxed),
            malformed_datagrams: sum(&|s| s.malformed.load(Ordering::Relaxed)),
            crash_drops: sum(&|s| s.dropped_crash.load(Ordering::Relaxed)),
            busy_drops: sum(&|s| s.dropped_busy.load(Ordering::Relaxed)),
            net_drops: sum(&|s| s.net_dropped.load(Ordering::Relaxed)),
            fragment_drops: sum(&|s| s.dropped_fragment.load(Ordering::Relaxed)),
            io_errors: sum(&|s| s.io_errors.load(Ordering::Relaxed)),
            hb_send_errors: self.hb_send_errors.load(Ordering::Relaxed),
            delay_send_errors: self
                .net
                .as_ref()
                .map(|n| n.delay_send_errors())
                .unwrap_or(0),
            fetch_retransmits: sum(&|s| s.fetch_retransmits.load(Ordering::Relaxed)),
            late_fetch_rsp: sum(&|s| s.late_fetch_rsp.load(Ordering::Relaxed)),
            kills: sum(&|s| s.kills.load(Ordering::Relaxed)),
            detections: self
                .detection
                .as_ref()
                .map(|d| d.detections.load(Ordering::Relaxed))
                .unwrap_or(0),
            redeploys: self
                .detection
                .as_ref()
                .map(|d| d.redeploys.load(Ordering::Relaxed))
                .unwrap_or(0),
            detection_latency_ms: self
                .detection
                .as_ref()
                .map(|d| d.latencies.lock().expect("latencies lock").clone())
                .unwrap_or_default(),
            uplink_bytes: self.client_stats.bytes_sent.load(Ordering::Relaxed),
            bytes_on_wire: sum(&|s| s.bytes_sent.load(Ordering::Relaxed)),
            invalid_crc: sum(&|s| s.invalid_crc.load(Ordering::Relaxed)),
            delta_resyncs: sum(&|s| s.delta_resync.load(Ordering::Relaxed)),
            p95_e2e_ms: p95_e2e,
            flight_dumps: self.flight.take_dumps(),
            prof: self.ctx.prof.snapshot(),
            service_counts: SERVICE_KINDS
                .iter()
                .zip(&self.stats)
                .map(|(&k, set)| {
                    (
                        k,
                        set.iter().map(|s| s.received.load(Ordering::Relaxed)).sum(),
                        set.iter()
                            .map(|s| s.processed.load(Ordering::Relaxed))
                            .sum(),
                        set.iter()
                            .map(|s| s.dropped_stale.load(Ordering::Relaxed))
                            .sum(),
                    )
                })
                .collect(),
        }
    }

    /// Stop the service threads, join them, and close the trace log
    /// (empty when tracing was disabled).
    pub fn shutdown(self) -> trace::TraceLog {
        self.shutdown_with_counts().0
    }

    /// Like [`Self::shutdown`], but also returns the final per-service
    /// `(kind, received, processed, dropped_stale)` counters read *after*
    /// the threads have joined — the exact population a post-shutdown
    /// registry snapshot covers (no in-flight increments).
    pub fn shutdown_with_counts(self) -> (trace::TraceLog, Vec<(ServiceKind, u64, u64, u64)>) {
        self.shutdown.store(true, Ordering::Relaxed);
        if let Some(d) = &self.detection {
            // The monitor polls with a 5 ms timeout, so it notices the
            // flag promptly; heartbeat threads are detached and die on
            // the same flag within one interval.
            if let Some(h) = d.monitor.lock().expect("monitor lock").take() {
                let _ = h.join();
            }
        }
        let handles: Vec<_> = self
            .handles
            .lock()
            .expect("handles lock")
            .iter_mut()
            .flat_map(|set| set.iter_mut().map(|slot| slot.take()))
            .collect();
        for h in handles.into_iter().flatten() {
            let _ = h.join();
        }
        let counts = SERVICE_KINDS
            .iter()
            .zip(&self.stats)
            .map(|(&k, set)| {
                (
                    k,
                    set.iter().map(|s| s.received.load(Ordering::Relaxed)).sum(),
                    set.iter()
                        .map(|s| s.processed.load(Ordering::Relaxed))
                        .sum(),
                    set.iter()
                        .map(|s| s.dropped_stale.load(Ordering::Relaxed))
                        .sum(),
                )
            })
            .collect();
        let end_ns = self.ctx.epoch.elapsed().as_nanos() as u64;
        (self.collector.collect(end_ns), counts)
    }
}

/// Convenience: start, run, shut down.
pub fn run_local(opts: RuntimeOptions) -> RuntimeReport {
    let dep = LocalDeployment::start(opts);
    let report = dep.run_client();
    let _ = dep.shutdown();
    report
}

/// Like [`run_local`], but returns the trace log alongside the report.
/// Enables tracing (sample-every-frame) unless `opts.trace` already set
/// a policy.
pub fn run_local_traced(mut opts: RuntimeOptions) -> (RuntimeReport, trace::TraceLog) {
    if opts.trace.is_none() {
        opts.trace = Some(trace::TraceConfig::default());
    }
    let dep = LocalDeployment::start(opts);
    let report = dep.run_client();
    let log = dep.shutdown();
    (report, log)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// End-to-end over real loopback UDP: frames stream in, bounding
    /// boxes come back. Small frame count: real CV per frame.
    #[test]
    fn loopback_pipeline_end_to_end() {
        let report = run_local(RuntimeOptions {
            frames: 8,
            fps: 8.0,
            ..Default::default()
        });
        assert_eq!(report.emitted, 8);
        assert!(
            report.completed >= 4,
            "only {}/8 frames completed (service counts: {:?})",
            report.completed,
            report.service_counts
        );
        assert!(report.mean_e2e_ms > 0.0);
        assert!(
            !report.recognitions.is_empty(),
            "no objects recognized over the wire"
        );
        assert!(
            report.tracks_active > 0,
            "matching should hold live tracks after a recognition streak"
        );
        // Every stage did real work.
        for (kind, received, processed, _) in &report.service_counts {
            assert!(*received > 0, "{} received nothing", kind.name());
            assert!(*processed > 0, "{} processed nothing", kind.name());
        }
        // Pristine loopback: the fault plane must stay silent.
        assert_eq!(report.crash_drops, 0);
        assert_eq!(report.net_drops, 0);
        assert_eq!(report.kills, 0);
    }

    /// The staleness filter drops frames when the budget is impossible.
    #[test]
    fn threshold_filter_drops_stale_frames() {
        let report = run_local(RuntimeOptions {
            frames: 6,
            fps: 50.0,         // far beyond single-thread CV capacity
            threshold_ms: 1.0, // nothing can finish in 1 ms
            drain: Duration::from_millis(400),
            ..Default::default()
        });
        let total_stale: u64 = report.service_counts.iter().map(|(_, _, _, d)| d).sum();
        assert!(
            total_stale > 0,
            "filter never fired: {:?}",
            report.service_counts
        );
        assert!(report.completed < report.emitted);
    }
}

#[cfg(test)]
mod telemetry_tests {
    use super::*;
    use crate::obs::{RT_MACHINE, RT_PLANE};

    /// The live metrics plane and the `SvcStats` counters increment at
    /// the same program points, so after the threads join they must
    /// agree *exactly* — and the scrape must be valid Prometheus text.
    #[test]
    fn scrape_reconciles_with_svc_stats() {
        let reg = telemetry::Registry::new();
        let dep = LocalDeployment::start(RuntimeOptions {
            frames: 5,
            fps: 8.0,
            registry: Some(reg.clone()),
            ..Default::default()
        });
        let report = dep.run_client();
        let stats: Vec<Vec<Arc<SvcStats>>> = dep.stats.clone();
        let live = dep.scrape().expect("registry enabled");
        telemetry::prom::parse(&live).expect("mid-run scrape parses");
        let _ = dep.shutdown(); // joins the service threads

        let snap = reg.snapshot();
        for (i, kind) in SERVICE_KINDS.iter().enumerate() {
            let labels = telemetry::Labels::service(kind.name())
                .with_replica(0)
                .with_machine(RT_MACHINE)
                .with_plane(RT_PLANE);
            // Shards share one labelled counter, so the scrape is
            // compared against the shard-merged totals.
            assert_eq!(
                snap.counter("scatter_service_ingress_total", &labels),
                stats[i]
                    .iter()
                    .map(|s| s.received.load(Ordering::Relaxed))
                    .sum::<u64>(),
                "{} ingress drifted",
                kind.name()
            );
            assert_eq!(
                snap.counter("scatter_service_processed_total", &labels),
                stats[i]
                    .iter()
                    .map(|s| s.processed.load(Ordering::Relaxed))
                    .sum::<u64>(),
                "{} processed drifted",
                kind.name()
            );
        }
        let e2e = snap
            .histogram(
                "scatter_e2e_latency_ms",
                &telemetry::Labels::EMPTY.with_plane(RT_PLANE),
            )
            .expect("e2e histogram registered");
        assert_eq!(e2e.count(), report.completed as u64);
        // Final snapshot round-trips through the text format.
        let text = telemetry::prom::encode(&snap);
        let exp = telemetry::prom::parse(&text).expect("final scrape parses");
        assert!(!exp.samples.is_empty());
    }
}

#[cfg(test)]
mod stateful_tests {
    use super::*;

    /// The dependency loop over real sockets: frames complete only via
    /// matching's fetch round-trip to sift's in-memory store. Paced
    /// slowly so the test is robust under debug-build CV speeds.
    #[test]
    fn stateful_pipeline_completes_via_fetch() {
        let report = run_local(RuntimeOptions {
            stateful: true,
            frames: 4,
            fps: 1.5,
            drain: Duration::from_millis(3000),
            ..Default::default()
        });
        assert!(
            report.completed >= 2,
            "stateful pipeline completed only {}/4 (fetch failures: {})",
            report.completed,
            report.fetch_failures
        );
        assert!(
            !report.recognitions.is_empty(),
            "no recognitions through the fetch path"
        );
        // Served entries linger only one fetch-timeout, then the TTL
        // sweep removes them: the store must not hold every frame at
        // shutdown.
        assert!(
            report.sift_store_size < 4,
            "sift store leaked: {} entries",
            report.sift_store_size
        );
    }
}

#[cfg(test)]
mod fault_tests {
    use super::*;
    use crate::runtime::impair::{LinkImpairment, LinkRule};

    /// Satellite regression: the shim eats the *first* fetch-request
    /// datagram on the matching→sift link. Pre-retransmit, matching
    /// busy-waited the full timeout and recorded a fetch failure; with
    /// deadline-bounded backoff the frame must still complete.
    #[test]
    fn fetch_request_loss_recovers_with_retransmit() {
        let impair = ImpairmentProfile::new(11).with_rule(LinkRule::between(
            Ep::Svc(ServiceKind::Matching),
            Ep::Svc(ServiceKind::Sift),
            LinkImpairment::drop_first(1),
        ));
        let report = run_local(RuntimeOptions {
            stateful: true,
            frames: 3,
            fps: 1.5,
            drain: Duration::from_millis(3000),
            impair: Some(impair),
            ..Default::default()
        });
        assert!(
            report.fetch_retransmits >= 1,
            "the dropped request never triggered a retransmit"
        );
        assert_eq!(
            report.fetch_failures, 0,
            "retransmit should recover within the fetch deadline"
        );
        assert!(
            report.completed >= 2,
            "only {}/3 completed after a single request loss",
            report.completed
        );
    }

    /// Headline regression for the frame-swallowing bug: while matching
    /// is wedged in a fetch-wait, fragments of *other* frames keep
    /// arriving on its socket. Before the fix they were consumed into a
    /// throwaway reassembler and vanished without any drop accounting;
    /// now they are parked and processed after the wait resolves.
    ///
    /// The wedge is forced deterministically: the shim eats the first
    /// four fetch-request datagrams, so with a 100 ms initial backoff
    /// the fifth attempt succeeds ~1.5 s in — long enough that every
    /// later frame reaches matching mid-wait even on slow builds.
    #[test]
    fn frames_arriving_during_fetch_wait_survive() {
        let impair = ImpairmentProfile::new(13).with_rule(LinkRule::between(
            Ep::Svc(ServiceKind::Matching),
            Ep::Svc(ServiceKind::Sift),
            LinkImpairment::drop_first(4),
        ));
        let (report, log) = run_local_traced(RuntimeOptions {
            stateful: true,
            frames: 4,
            fps: 4.0,
            stateful_opts: StatefulOptions {
                fetch_timeout: Duration::from_millis(2500),
                fetch_retry_initial: Duration::from_millis(100),
                ..Default::default()
            },
            drain: Duration::from_millis(5000),
            impair: Some(impair),
            ..Default::default()
        });
        assert!(
            report.fetch_retransmits >= 4,
            "wedge never formed: only {} retransmits",
            report.fetch_retransmits
        );
        assert_eq!(
            report.completed,
            report.emitted,
            "frames were swallowed during the fetch wait: {}/{} completed \
             (busy={} crash={} net={} frag={} fetch_failures={})",
            report.completed,
            report.emitted,
            report.busy_drops,
            report.crash_drops,
            report.net_drops,
            report.fragment_drops,
            report.fetch_failures
        );
        let a = trace::Analysis::from_log(&log);
        a.check_invariants().expect("trace invariants hold");
        assert_eq!(
            a.assigned_run_end,
            0,
            "some frame ended without a terminal: {:?}",
            a.drop_reasons()
        );
    }

    /// Every frame the shim eats whole is attributed at the send site —
    /// nothing disappears silently even under 100% loss.
    #[test]
    fn total_loss_is_fully_attributed() {
        let impair = ImpairmentProfile::new(17).with_rule(LinkRule::between(
            Ep::Client,
            Ep::Svc(ServiceKind::Primary),
            LinkImpairment::loss(1.0),
        ));
        let (report, log) = run_local_traced(RuntimeOptions {
            frames: 5,
            fps: 10.0,
            drain: Duration::from_millis(300),
            impair: Some(impair),
            ..Default::default()
        });
        assert_eq!(report.completed, 0);
        assert_eq!(
            report.net_drops + report.fragment_drops,
            u64::from(report.emitted),
            "shim losses must be counted, not silent"
        );
        let a = trace::Analysis::from_log(&log);
        a.check_invariants().expect("trace invariants hold");
        assert_eq!(a.assigned_run_end, 0, "every loss carries a terminal");
        let reasons = a.drop_reasons();
        let attributed: usize = reasons
            .iter()
            .filter(|(r, _)| {
                matches!(
                    r,
                    trace::DropReason::NetemLoss | trace::DropReason::FragmentLoss
                )
            })
            .map(|(_, n)| n)
            .sum();
        assert_eq!(attributed, report.emitted as usize, "{reasons:?}");
    }

    /// Kill/restart parity with the DES `crash_instance`: killing sift
    /// mid-run voids in-flight state (counted + trace-attributed as
    /// [`trace::DropReason::Crash`]), and the respawned replica serves
    /// the remaining frames.
    #[test]
    fn kill_and_restart_attributes_crash_drops() {
        let (report, log) = run_local_traced(RuntimeOptions {
            frames: 10,
            fps: 8.0,
            kills: vec![(
                Duration::from_millis(400),
                ServiceKind::Sift,
                Duration::from_millis(400),
            )],
            drain: Duration::from_millis(3000),
            ..Default::default()
        });
        assert_eq!(report.kills, 1);
        assert!(
            report.crash_drops >= 1,
            "a kill at mid-stream must void at least one in-flight frame"
        );
        assert!(
            report.completed >= 2,
            "the respawned replica never recovered: {}/{} completed",
            report.completed,
            report.emitted
        );
        let a = trace::Analysis::from_log(&log);
        a.check_invariants().expect("trace invariants hold");
        let crashed = a
            .drop_reasons()
            .get(&trace::DropReason::Crash)
            .copied()
            .unwrap_or(0);
        assert_eq!(
            crashed as u64, report.crash_drops,
            "crash terminals must match the crash counter"
        );
        // Observatory: the kill must freeze a flight dump whose merged
        // history contains the KIND_KILL record, and the always-on
        // profiler must have timed the per-stage compute.
        let kill_dump = report
            .flight_dumps
            .iter()
            .find(|d| d.reason == "kill")
            .expect("a kill trigger freezes a flight dump");
        assert!(
            kill_dump
                .events
                .iter()
                .any(|e| e.kind == observatory::flight::KIND_KILL
                    && e.a == ServiceKind::Sift.index() as u64),
            "the kill dump names the killed replica"
        );
        let compute = report.prof.get("compute").expect("compute phase exists");
        assert!(
            compute.calls > 0 && compute.est_total_ns > 0,
            "the always-on profiler saw no compute: {compute:?}"
        );
    }
}

#[cfg(test)]
mod detection_tests {
    use super::*;
    use crate::resilience::DetectionConfig;

    /// A healthy run with detection on must look exactly like one with
    /// detection off: no suspicions, no redeploys, frames complete.
    #[test]
    fn detection_plane_is_silent_on_a_healthy_run() {
        let report = run_local(RuntimeOptions {
            frames: 6,
            fps: 8.0,
            detection: Some(DetectionConfig::default()),
            ..Default::default()
        });
        assert_eq!(report.detections, 0, "spurious suspicion on a healthy run");
        assert_eq!(report.redeploys, 0);
        assert!(report.detection_latency_ms.is_empty());
        assert!(
            report.completed >= 3,
            "only {}/6 completed with detection enabled",
            report.completed
        );
    }

    /// The tentpole sequence over real sockets: take a replica down,
    /// wait for the heartbeat monitor to flag it (UDP heartbeats fell
    /// silent), then bring it up — counted as a detection-driven
    /// redeploy, with the detection latency measured from the crash
    /// instant. The respawned replica serves the remaining frames.
    #[test]
    fn heartbeat_detection_catches_a_kill_and_drives_the_redeploy() {
        let dep = LocalDeployment::start(RuntimeOptions {
            frames: 12,
            fps: 8.0,
            detection: Some(DetectionConfig::default()),
            drain: Duration::from_millis(3500),
            ..Default::default()
        });
        let report = std::thread::scope(|scope| {
            scope.spawn(|| {
                std::thread::sleep(Duration::from_millis(400));
                let down = dep.take_down(ServiceKind::Sift);
                assert_eq!(down.kind(), ServiceKind::Sift);
                let detected = dep.await_detection(Duration::from_secs(5));
                assert_eq!(
                    detected,
                    Some(ServiceKind::Sift),
                    "the monitor never flagged the silent replica"
                );
                dep.bring_up(down, Duration::from_millis(100));
            });
            dep.run_client()
        });
        assert!(report.detections >= 1, "no detection recorded");
        assert_eq!(
            report.redeploys, 1,
            "the respawn after detection must count as a redeploy"
        );
        assert!(!report.detection_latency_ms.is_empty());
        let lat = report.detection_latency_ms[0];
        // suspect_factor × interval = 150 ms of silence, minus up to
        // one interval of pre-crash credit; generous upper bound for
        // loaded CI machines.
        assert!(
            lat > 50.0 && lat < 3000.0,
            "detection latency {lat:.0} ms outside the plausible band"
        );
        assert!(
            report.completed >= 2,
            "the redeployed replica never recovered: {}/{}",
            report.completed,
            report.emitted
        );
        let _ = dep.shutdown();
    }
}

#[cfg(test)]
mod multi_client_tests {
    use super::*;

    /// Two concurrent clients over real loopback UDP: results must route
    /// back to each client's own socket via the wire return port. Paced
    /// slowly so the test is robust under debug-build CV speeds.
    #[test]
    fn two_clients_each_get_their_results() {
        let report = run_local(RuntimeOptions {
            clients: 2,
            frames: 4,
            fps: 1.0,
            drain: Duration::from_millis(4000),
            ..Default::default()
        });
        assert_eq!(report.emitted, 8);
        assert_eq!(report.per_client_completed.len(), 2);
        for (cid, &completed) in report.per_client_completed.iter().enumerate() {
            assert!(
                completed >= 2,
                "client {cid} completed only {completed}/4 frames"
            );
        }
    }
}
