//! # runtime — the real-execution substrate
//!
//! The DES in [`crate::world`] reproduces the paper's *measurements*;
//! this module demonstrates that the pipeline's *data plane* is real: the
//! five services run as OS threads, each bound to its own loopback
//! `UdpSocket`, exchanging the same message shapes the paper describes
//! (client id, frame number, return address, pipeline step) and running
//! the actual `vision` compute — synthetic-scene rendering, SIFT-style
//! detection/description, PCA + Fisher encoding, LSH lookup, ratio-test
//! matching, and RANSAC pose estimation.
//!
//! The deployment follows the scAtteR++ design: `sift` is stateless (its
//! output frame carries the descriptors forward — the paper's
//! 180 KB → 480 KB growth shows up here as real datagram bytes), and
//! each service fronts its socket with a sidecar-style staleness filter
//! before spending compute.
//!
//! Large messages exceed a single UDP datagram, so [`wire`] implements
//! application-level fragmentation and reassembly — loss of any fragment
//! loses the message, exactly like the testbed's fragmented frames.

pub mod batch;
pub mod deploy;
pub mod impair;
pub mod services;
pub mod stateful;
pub mod wire;

pub use deploy::{run_local, run_local_traced, LocalDeployment, RuntimeOptions, RuntimeReport};
pub use impair::{
    Ep, ImpairedNet, ImpairmentProfile, LinkImpairment, LinkRule, RtSocket, SendDisposition,
};
pub use wire::WireError;
